//! Job scheduling on a noisy device: purification in action.
//!
//! Schedules 3 jobs onto 2 machines under the IBM-Kyiv noise model and
//! shows how purification-based error mitigation (paper §4.3) keeps the
//! output 100% in-constraints while the raw measurements are not.
//!
//! ```bash
//! cargo run --example noisy_scheduling --release
//! ```

use rasengan::core::{Rasengan, RasenganConfig};
use rasengan::problems::jsp::JobScheduling;
use rasengan::qsim::Device;

fn main() {
    let jsp = JobScheduling::generate(3, 2, 2, 99);
    println!(
        "jobs with processing times {:?} on 2 machines (capacity 2 each)",
        jsp.times
    );
    let problem = jsp.into_problem();

    let device = Device::ibm_kyiv();
    println!(
        "device: {} (2Q error {:.2}%, readout error {:.1}%)",
        device.name,
        device.noise.p2 * 100.0,
        device.noise.readout * 100.0
    );

    // Purification ON (the default).
    let with = Rasengan::new(
        RasenganConfig::default()
            .with_seed(1)
            .on_device(device.clone())
            .with_shots(1024)
            .with_max_iterations(40),
    )
    .solve(&problem)
    .expect("noisy JSP solves");

    // Purification OFF (ablation).
    let without = {
        let mut cfg = RasenganConfig::default()
            .with_seed(1)
            .on_device(device)
            .with_shots(1024)
            .with_max_iterations(40);
        cfg.purify = false;
        Rasengan::new(cfg)
            .solve(&problem)
            .expect("noisy JSP solves")
    };

    println!("\n                      with purification   without");
    println!(
        "raw in-constraints      {:>6.1}%            {:>6.1}%",
        with.raw_in_constraints_rate * 100.0,
        without.raw_in_constraints_rate * 100.0
    );
    println!(
        "output in-constraints   {:>6.1}%            {:>6.1}%",
        with.in_constraints_rate * 100.0,
        without.in_constraints_rate * 100.0
    );
    println!(
        "ARG                     {:>7.3}            {:>7.3}",
        with.arg, without.arg
    );
    println!(
        "best schedule value     {:>7.3}            {:>7.3}",
        with.best.value, without.best.value
    );

    assert_eq!(
        with.in_constraints_rate, 1.0,
        "purification must yield a fully feasible output"
    );
}
