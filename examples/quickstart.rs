//! Quickstart: solve a small constrained binary optimization problem
//! with Rasengan.
//!
//! ```bash
//! cargo run --example quickstart --release
//! ```

use rasengan::core::{Rasengan, RasenganConfig};
use rasengan::problems::optimum;
use rasengan::problems::registry::{benchmark, BenchmarkId};
use rasengan::qsim::sparse::bits_from_label;

fn main() {
    // F1: the smallest facility-location benchmark (2 facilities,
    // 1 demand, 6 binary variables).
    let problem = benchmark(BenchmarkId::parse("F1").unwrap());
    println!(
        "problem: {} ({} variables, {} constraints)",
        problem.name(),
        problem.n_vars(),
        problem.n_constraints()
    );

    // Default configuration: all three optimizations on, noise-free
    // exact simulation, COBYLA-style training.
    let solver = Rasengan::new(RasenganConfig::default().with_seed(42));
    let outcome = solver.solve(&problem).expect("F1 solves");

    println!("\ncompiled chain:");
    println!("  homogeneous basis vectors (m): {}", outcome.stats.m_basis);
    println!(
        "  transition operators: {} scheduled, {} kept after pruning",
        outcome.stats.raw_ops, outcome.stats.kept_ops
    );
    println!(
        "  segments: {} (deepest segment: {} CX)",
        outcome.stats.n_segments, outcome.stats.max_segment_cx_depth
    );

    println!("\nfinal distribution over feasible states:");
    for (&label, &p) in &outcome.distribution {
        let bits = bits_from_label(label, problem.n_vars());
        println!("  {bits:?}  p = {p:.4}  f = {}", problem.evaluate(&bits));
    }

    let (_, e_opt) = optimum(&problem);
    println!(
        "\nbest found: {:?} (value {})",
        outcome.best.bits, outcome.best.value
    );
    println!("exact optimum value: {e_opt}");
    println!("ARG: {:.4}", outcome.arg);
    println!(
        "in-constraints rate: {:.1}%",
        outcome.in_constraints_rate * 100.0
    );
    assert!(
        outcome.best.feasible,
        "Rasengan output must satisfy the constraints"
    );
}
