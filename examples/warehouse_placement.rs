//! Warehouse placement: a facility-location scenario comparing Rasengan
//! against the Choco-Q and P-QAOA baselines.
//!
//! A retailer must pick which of 3 candidate warehouses to open to serve
//! 2 delivery regions, trading opening costs against transport costs —
//! the motivating resource-allocation workload of the paper's
//! introduction.
//!
//! ```bash
//! cargo run --example warehouse_placement --release
//! ```

use rasengan::baselines::{BaselineConfig, ChocoQ, PQaoa};
use rasengan::core::{Rasengan, RasenganConfig};
use rasengan::problems::flp::FacilityLocation;
use rasengan::problems::optimum;

fn main() {
    // Hand-authored costs: warehouse 1 is cheap to open but far from
    // region B; warehouse 2 is central but expensive.
    let flp = FacilityLocation {
        facilities: 3,
        demands: 2,
        open_cost: vec![3.0, 9.0, 5.0],
        transport_cost: vec![
            vec![1.0, 8.0], // warehouse 0: near region A
            vec![2.0, 2.0], // warehouse 1: central
            vec![7.0, 1.0], // warehouse 2: near region B
        ],
    };
    let problem = flp.into_problem();
    let (x_opt, e_opt) = optimum(&problem);
    println!(
        "{}: {} variables, {} constraints, classical optimum {} ({:?})",
        problem.name(),
        problem.n_vars(),
        problem.n_constraints(),
        e_opt,
        &x_opt[..3] // the y (open) decisions
    );

    // Rasengan.
    let ras = Rasengan::new(
        RasenganConfig::default()
            .with_seed(7)
            .with_max_iterations(150),
    )
    .solve(&problem)
    .expect("FLP solves");
    println!(
        "\nRasengan : value {:<5} ARG {:.3}  depth {:>4}  params {}",
        ras.best.value, ras.arg, ras.stats.max_segment_cx_depth, ras.stats.n_params
    );

    // Choco-Q (best prior work).
    let choco = ChocoQ::new(
        BaselineConfig::default()
            .with_seed(7)
            .with_max_iterations(150),
    )
    .solve(&problem)
    .expect("Choco-Q solves");
    println!(
        "Choco-Q  : value {:<5} ARG {:.3}  depth {:>4}  params {}",
        choco.best.value, choco.arg, choco.circuit_depth, choco.n_params
    );

    // P-QAOA (penalty-term baseline).
    let pqaoa = PQaoa::new(
        BaselineConfig::default()
            .with_seed(7)
            .with_max_iterations(150),
    )
    .solve(&problem);
    println!(
        "P-QAOA   : value {:<5} ARG {:.3}  depth {:>4}  params {}  (in-constraints {:.0}%)",
        pqaoa.best.value,
        pqaoa.arg,
        pqaoa.circuit_depth,
        pqaoa.n_params,
        pqaoa.in_constraints_rate * 100.0
    );

    assert!(ras.best.feasible);
    assert!(
        ras.arg <= choco.arg + 1e-9,
        "Rasengan should match or beat Choco-Q on this instance"
    );
}
