//! Portfolio selection: the financial-investment workload from the
//! paper's introduction, and the only maximization-sense scenario.
//!
//! Pick one asset from each of three sectors to maximize expected
//! return minus covariance risk, subject to hard per-sector cardinality
//! constraints.
//!
//! ```bash
//! cargo run --example portfolio_selection --release
//! ```

use rasengan::core::{Rasengan, RasenganConfig};
use rasengan::problems::portfolio::Portfolio;
use rasengan::problems::{enumerate_feasible, optimum};

fn main() {
    let portfolio = Portfolio::generate(3, 3, 1, 2024);
    println!(
        "9 assets in 3 sectors, expected returns {:?}",
        portfolio.returns
    );
    println!(
        "{} covariance pairs, risk aversion λ = {}",
        portfolio.risk.len(),
        portfolio.risk_aversion
    );

    let problem = portfolio.clone().into_problem();
    println!(
        "\nencoded: {} qubits, {} cardinality constraints, {} feasible portfolios",
        problem.n_vars(),
        problem.n_constraints(),
        enumerate_feasible(&problem).len()
    );

    let outcome = Rasengan::new(
        RasenganConfig::default()
            .with_seed(11)
            .with_max_iterations(150),
    )
    .solve(&problem)
    .expect("portfolio solves");

    println!("\nselected assets:");
    for (sector, range) in portfolio.sectors.iter().enumerate() {
        for i in range.clone() {
            if outcome.best.bits[i] == 1 {
                println!(
                    "  sector {sector}: asset {i} (return {})",
                    portfolio.returns[i]
                );
            }
        }
    }
    let (_, best_possible) = optimum(&problem);
    println!(
        "\nobjective (return − risk): {} (optimum {best_possible})",
        outcome.best.value
    );
    println!("ARG: {:.4}", outcome.arg);
    assert!(outcome.best.feasible);
    assert!(
        (outcome.best.value - best_possible).abs() < 1e-9,
        "expected the exact optimum on this small instance"
    );
}
