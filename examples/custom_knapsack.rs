//! Building a custom problem with `ProblemBuilder`: a bounded knapsack.
//!
//! Shows the general front door for user-defined constrained binary
//! optimization: declare decision variables, add `=`/`≤`/`≥`
//! constraints (inequalities are binarized with slack variables
//! automatically, paper §2.1), and hand the result to Rasengan.
//!
//! ```bash
//! cargo run --example custom_knapsack --release
//! ```

use rasengan::core::{Rasengan, RasenganConfig};
use rasengan::problems::{enumerate_feasible, optimum, Cmp, ProblemBuilder, Sense};

fn main() {
    // Five items with values; pick at most 2, and item 4 requires
    // item 0 (a dependency constraint: x4 ≤ x0).
    let values = [4.0, 2.0, 6.0, 3.0, 5.0];
    let problem = ProblemBuilder::new(5, Sense::Maximize)
        .name("bounded-knapsack")
        .linear_objective(&values)
        .constraint(&[(0, 1), (1, 1), (2, 1), (3, 1), (4, 1)], Cmp::Le, 2)
        .constraint(&[(4, 1), (0, -1)], Cmp::Le, 0)
        .build()
        .expect("knapsack builds");

    println!(
        "encoded: {} qubits ({} decisions + {} slacks), {} constraints",
        problem.n_vars(),
        5,
        problem.n_vars() - 5,
        problem.n_constraints()
    );
    println!(
        "feasible selections: {}",
        enumerate_feasible(&problem).len()
    );

    let outcome = Rasengan::new(
        RasenganConfig::default()
            .with_seed(3)
            .with_max_iterations(150),
    )
    .solve(&problem)
    .expect("knapsack solves");

    let picked: Vec<usize> = (0..5).filter(|&i| outcome.best.bits[i] == 1).collect();
    println!("\npicked items: {picked:?}");
    println!(
        "total value: {} (items {:?})",
        outcome.best.value,
        picked.iter().map(|&i| values[i]).collect::<Vec<_>>()
    );
    let (_, best_possible) = optimum(&problem);
    println!("classical optimum: {best_possible}");
    println!("ARG: {:.4}", outcome.arg);

    // The dependency must hold.
    assert!(
        outcome.best.bits[4] <= outcome.best.bits[0],
        "item 4 picked without its dependency"
    );
    assert!(picked.len() <= 2);
}
