//! The full error-mitigation stack: purification (paper §4.3) composed
//! with M3-style readout mitigation and zero-noise extrapolation.
//!
//! Solves K1 under a deliberately harsh noise model and shows what each
//! layer contributes.
//!
//! ```bash
//! cargo run --example error_mitigation_stack --release
//! ```

use rasengan::core::{solve_with_zne, Rasengan, RasenganConfig};
use rasengan::problems::optimum;
use rasengan::problems::registry::{benchmark, BenchmarkId};
use rasengan::qsim::NoiseModel;

fn main() {
    let problem = benchmark(BenchmarkId::parse("K1").unwrap());
    let (_, e_opt) = optimum(&problem);
    println!(
        "{}: {} qubits, optimum {e_opt}",
        problem.name(),
        problem.n_vars()
    );

    let noise = NoiseModel::ibm_like(1e-3, 8e-3, 0.03).with_amplitude_damping(5e-4);
    println!(
        "noise: 1Q {:.2}% / 2Q {:.2}% / readout {:.0}% / damping {:.2}%\n",
        noise.p1 * 100.0,
        noise.p2 * 100.0,
        noise.readout * 100.0,
        noise.amplitude_damping * 100.0
    );

    let base = RasenganConfig::default()
        .with_seed(3)
        .with_noise(noise)
        .with_shots(1024)
        .with_max_iterations(40);

    // Layer 1: purification only (the paper's own mitigation).
    let purified = Rasengan::new(base.clone()).solve(&problem).expect("solves");
    println!(
        "purification only      : ARG {:.3} (raw in-constraints {:.1}%)",
        purified.arg,
        purified.raw_in_constraints_rate * 100.0
    );

    // Layer 2: + readout mitigation.
    let mitigated = Rasengan::new(base.clone().with_readout_mitigation())
        .solve(&problem)
        .expect("solves");
    println!(
        "+ readout mitigation   : ARG {:.3} (raw in-constraints {:.1}%)",
        mitigated.arg,
        mitigated.raw_in_constraints_rate * 100.0
    );

    // Layer 3: + zero-noise extrapolation over scales 1×, 2×, 3×.
    let zne = solve_with_zne(&problem, &base.with_readout_mitigation(), &[1.0, 2.0, 3.0])
        .expect("ZNE solves");
    println!(
        "+ ZNE (1×, 2×, 3×)     : ARG {:.3} (expectations {:?} → {:.3})",
        zne.arg,
        zne.expectations
            .iter()
            .map(|e| (e * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        zne.extrapolated
    );

    println!(
        "\nnote: ZNE extrapolates the *expectation*, and a linear fit can\n\
         overshoot past the optimum on strongly curved noise responses —\n\
         compare its ARG against the direct runs before adopting it."
    );
    assert!(purified.best.feasible && mitigated.best.feasible);
}
