//! Register allocation as graph coloring: a look inside the transition
//! chain.
//!
//! WCET-aware register allocation (one of the paper's motivating
//! citations) is graph coloring: program variables are vertices, edges
//! join variables that are live simultaneously, and colors are CPU
//! registers. This example builds the interference graph, walks through
//! Rasengan's compilation pipeline (basis → simplification → pruning →
//! segmentation), and solves it.
//!
//! ```bash
//! cargo run --example register_allocation --release
//! ```

use rasengan::core::{Rasengan, RasenganConfig};
use rasengan::problems::enumerate_feasible;
use rasengan::problems::gcp::GraphColoring;

fn main() {
    // Four live ranges; a and b interfere, b and c, c and d — a path
    // graph, 2-colorable with registers r0/r1.
    let gcp = GraphColoring {
        vertices: 4,
        colors: 2,
        edges: vec![(0, 1), (1, 2), (2, 3)],
    };
    println!("interference graph: 4 variables, edges {:?}", gcp.edges);
    let problem = gcp.clone().into_problem();
    println!(
        "encoded: {} qubits, {} constraints, {} proper colorings",
        problem.n_vars(),
        problem.n_constraints(),
        enumerate_feasible(&problem).len()
    );

    // Peek inside the compilation pipeline before solving.
    let solver = Rasengan::new(
        RasenganConfig::default()
            .with_seed(5)
            .with_max_iterations(120),
    );
    let prepared = solver.prepare(&problem).expect("GCP prepares");
    println!("\ncompilation pipeline:");
    println!("  m = {} homogeneous basis vectors", prepared.stats.m_basis);
    println!(
        "  simplification: {} → {} total nonzeros",
        prepared.stats.simplify_cost.0, prepared.stats.simplify_cost.1
    );
    println!(
        "  chain: {} scheduled → {} kept (pruning removed {})",
        prepared.stats.raw_ops, prepared.stats.kept_ops, prepared.chain.pruned
    );
    for (i, op) in prepared.chain.ops.iter().enumerate() {
        println!("    τ_{i}: u = {:?} ({} CX)", op.u(), op.cx_cost());
    }
    println!(
        "  segments: {} (budget-limited to ≤ {} CX each)",
        prepared.stats.n_segments,
        solver.config().segment_depth_budget
    );

    let outcome = solver.solve(&problem).expect("GCP solves");
    println!("\nallocation (variable → register):");
    for v in 0..4 {
        for c in 0..2 {
            if outcome.best.bits[gcp.x(v, c)] == 1 {
                println!("  v{v} → r{c}");
            }
        }
    }
    println!("objective {} / ARG {:.4}", outcome.best.value, outcome.arg);

    // Verify the coloring is proper.
    for &(a, b) in &gcp.edges {
        for c in 0..2 {
            assert!(
                outcome.best.bits[gcp.x(a, c)] + outcome.best.bits[gcp.x(b, c)] <= 1,
                "interfering variables v{a}, v{b} share register r{c}"
            );
        }
    }
    println!("coloring verified proper ✓");
}
