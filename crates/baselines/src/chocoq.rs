//! Choco-Q baseline: commute-Hamiltonian-based QAOA
//! [Xiang et al., HPCA'25].
//!
//! The mixer is built from Hamiltonians that commute with the constraint
//! operators — here the same transition Hamiltonians Rasengan uses,
//! applied as a first-order Trotter product `Π_k τ(u_k, β)` — and the
//! initial state is one feasible solution, so the noise-free output
//! stays inside the feasible space (paper Fig. 1e). The objective layer
//! is the diagonal evolution `e^{-iγ f(x)}`.
//!
//! Differences from Rasengan that the evaluation measures: every mixer
//! layer replays *all* `m` transition operators (depth `Σ 34k` per
//! layer, the 1000+-deep circuits of Table 2), there are only `2L`
//! parameters, and there is no pruning, segmentation, or purification.

use crate::common::{BaselineConfig, BaselineOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasengan_core::hamiltonian::{problem_basis, TransitionHamiltonian};
use rasengan_core::latency::Latency;
use rasengan_core::metrics::{
    arg, best_solution, expectation, in_constraints_rate, penalty_lambda,
};
use rasengan_core::segment::SegmentProgram;
use rasengan_math::basis::TernaryBasisError;
use rasengan_optim::{Cobyla, Optimizer};
use rasengan_problems::{optimum, Problem, Sense};
use rasengan_qsim::noise::{
    apply_gate_noise_sparse, apply_gate_noise_sparse_fused, apply_readout_error,
};
use rasengan_qsim::sparse::{bits_from_label, label_from_bits};
use rasengan_qsim::{Complex, Label, NoiseModel, SparseState};
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// The Choco-Q solver.
///
/// # Example
///
/// ```no_run
/// use rasengan_baselines::{BaselineConfig, ChocoQ};
/// use rasengan_problems::registry::{benchmark, BenchmarkId};
///
/// let problem = benchmark(BenchmarkId::parse("K1").unwrap());
/// let outcome = ChocoQ::new(BaselineConfig::default().with_max_iterations(80))
///     .solve(&problem)
///     .unwrap();
/// println!("Choco-Q ARG = {}", outcome.arg);
/// ```
#[derive(Clone, Debug)]
pub struct ChocoQ {
    config: BaselineConfig,
}

impl ChocoQ {
    /// Creates a Choco-Q solver.
    pub fn new(config: BaselineConfig) -> Self {
        ChocoQ { config }
    }

    /// Per-layer CX cost: the Trotterized mixer (`Σ 34k`) plus the
    /// objective's `Rzz` terms (2 CX each).
    pub fn layer_cx_cost(problem: &Problem, hams: &[TransitionHamiltonian]) -> usize {
        let mixer: usize = hams.iter().map(|h| h.cx_cost()).sum();
        let objective = 2 * problem.objective().quadratic.len();
        mixer + objective
    }

    /// Solves the problem.
    ///
    /// # Errors
    ///
    /// Propagates [`TernaryBasisError`] if no commuting mixer basis
    /// exists.
    pub fn solve(&self, problem: &Problem) -> Result<BaselineOutcome, TernaryBasisError> {
        let cfg = &self.config;
        let wall = Instant::now();
        let basis = problem_basis(problem)?;
        let hams: Vec<TransitionHamiltonian> =
            basis.into_iter().map(TransitionHamiltonian::new).collect();
        let lambda = penalty_lambda(problem);
        let sense = problem.sense();
        let n_params = 2 * cfg.layers;

        let seed_bits: Vec<i64> = problem
            .initial_feasible()
            .map(<[i64]>::to_vec)
            .or_else(|| {
                rasengan_math::find_binary_solution(problem.constraints(), problem.rhs()).ok()
            })
            .expect("benchmark problems carry feasible seeds");
        let seed_label = label_from_bits(&seed_bits);

        let layer_cx = Self::layer_cx_cost(problem, &hams);
        let total_cx = layer_cx * cfg.layers;
        // Latency: full-depth circuit, shots repetitions per evaluation.
        let shot_s = cfg.device.reset_time
            + total_cx as f64 * cfg.device.gate_time_2q
            + cfg.device.readout_time;
        let quantum_per_eval = shot_s * cfg.shots.unwrap_or(1024) as f64;
        let mut quantum_s = 0.0f64;
        let mut eval_counter = 0u64;

        let layers = cfg.layers;
        let run = |params: &[f64], rng: &mut StdRng| -> BTreeMap<Label, f64> {
            run_chocoq(problem, &hams, seed_label, layers, params, cfg, rng)
        };

        let mut objective = |params: &[f64]| -> f64 {
            eval_counter += 1;
            let mut rng =
                StdRng::seed_from_u64(cfg.seed ^ eval_counter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let dist = run(params, &mut rng);
            quantum_s += quantum_per_eval;
            let e = expectation(problem, &dist, lambda);
            match sense {
                Sense::Minimize => e,
                Sense::Maximize => -e,
            }
        };

        let x0 = vec![0.2; n_params];
        let result = Cobyla::new(cfg.max_iterations).minimize(&mut objective, &x0);

        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF1AA_F1AA);
        let dist = run(&result.best_params, &mut rng);
        quantum_s += quantum_per_eval;

        let e_real = expectation(problem, &dist, lambda);
        let (_, e_opt) = optimum(problem);
        Ok(BaselineOutcome {
            best: best_solution(problem, &dist),
            expectation: e_real,
            arg: arg(e_opt, e_real),
            in_constraints_rate: in_constraints_rate(problem, &dist),
            distribution: dist,
            circuit_depth: total_cx,
            n_params,
            latency: Latency {
                quantum_s,
                classical_s: wall.elapsed().as_secs_f64(),
                ..Latency::default()
            },
            history: result.history,
            evaluations: result.evaluations,
        })
    }
}

/// One evaluation's compiled execution context: the Trotterized mixer
/// as a [`SegmentProgram`] (precomputed masks, supports, CX costs),
/// per-layer mixing constants evaluated once, and memo caches reusing
/// objective evaluations and `cis` phases across all trajectories of
/// the evaluation. Every floating-point value it feeds the state is
/// identical to what the gate-by-gate path computes, so fused and
/// unfused runs are bit-identical per shot.
struct FusedEval<'a> {
    problem: &'a Problem,
    n: usize,
    program: SegmentProgram,
    /// `(γ, cos β, −i·sin β)` per layer.
    layers: Vec<(f64, Complex, Complex)>,
    /// Qubits of the state-preparation X column.
    prep: Vec<usize>,
    /// `f(label)` memo, shared by all layers and shots.
    obj_cache: HashMap<Label, f64>,
    /// `e^{-iγ·f(label)}` memo per layer (γ differs per layer).
    phase_cache: Vec<HashMap<Label, Complex>>,
}

impl<'a> FusedEval<'a> {
    fn new(
        problem: &'a Problem,
        hams: &[TransitionHamiltonian],
        seed_label: Label,
        params: &[f64],
    ) -> Self {
        let n = problem.n_vars();
        let layers: Vec<(f64, Complex, Complex)> = params
            .chunks(2)
            .map(|layer| {
                let (gamma, beta) = (layer[0], layer[1]);
                (
                    gamma,
                    Complex::from(beta.cos()),
                    Complex::new(0.0, -beta.sin()),
                )
            })
            .collect();
        FusedEval {
            problem,
            n,
            program: SegmentProgram::compile(hams),
            phase_cache: vec![HashMap::new(); layers.len()],
            layers,
            prep: (0..n).filter(|&q| seed_label >> q & 1 == 1).collect(),
            obj_cache: HashMap::new(),
        }
    }

    /// The objective layer `e^{-iγ f(x)}`, with both the objective
    /// polynomial and the `cis` evaluation memoized per label.
    fn apply_objective_layer(&mut self, state: &mut SparseState, layer: usize) {
        let (gamma, _, _) = self.layers[layer];
        let (problem, n) = (self.problem, self.n);
        let obj_cache = &mut self.obj_cache;
        let phase_cache = &mut self.phase_cache[layer];
        state.apply_diagonal_phase_with(|l| {
            *phase_cache.entry(l).or_insert_with(|| {
                let f = *obj_cache
                    .entry(l)
                    .or_insert_with(|| problem.evaluate(&bits_from_label(l, n)));
                Complex::cis(-gamma * f)
            })
        });
    }

    fn evolve_exact(&mut self, state: &mut SparseState) {
        for layer in 0..self.layers.len() {
            self.apply_objective_layer(state, layer);
            let (_, cos, misin) = self.layers[layer];
            for ct in &self.program.ops {
                state.apply_transition_with(&ct.transition, cos, misin);
            }
        }
    }

    fn evolve_noisy(&mut self, state: &mut SparseState, noise: &NoiseModel, rng: &mut StdRng) {
        apply_gate_noise_sparse_fused(state, &self.prep, noise.p1, noise, rng);
        let noise_free = NoiseModel::noise_free();
        for layer in 0..self.layers.len() {
            self.apply_objective_layer(state, layer);
            // Objective Rzz noise: 2 CX per quadratic term.
            for &(a, b, _) in &self.problem.objective().quadratic {
                for q in [a, b] {
                    if rng.gen::<f64>() < noise.p2 {
                        apply_gate_noise_sparse(state, &[q], 1.0, &noise_free, rng);
                    }
                }
            }
            let (_, cos, misin) = self.layers[layer];
            for ct in &self.program.ops {
                state.apply_transition_with(&ct.transition, cos, misin);
                for _ in 0..ct.cx_cost {
                    if rng.gen::<f64>() < noise.p2 {
                        let q = ct.support[rng.gen_range(0..ct.support.len())];
                        apply_gate_noise_sparse(state, &[q], 1.0, &noise_free, rng);
                    }
                }
            }
        }
    }
}

/// Executes the Choco-Q circuit once (exact or trajectory-sampled).
///
/// Public as the fusion benchmark's sparse-arm hook: it is the hot loop
/// whose compiled path (`cfg.fuse`) the `BENCH_fusion.json` numbers
/// compare against the legacy gate-by-gate path.
pub fn run_chocoq(
    problem: &Problem,
    hams: &[TransitionHamiltonian],
    seed_label: Label,
    _layers: usize,
    params: &[f64],
    cfg: &BaselineConfig,
    rng: &mut StdRng,
) -> BTreeMap<Label, f64> {
    let n = problem.n_vars();
    let noisy = cfg.noise.is_noisy();
    let shots = match (cfg.shots, noisy) {
        (Some(s), _) => Some(s),
        (None, true) => Some(1024),
        (None, false) => None,
    };

    let mut fused = cfg
        .fuse
        .then(|| FusedEval::new(problem, hams, seed_label, params));

    let evolve_exact = |state: &mut SparseState| {
        for layer in params.chunks(2) {
            let (gamma, beta) = (layer[0], layer[1]);
            state.apply_diagonal_phase(|l| {
                let bits = bits_from_label(l, n);
                -gamma * problem.evaluate(&bits)
            });
            for h in hams {
                h.apply(state, beta);
            }
        }
    };

    match shots {
        None => {
            let mut state = SparseState::basis_state(n, seed_label);
            match &mut fused {
                Some(ctx) => ctx.evolve_exact(&mut state),
                None => evolve_exact(&mut state),
            }
            state.distribution()
        }
        Some(budget) => {
            let mut counts: BTreeMap<Label, usize> = BTreeMap::new();
            for _ in 0..budget {
                let mut state = SparseState::basis_state(n, seed_label);
                match (&mut fused, noisy) {
                    (Some(ctx), true) => ctx.evolve_noisy(&mut state, &cfg.noise, rng),
                    (Some(ctx), false) => ctx.evolve_exact(&mut state),
                    (None, true) => {
                        let prep: Vec<usize> =
                            (0..n).filter(|&q| seed_label >> q & 1 == 1).collect();
                        apply_gate_noise_sparse(&mut state, &prep, cfg.noise.p1, &cfg.noise, rng);
                        for layer in params.chunks(2) {
                            let (gamma, beta) = (layer[0], layer[1]);
                            state.apply_diagonal_phase(|l| {
                                let bits = bits_from_label(l, n);
                                -gamma * problem.evaluate(&bits)
                            });
                            // Objective Rzz noise: 2 CX per quadratic term.
                            for &(a, b, _) in &problem.objective().quadratic {
                                for q in [a, b] {
                                    if rng.gen::<f64>() < cfg.noise.p2 {
                                        apply_gate_noise_sparse(
                                            &mut state,
                                            &[q],
                                            1.0,
                                            &NoiseModel::noise_free(),
                                            rng,
                                        );
                                    }
                                }
                            }
                            for h in hams {
                                h.apply(&mut state, beta);
                                let support = h.support();
                                for _ in 0..h.cx_cost() {
                                    if rng.gen::<f64>() < cfg.noise.p2 {
                                        let q = support[rng.gen_range(0..support.len())];
                                        apply_gate_noise_sparse(
                                            &mut state,
                                            &[q],
                                            1.0,
                                            &NoiseModel::noise_free(),
                                            rng,
                                        );
                                    }
                                }
                            }
                        }
                    }
                    (None, false) => evolve_exact(&mut state),
                }
                let label = state.sample_one(rng);
                let label = apply_readout_error(label, n, cfg.noise.readout, rng);
                *counts.entry(label).or_insert(0) += 1;
            }
            let total: usize = counts.values().sum();
            counts
                .into_iter()
                .map(|(l, c)| (l, c as f64 / total as f64))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasengan_problems::registry::{benchmark, BenchmarkId};

    fn j1() -> Problem {
        benchmark(BenchmarkId::parse("J1").unwrap())
    }

    #[test]
    fn noise_free_output_stays_feasible() {
        let out = ChocoQ::new(
            BaselineConfig::default()
                .with_max_iterations(40)
                .with_layers(2),
        )
        .solve(&j1())
        .unwrap();
        assert!(
            (out.in_constraints_rate - 1.0).abs() < 1e-9,
            "commuting mixer must preserve feasibility, got {}",
            out.in_constraints_rate
        );
        assert!(out.best.feasible);
        assert!(out.arg.is_finite());
    }

    #[test]
    fn depth_scales_with_layers() {
        let p = j1();
        let a = ChocoQ::new(
            BaselineConfig::default()
                .with_layers(1)
                .with_max_iterations(5),
        )
        .solve(&p)
        .unwrap();
        let b = ChocoQ::new(
            BaselineConfig::default()
                .with_layers(3)
                .with_max_iterations(5),
        )
        .solve(&p)
        .unwrap();
        assert_eq!(b.circuit_depth, 3 * a.circuit_depth);
        assert_eq!(a.n_params, 2);
        assert_eq!(b.n_params, 6);
    }

    #[test]
    fn noisy_execution_can_leave_feasible_space() {
        let cfg = BaselineConfig::default()
            .with_shots(128)
            .with_noise(NoiseModel::depolarizing(5e-3))
            .with_max_iterations(5)
            .with_layers(2);
        let out = ChocoQ::new(cfg).solve(&j1()).unwrap();
        // With a deep unsegmented circuit and no purification, noise
        // leaks probability outside the constraints (the hardware
        // failure the paper reports: 6.3% in-constraints on Kyiv).
        assert!(out.in_constraints_rate < 1.0, "noise had no effect");
    }

    #[test]
    fn fused_solve_matches_unfused_bitwise() {
        // The compiled path (SegmentProgram + memoized phases) must not
        // perturb a single RNG draw or amplitude: noisy solves agree
        // byte for byte with the legacy gate-by-gate path.
        let base = BaselineConfig::default()
            .with_shots(96)
            .with_noise(NoiseModel::ibm_like(1e-3, 5e-3, 0.01))
            .with_max_iterations(6)
            .with_layers(2)
            .with_seed(13);
        let fused = ChocoQ::new(base.clone()).solve(&j1()).unwrap();
        let unfused = ChocoQ::new(base.without_fusion()).solve(&j1()).unwrap();
        assert_eq!(fused.distribution, unfused.distribution);
        assert_eq!(fused.expectation, unfused.expectation);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let cfg = BaselineConfig::default()
            .with_shots(64)
            .with_max_iterations(10)
            .with_seed(4);
        let a = ChocoQ::new(cfg.clone()).solve(&j1()).unwrap();
        let b = ChocoQ::new(cfg).solve(&j1()).unwrap();
        assert_eq!(a.expectation, b.expectation);
    }
}
