//! Grover adaptive search (GAS) baseline
//! [Gilliam, Woerner & Gonciulea, Quantum 2021].
//!
//! The paper's related-work section (§6) discusses GAS as the other
//! universal approach to constrained binary optimization: Grover search
//! with a selection oracle marking feasible states whose objective beats
//! the incumbent, iterated with shrinking thresholds. Its weaknesses —
//! deep arithmetic oracles and many invalid samples — are exactly what
//! the comparison is meant to show.
//!
//! Implementation notes: the oracle and diffusion are applied as exact
//! operators on the dense simulator (a real deployment synthesizes the
//! oracle from arithmetic comparators; we charge that cost through a
//! documented CX model instead). The adaptive schedule follows
//! Boyer–Brassard–Høyer–Tapp: the rotation count is drawn uniformly
//! from `[0, m)` with `m ← min(λm, √N)` on failure, `λ = 8/7`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasengan_core::latency::Latency;
use rasengan_core::metrics::{arg, in_constraints_rate, penalty_lambda, Solution};
use rasengan_problems::{optimum, Problem, Sense};
use rasengan_qsim::sparse::bits_from_label;
use rasengan_qsim::DenseState;
use std::collections::BTreeMap;
use std::time::Instant;

use crate::common::{BaselineConfig, BaselineOutcome};

/// The Grover adaptive search solver.
///
/// # Example
///
/// ```no_run
/// use rasengan_baselines::{BaselineConfig, GroverAdaptiveSearch};
/// use rasengan_problems::registry::{benchmark, BenchmarkId};
///
/// let problem = benchmark(BenchmarkId::parse("J1").unwrap());
/// let out = GroverAdaptiveSearch::new(BaselineConfig::default()).solve(&problem);
/// println!("GAS ARG = {}", out.arg);
/// ```
#[derive(Clone, Debug)]
pub struct GroverAdaptiveSearch {
    config: BaselineConfig,
    max_oracle_calls: usize,
}

impl GroverAdaptiveSearch {
    /// Creates a GAS solver. `config.max_iterations` bounds the number
    /// of measure-and-update rounds.
    pub fn new(config: BaselineConfig) -> Self {
        GroverAdaptiveSearch {
            config,
            max_oracle_calls: 4096,
        }
    }

    /// Caps the total oracle-call budget (default 4096).
    pub fn with_max_oracle_calls(mut self, calls: usize) -> Self {
        self.max_oracle_calls = calls;
        self
    }

    /// CX-cost model of one oracle call: an arithmetic comparator over
    /// the objective (`~20n` for the adder tree plus `8` per quadratic
    /// term) and the constraint checks (`6` per nonzero constraint
    /// coefficient).
    pub fn oracle_cx_cost(problem: &Problem) -> usize {
        20 * problem.n_vars()
            + 8 * problem.objective().quadratic.len()
            + 6 * problem.constraints().nnz()
    }

    /// CX-cost model of one diffusion operator (`MCZ` over `n` qubits
    /// under the linear-cost construction).
    pub fn diffusion_cx_cost(problem: &Problem) -> usize {
        16 * problem.n_vars()
    }

    /// Solves the problem; see [`BaselineOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if the problem exceeds the dense simulator's width.
    pub fn solve(&self, problem: &Problem) -> BaselineOutcome {
        let cfg = &self.config;
        let wall = Instant::now();
        let n = problem.n_vars();
        let sense = problem.sense();
        let lambda = penalty_lambda(problem);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Incumbent: the constructive feasible solution, if present.
        let mut best_bits: Option<Vec<i64>> = problem.initial_feasible().map(<[i64]>::to_vec);
        let mut best_val = best_bits
            .as_ref()
            .map(|x| problem.evaluate(x))
            .unwrap_or(sense.worst());

        let sqrt_n = ((1u64 << n) as f64).sqrt();
        let mut m = 1.0f64;
        let mut oracle_calls = 0usize;
        let mut rounds = 0usize;
        let mut history = Vec::new();
        let mut last_counts: BTreeMap<u128, usize> = BTreeMap::new();

        while rounds < cfg.max_iterations && oracle_calls < self.max_oracle_calls {
            rounds += 1;
            let r = rng.gen_range(0..m.ceil() as usize + 1);
            let threshold = best_val;

            // Prepare uniform superposition and run r Grover rotations
            // against the "feasible and better than the incumbent"
            // oracle.
            let mut state = DenseState::zero_state(n);
            for q in 0..n {
                state.apply(&rasengan_qsim::Gate::H(q));
            }
            let marked = |label: u64| {
                let bits = bits_from_label(label as u128, n);
                if !problem.is_feasible(&bits) {
                    return false;
                }
                let v = problem.evaluate(&bits);
                match best_bits {
                    // Strictly better than the incumbent.
                    Some(_) => sense.is_better(v, threshold),
                    None => true,
                }
            };
            for _ in 0..r {
                state.apply_phase_flip(marked);
                state.apply_diffusion();
                oracle_calls += 1;
            }

            // One measurement per round (GAS is sample-driven).
            let shot = state.sample(1, &mut rng);
            let (&label, _) = shot.iter().next().expect("one sample");
            *last_counts.entry(label as u128).or_insert(0) += 1;
            let bits = bits_from_label(label as u128, n);
            if problem.is_feasible(&bits) {
                let v = problem.evaluate(&bits);
                if best_bits.is_none() || sense.is_better(v, best_val) {
                    best_val = v;
                    best_bits = Some(bits);
                    m = 1.0; // reset the schedule after an improvement
                } else {
                    m = (m * 8.0 / 7.0).min(sqrt_n);
                }
            } else {
                m = (m * 8.0 / 7.0).min(sqrt_n);
            }
            history.push(match sense {
                Sense::Minimize => best_val,
                Sense::Maximize => -best_val,
            });
        }

        let best_bits = best_bits.expect("GAS found at least the seed solution");
        let dist: BTreeMap<u128, f64> = {
            let total: usize = last_counts.values().sum();
            last_counts
                .iter()
                .map(|(&l, &c)| (l, c as f64 / total.max(1) as f64))
                .collect()
        };

        let (_, e_opt) = optimum(problem);
        let depth_per_iteration = Self::oracle_cx_cost(problem) + Self::diffusion_cx_cost(problem);
        let quantum_s = oracle_calls as f64
            * (cfg.device.reset_time
                + depth_per_iteration as f64 * cfg.device.gate_time_2q
                + cfg.device.readout_time);

        BaselineOutcome {
            best: Solution {
                value: problem.evaluate(&best_bits),
                feasible: problem.is_feasible(&best_bits),
                bits: best_bits,
            },
            expectation: best_val,
            arg: arg(e_opt, best_val),
            in_constraints_rate: in_constraints_rate(problem, &dist),
            distribution: dist,
            circuit_depth: depth_per_iteration,
            n_params: 0, // GAS is not variational
            latency: Latency {
                quantum_s,
                classical_s: wall.elapsed().as_secs_f64(),
                ..Latency::default()
            },
            history,
            evaluations: rounds,
        }
        .with_lambda_note(lambda)
    }
}

impl BaselineOutcome {
    /// No-op hook kept for symmetry with the penalty-based baselines
    /// (GAS never uses a penalty; documenting that explicitly).
    fn with_lambda_note(self, _lambda: f64) -> Self {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasengan_problems::registry::{benchmark, BenchmarkId};

    fn j1() -> Problem {
        benchmark(BenchmarkId::parse("J1").unwrap())
    }

    #[test]
    fn finds_optimum_on_small_problem() {
        let out = GroverAdaptiveSearch::new(
            BaselineConfig::default()
                .with_seed(3)
                .with_max_iterations(60),
        )
        .solve(&j1());
        let (_, e_opt) = optimum(&j1());
        assert!(out.best.feasible);
        assert!(
            (out.best.value - e_opt).abs() < 1e-9,
            "GAS best {} vs optimum {e_opt}",
            out.best.value
        );
        assert_eq!(out.arg, 0.0);
    }

    #[test]
    fn incumbent_never_regresses() {
        let out = GroverAdaptiveSearch::new(
            BaselineConfig::default()
                .with_seed(5)
                .with_max_iterations(40),
        )
        .solve(&j1());
        for w in out.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "incumbent regressed: {:?}", w);
        }
    }

    #[test]
    fn oracle_budget_caps_work() {
        let out = GroverAdaptiveSearch::new(
            BaselineConfig::default()
                .with_seed(1)
                .with_max_iterations(1000),
        )
        .with_max_oracle_calls(10)
        .solve(&j1());
        assert!(out.evaluations < 1000, "budget must stop the loop early");
    }

    #[test]
    fn cost_model_scales_with_problem() {
        let small = GroverAdaptiveSearch::oracle_cx_cost(&j1());
        let big =
            GroverAdaptiveSearch::oracle_cx_cost(&benchmark(BenchmarkId::parse("J3").unwrap()));
        assert!(big > small);
    }

    #[test]
    fn maximization_problems_supported() {
        use rasengan_problems::portfolio::Portfolio;
        let p = Portfolio::generate(2, 2, 1, 7).into_problem();
        let out = GroverAdaptiveSearch::new(
            BaselineConfig::default()
                .with_seed(2)
                .with_max_iterations(50),
        )
        .solve(&p);
        let (_, e_opt) = optimum(&p);
        assert!((out.best.value - e_opt).abs() < 1e-9);
    }
}
