//! Hardware-efficient ansatz (HEA) baseline [Kandala et al., Nature'17].
//!
//! Repeated layers of native single-qubit rotations (`Ry`, `Rz`) and a
//! linear CX entangling ladder (paper Fig. 1c), trained against the
//! penalty-charged objective. Parameter count is `2n(L+1)` — the
//! order-of-magnitude-more-parameters row of Table 2.

use crate::common::{run_dense, train_and_report, BaselineConfig, BaselineOutcome};
use rasengan_problems::Problem;
use rasengan_qsim::Circuit;

/// The HEA solver.
///
/// # Example
///
/// ```no_run
/// use rasengan_baselines::{BaselineConfig, Hea};
/// use rasengan_problems::registry::{benchmark, BenchmarkId};
///
/// let problem = benchmark(BenchmarkId::parse("F1").unwrap());
/// let outcome = Hea::new(BaselineConfig::default().with_max_iterations(50))
///     .solve(&problem);
/// println!("HEA ARG = {}", outcome.arg);
/// ```
#[derive(Clone, Debug)]
pub struct Hea {
    config: BaselineConfig,
}

impl Hea {
    /// Creates an HEA solver.
    pub fn new(config: BaselineConfig) -> Self {
        Hea { config }
    }

    /// Number of variational parameters for `n` qubits and `layers`
    /// repetitions: an initial rotation block plus one per layer.
    pub fn n_params(n: usize, layers: usize) -> usize {
        2 * n * (layers + 1)
    }

    /// Builds the ansatz circuit: rotation blocks interleaved with CX
    /// ladders.
    pub fn circuit(n: usize, layers: usize, params: &[f64]) -> Circuit {
        assert_eq!(
            params.len(),
            Self::n_params(n, layers),
            "bad parameter count"
        );
        let mut c = Circuit::new(n);
        let mut idx = 0;
        let rotation_block = |c: &mut Circuit, idx: &mut usize| {
            for q in 0..n {
                c.ry(q, params[*idx]);
                c.rz(q, params[*idx + 1]);
                *idx += 2;
            }
        };
        rotation_block(&mut c, &mut idx);
        for _ in 0..layers {
            for q in 0..n.saturating_sub(1) {
                c.cx(q, q + 1);
            }
            rotation_block(&mut c, &mut idx);
        }
        c
    }

    /// Solves the problem; see [`BaselineOutcome`].
    pub fn solve(&self, problem: &Problem) -> BaselineOutcome {
        let cfg = &self.config;
        let n = problem.n_vars();
        let n_params = Self::n_params(n, cfg.layers);

        let probe = Self::circuit(n, cfg.layers, &vec![0.1; n_params]);
        let depth = probe.two_qubit_depth();
        let quantum_per_eval = cfg.device.shot_duration(&probe) * cfg.shots.unwrap_or(1024) as f64;

        let layers = cfg.layers;
        train_and_report(
            problem,
            cfg,
            n_params,
            vec![0.1; n_params],
            depth,
            quantum_per_eval,
            move |params, rng| {
                let c = Self::circuit(n, layers, params);
                run_dense(&c, cfg, rng)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasengan_math::IntMatrix;
    use rasengan_problems::{Objective, Sense};

    fn tiny() -> Problem {
        Problem::new(
            "tiny",
            IntMatrix::from_rows(&[vec![1, 1]]),
            vec![1],
            Objective::linear(vec![1.0, 3.0]),
            Sense::Minimize,
        )
        .unwrap()
    }

    #[test]
    fn parameter_count_formula() {
        assert_eq!(Hea::n_params(6, 5), 72);
        assert_eq!(Hea::n_params(2, 1), 8);
    }

    #[test]
    fn circuit_structure() {
        let c = Hea::circuit(3, 2, &vec![0.1; Hea::n_params(3, 2)]);
        // 3 rotation blocks of 6 gates + 2 ladders of 2 CX.
        assert_eq!(c.len(), 18 + 4);
        assert_eq!(c.two_qubit_gate_count(), 4);
    }

    #[test]
    #[should_panic(expected = "bad parameter count")]
    fn wrong_parameter_count_panics() {
        Hea::circuit(3, 2, &[0.1, 0.2]);
    }

    #[test]
    fn solve_returns_valid_metrics() {
        let out = Hea::new(
            BaselineConfig::default()
                .with_max_iterations(40)
                .with_layers(1),
        )
        .solve(&tiny());
        assert!(out.arg.is_finite());
        assert!(out.in_constraints_rate >= 0.0 && out.in_constraints_rate <= 1.0);
        assert_eq!(out.n_params, 8);
        let total: f64 = out.distribution.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
