//! Baseline VQA solvers the paper compares Rasengan against (§5.1):
//!
//! * [`Hea`] — hardware-efficient ansatz (Kandala et al., Nature'17)
//!   with a penalty-charged cost function.
//! * [`PQaoa`] — penalty-term QAOA (Verma & Lewis 2022), optionally
//!   with FrozenQubits-style hotspot freezing (ASPLOS'23) and
//!   Red-QAOA-style parameter seeding (ASPLOS'24).
//! * [`ChocoQ`] — commute-Hamiltonian QAOA (Xiang et al., HPCA'25), the
//!   strongest prior work.
//!
//! All three report through [`BaselineOutcome`], which mirrors the
//! metrics of `rasengan_core::Outcome` so comparison harnesses treat the
//! four algorithms uniformly.
//!
//! # Example
//!
//! ```no_run
//! use rasengan_baselines::{BaselineConfig, ChocoQ, Hea, PQaoa};
//! use rasengan_problems::registry::{benchmark, BenchmarkId};
//!
//! let problem = benchmark(BenchmarkId::parse("F1").unwrap());
//! let cfg = BaselineConfig::default().with_max_iterations(100);
//!
//! let hea = Hea::new(cfg.clone()).solve(&problem);
//! let pqaoa = PQaoa::new(cfg.clone()).solve(&problem);
//! let chocoq = ChocoQ::new(cfg).solve(&problem).unwrap();
//! println!("ARG: HEA {} / P-QAOA {} / Choco-Q {}", hea.arg, pqaoa.arg, chocoq.arg);
//! ```

pub mod chocoq;
pub mod common;
pub mod gas;
pub mod hea;
pub mod ising;
pub mod pqaoa;

pub use chocoq::ChocoQ;
pub use common::{BaselineConfig, BaselineOptimizer, BaselineOutcome};
pub use gas::GroverAdaptiveSearch;
pub use hea::Hea;
pub use ising::{penalized_qubo, qubo_to_ising, Ising, Qubo};
pub use pqaoa::PQaoa;
