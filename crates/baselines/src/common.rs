//! Shared configuration, outcome type, and execution helpers for the
//! three baselines (HEA, P-QAOA, Choco-Q).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rasengan_core::latency::Latency;
use rasengan_core::metrics::{
    arg, best_solution, expectation, in_constraints_rate, penalty_lambda, Solution,
};
use rasengan_problems::{optimum, Problem, Sense};
use rasengan_qsim::exec::{DenseTrajectoryRunner, Program};
use rasengan_qsim::noise::{apply_readout_error, run_dense_trajectory};
use rasengan_qsim::{Circuit, DenseState, Device, Label, NoiseModel};
use std::collections::BTreeMap;
use std::time::Instant;

/// Which classical optimizer trains a baseline's parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineOptimizer {
    /// COBYLA-style trust region (paper default). Builds an
    /// `n_params + 1`-point simplex up front — expensive for HEA's wide
    /// parameter vectors.
    Cobyla,
    /// SPSA: 3 evaluations per iteration regardless of dimension.
    Spsa,
}

/// Configuration shared by all baseline solvers.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// RNG seed.
    pub seed: u64,
    /// Circuit repetitions / QAOA layers (paper: 5).
    pub layers: usize,
    /// Optimizer iteration budget (paper: 300 noise-free, 100 on
    /// hardware).
    pub max_iterations: usize,
    /// Shots per evaluation; `None` = exact probabilities.
    pub shots: Option<usize>,
    /// Gate-level noise (forces shot-based execution).
    pub noise: NoiseModel,
    /// Device timing model for latency accounting.
    pub device: Device,
    /// Parameter-training optimizer.
    pub optimizer: BaselineOptimizer,
    /// Execute noisy trajectories through a compiled
    /// [`rasengan_qsim::exec::Program`] (one compile per evaluation,
    /// reused state buffer across trajectories) instead of re-walking
    /// the gate list per shot. Bit-identical either way; `false` keeps
    /// the legacy path for differential testing.
    pub fuse: bool,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            seed: 0,
            layers: 5,
            max_iterations: 300,
            shots: None,
            noise: NoiseModel::noise_free(),
            device: Device::ibm_quebec(),
            optimizer: BaselineOptimizer::Cobyla,
            fuse: true,
        }
    }
}

impl BaselineConfig {
    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of layers.
    pub fn with_layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Sets the optimizer iteration budget.
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Sets shot-based execution.
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.shots = Some(shots);
        self
    }

    /// Sets the noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Selects the parameter optimizer (builder style).
    pub fn with_optimizer(mut self, optimizer: BaselineOptimizer) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Adopts a device's noise and timing models.
    pub fn on_device(mut self, device: Device) -> Self {
        self.noise = device.noise;
        self.device = device;
        self
    }

    /// Disables compiled-program execution (builder style); results are
    /// bit-identical, only slower.
    pub fn without_fusion(mut self) -> Self {
        self.fuse = false;
        self
    }
}

/// Result of a baseline solve — mirrors [`rasengan_core::Outcome`]'s
/// quality metrics so the comparison tables can treat all four
/// algorithms uniformly.
#[derive(Clone, Debug)]
pub struct BaselineOutcome {
    /// Best measured solution.
    pub best: Solution,
    /// Expectation of the (penalty-charged) objective over the final
    /// distribution.
    pub expectation: f64,
    /// Approximation ratio gap (Eq. 9).
    pub arg: f64,
    /// Feasible fraction of the final distribution.
    pub in_constraints_rate: f64,
    /// Final distribution over basis labels.
    pub distribution: BTreeMap<Label, f64>,
    /// Two-qubit depth of one (decomposed) circuit instance.
    pub circuit_depth: usize,
    /// Number of variational parameters.
    pub n_params: usize,
    /// Modeled quantum + measured classical latency.
    pub latency: Latency,
    /// Best-so-far objective per iteration.
    pub history: Vec<f64>,
    /// Objective evaluations performed.
    pub evaluations: usize,
}

/// Executes a dense circuit and returns the measured distribution.
///
/// Noise-free without shots: exact probabilities. With shots: sampled
/// counts. With noise: one trajectory per shot plus readout errors.
pub fn run_dense(
    circuit: &Circuit,
    cfg: &BaselineConfig,
    rng: &mut StdRng,
) -> BTreeMap<Label, f64> {
    let noisy = cfg.noise.is_noisy();
    let shots = match (cfg.shots, noisy) {
        (Some(s), _) => Some(s),
        (None, true) => Some(1024),
        (None, false) => None,
    };
    match shots {
        None => {
            let state = DenseState::from_circuit(circuit);
            state
                .probabilities()
                .into_iter()
                .enumerate()
                .filter(|(_, p)| *p > 1e-12)
                .map(|(l, p)| (l as Label, p))
                .collect()
        }
        Some(budget) => {
            let mut counts: BTreeMap<Label, usize> = BTreeMap::new();
            if noisy && cfg.fuse {
                // Compile once, execute every trajectory through the
                // fused per-gate ops with a reused state buffer and an
                // allocation-free single-shot sampler. Bit-identical to
                // the unfused branch below (same RNG consumption).
                let program = Program::compile(circuit);
                let mut runner = DenseTrajectoryRunner::new(&program);
                for _ in 0..budget {
                    let state = runner.run(&cfg.noise, rng);
                    let label = state.sample_one(rng);
                    let label = apply_readout_error(
                        label as Label,
                        circuit.n_qubits(),
                        cfg.noise.readout,
                        rng,
                    );
                    *counts.entry(label).or_insert(0) += 1;
                }
            } else if noisy {
                for _ in 0..budget {
                    let state = run_dense_trajectory(circuit, &cfg.noise, rng);
                    let sample = state.sample(1, rng);
                    let (&label, _) = sample.iter().next().expect("one sample");
                    let label = apply_readout_error(
                        label as Label,
                        circuit.n_qubits(),
                        cfg.noise.readout,
                        rng,
                    );
                    *counts.entry(label).or_insert(0) += 1;
                }
            } else {
                let state = DenseState::from_circuit(circuit);
                for (label, c) in state.sample(budget, rng) {
                    *counts.entry(label as Label).or_insert(0) += c;
                }
            }
            let total: usize = counts.values().sum();
            counts
                .into_iter()
                .map(|(l, c)| (l, c as f64 / total as f64))
                .collect()
        }
    }
}

/// Wraps the common train-evaluate-report loop shared by the baselines:
/// optimizes `build(params) → distribution` under the problem's
/// penalty-charged expectation, then assembles a [`BaselineOutcome`].
pub fn train_and_report(
    problem: &Problem,
    cfg: &BaselineConfig,
    n_params: usize,
    initial_params: Vec<f64>,
    circuit_depth: usize,
    quantum_seconds_per_eval: f64,
    mut run: impl FnMut(&[f64], &mut StdRng) -> BTreeMap<Label, f64>,
) -> BaselineOutcome {
    use rasengan_optim::{Cobyla, Optimizer, Spsa};
    assert_eq!(initial_params.len(), n_params, "parameter shape mismatch");

    let wall = Instant::now();
    let lambda = penalty_lambda(problem);
    let sense = problem.sense();
    let mut eval_counter = 0u64;
    let mut quantum_s = 0.0f64;

    let mut objective = |params: &[f64]| -> f64 {
        eval_counter += 1;
        let mut rng =
            StdRng::seed_from_u64(cfg.seed ^ eval_counter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let dist = run(params, &mut rng);
        quantum_s += quantum_seconds_per_eval;
        let e = expectation(problem, &dist, lambda);
        match sense {
            Sense::Minimize => e,
            Sense::Maximize => -e,
        }
    };

    let result = match cfg.optimizer {
        BaselineOptimizer::Cobyla => {
            Cobyla::new(cfg.max_iterations).minimize(&mut objective, &initial_params)
        }
        BaselineOptimizer::Spsa => {
            Spsa::new(cfg.max_iterations, cfg.seed).minimize(&mut objective, &initial_params)
        }
    };

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF1AA_F1AA);
    let dist = run(&result.best_params, &mut rng);
    quantum_s += quantum_seconds_per_eval;

    let e_real = expectation(problem, &dist, lambda);
    let (_, e_opt) = optimum(problem);
    BaselineOutcome {
        best: best_solution(problem, &dist),
        expectation: e_real,
        arg: arg(e_opt, e_real),
        in_constraints_rate: in_constraints_rate(problem, &dist),
        distribution: dist,
        circuit_depth,
        n_params,
        latency: Latency {
            quantum_s,
            classical_s: wall.elapsed().as_secs_f64(),
            ..Latency::default()
        },
        history: result.history,
        evaluations: result.evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_dense_exact_matches_statevector() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let cfg = BaselineConfig::default();
        let mut rng = StdRng::seed_from_u64(0);
        let dist = run_dense(&c, &cfg, &mut rng);
        assert_eq!(dist.len(), 2);
        assert!((dist[&0] - 0.5).abs() < 1e-12);
        assert!((dist[&3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn run_dense_sampled_sums_to_one() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        let cfg = BaselineConfig::default().with_shots(512);
        let mut rng = StdRng::seed_from_u64(1);
        let dist = run_dense(&c, &cfg, &mut rng);
        let total: f64 = dist.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn run_dense_noisy_produces_distribution() {
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        let cfg = BaselineConfig::default()
            .with_shots(64)
            .with_noise(NoiseModel::depolarizing(0.05));
        let mut rng = StdRng::seed_from_u64(2);
        let dist = run_dense(&c, &cfg, &mut rng);
        let total: f64 = dist.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn run_dense_fused_matches_unfused_bitwise() {
        // HEA-shaped noisy circuit: the fused trajectory runner must
        // reproduce the unfused path exactly, label for label.
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.ry(q, 0.4 + 0.1 * q as f64).rz(q, -0.3);
        }
        for q in 0..3 {
            c.cx(q, q + 1);
        }
        let noise = NoiseModel::ibm_like(0.02, 0.05, 0.02).with_amplitude_damping(0.01);
        let fused_cfg = BaselineConfig::default().with_shots(200).with_noise(noise);
        let unfused_cfg = fused_cfg.clone().without_fusion();
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let fused = run_dense(&c, &fused_cfg, &mut rng_a);
        let unfused = run_dense(&c, &unfused_cfg, &mut rng_b);
        assert_eq!(fused, unfused);
    }

    #[test]
    fn builder_methods() {
        let cfg = BaselineConfig::default()
            .with_seed(9)
            .with_layers(7)
            .with_max_iterations(42)
            .with_shots(10);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.layers, 7);
        assert_eq!(cfg.max_iterations, 42);
        assert_eq!(cfg.shots, Some(10));
    }
}
