//! Penalty-term QAOA (P-QAOA) baseline [Verma & Lewis 2022], with
//! FrozenQubits-style hotspot freezing [Ayanzadeh et al., ASPLOS'23] and
//! Red-QAOA-style parameter seeding [Wang et al., ASPLOS'24] as toggles.
//!
//! Constraints are folded into the objective as a quadratic penalty
//! (paper Fig. 1d); the circuit alternates `e^{-iγ H_obj}`
//! (Rz/Rzz layers) with the `Rx` mixer, starting from `H^{⊗n}|0⟩`.

use crate::common::{run_dense, train_and_report, BaselineConfig, BaselineOutcome};
use crate::ising::{penalized_qubo, qubo_to_ising, Ising};
use rasengan_core::metrics::penalty_lambda;
use rasengan_problems::Problem;
use rasengan_qsim::decompose::decompose_circuit;
use rasengan_qsim::Circuit;

/// The P-QAOA solver.
///
/// # Example
///
/// ```no_run
/// use rasengan_baselines::{BaselineConfig, PQaoa};
/// use rasengan_problems::registry::{benchmark, BenchmarkId};
///
/// let problem = benchmark(BenchmarkId::parse("J1").unwrap());
/// let outcome = PQaoa::new(BaselineConfig::default().with_max_iterations(50))
///     .solve(&problem);
/// println!("P-QAOA ARG = {}", outcome.arg);
/// ```
#[derive(Clone, Debug)]
pub struct PQaoa {
    config: BaselineConfig,
    frozen_qubits: usize,
    red_init: bool,
}

impl PQaoa {
    /// Creates a plain P-QAOA solver.
    pub fn new(config: BaselineConfig) -> Self {
        PQaoa {
            config,
            frozen_qubits: 0,
            red_init: false,
        }
    }

    /// Enables FrozenQubits-style freezing of the `k` hottest qubits
    /// (highest Ising degree), fixing them at their greedy-classical
    /// values and shrinking the circuit.
    pub fn with_frozen_qubits(mut self, k: usize) -> Self {
        self.frozen_qubits = k;
        self
    }

    /// Enables Red-QAOA-style initial-parameter seeding: a coarse grid
    /// search on the layer-1 landscape seeds all layers.
    pub fn with_red_init(mut self) -> Self {
        self.red_init = true;
        self
    }

    /// Builds the QAOA circuit for the given parameters
    /// (`γ₁β₁…γₚβₚ`).
    pub fn circuit(ising: &Ising, n: usize, params: &[f64], frozen: &[(usize, i64)]) -> Circuit {
        let mut c = Circuit::new(n);
        let frozen_set: Vec<usize> = frozen.iter().map(|&(q, _)| q).collect();
        // Frozen qubits are classically fixed: prepare them with X when 1.
        for &(q, v) in frozen {
            if v == 1 {
                c.x(q);
            }
        }
        for q in 0..n {
            if !frozen_set.contains(&q) {
                c.h(q);
            }
        }
        for layer in params.chunks(2) {
            let (gamma, beta) = (layer[0], layer[1]);
            for (i, &hi) in ising.h.iter().enumerate() {
                if hi != 0.0 && !frozen_set.contains(&i) {
                    c.rz(i, 2.0 * gamma * hi);
                }
            }
            for (&(a, b), &jab) in &ising.j {
                if jab == 0.0 {
                    continue;
                }
                match (frozen_set.contains(&a), frozen_set.contains(&b)) {
                    (false, false) => {
                        c.rzz(a, b, 2.0 * gamma * jab);
                    }
                    // A frozen partner turns the coupling into a field.
                    (true, false) => {
                        let z = frozen
                            .iter()
                            .find(|&&(q, _)| q == a)
                            .map(|&(_, v)| 1.0 - 2.0 * v as f64)
                            .expect("frozen value");
                        c.rz(b, 2.0 * gamma * jab * z);
                    }
                    (false, true) => {
                        let z = frozen
                            .iter()
                            .find(|&&(q, _)| q == b)
                            .map(|&(_, v)| 1.0 - 2.0 * v as f64)
                            .expect("frozen value");
                        c.rz(a, 2.0 * gamma * jab * z);
                    }
                    (true, true) => {}
                }
            }
            for q in 0..n {
                if !frozen_set.contains(&q) {
                    c.rx(q, 2.0 * beta);
                }
            }
        }
        c
    }

    /// Picks the `k` hottest qubits (largest total coupling degree) and
    /// freezes them at the values of the problem's initial feasible
    /// solution (a cheap classical anchor).
    fn frozen_assignment(&self, problem: &Problem, ising: &Ising) -> Vec<(usize, i64)> {
        if self.frozen_qubits == 0 {
            return Vec::new();
        }
        let n = problem.n_vars();
        let mut degree = vec![0.0f64; n];
        for (&(a, b), &j) in &ising.j {
            degree[a] += j.abs();
            degree[b] += j.abs();
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| degree[b].total_cmp(&degree[a]));
        let anchor: Vec<i64> = problem
            .initial_feasible()
            .map(<[i64]>::to_vec)
            .unwrap_or_else(|| vec![0; n]);
        order
            .into_iter()
            .take(self.frozen_qubits.min(n))
            .map(|q| (q, anchor[q]))
            .collect()
    }

    /// Solves the problem; see [`BaselineOutcome`].
    pub fn solve(&self, problem: &Problem) -> BaselineOutcome {
        let cfg = &self.config;
        let n = problem.n_vars();
        let lambda = penalty_lambda(problem);
        let ising = qubo_to_ising(&penalized_qubo(problem, lambda));
        let frozen = self.frozen_assignment(problem, &ising);
        let n_params = 2 * cfg.layers;

        // Reference circuit for depth/latency accounting.
        let probe = Self::circuit(&ising, n, &vec![0.3; n_params], &frozen);
        let depth = decompose_circuit(&probe).two_qubit_depth();
        let shot_s = cfg.device.shot_duration(&probe);
        let quantum_per_eval = shot_s * cfg.shots.unwrap_or(1024) as f64;

        let initial = if self.red_init {
            red_seed(&ising, n, cfg, &frozen, cfg.layers)
        } else {
            vec![0.3; n_params]
        };

        let ising_for_run = ising.clone();
        let frozen_for_run = frozen.clone();
        train_and_report(
            problem,
            cfg,
            n_params,
            initial,
            depth,
            quantum_per_eval,
            move |params, rng| {
                let c = Self::circuit(&ising_for_run, n, params, &frozen_for_run);
                run_dense(&c, cfg, rng)
            },
        )
    }
}

/// Red-QAOA-style seeding: coarse 5×5 grid search of a single-layer
/// landscape, replicated across layers.
fn red_seed(
    ising: &Ising,
    n: usize,
    cfg: &BaselineConfig,
    frozen: &[(usize, i64)],
    layers: usize,
) -> Vec<f64> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let grid = [0.1f64, 0.3, 0.5, 0.8, 1.2];
    let mut best = (0.3, 0.3);
    let mut best_e = f64::INFINITY;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x8ED);
    for &g in &grid {
        for &b in &grid {
            let c = PQaoa::circuit(ising, n, &[g, b], frozen);
            let dist = run_dense(
                &c,
                &BaselineConfig {
                    noise: rasengan_qsim::NoiseModel::noise_free(),
                    shots: None,
                    ..cfg.clone()
                },
                &mut rng,
            );
            let e: f64 = dist
                .iter()
                .map(|(&l, &p)| {
                    let bits: Vec<i64> = (0..n).map(|i| (l >> i & 1) as i64).collect();
                    p * ising.energy_of_bits(&bits)
                })
                .sum();
            if e < best_e {
                best_e = e;
                best = (g, b);
            }
        }
    }
    (0..layers).flat_map(|_| [best.0, best.1]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasengan_math::IntMatrix;
    use rasengan_problems::{Objective, Sense};

    fn tiny() -> Problem {
        // min x1 + 3x2  s.t.  x1 + x2 = 1 → optimum [1,0] value 1.
        Problem::new(
            "tiny",
            IntMatrix::from_rows(&[vec![1, 1]]),
            vec![1],
            Objective::linear(vec![1.0, 3.0]),
            Sense::Minimize,
        )
        .unwrap()
        .with_initial_feasible(vec![0, 1])
        .unwrap()
    }

    #[test]
    fn circuit_shape() {
        let p = tiny();
        let ising = qubo_to_ising(&penalized_qubo(&p, 10.0));
        let c = PQaoa::circuit(&ising, 2, &[0.3, 0.5, 0.2, 0.4], &[]);
        // 2 H + per layer (≤2 Rz + 1 Rzz + 2 Rx) × 2 layers.
        assert!(c.len() >= 2 + 2 * 3);
        assert_eq!(c.n_qubits(), 2);
    }

    #[test]
    fn solve_improves_over_random_start() {
        let p = tiny();
        let out = PQaoa::new(
            BaselineConfig::default()
                .with_max_iterations(60)
                .with_layers(2),
        )
        .solve(&p);
        // With a dominating penalty the optimizer should concentrate
        // most mass on feasible states.
        assert!(
            out.in_constraints_rate > 0.3,
            "rate {}",
            out.in_constraints_rate
        );
        assert!(out.arg.is_finite());
        assert_eq!(out.n_params, 4);
        assert!(out.circuit_depth > 0);
    }

    #[test]
    fn frozen_qubits_reduce_active_width() {
        let p = tiny();
        let solver = PQaoa::new(BaselineConfig::default()).with_frozen_qubits(1);
        let ising = qubo_to_ising(&penalized_qubo(&p, 10.0));
        let frozen = solver.frozen_assignment(&p, &ising);
        assert_eq!(frozen.len(), 1);
        let c = PQaoa::circuit(&ising, 2, &[0.3, 0.5], &frozen);
        // The frozen qubit receives no H gate.
        let h_count = c
            .gates()
            .iter()
            .filter(|g| matches!(g, rasengan_qsim::Gate::H(_)))
            .count();
        assert_eq!(h_count, 1);
    }

    #[test]
    fn red_init_produces_layer_replicated_params() {
        let p = tiny();
        let ising = qubo_to_ising(&penalized_qubo(&p, 10.0));
        let seed = red_seed(&ising, 2, &BaselineConfig::default(), &[], 3);
        assert_eq!(seed.len(), 6);
        assert_eq!(seed[0], seed[2]);
        assert_eq!(seed[1], seed[5]);
    }
}
