//! QUBO and Ising encodings of penalized problems.
//!
//! Penalty-term methods (P-QAOA, HEA's cost function) replace the
//! constrained problem by the unconstrained
//! `f(x) + λ‖Cx − b‖²` (paper §2.1), whose quadratic form maps onto an
//! Ising Hamiltonian `H = Σ hᵢZᵢ + Σ Jᵢⱼ ZᵢZⱼ + const` through
//! `xᵢ = (1 − zᵢ)/2`.

use rasengan_problems::{Problem, Sense};
use std::collections::BTreeMap;

/// A quadratic unconstrained binary objective.
#[derive(Clone, Debug, PartialEq)]
pub struct Qubo {
    /// Constant offset.
    pub constant: f64,
    /// Linear coefficients.
    pub linear: Vec<f64>,
    /// Upper-triangular quadratic coefficients keyed by `(i, j)`, `i < j`.
    pub quadratic: BTreeMap<(usize, usize), f64>,
}

impl Qubo {
    /// Evaluates the QUBO at a binary point.
    pub fn eval(&self, x: &[i64]) -> f64 {
        let mut v = self.constant;
        for (i, &c) in self.linear.iter().enumerate() {
            v += c * x[i] as f64;
        }
        for (&(i, j), &w) in &self.quadratic {
            v += w * (x[i] * x[j]) as f64;
        }
        v
    }
}

/// Builds the penalized QUBO of a problem, always in *minimization*
/// form: a maximization objective is negated first, and the quadratic
/// penalty `λ Σ_r (C_r·x − b_r)²` is added.
pub fn penalized_qubo(problem: &Problem, lambda: f64) -> Qubo {
    let n = problem.n_vars();
    let obj = problem.objective();
    let sign = match problem.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let mut constant = sign * obj.constant;
    let mut linear = vec![0.0; n];
    for (i, &c) in obj.linear.iter().enumerate() {
        linear[i] += sign * c;
    }
    let mut quadratic: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut add_quad = |i: usize, j: usize, w: f64, linear: &mut Vec<f64>| {
        if w == 0.0 {
            return;
        }
        match i.cmp(&j) {
            std::cmp::Ordering::Equal => linear[i] += w, // x² = x
            std::cmp::Ordering::Less => *quadratic.entry((i, j)).or_insert(0.0) += w,
            std::cmp::Ordering::Greater => *quadratic.entry((j, i)).or_insert(0.0) += w,
        }
    };
    for &(i, j, w) in &obj.quadratic {
        add_quad(i, j, sign * w, &mut linear);
    }

    // Quadratic penalty per constraint row.
    let c = problem.constraints();
    for (r, &b) in problem.rhs().iter().enumerate() {
        let row = c.row(r);
        constant += lambda * (b * b) as f64;
        for j in 0..n {
            if row[j] == 0 {
                continue;
            }
            linear[j] += lambda * (-2.0 * (b * row[j]) as f64);
            for k in j..n {
                if row[k] == 0 {
                    continue;
                }
                let w = lambda * (row[j] * row[k]) as f64 * if j == k { 1.0 } else { 2.0 };
                add_quad(j, k, w, &mut linear);
            }
        }
    }

    Qubo {
        constant,
        linear,
        quadratic,
    }
}

/// An Ising Hamiltonian `Σ hᵢZᵢ + Σ Jᵢⱼ ZᵢZⱼ + offset`.
#[derive(Clone, Debug, PartialEq)]
pub struct Ising {
    /// Constant offset (ignored by the circuit, needed for energies).
    pub offset: f64,
    /// Local fields.
    pub h: Vec<f64>,
    /// Couplings keyed by `(i, j)`, `i < j`.
    pub j: BTreeMap<(usize, usize), f64>,
}

impl Ising {
    /// Energy of a spin configuration given as the binary labels'
    /// bits (`x = 1` ↔ `z = −1`).
    pub fn energy_of_bits(&self, x: &[i64]) -> f64 {
        let z = |i: usize| 1.0 - 2.0 * x[i] as f64;
        let mut e = self.offset;
        for (i, &hi) in self.h.iter().enumerate() {
            e += hi * z(i);
        }
        for (&(a, b), &jab) in &self.j {
            e += jab * z(a) * z(b);
        }
        e
    }
}

/// Converts a QUBO to Ising form via `xᵢ = (1 − zᵢ)/2`.
pub fn qubo_to_ising(q: &Qubo) -> Ising {
    let n = q.linear.len();
    let mut offset = q.constant;
    let mut h = vec![0.0; n];
    let mut j: BTreeMap<(usize, usize), f64> = BTreeMap::new();

    for (i, &a) in q.linear.iter().enumerate() {
        offset += a / 2.0;
        h[i] -= a / 2.0;
    }
    for (&(a, b), &w) in &q.quadratic {
        offset += w / 4.0;
        h[a] -= w / 4.0;
        h[b] -= w / 4.0;
        *j.entry((a, b)).or_insert(0.0) += w / 4.0;
    }
    Ising { offset, h, j }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasengan_math::IntMatrix;
    use rasengan_problems::Objective;

    fn toy(sense: Sense) -> Problem {
        Problem::new(
            "toy",
            IntMatrix::from_rows(&[vec![1, 1]]),
            vec![1],
            Objective::linear(vec![1.0, 3.0]),
            sense,
        )
        .unwrap()
    }

    #[test]
    fn qubo_matches_penalized_objective_minimize() {
        let p = toy(Sense::Minimize);
        let q = penalized_qubo(&p, 10.0);
        for label in 0..4u64 {
            let x = vec![(label & 1) as i64, (label >> 1) as i64];
            let violation = (x[0] + x[1] - 1).pow(2) as f64;
            let expect = p.evaluate(&x) + 10.0 * violation;
            assert!(
                (q.eval(&x) - expect).abs() < 1e-9,
                "x={x:?}: qubo {} vs {}",
                q.eval(&x),
                expect
            );
        }
    }

    #[test]
    fn qubo_negates_for_maximization() {
        let p = toy(Sense::Maximize);
        let q = penalized_qubo(&p, 10.0);
        // Feasible maximizer [0,1] must be the QUBO minimizer.
        let vals: Vec<f64> = (0..4u64)
            .map(|l| q.eval(&[(l & 1) as i64, (l >> 1) as i64]))
            .collect();
        let min_idx = (0..4).min_by(|&a, &b| vals[a].total_cmp(&vals[b])).unwrap();
        assert_eq!(
            min_idx, 2,
            "expected [0,1] to minimize, got label {min_idx}"
        );
    }

    #[test]
    fn ising_energy_equals_qubo_value() {
        let p = toy(Sense::Minimize);
        let q = penalized_qubo(&p, 7.0);
        let ising = qubo_to_ising(&q);
        for label in 0..4u64 {
            let x = vec![(label & 1) as i64, (label >> 1) as i64];
            assert!(
                (ising.energy_of_bits(&x) - q.eval(&x)).abs() < 1e-9,
                "mismatch at {x:?}"
            );
        }
    }

    #[test]
    fn quadratic_objective_roundtrip() {
        let p = Problem::new(
            "quad",
            IntMatrix::from_rows(&[vec![1, 1, 0]]),
            vec![1],
            Objective {
                constant: 2.0,
                linear: vec![1.0, 0.0, -1.0],
                quadratic: vec![(0, 2, 4.0), (1, 2, -2.0)],
            },
            Sense::Minimize,
        )
        .unwrap();
        let q = penalized_qubo(&p, 5.0);
        let ising = qubo_to_ising(&q);
        for label in 0..8u64 {
            let x: Vec<i64> = (0..3).map(|i| (label >> i & 1) as i64).collect();
            // The QUBO charges the squared (L2) violation.
            let violation2: f64 = p
                .constraints()
                .mul_vec(&x)
                .iter()
                .zip(p.rhs())
                .map(|(&g, &b)| ((g - b) * (g - b)) as f64)
                .sum();
            let expect = p.evaluate(&x) + 5.0 * violation2;
            assert!((q.eval(&x) - expect).abs() < 1e-9);
            assert!((ising.energy_of_bits(&x) - expect).abs() < 1e-9);
        }
    }
}
