//! The benchmark registry: the paper's 20 instances (Table 2's F1–F4,
//! K1–K4, J1–J4, S1–S4, G1–G4) plus three corpus-growth domains —
//! max-cut (M1–M4), bin-packing (B1–B4), and portfolio selection
//! (P1–P4) — for 32 ids total.
//!
//! The paper compiles 400 cases per domain from the literature; the
//! exact instances are not published, so this registry fixes one
//! canonical seeded instance per benchmark id plus a [`cases`] generator
//! producing randomized same-shape variants (the reproduce-mode
//! equivalent of the artifact's scaled-down case sets). Per-case seeds
//! run through the SplitMix64 finalizer, giving statistically
//! independent streams for any `(seed, index)` pair (the same scheme
//! `qsim::parallel::derive_seed` uses for per-shot RNG).

use crate::binpack::BinPacking;
use crate::flp::FacilityLocation;
use crate::gcp::GraphColoring;
use crate::jsp::JobScheduling;
use crate::kpp::KPartition;
use crate::maxcut::MaxCut;
use crate::portfolio::Portfolio;
use crate::problem::Problem;
use crate::scp::SetCover;
use std::fmt;

/// The application domains: the paper's five (§5.1) plus the three
/// corpus-growth families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Facility location problem.
    Flp,
    /// K-partition problem.
    Kpp,
    /// Job scheduling problem.
    Jsp,
    /// Set covering problem.
    Scp,
    /// Graph coloring problem.
    Gcp,
    /// Balanced max-cut (Erdős–Rényi and circulant regular graphs).
    MaxCut,
    /// Bin packing (one-hot assignment + capacity rows with slack).
    BinPack,
    /// Portfolio selection (per-sector cardinality, maximize sense).
    Ptf,
}

impl Domain {
    /// All domains: Table 2 order, then the corpus-growth families.
    pub fn all() -> [Domain; 8] {
        [
            Domain::Flp,
            Domain::Kpp,
            Domain::Jsp,
            Domain::Scp,
            Domain::Gcp,
            Domain::MaxCut,
            Domain::BinPack,
            Domain::Ptf,
        ]
    }

    /// The single-letter prefix used in benchmark ids.
    pub fn letter(self) -> char {
        match self {
            Domain::Flp => 'F',
            Domain::Kpp => 'K',
            Domain::Jsp => 'J',
            Domain::Scp => 'S',
            Domain::Gcp => 'G',
            Domain::MaxCut => 'M',
            Domain::BinPack => 'B',
            Domain::Ptf => 'P',
        }
    }
}

/// A benchmark identifier like `F1` or `G4`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BenchmarkId {
    /// Application domain.
    pub domain: Domain,
    /// Scale, 1–4.
    pub scale: usize,
}

impl BenchmarkId {
    /// Creates an id.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `1..=4`.
    pub fn new(domain: Domain, scale: usize) -> Self {
        assert!((1..=4).contains(&scale), "scale must be 1..=4");
        BenchmarkId { domain, scale }
    }

    /// Parses ids like `"F1"`, `"s3"`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut chars = s.chars();
        let d = match chars.next()?.to_ascii_uppercase() {
            'F' => Domain::Flp,
            'K' => Domain::Kpp,
            'J' => Domain::Jsp,
            'S' => Domain::Scp,
            'G' => Domain::Gcp,
            'M' => Domain::MaxCut,
            'B' => Domain::BinPack,
            'P' => Domain::Ptf,
            _ => return None,
        };
        let scale: usize = chars.as_str().parse().ok()?;
        if (1..=4).contains(&scale) {
            Some(BenchmarkId { domain: d, scale })
        } else {
            None
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.domain.letter(), self.scale)
    }
}

/// All 32 benchmark ids: Table 2 order (F1..F4, K1..K4, …), then the
/// corpus-growth families (M1..M4, B1..B4, P1..P4).
pub fn all_ids() -> Vec<BenchmarkId> {
    Domain::all()
        .into_iter()
        .flat_map(|d| (1..=4).map(move |s| BenchmarkId::new(d, s)))
        .collect()
}

/// Seed namespace separating canonical instances from case sweeps.
const CANONICAL_SEED: u64 = 0xBA5E;

/// Builds an instance of the given benchmark shape with a specific seed.
pub fn instance(id: BenchmarkId, seed: u64) -> Problem {
    match (id.domain, id.scale) {
        // FLP: (facilities, demands) — vars f + 2fd.
        (Domain::Flp, 1) => FacilityLocation::generate(2, 1, seed).into_problem(), // 6
        (Domain::Flp, 2) => FacilityLocation::generate(2, 2, seed).into_problem(), // 10
        (Domain::Flp, 3) => FacilityLocation::generate(3, 2, seed).into_problem(), // 15
        (Domain::Flp, 4) => FacilityLocation::generate(4, 2, seed).into_problem(), // 20

        // KPP: (vertices, parts) — vars v·k.
        (Domain::Kpp, 1) => KPartition::generate(4, 2, seed).into_problem(), // 8
        (Domain::Kpp, 2) => KPartition::generate(6, 2, seed).into_problem(), // 12
        (Domain::Kpp, 3) => KPartition::generate(8, 2, seed).into_problem(), // 16
        (Domain::Kpp, 4) => KPartition::generate(6, 3, seed).into_problem(), // 18

        // JSP: (jobs, machines, capacity) — vars jm + m·cap.
        (Domain::Jsp, 1) => JobScheduling::generate(2, 2, 1, seed).into_problem(), // 6
        (Domain::Jsp, 2) => JobScheduling::generate(3, 2, 2, seed).into_problem(), // 10
        (Domain::Jsp, 3) => JobScheduling::generate(4, 2, 2, seed).into_problem(), // 12
        (Domain::Jsp, 4) => JobScheduling::generate(4, 2, 3, seed).into_problem(), // 14

        // SCP: (elements, sets) — vars sets + Σ(cover−1), seed-dependent.
        (Domain::Scp, 1) => SetCover::generate(2, 3, seed).into_problem(),
        (Domain::Scp, 2) => SetCover::generate(3, 4, seed).into_problem(),
        (Domain::Scp, 3) => SetCover::generate(3, 5, seed).into_problem(),
        (Domain::Scp, 4) => SetCover::generate(4, 6, seed).into_problem(),

        // GCP: (vertices, colors) — vars vk + |E|k, seed-dependent.
        (Domain::Gcp, 1) => GraphColoring::generate(2, 2, seed).into_problem(),
        (Domain::Gcp, 2) => GraphColoring::generate(3, 2, seed).into_problem(),
        (Domain::Gcp, 3) => GraphColoring::generate(4, 2, seed).into_problem(),
        (Domain::Gcp, 4) => GraphColoring::generate(5, 2, seed).into_problem(),

        // Max-cut: vars = vertices; ER at small scales, circulant
        // regular graphs above.
        (Domain::MaxCut, 1) => MaxCut::generate_er(6, 0.5, seed).into_problem(), // 6
        (Domain::MaxCut, 2) => MaxCut::generate_er(8, 0.5, seed).into_problem(), // 8
        (Domain::MaxCut, 3) => MaxCut::generate_regular(10, &[1, 5], seed).into_problem(), // 10
        (Domain::MaxCut, 4) => MaxCut::generate_regular(12, &[1, 2], seed).into_problem(), // 12

        // Bin packing: (items, bins, capacity) — vars iB + B + BC.
        // Two bins, capacity ≤ 3: larger capacities break the ternary
        // reduction (a y-flip needs C unit slacks) and a third bin
        // disconnects the single-step transition graph.
        (Domain::BinPack, 1) => BinPacking::generate(2, 2, 2, seed).into_problem(), // 10
        (Domain::BinPack, 2) => BinPacking::generate(2, 2, 3, seed).into_problem(), // 12
        (Domain::BinPack, 3) => BinPacking::generate(4, 2, 3, seed).into_problem(), // 16
        (Domain::BinPack, 4) => BinPacking::generate(5, 2, 3, seed).into_problem(), // 18

        // Portfolio: (sectors, per_sector, picks) — vars s·a.
        (Domain::Ptf, 1) => Portfolio::generate(2, 2, 1, seed).into_problem(), // 4
        (Domain::Ptf, 2) => Portfolio::generate(2, 3, 1, seed).into_problem(), // 6
        (Domain::Ptf, 3) => Portfolio::generate(2, 4, 2, seed).into_problem(), // 8
        (Domain::Ptf, 4) => Portfolio::generate(3, 4, 1, seed).into_problem(), // 12

        _ => unreachable!("scale validated by BenchmarkId::new"),
    }
}

/// The canonical instance of a benchmark (fixed seed, deterministic).
///
/// # Example
///
/// ```
/// use rasengan_problems::registry::{benchmark, BenchmarkId};
///
/// let f1 = benchmark(BenchmarkId::parse("F1").unwrap());
/// assert_eq!(f1.n_vars(), 6);
/// assert!(f1.initial_feasible().is_some());
/// ```
pub fn benchmark(id: BenchmarkId) -> Problem {
    instance(
        id,
        CANONICAL_SEED ^ (id.scale as u64) ^ ((id.domain.letter() as u64) << 8),
    )
}

/// SplitMix64 finalizer — the same mixing `qsim::parallel::derive_seed`
/// uses (this crate sits below `qsim`, so the function is inlined here
/// rather than imported).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the per-case seed for case `index` of sweep `seed` through
/// the SplitMix64 finalizer. Sequential-offset schemes
/// (`seed·K + index`) collide across nearby sweeps; finalized streams
/// do not.
pub fn case_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(index))
}

/// Generates `count` randomized cases of the benchmark's shape
/// (cost/graph variations; structure fixed), with per-case seeds
/// derived through [`case_seed`].
pub fn cases(id: BenchmarkId, count: usize, seed: u64) -> Vec<Problem> {
    (0..count as u64)
        .map(|i| instance(id, case_seed(seed, i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_feasible;

    #[test]
    fn thirty_two_benchmarks_exist() {
        assert_eq!(all_ids().len(), 32);
        // The paper's 20 lead the list, in Table 2 order.
        let first: Vec<String> = all_ids().iter().take(4).map(|id| id.to_string()).collect();
        assert_eq!(first, ["F1", "F2", "F3", "F4"]);
    }

    #[test]
    fn ids_display_and_parse_roundtrip() {
        for id in all_ids() {
            let s = id.to_string();
            assert_eq!(BenchmarkId::parse(&s), Some(id));
        }
        assert_eq!(BenchmarkId::parse("F9"), None);
        assert_eq!(BenchmarkId::parse("X1"), None);
        assert_eq!(BenchmarkId::parse(""), None);
    }

    #[test]
    fn canonical_instances_are_deterministic() {
        for id in all_ids() {
            let a = benchmark(id);
            let b = benchmark(id);
            assert_eq!(a.n_vars(), b.n_vars());
            assert_eq!(a.constraints(), b.constraints());
            assert_eq!(a.objective().linear, b.objective().linear);
        }
    }

    #[test]
    fn all_benchmarks_have_feasible_initials() {
        for id in all_ids() {
            let p = benchmark(id);
            let init = p
                .initial_feasible()
                .unwrap_or_else(|| panic!("{id} lacks an initial solution"));
            assert!(p.is_feasible(init), "{id} initial infeasible");
        }
    }

    #[test]
    fn all_benchmarks_have_nonempty_rich_feasible_sets() {
        for id in all_ids() {
            let p = benchmark(id);
            let count = enumerate_feasible(&p).len();
            assert!(count >= 2, "{id} has trivial feasible set ({count})");
        }
    }

    #[test]
    fn fixed_scale_variable_counts() {
        let expect = [
            ("F1", 6),
            ("F2", 10),
            ("F3", 15),
            ("F4", 20),
            ("K1", 8),
            ("K2", 12),
            ("K3", 16),
            ("K4", 18),
            ("J1", 6),
            ("J2", 10),
            ("J3", 12),
            ("J4", 14),
            ("M1", 6),
            ("M2", 8),
            ("M3", 10),
            ("M4", 12),
            ("B1", 10),
            ("B2", 12),
            ("B3", 16),
            ("B4", 18),
            ("P1", 4),
            ("P2", 6),
            ("P3", 8),
            ("P4", 12),
        ];
        for (name, vars) in expect {
            let id = BenchmarkId::parse(name).unwrap();
            assert_eq!(benchmark(id).n_vars(), vars, "{name} size drifted");
        }
    }

    #[test]
    fn scales_grow_within_domain() {
        for d in Domain::all() {
            let sizes: Vec<usize> = (1..=4)
                .map(|s| benchmark(BenchmarkId::new(d, s)).n_vars())
                .collect();
            for w in sizes.windows(2) {
                assert!(w[1] >= w[0], "domain {d:?} sizes not monotone: {sizes:?}");
            }
        }
    }

    #[test]
    fn cases_vary_by_index_and_reproduce_by_seed() {
        let id = BenchmarkId::parse("F2").unwrap();
        let a = cases(id, 3, 42);
        let b = cases(id, 3, 42);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.objective().linear, y.objective().linear);
        }
        // Different cases differ in costs.
        assert_ne!(a[0].objective().linear, a[1].objective().linear);
    }

    #[test]
    fn case_seeds_do_not_collide_across_sweeps() {
        // The old sequential scheme (`seed·0x9E3779B9 + index`) made
        // sweep `seed+1` replay sweep `seed` shifted by the multiplier:
        // identical instances across supposedly independent sweeps.
        let k = 0x9E37_79B9u64;
        assert_eq!(7u64.wrapping_mul(k).wrapping_add(k), 8u64.wrapping_mul(k));
        // Finalized streams: every (sweep, index) pair gets a distinct
        // seed across a dense grid.
        let mut seen = std::collections::HashSet::new();
        for sweep in 0..16u64 {
            for index in 0..64u64 {
                assert!(
                    seen.insert(case_seed(sweep, index)),
                    "collision at sweep {sweep} index {index}"
                );
            }
        }
        // And the derivation is reproducible.
        assert_eq!(case_seed(42, 3), case_seed(42, 3));
        assert_ne!(case_seed(42, 3), case_seed(43, 3));
    }
}
