//! Portfolio selection — the financial-investment domain the paper's
//! introduction motivates (Brandhofer et al. benchmark QAOA on exactly
//! this workload).
//!
//! Select exactly `budget` of `n` assets, maximizing expected return
//! minus a quadratic risk (covariance) penalty:
//!
//! ```text
//! max  Σ r_i x_i − λ Σ_{i<j} σ_ij x_i x_j
//! s.t. Σ_{i ∈ sector_k} x_i = b_k   for every sector k
//! ```
//!
//! Cardinality constraints per sector are totally unimodular (disjoint
//! one-hot-style rows), so the transition-Hamiltonian machinery applies
//! unchanged. This is the only benchmark domain with
//! [`Sense::Maximize`], exercising that path through every solver.

use crate::problem::{Objective, Problem, Sense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasengan_math::IntMatrix;

/// A generated portfolio-selection instance.
#[derive(Clone, Debug)]
pub struct Portfolio {
    /// Expected return per asset.
    pub returns: Vec<f64>,
    /// Pairwise risk (covariance) terms `(i, j, σ)` with `i < j`.
    pub risk: Vec<(usize, usize, f64)>,
    /// Risk-aversion coefficient λ.
    pub risk_aversion: f64,
    /// Asset index ranges per sector (disjoint, covering all assets).
    pub sectors: Vec<std::ops::Range<usize>>,
    /// How many assets to pick in each sector.
    pub picks: Vec<usize>,
}

impl Portfolio {
    /// Generates a seeded random instance: `sectors` sectors of
    /// `per_sector` assets each, picking `picks_per_sector` from each.
    ///
    /// Returns are 2–9, covariances 0–2 with density 0.4.
    ///
    /// # Panics
    ///
    /// Panics if `picks_per_sector > per_sector` or either is zero.
    pub fn generate(sectors: usize, per_sector: usize, picks_per_sector: usize, seed: u64) -> Self {
        assert!(sectors > 0 && per_sector > 0, "degenerate portfolio shape");
        assert!(
            picks_per_sector <= per_sector && picks_per_sector > 0,
            "cannot pick {picks_per_sector} of {per_sector}"
        );
        let n = sectors * per_sector;
        let mut rng = StdRng::seed_from_u64(seed);
        let returns = (0..n).map(|_| rng.gen_range(2..=9) as f64).collect();
        let mut risk = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.4) {
                    risk.push((i, j, rng.gen_range(1..=2) as f64));
                }
            }
        }
        Portfolio {
            returns,
            risk,
            risk_aversion: 0.5,
            sectors: (0..sectors)
                .map(|s| s * per_sector..(s + 1) * per_sector)
                .collect(),
            picks: vec![picks_per_sector; sectors],
        }
    }

    /// Number of binary variables (= assets).
    pub fn n_vars(&self) -> usize {
        self.returns.len()
    }

    /// Builds the [`Problem`].
    ///
    /// # Panics
    ///
    /// Panics if sector ranges and pick counts disagree in length.
    pub fn into_problem(self) -> Problem {
        assert_eq!(self.sectors.len(), self.picks.len(), "sector/pick mismatch");
        let n = self.n_vars();
        let mut rows = Vec::new();
        let mut rhs = Vec::new();
        for (range, &b) in self.sectors.iter().zip(&self.picks) {
            let mut row = vec![0i64; n];
            for i in range.clone() {
                row[i] = 1;
            }
            rows.push(row);
            rhs.push(b as i64);
        }

        let quadratic: Vec<(usize, usize, f64)> = self
            .risk
            .iter()
            .map(|&(i, j, s)| (i, j, -self.risk_aversion * s))
            .collect();

        // O(n) feasible construction: pick the first `b_k` assets of
        // each sector.
        let mut init = vec![0i64; n];
        for (range, &b) in self.sectors.iter().zip(&self.picks) {
            for i in range.clone().take(b) {
                init[i] = 1;
            }
        }

        let name = format!("portfolio-{}a{}s", n, self.sectors.len());
        Problem::new(
            name,
            IntMatrix::from_rows(&rows),
            rhs,
            Objective {
                constant: 0.0,
                linear: self.returns.clone(),
                quadratic,
            },
            Sense::Maximize,
        )
        .expect("portfolio construction is shape-consistent")
        .with_initial_feasible(init)
        .expect("prefix selection satisfies the cardinality constraints")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{brute_force_feasible, enumerate_feasible, optimum};

    #[test]
    fn shapes_and_feasibility() {
        let pf = Portfolio::generate(2, 3, 1, 1);
        assert_eq!(pf.n_vars(), 6);
        let p = pf.into_problem();
        assert_eq!(p.n_constraints(), 2);
        assert!(p.is_feasible(p.initial_feasible().unwrap()));
    }

    #[test]
    fn feasible_count_is_product_of_binomials() {
        // 2 sectors of 3, pick 1 each: 3 × 3 = 9 portfolios.
        let p = Portfolio::generate(2, 3, 1, 2).into_problem();
        let feas = enumerate_feasible(&p);
        assert_eq!(feas.len(), 9);
        assert_eq!(feas, brute_force_feasible(&p));
    }

    #[test]
    fn optimum_maximizes_return_minus_risk() {
        let pf = Portfolio {
            returns: vec![1.0, 9.0, 5.0, 5.0],
            risk: vec![(1, 3, 8.0)],
            risk_aversion: 1.0,
            sectors: vec![0..2, 2..4],
            picks: vec![1, 1],
        };
        let p = pf.into_problem();
        let (x, v) = optimum(&p);
        // Picking assets 1 and 3 returns 14 − 8 risk = 6; assets 1 and 2
        // return 14 with no risk — the optimum.
        assert_eq!(x, vec![0, 1, 1, 0]);
        assert_eq!(v, 14.0);
    }

    #[test]
    fn maximization_sense_exposed() {
        let p = Portfolio::generate(2, 2, 1, 3).into_problem();
        assert_eq!(p.sense(), Sense::Maximize);
    }

    #[test]
    #[should_panic(expected = "cannot pick")]
    fn overdrawn_sector_panics() {
        Portfolio::generate(2, 2, 3, 0);
    }
}
