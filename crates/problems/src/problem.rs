//! The constrained-binary-optimization problem type (paper Eq. 1):
//!
//! ```text
//! min/max f(x),   s.t.  C x = b,   x ∈ {0,1}^n
//! ```
//!
//! Inequality constraints are assumed to have been converted to
//! equalities with auxiliary binary slack variables by the domain
//! generators (paper §2.1).

use rasengan_math::IntMatrix;
use std::fmt;

/// Optimization direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Find the minimum objective value.
    Minimize,
    /// Find the maximum objective value.
    Maximize,
}

impl Sense {
    /// Whether candidate value `a` is better than `b` under this sense.
    pub fn is_better(self, a: f64, b: f64) -> bool {
        match self {
            Sense::Minimize => a < b,
            Sense::Maximize => a > b,
        }
    }

    /// The worst possible value under this sense.
    pub fn worst(self) -> f64 {
        match self {
            Sense::Minimize => f64::INFINITY,
            Sense::Maximize => f64::NEG_INFINITY,
        }
    }
}

/// A polynomial objective over binary variables: constant + linear +
/// quadratic terms. Quadratic terms cover the cut/load objectives of
/// KPP and JSP; FLP/SCP/GCP are linear.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Objective {
    /// Constant offset.
    pub constant: f64,
    /// `linear[i]` multiplies `x_i`.
    pub linear: Vec<f64>,
    /// Each `(i, j, w)` contributes `w · x_i · x_j`.
    pub quadratic: Vec<(usize, usize, f64)>,
}

impl Objective {
    /// A purely linear objective.
    pub fn linear(coeffs: Vec<f64>) -> Self {
        Objective {
            constant: 0.0,
            linear: coeffs,
            quadratic: Vec::new(),
        }
    }

    /// Evaluates the objective at a binary point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.linear.len()`.
    pub fn eval(&self, x: &[i64]) -> f64 {
        assert_eq!(x.len(), self.linear.len(), "point has wrong dimension");
        let mut v = self.constant;
        for (i, &c) in self.linear.iter().enumerate() {
            v += c * x[i] as f64;
        }
        for &(i, j, w) in &self.quadratic {
            v += w * (x[i] * x[j]) as f64;
        }
        v
    }

    /// Highest variable degree (1 for linear, 2 with quadratic terms).
    pub fn degree(&self) -> usize {
        if self.quadratic.is_empty() {
            1
        } else {
            2
        }
    }
}

/// A constrained binary optimization problem instance.
///
/// # Example
///
/// ```
/// use rasengan_problems::{Objective, Problem, Sense};
/// use rasengan_math::IntMatrix;
///
/// // max x1 + 2 x2  s.t.  x1 + x2 = 1
/// let p = Problem::new(
///     "toy",
///     IntMatrix::from_rows(&[vec![1, 1]]),
///     vec![1],
///     Objective::linear(vec![1.0, 2.0]),
///     Sense::Maximize,
/// ).unwrap();
/// assert!(p.is_feasible(&[0, 1]));
/// assert!(!p.is_feasible(&[1, 1]));
/// assert_eq!(p.evaluate(&[0, 1]), 2.0);
/// ```
#[derive(Clone, Debug)]
pub struct Problem {
    name: String,
    constraints: IntMatrix,
    rhs: Vec<i64>,
    objective: Objective,
    sense: Sense,
    initial_feasible: Option<Vec<i64>>,
    known_optimum: Option<(Vec<i64>, f64)>,
}

/// Error constructing a [`Problem`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProblemError {
    /// The right-hand side length does not match the constraint rows.
    RhsMismatch {
        /// Constraint rows.
        rows: usize,
        /// Right-hand side length.
        rhs_len: usize,
    },
    /// The objective dimension does not match the constraint columns.
    ObjectiveMismatch {
        /// Constraint columns (number of variables).
        cols: usize,
        /// Linear coefficient count.
        linear_len: usize,
    },
    /// The declared initial feasible solution violates the constraints.
    InfeasibleInitial,
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::RhsMismatch { rows, rhs_len } => {
                write!(
                    f,
                    "rhs length {rhs_len} does not match {rows} constraint rows"
                )
            }
            ProblemError::ObjectiveMismatch { cols, linear_len } => write!(
                f,
                "objective has {linear_len} linear coefficients for {cols} variables"
            ),
            ProblemError::InfeasibleInitial => {
                write!(f, "declared initial solution violates the constraints")
            }
        }
    }
}

impl std::error::Error for ProblemError {}

impl Problem {
    /// Creates a problem, validating shapes.
    ///
    /// # Errors
    ///
    /// See [`ProblemError`].
    pub fn new(
        name: impl Into<String>,
        constraints: IntMatrix,
        rhs: Vec<i64>,
        objective: Objective,
        sense: Sense,
    ) -> Result<Self, ProblemError> {
        if rhs.len() != constraints.rows() {
            return Err(ProblemError::RhsMismatch {
                rows: constraints.rows(),
                rhs_len: rhs.len(),
            });
        }
        if objective.linear.len() != constraints.cols() {
            return Err(ProblemError::ObjectiveMismatch {
                cols: constraints.cols(),
                linear_len: objective.linear.len(),
            });
        }
        Ok(Problem {
            name: name.into(),
            constraints,
            rhs,
            objective,
            sense,
            initial_feasible: None,
            known_optimum: None,
        })
    }

    /// Attaches a constructively-known feasible solution (the domain
    /// generators all provide one in linear time, paper §5.1).
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::InfeasibleInitial`] if the solution does
    /// not satisfy `C x = b`.
    pub fn with_initial_feasible(mut self, x: Vec<i64>) -> Result<Self, ProblemError> {
        if !self.is_feasible(&x) {
            return Err(ProblemError::InfeasibleInitial);
        }
        self.initial_feasible = Some(x);
        Ok(self)
    }

    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of binary variables (qubits).
    pub fn n_vars(&self) -> usize {
        self.constraints.cols()
    }

    /// Number of equality constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.rows()
    }

    /// The constraint matrix `C`.
    pub fn constraints(&self) -> &IntMatrix {
        &self.constraints
    }

    /// The right-hand side `b`.
    pub fn rhs(&self) -> &[i64] {
        &self.rhs
    }

    /// The objective function.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// The optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// The constructively-known feasible solution, if attached.
    pub fn initial_feasible(&self) -> Option<&[i64]> {
        self.initial_feasible.as_deref()
    }

    /// Attaches a generator-computed exact optimum, letting ARG be
    /// evaluated on instances whose feasible set is too large to
    /// enumerate (the 105-variable FLP instances of Fig. 10).
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::InfeasibleInitial`] if `x` is infeasible
    /// or its objective value disagrees with `value`.
    pub fn with_known_optimum(mut self, x: Vec<i64>, value: f64) -> Result<Self, ProblemError> {
        if !self.is_feasible(&x) || (self.evaluate(&x) - value).abs() > 1e-9 {
            return Err(ProblemError::InfeasibleInitial);
        }
        self.known_optimum = Some((x, value));
        Ok(self)
    }

    /// The generator-computed optimum, if attached.
    pub fn known_optimum(&self) -> Option<(&[i64], f64)> {
        self.known_optimum.as_ref().map(|(x, v)| (x.as_slice(), *v))
    }

    /// Whether `x` is binary and satisfies `C x = b`.
    pub fn is_feasible(&self, x: &[i64]) -> bool {
        x.len() == self.n_vars()
            && x.iter().all(|&v| v == 0 || v == 1)
            && self.constraints.mul_vec(x) == self.rhs
    }

    /// Total constraint violation `‖C x − b‖₁`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n_vars()`.
    pub fn violation(&self, x: &[i64]) -> f64 {
        self.constraints
            .mul_vec(x)
            .iter()
            .zip(&self.rhs)
            .map(|(&got, &want)| (got - want).abs() as f64)
            .sum()
    }

    /// Objective value `f(x)`.
    pub fn evaluate(&self, x: &[i64]) -> f64 {
        self.objective.eval(x)
    }

    /// Penalized objective used by the penalty-term methods: the
    /// violation is charged in the *unfavourable* direction of the
    /// sense (paper §2.1's `f(x) + λ‖Cx − b‖`).
    pub fn evaluate_penalized(&self, x: &[i64], lambda: f64) -> f64 {
        let f = self.evaluate(x);
        let v = lambda * self.violation(x);
        match self.sense {
            Sense::Minimize => f + v,
            Sense::Maximize => f - v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Problem {
        // min 3x1 + x2 + 2x3  s.t.  x1 + x2 + x3 = 1
        Problem::new(
            "toy",
            IntMatrix::from_rows(&[vec![1, 1, 1]]),
            vec![1],
            Objective::linear(vec![3.0, 1.0, 2.0]),
            Sense::Minimize,
        )
        .unwrap()
    }

    #[test]
    fn feasibility_checks() {
        let p = toy();
        assert!(p.is_feasible(&[0, 1, 0]));
        assert!(!p.is_feasible(&[1, 1, 0]));
        assert!(!p.is_feasible(&[0, 0, 0]));
        assert!(!p.is_feasible(&[0, 2, -1])); // non-binary
    }

    #[test]
    fn violation_is_l1_norm() {
        let p = toy();
        assert_eq!(p.violation(&[1, 1, 1]), 2.0);
        assert_eq!(p.violation(&[0, 0, 0]), 1.0);
        assert_eq!(p.violation(&[0, 1, 0]), 0.0);
    }

    #[test]
    fn penalized_objective_directions() {
        let p = toy();
        // Infeasible point pays a positive penalty when minimizing.
        assert!(p.evaluate_penalized(&[1, 1, 0], 10.0) > p.evaluate(&[1, 1, 0]));
        let pmax = Problem::new(
            "toy-max",
            IntMatrix::from_rows(&[vec![1, 1, 1]]),
            vec![1],
            Objective::linear(vec![3.0, 1.0, 2.0]),
            Sense::Maximize,
        )
        .unwrap();
        assert!(pmax.evaluate_penalized(&[1, 1, 0], 10.0) < pmax.evaluate(&[1, 1, 0]));
    }

    #[test]
    fn quadratic_objective_eval() {
        let obj = Objective {
            constant: 1.0,
            linear: vec![0.0, 2.0],
            quadratic: vec![(0, 1, 5.0)],
        };
        assert_eq!(obj.eval(&[1, 1]), 8.0);
        assert_eq!(obj.eval(&[1, 0]), 1.0);
        assert_eq!(obj.degree(), 2);
        assert_eq!(Objective::linear(vec![1.0]).degree(), 1);
    }

    #[test]
    fn construction_validates_shapes() {
        let c = IntMatrix::from_rows(&[vec![1, 1]]);
        assert!(matches!(
            Problem::new(
                "bad",
                c.clone(),
                vec![1, 2],
                Objective::linear(vec![0.0, 0.0]),
                Sense::Minimize
            ),
            Err(ProblemError::RhsMismatch { .. })
        ));
        assert!(matches!(
            Problem::new(
                "bad",
                c,
                vec![1],
                Objective::linear(vec![0.0]),
                Sense::Minimize
            ),
            Err(ProblemError::ObjectiveMismatch { .. })
        ));
    }

    #[test]
    fn initial_feasible_is_validated() {
        let p = toy();
        assert!(p.clone().with_initial_feasible(vec![1, 1, 0]).is_err());
        let p = p.with_initial_feasible(vec![0, 1, 0]).unwrap();
        assert_eq!(p.initial_feasible(), Some(&[0i64, 1, 0][..]));
    }

    #[test]
    fn sense_helpers() {
        assert!(Sense::Minimize.is_better(1.0, 2.0));
        assert!(Sense::Maximize.is_better(2.0, 1.0));
        assert_eq!(Sense::Minimize.worst(), f64::INFINITY);
    }
}
