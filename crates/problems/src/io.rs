//! Plain-text serialization of problem instances.
//!
//! A line-oriented format for persisting and sharing instances (the
//! paper's artifact ships its benchmark cases as files; this is the
//! equivalent):
//!
//! ```text
//! # anything after '#' is a comment
//! name flp-2x1
//! sense min
//! vars 6
//! objective constant 0
//! objective linear 0 4
//! objective quadratic 0 3 1.5
//! constraint 1 : 0 0 1 1 0 0       # b : dense coefficient row
//! initial 1 0 1 0 0 0
//! ```

use crate::problem::{Objective, Problem, Sense};
use rasengan_math::IntMatrix;
use std::fmt;

/// Error parsing a problem file.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseProblemError {
    /// 1-based line number of the offending line (0 for structural
    /// errors spanning the whole file).
    pub line: usize,
    /// The offending line's text, trimmed (empty for structural errors).
    pub text: String,
    /// What went wrong.
    pub message: String,
}

impl ParseProblemError {
    /// Builds an error anchored at a 1-based line with its source text.
    pub fn at(line: usize, text: impl Into<String>, message: impl Into<String>) -> Self {
        ParseProblemError {
            line,
            text: text.into(),
            message: message.into(),
        }
    }

    /// Builds a structural error spanning the whole file (line 0).
    pub fn structural(message: impl Into<String>) -> Self {
        Self::at(0, "", message)
    }
}

impl fmt::Display for ParseProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.text.is_empty() {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(
                f,
                "line {}: {} (in `{}`)",
                self.line, self.message, self.text
            )
        }
    }
}

impl std::error::Error for ParseProblemError {}

fn err(line: usize, text: &str, message: impl Into<String>) -> ParseProblemError {
    ParseProblemError::at(line, text.trim(), message)
}

/// Serializes a problem to the text format.
///
/// # Example
///
/// ```
/// use rasengan_problems::io::{parse_problem, write_problem};
/// use rasengan_problems::registry::{benchmark, BenchmarkId};
///
/// let p = benchmark(BenchmarkId::parse("J1").unwrap());
/// let text = write_problem(&p);
/// let q = parse_problem(&text).unwrap();
/// assert_eq!(p.n_vars(), q.n_vars());
/// assert_eq!(p.constraints(), q.constraints());
/// ```
pub fn write_problem(problem: &Problem) -> String {
    let mut out = String::new();
    out.push_str("# rasengan problem file v1\n");
    out.push_str(&format!("name {}\n", problem.name()));
    out.push_str(&format!(
        "sense {}\n",
        match problem.sense() {
            Sense::Minimize => "min",
            Sense::Maximize => "max",
        }
    ));
    out.push_str(&format!("vars {}\n", problem.n_vars()));
    let obj = problem.objective();
    if obj.constant != 0.0 {
        out.push_str(&format!("objective constant {}\n", obj.constant));
    }
    for (i, &c) in obj.linear.iter().enumerate() {
        if c != 0.0 {
            out.push_str(&format!("objective linear {i} {c}\n"));
        }
    }
    for &(i, j, w) in &obj.quadratic {
        out.push_str(&format!("objective quadratic {i} {j} {w}\n"));
    }
    for (row, &b) in problem.constraints().iter_rows().zip(problem.rhs().iter()) {
        let coeffs: Vec<String> = row.iter().map(i64::to_string).collect();
        out.push_str(&format!("constraint {b} : {}\n", coeffs.join(" ")));
    }
    if let Some(init) = problem.initial_feasible() {
        let bits: Vec<String> = init.iter().map(i64::to_string).collect();
        out.push_str(&format!("initial {}\n", bits.join(" ")));
    }
    out
}

/// Parses a problem from the text format.
///
/// # Errors
///
/// Returns [`ParseProblemError`] with the offending line on malformed
/// input, dimension mismatches, or an infeasible `initial` line.
pub fn parse_problem(text: &str) -> Result<Problem, ParseProblemError> {
    let mut name = "unnamed".to_string();
    let mut sense = Sense::Minimize;
    let mut n_vars: Option<usize> = None;
    let mut constant = 0.0f64;
    let mut linear: Vec<f64> = Vec::new();
    let mut quadratic: Vec<(usize, usize, f64)> = Vec::new();
    let mut rows: Vec<Vec<i64>> = Vec::new();
    let mut rhs: Vec<i64> = Vec::new();
    let mut initial: Option<Vec<i64>> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("non-empty line");
        match keyword {
            "name" => {
                name = words.collect::<Vec<_>>().join(" ");
            }
            "sense" => {
                sense = match words.next() {
                    Some("min") => Sense::Minimize,
                    Some("max") => Sense::Maximize,
                    other => return Err(err(lineno, raw, format!("bad sense {other:?}"))),
                };
            }
            "vars" => {
                let n: usize = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err(lineno, raw, "vars needs a count"))?;
                n_vars = Some(n);
                linear.resize(n, 0.0);
            }
            "objective" => {
                let n = n_vars.ok_or_else(|| err(lineno, raw, "objective before vars"))?;
                match words.next() {
                    Some("constant") => {
                        constant = words
                            .next()
                            .and_then(|w| w.parse().ok())
                            .ok_or_else(|| err(lineno, raw, "bad constant"))?;
                    }
                    Some("linear") => {
                        let i: usize = words
                            .next()
                            .and_then(|w| w.parse().ok())
                            .ok_or_else(|| err(lineno, raw, "bad linear index"))?;
                        let c: f64 = words
                            .next()
                            .and_then(|w| w.parse().ok())
                            .ok_or_else(|| err(lineno, raw, "bad linear coefficient"))?;
                        if i >= n {
                            return Err(err(lineno, raw, format!("linear index {i} ≥ vars {n}")));
                        }
                        linear[i] = c;
                    }
                    Some("quadratic") => {
                        let i: usize = words
                            .next()
                            .and_then(|w| w.parse().ok())
                            .ok_or_else(|| err(lineno, raw, "bad quadratic index"))?;
                        let j: usize = words
                            .next()
                            .and_then(|w| w.parse().ok())
                            .ok_or_else(|| err(lineno, raw, "bad quadratic index"))?;
                        let w: f64 = words
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| err(lineno, raw, "bad quadratic weight"))?;
                        if i >= n || j >= n {
                            return Err(err(lineno, raw, "quadratic index out of range"));
                        }
                        quadratic.push((i, j, w));
                    }
                    other => return Err(err(lineno, raw, format!("bad objective kind {other:?}"))),
                }
            }
            "constraint" => {
                let n = n_vars.ok_or_else(|| err(lineno, raw, "constraint before vars"))?;
                let b: i64 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err(lineno, raw, "constraint needs a bound"))?;
                match words.next() {
                    Some(":") => {}
                    other => return Err(err(lineno, raw, format!("expected ':', got {other:?}"))),
                }
                let coeffs: Result<Vec<i64>, _> = words.map(str::parse).collect();
                let coeffs =
                    coeffs.map_err(|_| err(lineno, raw, "non-integer constraint coefficient"))?;
                if coeffs.len() != n {
                    return Err(err(
                        lineno,
                        raw,
                        format!("constraint has {} coefficients, expected {n}", coeffs.len()),
                    ));
                }
                rows.push(coeffs);
                rhs.push(b);
            }
            "initial" => {
                let bits: Result<Vec<i64>, _> = words.map(str::parse).collect();
                initial = Some(bits.map_err(|_| err(lineno, raw, "non-integer initial bit"))?);
            }
            other => return Err(err(lineno, raw, format!("unknown keyword `{other}`"))),
        }
    }

    let n = n_vars.ok_or_else(|| ParseProblemError::structural("missing vars line"))?;
    let constraints = if rows.is_empty() {
        IntMatrix::zeros(0, n)
    } else {
        IntMatrix::from_rows(&rows)
    };
    let mut problem = Problem::new(
        name,
        constraints,
        rhs,
        Objective {
            constant,
            linear,
            quadratic,
        },
        sense,
    )
    .map_err(|e| ParseProblemError::structural(e.to_string()))?;
    if let Some(bits) = initial {
        problem = problem
            .with_initial_feasible(bits)
            .map_err(|e| ParseProblemError::structural(e.to_string()))?;
    }
    Ok(problem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{all_ids, benchmark};

    #[test]
    fn every_benchmark_roundtrips() {
        for id in all_ids() {
            let p = benchmark(id);
            let text = write_problem(&p);
            let q = parse_problem(&text).unwrap_or_else(|e| panic!("{id}: {e}"));
            assert_eq!(p.name(), q.name(), "{id}");
            assert_eq!(p.sense(), q.sense(), "{id}");
            assert_eq!(p.constraints(), q.constraints(), "{id}");
            assert_eq!(p.rhs(), q.rhs(), "{id}");
            assert_eq!(p.objective().linear, q.objective().linear, "{id}");
            assert_eq!(p.objective().quadratic, q.objective().quadratic, "{id}");
            assert_eq!(p.initial_feasible(), q.initial_feasible(), "{id}");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header\nname t # trailing\nsense max\nvars 2\nconstraint 1 : 1 1\n";
        let p = parse_problem(text).unwrap();
        assert_eq!(p.name(), "t");
        assert_eq!(p.sense(), Sense::Maximize);
        assert_eq!(p.n_constraints(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_problem("vars 2\nconstraint 1 : 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("expected 2"));

        let e = parse_problem("vars 1\nfrobnicate\n").unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse_problem("constraint 1 : 1\n").unwrap_err();
        assert!(e.message.contains("before vars"));
    }

    #[test]
    fn missing_vars_rejected() {
        let e = parse_problem("name x\n").unwrap_err();
        assert!(e.message.contains("missing vars"));
        assert_eq!(e.line, 0);
        assert!(e.text.is_empty(), "structural errors carry no line text");
    }

    #[test]
    fn every_error_arm_reports_line_and_text() {
        // One entry per error arm of `parse_problem`:
        // (input, expected 1-based line, message fragment).
        let arms = [
            ("vars 2\nsense sideways\n", 2, "bad sense"),
            ("name t\nvars\n", 2, "vars needs a count"),
            ("objective linear 0 1\n", 1, "objective before vars"),
            ("vars 2\nobjective constant x\n", 2, "bad constant"),
            ("vars 2\nobjective linear q 1\n", 2, "bad linear index"),
            (
                "vars 2\nobjective linear 0 q\n",
                2,
                "bad linear coefficient",
            ),
            ("vars 2\nobjective linear 7 1\n", 2, "linear index 7"),
            (
                "vars 2\nobjective quadratic q 1 1\n",
                2,
                "bad quadratic index",
            ),
            (
                "vars 2\nobjective quadratic 0 q 1\n",
                2,
                "bad quadratic index",
            ),
            (
                "vars 2\nobjective quadratic 0 1 q\n",
                2,
                "bad quadratic weight",
            ),
            (
                "vars 2\nobjective quadratic 0 7 1\n",
                2,
                "quadratic index out of range",
            ),
            ("vars 2\nobjective cubic 0 1\n", 2, "bad objective kind"),
            ("constraint 1 : 1\n", 1, "constraint before vars"),
            ("vars 2\nconstraint\n", 2, "constraint needs a bound"),
            ("vars 2\nconstraint 1 1 1\n", 2, "expected ':'"),
            (
                "vars 2\nconstraint 1 : 1 z\n",
                2,
                "non-integer constraint coefficient",
            ),
            ("vars 2\nconstraint 1 : 1\n", 2, "expected 2"),
            (
                "vars 2\nconstraint 1 : 1 1\ninitial 1 z\n",
                3,
                "non-integer initial bit",
            ),
            ("vars 2\nfrobnicate\n", 2, "unknown keyword"),
        ];
        for (input, line, fragment) in arms {
            let e = parse_problem(input).unwrap_err();
            assert_eq!(e.line, line, "line number for {input:?}: {e}");
            assert!(e.message.contains(fragment), "message for {input:?}: {e}");
            let offending = input.lines().nth(line - 1).unwrap().trim();
            assert_eq!(e.text, offending, "offending text for {input:?}");
            let shown = e.to_string();
            assert!(
                shown.contains(&format!("line {line}")) && shown.contains(offending),
                "display must cite line and text: {shown}"
            );
        }
    }

    #[test]
    fn infeasible_initial_rejected() {
        let text = "vars 2\nconstraint 1 : 1 1\ninitial 1 1\n";
        let e = parse_problem(text).unwrap_err();
        assert!(e.message.contains("violates"), "{e}");
    }

    #[test]
    fn objective_values_roundtrip_exactly() {
        let text = "vars 3\nobjective constant 2.5\nobjective linear 1 -0.125\nobjective quadratic 0 2 3.75\nconstraint 1 : 1 1 1\n";
        let p = parse_problem(text).unwrap();
        assert_eq!(p.objective().constant, 2.5);
        assert_eq!(p.objective().linear[1], -0.125);
        assert_eq!(p.objective().quadratic, vec![(0, 2, 3.75)]);
        let again = parse_problem(&write_problem(&p)).unwrap();
        assert_eq!(again.objective().quadratic, p.objective().quadratic);
    }
}
