//! Constrained-binary-optimization problems for the Rasengan
//! reproduction.
//!
//! Implements the problem substrate of the paper's evaluation (§5.1):
//! the [`Problem`] type (`min/max f(x)` s.t. `C x = b`, `x ∈ {0,1}^n`),
//! the five application domains with seeded generators and linear-time
//! initial feasible solutions, feasible-space enumeration / exact optima
//! for the ARG metric, constraint-topology statistics, and the
//! 20-benchmark registry (F1–G4).
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`problem`] | Eq. 1, penalty form of §2.1 |
//! | [`flp`] | facility location \[14\] |
//! | [`kpp`] | k-partition \[6\] |
//! | [`jsp`] | job scheduling \[42\] |
//! | [`scp`] | set covering \[8\] |
//! | [`gcp`] | graph coloring \[23\] |
//! | [`enumerate`] | `E_opt`, `#feasible` (Table 2) |
//! | [`topology`] | constraint-graph average degree (Table 2) |
//! | [`registry`] | the 20 benchmarks |
//!
//! # Example
//!
//! ```
//! use rasengan_problems::registry::{benchmark, BenchmarkId};
//! use rasengan_problems::{enumerate_feasible, optimum};
//!
//! let j1 = benchmark(BenchmarkId::parse("J1").unwrap());
//! let feasible = enumerate_feasible(&j1);
//! let (best, value) = optimum(&j1);
//! assert!(feasible.contains(&best));
//! assert!(feasible.iter().all(|x| !j1.sense().is_better(j1.evaluate(x), value)));
//! ```

pub mod binpack;
pub mod builder;
pub mod enumerate;
pub mod fingerprint;
pub mod flp;
pub mod gcp;
pub mod ingest;
pub mod io;
pub mod jsp;
pub mod kpp;
pub mod maxcut;
pub mod portfolio;
pub mod problem;
pub mod registry;
pub mod scp;
pub mod topology;

pub use builder::{BuildError, Cmp, ProblemBuilder};
pub use enumerate::{brute_force_feasible, enumerate_feasible, mean_feasible_objective, optimum};
pub use fingerprint::fingerprint;
pub use ingest::{parse_as, write_as, Format};
pub use problem::{Objective, Problem, ProblemError, Sense};
pub use registry::{all_ids, benchmark, cases, BenchmarkId, Domain};
pub use topology::{constraint_topology, ConstraintTopology};
