//! Balanced max-cut — the canonical graph workload of the QUBO
//! benchmarking literature (every encoding catalog leads with it).
//!
//! Partition the vertices of a weighted graph into two equal halves,
//! maximizing the total weight of edges crossing the cut:
//!
//! ```text
//! max  Σ_{(u,v)∈E} w_uv (x_u + x_v − 2 x_u x_v)
//! s.t. Σ_v x_v = ⌊n/2⌋
//! ```
//!
//! The single cardinality row makes the balanced variant a constrained
//! problem the transition-Hamiltonian machinery handles natively (the
//! unconstrained variant would have an empty constraint system). Two
//! graph families are generated: Erdős–Rényi (each edge present
//! independently) and circulant regular graphs (vertex `i` adjacent to
//! `i ± o` for each offset `o`, giving a `2·|offsets|`-regular graph —
//! or one less when an offset is exactly `n/2`).

use crate::problem::{Objective, Problem, Sense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasengan_math::IntMatrix;

/// A generated balanced max-cut instance.
#[derive(Clone, Debug)]
pub struct MaxCut {
    /// Number of vertices.
    pub n: usize,
    /// Weighted edges `(u, v, w)` with `u < v`.
    pub edges: Vec<(usize, usize, f64)>,
    /// Graph family tag used in the instance name.
    pub family: &'static str,
}

impl MaxCut {
    /// Generates a seeded Erdős–Rényi graph: each of the `n(n−1)/2`
    /// candidate edges is present with probability `density`, carrying
    /// a weight in 1–3. At least one edge is guaranteed.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `density` is outside `(0, 1]`.
    pub fn generate_er(n: usize, density: f64, seed: u64) -> Self {
        assert!(n >= 2, "max-cut needs at least 2 vertices");
        assert!(density > 0.0 && density <= 1.0, "density must be in (0,1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(density) {
                    edges.push((u, v, rng.gen_range(1..=3) as f64));
                }
            }
        }
        if edges.is_empty() {
            edges.push((0, 1, rng.gen_range(1..=3) as f64));
        }
        MaxCut {
            n,
            edges,
            family: "er",
        }
    }

    /// Generates a seeded circulant regular graph: vertex `i` is
    /// adjacent to `i ± o (mod n)` for every offset `o`, with seeded
    /// weights in 1–3. Offsets must be distinct, in `1..=n/2`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, offsets are empty, out of range, or repeat.
    pub fn generate_regular(n: usize, offsets: &[usize], seed: u64) -> Self {
        assert!(n >= 2, "max-cut needs at least 2 vertices");
        assert!(!offsets.is_empty(), "regular graph needs offsets");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen = std::collections::BTreeSet::new();
        let mut edges = Vec::new();
        for &o in offsets {
            assert!(o >= 1 && o <= n / 2, "offset {o} out of range for n={n}");
            assert!(seen.insert(o), "duplicate offset {o}");
            for u in 0..n {
                let v = (u + o) % n;
                let (a, b) = (u.min(v), u.max(v));
                // For o = n/2 each edge appears twice in the sweep; keep
                // the first occurrence only.
                if edges.iter().any(|&(x, y, _)| (x, y) == (a, b)) {
                    continue;
                }
                edges.push((a, b, rng.gen_range(1..=3) as f64));
            }
        }
        edges.sort_by_key(|e| (e.0, e.1));
        MaxCut {
            n,
            edges,
            family: "reg",
        }
    }

    /// Number of binary variables (= vertices).
    pub fn n_vars(&self) -> usize {
        self.n
    }

    /// Builds the [`Problem`]: cut objective + one balance row.
    pub fn into_problem(self) -> Problem {
        let n = self.n;
        let half = (n / 2) as i64;
        let mut linear = vec![0.0; n];
        let mut quadratic = Vec::with_capacity(self.edges.len());
        for &(u, v, w) in &self.edges {
            linear[u] += w;
            linear[v] += w;
            quadratic.push((u, v, -2.0 * w));
        }
        let row = vec![1i64; n];
        // O(n) feasible construction: put the first ⌊n/2⌋ vertices on
        // one side.
        let mut init = vec![0i64; n];
        for bit in init.iter_mut().take(half as usize) {
            *bit = 1;
        }
        let name = format!("maxcut-{}-{}v{}e", self.family, n, self.edges.len());
        Problem::new(
            name,
            IntMatrix::from_rows(&[row]),
            vec![half],
            Objective {
                constant: 0.0,
                linear,
                quadratic,
            },
            Sense::Maximize,
        )
        .expect("max-cut construction is shape-consistent")
        .with_initial_feasible(init)
        .expect("a prefix half-set satisfies the balance row")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{brute_force_feasible, enumerate_feasible, optimum};

    #[test]
    fn er_shapes_and_feasibility() {
        let mc = MaxCut::generate_er(6, 0.5, 3);
        assert_eq!(mc.n_vars(), 6);
        let p = mc.into_problem();
        assert_eq!(p.n_constraints(), 1);
        assert!(p.is_feasible(p.initial_feasible().unwrap()));
        // Balanced: C(6,3) = 20 feasible cuts.
        assert_eq!(enumerate_feasible(&p).len(), 20);
    }

    #[test]
    fn er_graphs_never_empty() {
        // Low density still yields at least one edge.
        for seed in 0..20 {
            assert!(!MaxCut::generate_er(4, 0.01, seed).edges.is_empty());
        }
    }

    #[test]
    fn regular_degree_is_uniform() {
        let mc = MaxCut::generate_regular(10, &[1, 5], 1);
        let mut deg = vec![0usize; 10];
        for &(u, v, _) in &mc.edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        // Offset 1 contributes 2, offset 5 = n/2 contributes 1 → 3-regular.
        assert!(deg.iter().all(|&d| d == 3), "degrees {deg:?}");
    }

    #[test]
    fn objective_counts_cut_weight() {
        let mc = MaxCut {
            n: 4,
            edges: vec![(0, 1, 2.0), (2, 3, 1.0), (0, 2, 1.0)],
            family: "er",
        };
        let p = mc.into_problem();
        // Cut {0,2} vs {1,3}: edges (0,1) and (2,3) cross → weight 3.
        assert_eq!(p.evaluate(&[1, 0, 1, 0]), 3.0);
        // Cut {0,1} vs {2,3}: only (0,2) crosses → weight 1.
        assert_eq!(p.evaluate(&[1, 1, 0, 0]), 1.0);
    }

    #[test]
    fn optimum_beats_mean_cut() {
        let p = MaxCut::generate_er(6, 0.6, 9).into_problem();
        let feas = brute_force_feasible(&p);
        let (_, best) = optimum(&p);
        let mean: f64 = feas.iter().map(|x| p.evaluate(x)).sum::<f64>() / feas.len() as f64;
        assert!(best >= mean, "optimum below mean cut");
    }

    #[test]
    #[should_panic(expected = "offset")]
    fn oversized_offset_panics() {
        MaxCut::generate_regular(6, &[4], 0);
    }
}
