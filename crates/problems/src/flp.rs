//! Facility location problem (FLP) generator.
//!
//! Uncapacitated facility location with `f` candidate facilities and
//! `d` demand points:
//!
//! * `y_i` — facility `i` is opened,
//! * `x_{ij}` — demand `j` is served by facility `i`,
//! * `s_{ij}` — slack binarizing the linking inequality `x_{ij} ≤ y_i`
//!   as the equality `x_{ij} − y_i + s_{ij} = 0`.
//!
//! Constraints: one-hot assignment `Σ_i x_{ij} = 1` per demand, plus one
//! linking equality per `(i, j)` pair. Variable count `f + 2fd`, which
//! reproduces the paper's scaling (e.g. `f=5, d=10` gives the
//! 105-variable top of Fig. 10).
//!
//! The initial feasible solution opens facility 0 and assigns every
//! demand to it — the `O(d)` construction of §5.1.

use crate::problem::{Objective, Problem, Sense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasengan_math::IntMatrix;

/// A generated facility-location instance.
#[derive(Clone, Debug)]
pub struct FacilityLocation {
    /// Number of candidate facilities.
    pub facilities: usize,
    /// Number of demand points.
    pub demands: usize,
    /// Opening cost per facility.
    pub open_cost: Vec<f64>,
    /// Transport cost `t[i][j]` from facility `i` to demand `j`.
    pub transport_cost: Vec<Vec<f64>>,
}

impl FacilityLocation {
    /// Generates a seeded random instance with integer costs in small
    /// ranges (opening 2–10, transport 1–8, as in the literature's toy
    /// scales).
    ///
    /// # Panics
    ///
    /// Panics if `facilities == 0 || demands == 0`.
    pub fn generate(facilities: usize, demands: usize, seed: u64) -> Self {
        assert!(facilities > 0 && demands > 0, "degenerate FLP shape");
        let mut rng = StdRng::seed_from_u64(seed);
        let open_cost = (0..facilities)
            .map(|_| rng.gen_range(2..=10) as f64)
            .collect();
        let transport_cost = (0..facilities)
            .map(|_| (0..demands).map(|_| rng.gen_range(1..=8) as f64).collect())
            .collect();
        FacilityLocation {
            facilities,
            demands,
            open_cost,
            transport_cost,
        }
    }

    /// Total number of binary variables: `f + 2fd`.
    pub fn n_vars(&self) -> usize {
        self.facilities + 2 * self.facilities * self.demands
    }

    /// Index of `y_i`.
    pub fn y(&self, i: usize) -> usize {
        i
    }

    /// Index of `x_{ij}`.
    pub fn x(&self, i: usize, j: usize) -> usize {
        self.facilities + i * self.demands + j
    }

    /// Index of the slack `s_{ij}`.
    pub fn s(&self, i: usize, j: usize) -> usize {
        self.facilities + self.facilities * self.demands + i * self.demands + j
    }

    /// Builds the [`Problem`] (constraints, objective, initial feasible
    /// solution).
    pub fn into_problem(self) -> Problem {
        let (f, d) = (self.facilities, self.demands);
        let n = self.n_vars();
        let mut rows = Vec::new();
        let mut rhs = Vec::new();

        // One-hot demand assignment: Σ_i x_{ij} = 1.
        for j in 0..d {
            let mut row = vec![0i64; n];
            for i in 0..f {
                row[self.x(i, j)] = 1;
            }
            rows.push(row);
            rhs.push(1);
        }
        // Linking: x_{ij} − y_i + s_{ij} = 0.
        for i in 0..f {
            for j in 0..d {
                let mut row = vec![0i64; n];
                row[self.x(i, j)] = 1;
                row[self.y(i)] = -1;
                row[self.s(i, j)] = 1;
                rows.push(row);
                rhs.push(0);
            }
        }

        let mut linear = vec![0.0; n];
        for i in 0..f {
            linear[self.y(i)] = self.open_cost[i];
            for j in 0..d {
                linear[self.x(i, j)] = self.transport_cost[i][j];
            }
        }

        // O(d) feasible construction: open facility 0, serve everything
        // from it; slacks s_{i,j} = y_i − x_{ij}.
        let mut init = vec![0i64; n];
        init[self.y(0)] = 1;
        for j in 0..d {
            init[self.x(0, j)] = 1;
        }
        // s_{0,j} = 1 − 1 = 0 (already), s_{i>0,j} = 0 − 0 = 0.

        let name = format!("flp-{f}x{d}");
        let (opt_x, opt_v) = self.exact_optimum();
        Problem::new(
            name,
            IntMatrix::from_rows(&rows),
            rhs,
            Objective::linear(linear),
            Sense::Minimize,
        )
        .expect("FLP construction is shape-consistent")
        .with_initial_feasible(init)
        .expect("FLP constructive solution is feasible")
        .with_known_optimum(opt_x, opt_v)
        .expect("FLP subset-enumeration optimum is feasible")
    }

    /// Exact optimum by enumerating the `2^f − 1` nonempty facility
    /// subsets and assigning each demand to its cheapest open facility —
    /// polynomial in demands, so it scales to the 105-variable Fig. 10
    /// instances where feasible-set enumeration cannot.
    ///
    /// # Panics
    ///
    /// Panics if `facilities > 20` (subset enumeration budget).
    pub fn exact_optimum(&self) -> (Vec<i64>, f64) {
        let (f, d) = (self.facilities, self.demands);
        assert!(
            f <= 20,
            "facility subset enumeration limited to 20 facilities"
        );
        let mut best_cost = f64::INFINITY;
        let mut best_mask = 1usize;
        for mask in 1usize..(1 << f) {
            let mut cost: f64 = (0..f)
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| self.open_cost[i])
                .sum();
            for j in 0..d {
                cost += (0..f)
                    .filter(|i| mask >> i & 1 == 1)
                    .map(|i| self.transport_cost[i][j])
                    .fold(f64::INFINITY, f64::min);
            }
            if cost < best_cost {
                best_cost = cost;
                best_mask = mask;
            }
        }
        // Materialize the full variable vector (y, x, s).
        let mut x = vec![0i64; self.n_vars()];
        for i in 0..f {
            if best_mask >> i & 1 == 1 {
                x[self.y(i)] = 1;
            }
        }
        for j in 0..d {
            let (cheapest, _) = (0..f)
                .filter(|i| best_mask >> i & 1 == 1)
                .map(|i| (i, self.transport_cost[i][j]))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("mask is nonempty");
            x[self.x(cheapest, j)] = 1;
        }
        for i in 0..f {
            for j in 0..d {
                x[self.s(i, j)] = x[self.y(i)] - x[self.x(i, j)];
            }
        }
        (x, best_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{brute_force_feasible, enumerate_feasible};

    #[test]
    fn variable_count_formula() {
        let flp = FacilityLocation::generate(5, 10, 1);
        assert_eq!(flp.n_vars(), 105); // the paper's largest Fig. 10 scale
        let flp = FacilityLocation::generate(2, 1, 1);
        assert_eq!(flp.n_vars(), 6); // the smallest
    }

    #[test]
    fn constraint_count() {
        let p = FacilityLocation::generate(3, 2, 2).into_problem();
        // d one-hot rows + f·d linking rows.
        assert_eq!(p.n_constraints(), 2 + 6);
    }

    #[test]
    fn initial_solution_is_feasible() {
        for seed in 0..5 {
            let p = FacilityLocation::generate(3, 3, seed).into_problem();
            let init = p.initial_feasible().unwrap();
            assert!(p.is_feasible(init));
        }
    }

    #[test]
    fn enumeration_matches_brute_force_small() {
        let p = FacilityLocation::generate(2, 2, 7).into_problem();
        assert_eq!(p.n_vars(), 10);
        let bfs = enumerate_feasible(&p);
        let brute = brute_force_feasible(&p);
        assert_eq!(bfs, brute);
        assert!(!bfs.is_empty());
    }

    #[test]
    fn feasible_solutions_open_used_facilities() {
        let p = FacilityLocation::generate(2, 1, 3).into_problem();
        let flp = FacilityLocation::generate(2, 1, 3);
        for x in enumerate_feasible(&p) {
            for i in 0..2 {
                for j in 0..1 {
                    // x_{ij} = 1 implies y_i = 1 (the linking constraint).
                    if x[flp.x(i, j)] == 1 {
                        assert_eq!(x[flp.y(i)], 1);
                    }
                }
            }
        }
    }

    #[test]
    fn seeds_change_costs_not_structure() {
        let a = FacilityLocation::generate(2, 2, 1);
        let b = FacilityLocation::generate(2, 2, 2);
        assert_eq!(a.n_vars(), b.n_vars());
        assert_ne!(
            (a.open_cost.clone(), a.transport_cost.clone()),
            (b.open_cost.clone(), b.transport_cost.clone())
        );
        // Same seed reproduces exactly.
        let a2 = FacilityLocation::generate(2, 2, 1);
        assert_eq!(a.open_cost, a2.open_cost);
        assert_eq!(a.transport_cost, a2.transport_cost);
    }

    #[test]
    fn objective_counts_open_and_transport() {
        let flp = FacilityLocation::generate(2, 1, 4);
        let p = flp.clone().into_problem();
        let init = p.initial_feasible().unwrap();
        let expect = flp.open_cost[0] + flp.transport_cost[0][0];
        assert_eq!(p.evaluate(init), expect);
    }
}
