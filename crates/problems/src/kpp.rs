//! K-partition problem (KPP) generator.
//!
//! Balanced graph partitioning in the style of Bui & Moon: split `v`
//! vertices into `k` parts of equal size, minimizing the weight of cut
//! edges.
//!
//! * `x_{vp}` — vertex `v` lies in part `p`,
//! * one-hot per vertex: `Σ_p x_{vp} = 1`,
//! * balance per part: `Σ_v x_{vp} = v/k` (spans *all* vertices — the
//!   wide constraints the paper calls out as making "effective
//!   transitions harder to match" in §5.2's application-dependency
//!   discussion).
//!
//! The objective is quadratic: each edge `(a, b, w)` pays `w` unless the
//! endpoints share a part, encoded as `w − w·Σ_p x_{ap} x_{bp}`.

use crate::problem::{Objective, Problem, Sense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasengan_math::IntMatrix;

/// A generated k-partition instance.
#[derive(Clone, Debug)]
pub struct KPartition {
    /// Number of vertices (must be divisible by `parts`).
    pub vertices: usize,
    /// Number of parts.
    pub parts: usize,
    /// Weighted edges `(a, b, w)`.
    pub edges: Vec<(usize, usize, f64)>,
}

impl KPartition {
    /// Generates a seeded random instance: an Erdős–Rényi-style graph
    /// with edge probability 0.5 and integer weights 1–5.
    ///
    /// # Panics
    ///
    /// Panics if `vertices` is not divisible by `parts` or `parts < 2`.
    pub fn generate(vertices: usize, parts: usize, seed: u64) -> Self {
        assert!(parts >= 2, "need at least two parts");
        assert_eq!(
            vertices % parts,
            0,
            "vertices must divide evenly into parts"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 0..vertices {
            for b in (a + 1)..vertices {
                if rng.gen_bool(0.5) {
                    edges.push((a, b, rng.gen_range(1..=5) as f64));
                }
            }
        }
        // Guarantee at least one edge so the objective is non-trivial.
        if edges.is_empty() {
            edges.push((0, 1, 1.0));
        }
        KPartition {
            vertices,
            parts,
            edges,
        }
    }

    /// Total number of binary variables: `v·k`.
    pub fn n_vars(&self) -> usize {
        self.vertices * self.parts
    }

    /// Index of `x_{vp}`.
    pub fn x(&self, v: usize, p: usize) -> usize {
        v * self.parts + p
    }

    /// Builds the [`Problem`].
    pub fn into_problem(self) -> Problem {
        let (v, k) = (self.vertices, self.parts);
        let n = self.n_vars();
        let cap = v / k;
        let mut rows = Vec::new();
        let mut rhs = Vec::new();

        // One-hot per vertex.
        for vert in 0..v {
            let mut row = vec![0i64; n];
            for p in 0..k {
                row[self.x(vert, p)] = 1;
            }
            rows.push(row);
            rhs.push(1);
        }
        // Balance per part (spans all vertices).
        for p in 0..k {
            let mut row = vec![0i64; n];
            for vert in 0..v {
                row[self.x(vert, p)] = 1;
            }
            rows.push(row);
            rhs.push(cap as i64);
        }

        // Cut objective: Σ_e w_e (1 − Σ_p x_{ap} x_{bp}), offset by +1 so
        // the optimum is never zero (ARG, Eq. 9, divides by E_opt; a
        // perfectly uncut partition would otherwise make it undefined).
        let mut constant = 1.0;
        let mut quadratic = Vec::new();
        for &(a, b, w) in &self.edges {
            constant += w;
            for p in 0..k {
                quadratic.push((self.x(a, p), self.x(b, p), -w));
            }
        }

        // O(v) greedy feasible construction: round-robin assignment.
        let mut init = vec![0i64; n];
        for vert in 0..v {
            init[self.x(vert, vert % k)] = 1;
        }

        let name = format!("kpp-{v}v{k}p");
        Problem::new(
            name,
            IntMatrix::from_rows(&rows),
            rhs,
            Objective {
                constant,
                linear: vec![0.0; n],
                quadratic,
            },
            Sense::Minimize,
        )
        .expect("KPP construction is shape-consistent")
        .with_initial_feasible(init)
        .expect("round-robin assignment is balanced")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{brute_force_feasible, enumerate_feasible, optimum};

    #[test]
    fn shapes() {
        let kpp = KPartition::generate(4, 2, 1);
        assert_eq!(kpp.n_vars(), 8);
        let p = kpp.into_problem();
        assert_eq!(p.n_constraints(), 4 + 2);
    }

    #[test]
    fn initial_round_robin_is_feasible() {
        for seed in 0..5 {
            let p = KPartition::generate(6, 3, seed).into_problem();
            assert!(p.is_feasible(p.initial_feasible().unwrap()));
        }
    }

    #[test]
    fn feasible_count_matches_combinatorics() {
        // 4 vertices in 2 balanced parts: C(4,2) = 6 assignments.
        let p = KPartition::generate(4, 2, 2).into_problem();
        let feas = enumerate_feasible(&p);
        assert_eq!(feas.len(), 6);
        assert_eq!(feas, brute_force_feasible(&p));
    }

    #[test]
    fn cut_objective_is_zero_only_without_cut_edges() {
        // Complete graph on 4 vertices: every balanced bipartition cuts
        // exactly 4 of the 6 edges.
        let kpp = KPartition {
            vertices: 4,
            parts: 2,
            edges: vec![
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (1, 2, 1.0),
                (1, 3, 1.0),
                (2, 3, 1.0),
            ],
        };
        let p = kpp.into_problem();
        let (_, v) = optimum(&p);
        assert_eq!(v, 5.0); // 4 cut edges + the fixed +1 offset
    }

    #[test]
    fn partition_separating_edge_pays_weight() {
        let kpp = KPartition {
            vertices: 2,
            parts: 2,
            edges: vec![(0, 1, 3.0)],
        };
        let p = kpp.clone().into_problem();
        // Balanced 2-partition of 2 vertices always separates them.
        let mut x = vec![0i64; 4];
        x[kpp.x(0, 0)] = 1;
        x[kpp.x(1, 1)] = 1;
        assert!(p.is_feasible(&x));
        assert_eq!(p.evaluate(&x), 4.0); // weight 3 cut + offset 1
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn unbalanced_shape_panics() {
        KPartition::generate(5, 2, 0);
    }

    #[test]
    fn balance_constraints_span_all_vertices() {
        let p = KPartition::generate(4, 2, 3).into_problem();
        let topo = crate::topology::constraint_topology(&p);
        // A balance row touches v = 4 variables.
        assert_eq!(topo.max_constraint_span, 4);
    }
}
