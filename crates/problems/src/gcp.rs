//! Graph coloring problem (GCP) generator.
//!
//! Color `v` vertices with at most `k` colors such that adjacent
//! vertices differ, preferring low-index colors:
//!
//! * `x_{vc}` — vertex `v` takes color `c` (one-hot per vertex),
//! * per edge `(a, b)` and color `c`, the conflict inequality
//!   `x_{ac} + x_{bc} ≤ 1` binarized as `x_{ac} + x_{bc} + s_{abc} = 1`.
//!
//! The objective charges color `c` a weight of `c + 1` per vertex, so
//! minimizing it packs vertices into the lowest-numbered colors — a
//! linear stand-in for chromatic-number minimization that keeps the
//! optimum unique-ish and nonzero.
//!
//! §5.2 notes GCP constraints grow with scale (both variables and
//! constraints increase), which this encoding reproduces: variables
//! `vk + |E|k`, constraints `v + |E|k`.

use crate::problem::{Objective, Problem, Sense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasengan_math::IntMatrix;

/// A generated graph-coloring instance.
#[derive(Clone, Debug)]
pub struct GraphColoring {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of available colors.
    pub colors: usize,
    /// Undirected edges.
    pub edges: Vec<(usize, usize)>,
}

impl GraphColoring {
    /// Generates a seeded random *k-colorable* instance: vertices are
    /// secretly pre-partitioned into `k` groups and edges are only drawn
    /// between groups (probability 0.6), guaranteeing feasibility.
    ///
    /// # Panics
    ///
    /// Panics if `colors < 2 || vertices < colors`.
    pub fn generate(vertices: usize, colors: usize, seed: u64) -> Self {
        assert!(colors >= 2 && vertices >= colors, "degenerate GCP shape");
        let mut rng = StdRng::seed_from_u64(seed);
        let group: Vec<usize> = (0..vertices).map(|v| v % colors).collect();
        let mut edges = Vec::new();
        for a in 0..vertices {
            for b in (a + 1)..vertices {
                if group[a] != group[b] && rng.gen_bool(0.6) {
                    edges.push((a, b));
                }
            }
        }
        if edges.is_empty() {
            edges.push((0, 1));
        }
        GraphColoring {
            vertices,
            colors,
            edges,
        }
    }

    /// Total number of binary variables: `v·k + |E|·k`.
    pub fn n_vars(&self) -> usize {
        self.vertices * self.colors + self.edges.len() * self.colors
    }

    /// Index of `x_{vc}`.
    pub fn x(&self, v: usize, c: usize) -> usize {
        v * self.colors + c
    }

    /// Index of the conflict slack for edge `e` and color `c`.
    pub fn s(&self, e: usize, c: usize) -> usize {
        self.vertices * self.colors + e * self.colors + c
    }

    /// Builds the [`Problem`].
    pub fn into_problem(self) -> Problem {
        let (v, k) = (self.vertices, self.colors);
        let n = self.n_vars();
        let mut rows = Vec::new();
        let mut rhs = Vec::new();

        // One-hot per vertex.
        for vert in 0..v {
            let mut row = vec![0i64; n];
            for c in 0..k {
                row[self.x(vert, c)] = 1;
            }
            rows.push(row);
            rhs.push(1);
        }
        // Conflict per edge per color.
        for (e, &(a, b)) in self.edges.iter().enumerate() {
            for c in 0..k {
                let mut row = vec![0i64; n];
                row[self.x(a, c)] = 1;
                row[self.x(b, c)] = 1;
                row[self.s(e, c)] = 1;
                rows.push(row);
                rhs.push(1);
            }
        }

        // Prefer low colors: weight c+1 per vertex using color c.
        let mut linear = vec![0.0; n];
        for vert in 0..v {
            for c in 0..k {
                linear[self.x(vert, c)] = (c + 1) as f64;
            }
        }

        // O(v) construction: color by the generator's hidden partition
        // (v % k), which is proper by construction; set slacks to match.
        let mut init = vec![0i64; n];
        for vert in 0..v {
            init[self.x(vert, vert % k)] = 1;
        }
        for (e, &(a, b)) in self.edges.iter().enumerate() {
            for c in 0..k {
                let used = init[self.x(a, c)] + init[self.x(b, c)];
                init[self.s(e, c)] = 1 - used;
            }
        }

        let name = format!("gcp-{v}v{k}c{}e", self.edges.len());
        Problem::new(
            name,
            IntMatrix::from_rows(&rows),
            rhs,
            Objective::linear(linear),
            Sense::Minimize,
        )
        .expect("GCP construction is shape-consistent")
        .with_initial_feasible(init)
        .expect("hidden-partition coloring is proper")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{brute_force_feasible, enumerate_feasible, optimum};

    #[test]
    fn shapes() {
        let gcp = GraphColoring {
            vertices: 3,
            colors: 2,
            edges: vec![(0, 1), (1, 2)],
        };
        assert_eq!(gcp.n_vars(), 6 + 4);
        let p = gcp.into_problem();
        assert_eq!(p.n_constraints(), 3 + 4);
    }

    #[test]
    fn initial_coloring_is_feasible() {
        for seed in 0..5 {
            let p = GraphColoring::generate(4, 2, seed).into_problem();
            assert!(p.is_feasible(p.initial_feasible().unwrap()));
        }
    }

    #[test]
    fn enumeration_matches_brute_force() {
        let gcp = GraphColoring {
            vertices: 3,
            colors: 2,
            edges: vec![(0, 1)],
        };
        let p = gcp.into_problem();
        assert_eq!(enumerate_feasible(&p), brute_force_feasible(&p));
    }

    #[test]
    fn feasible_colorings_are_proper() {
        let gcp = GraphColoring::generate(4, 2, 7);
        let p = gcp.clone().into_problem();
        for x in enumerate_feasible(&p) {
            for &(a, b) in &gcp.edges {
                for c in 0..2 {
                    assert!(
                        x[gcp.x(a, c)] + x[gcp.x(b, c)] <= 1,
                        "edge ({a},{b}) monochromatic in color {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn path_graph_two_colors_has_two_proper_colorings() {
        // Path 0—1—2 with 2 colors: colorings 010 and 101.
        let gcp = GraphColoring {
            vertices: 3,
            colors: 2,
            edges: vec![(0, 1), (1, 2)],
        };
        let p = gcp.into_problem();
        assert_eq!(enumerate_feasible(&p).len(), 2);
    }

    #[test]
    fn optimum_prefers_low_colors() {
        // A single edge, 2 colors: both proper colorings cost 1+2 = 3;
        // check the optimum is that value (not 2+2 or 1+1, impossible).
        let gcp = GraphColoring {
            vertices: 2,
            colors: 2,
            edges: vec![(0, 1)],
        };
        let p = gcp.into_problem();
        let (_, v) = optimum(&p);
        assert_eq!(v, 3.0);
    }
}
