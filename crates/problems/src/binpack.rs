//! Bin packing — the logistics workload of the QUBO encoding catalog
//! (one-hot assignment plus capacity rows with slack).
//!
//! Assign each of `m` items (size `s_i`) to one of `B` bins of
//! capacity `C`, paying an opening cost for every bin used and a small
//! seeded placement cost per assignment:
//!
//! ```text
//! min  Σ_b open_b y_b + Σ_{i,b} place_ib x_ib
//! s.t. Σ_b x_ib = 1                       for every item i
//!      Σ_i s_i x_ib − C y_b ≤ 0           for every bin b
//! ```
//!
//! The capacity rows are binarized by hand with `C` unit slack
//! variables per bin (`load + slack = C·y_b`), keeping the constraint
//! matrix ternary and letting the generator attach a first-fit initial
//! feasible solution in O(m·B) — the same hand-rolled idiom as the
//! paper's five domains.

use crate::problem::{Objective, Problem, Sense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasengan_math::IntMatrix;

/// A generated bin-packing instance.
#[derive(Clone, Debug)]
pub struct BinPacking {
    /// Item sizes (1–2 so small instances keep rich feasible sets).
    pub sizes: Vec<i64>,
    /// Number of bins.
    pub bins: usize,
    /// Uniform bin capacity.
    pub capacity: i64,
    /// Opening cost per bin.
    pub open_cost: Vec<f64>,
    /// Placement cost per `(item, bin)` pair, row-major.
    pub place_cost: Vec<f64>,
}

impl BinPacking {
    /// Generates a seeded instance with `items` items over `bins` bins
    /// of the given `capacity`. Sizes are 1–2, opening costs 2–6,
    /// placement costs 1–3.
    ///
    /// Sizes are drawn under the total budget `Σ sᵢ ≤ B(C−1)+1`, which
    /// guarantees first-fit succeeds for ANY seed: a bin refuses a
    /// size-2 item only at load ≥ C−1 and a size-1 item only at load
    /// = C, so a failed placement forces `Σ sᵢ ≥ B(C−1)+2`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or if `items > bins·(capacity−1)+1`
    /// — the budget admits no size assignment at all.
    pub fn generate(items: usize, bins: usize, capacity: i64, seed: u64) -> Self {
        assert!(items > 0 && bins > 0 && capacity > 0, "degenerate shape");
        let budget = bins as i64 * (capacity - 1) + 1;
        assert!(
            items as i64 <= budget,
            "shape cannot guarantee a first-fit packing: {items} items into {bins}×{capacity}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut spent = 0i64;
        let sizes: Vec<i64> = (0..items)
            .map(|i| {
                let left = (items - i - 1) as i64; // later items need ≥ 1 each
                let s = if spent + 2 + left <= budget {
                    rng.gen_range(1..=2)
                } else {
                    1
                };
                spent += s;
                s
            })
            .collect();
        let open_cost = (0..bins).map(|_| rng.gen_range(2..=6) as f64).collect();
        let place_cost = (0..items * bins)
            .map(|_| rng.gen_range(1..=3) as f64)
            .collect();
        BinPacking {
            sizes,
            bins,
            capacity,
            open_cost,
            place_cost,
        }
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.sizes.len()
    }

    /// Column of assignment variable `x_ib`.
    fn x(&self, item: usize, bin: usize) -> usize {
        item * self.bins + bin
    }

    /// Column of bin-used variable `y_b`.
    fn y(&self, bin: usize) -> usize {
        self.n_items() * self.bins + bin
    }

    /// Column of slack unit `u` of bin `b`'s capacity row.
    fn slack(&self, bin: usize, unit: usize) -> usize {
        self.n_items() * self.bins + self.bins + bin * self.capacity as usize + unit
    }

    /// Total number of binary variables: `m·B` assignments + `B` bin
    /// flags + `B·C` capacity slacks.
    pub fn n_vars(&self) -> usize {
        self.n_items() * self.bins + self.bins + self.bins * self.capacity as usize
    }

    /// Builds the [`Problem`].
    pub fn into_problem(self) -> Problem {
        let m = self.n_items();
        let n = self.n_vars();
        let cap = self.capacity as usize;
        let mut rows = Vec::with_capacity(m + self.bins);
        let mut rhs = Vec::with_capacity(m + self.bins);

        // One-hot: each item in exactly one bin.
        for i in 0..m {
            let mut row = vec![0i64; n];
            for b in 0..self.bins {
                row[self.x(i, b)] = 1;
            }
            rows.push(row);
            rhs.push(1);
        }
        // Capacity: Σ s_i x_ib − C y_b + slack_b = 0.
        for b in 0..self.bins {
            let mut row = vec![0i64; n];
            for i in 0..m {
                row[self.x(i, b)] = self.sizes[i];
            }
            row[self.y(b)] = -self.capacity;
            for u in 0..cap {
                row[self.slack(b, u)] = 1;
            }
            rows.push(row);
            rhs.push(0);
        }

        let mut linear = vec![0.0; n];
        for i in 0..m {
            for b in 0..self.bins {
                linear[self.x(i, b)] = self.place_cost[i * self.bins + b];
            }
        }
        for b in 0..self.bins {
            linear[self.y(b)] = self.open_cost[b];
        }

        // First-fit initial feasible solution.
        let mut init = vec![0i64; n];
        let mut load = vec![0i64; self.bins];
        for i in 0..m {
            let b = (0..self.bins)
                .find(|&b| load[b] + self.sizes[i] <= self.capacity)
                .expect("first-fit fits by the size-budget rule");
            init[self.x(i, b)] = 1;
            load[b] += self.sizes[i];
        }
        for b in 0..self.bins {
            if load[b] > 0 {
                init[self.y(b)] = 1;
                // slack = C·y − load.
                for u in 0..(self.capacity - load[b]) as usize {
                    init[self.slack(b, u)] = 1;
                }
            }
        }

        let name = format!("binpack-{}i{}b{}c", m, self.bins, self.capacity);
        Problem::new(
            name,
            IntMatrix::from_rows(&rows),
            rhs,
            Objective {
                constant: 0.0,
                linear,
                quadratic: Vec::new(),
            },
            Sense::Minimize,
        )
        .expect("bin-packing construction is shape-consistent")
        .with_initial_feasible(init)
        .expect("first-fit satisfies one-hot and capacity rows")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{brute_force_feasible, enumerate_feasible, optimum};

    #[test]
    fn shapes_and_feasibility() {
        let bp = BinPacking::generate(2, 2, 2, 1);
        let p = bp.into_problem();
        assert_eq!(p.n_vars(), 2 * 2 + 2 + 2 * 2);
        assert_eq!(p.n_constraints(), 2 + 2);
        assert!(p.is_feasible(p.initial_feasible().unwrap()));
        assert!(enumerate_feasible(&p).len() >= 2);
    }

    #[test]
    fn capacity_rows_bind() {
        let bp = BinPacking {
            sizes: vec![2, 2],
            bins: 2,
            capacity: 2,
            open_cost: vec![1.0, 1.0],
            place_cost: vec![1.0; 4],
        };
        let p = bp.clone().into_problem();
        for x in brute_force_feasible(&p) {
            for b in 0..2 {
                let load: i64 = (0..2).map(|i| bp.sizes[i] * x[bp.x(i, b)]).sum();
                assert!(load <= bp.capacity * x[bp.y(b)], "overfull bin in {x:?}");
            }
        }
    }

    #[test]
    fn optimum_prefers_cheap_packing() {
        // Two size-1 items, one cheap bin that fits both: the optimum
        // opens only the cheap bin.
        let bp = BinPacking {
            sizes: vec![1, 1],
            bins: 2,
            capacity: 2,
            open_cost: vec![1.0, 10.0],
            place_cost: vec![1.0; 4],
        };
        let p = bp.clone().into_problem();
        let (x, _) = optimum(&p);
        assert_eq!(x[bp.y(0)], 1);
        assert_eq!(x[bp.y(1)], 0);
        assert_eq!(x[bp.x(0, 0)], 1);
        assert_eq!(x[bp.x(1, 0)], 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = BinPacking::generate(3, 2, 4, 42);
        let b = BinPacking::generate(3, 2, 4, 42);
        assert_eq!(a.sizes, b.sizes);
        assert_eq!(a.open_cost, b.open_cost);
        let c = BinPacking::generate(3, 2, 4, 43);
        assert!(c.sizes != a.sizes || c.open_cost != a.open_cost || c.place_cost != a.place_cost);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_bins_panics() {
        BinPacking::generate(1, 0, 1, 0);
    }
}
