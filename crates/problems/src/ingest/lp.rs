//! LP-file subset parsing and writing.
//!
//! Covers the binary-LP intake the constraint-generation literature
//! assumes (arXiv:2503.21222): binary variables, a linear objective,
//! and `=` / `≤` / `≥` rows. The accepted grammar is a subset of the
//! CPLEX LP format:
//!
//! ```text
//! \ anything after '\' is a comment
//! Minimize
//!  obj: 2 x1 + 3 x2 - x3
//! Subject To
//!  c1: x1 + x2 <= 3
//!  c2: x1 - 2 x3 = 1
//! Binary
//!  x1 x2 x3
//! End
//! ```
//!
//! Subset rules: every variable must be declared in the `Binary`
//! section (which also fixes column order, so constraint-row
//! permutations of the file cannot reorder columns); each constraint
//! sits on one line; constraint coefficients and right-hand sides must
//! be integers (the native substrate is an integer equality system);
//! objective coefficients may be any floats. Inequalities are binarized
//! with unit slacks via [`ProblemBuilder`]. Constraints are sorted
//! canonically before lowering, so fingerprints are invariant under
//! row-order permutations of the same file.

use crate::builder::{Cmp, ProblemBuilder};
use crate::io::ParseProblemError;
use crate::problem::{Problem, Sense};
use std::collections::HashMap;

fn err(line: usize, text: &str, message: impl Into<String>) -> ParseProblemError {
    ParseProblemError::at(line, text.trim(), message)
}

#[derive(Clone, Copy, PartialEq)]
enum Section {
    Preamble,
    Objective,
    Constraints,
    Binary,
    Bounds,
    End,
}

/// One token of an LP expression.
#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Plus,
    Minus,
    Num(f64),
    Name(String),
    Rel(Cmp),
    Colon,
}

fn tokenize(line: &str, lineno: usize, raw: &str) -> Result<Vec<Tok>, ParseProblemError> {
    let mut toks = Vec::new();
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            '*' => i += 1, // explicit multiplication is optional noise
            '<' | '>' | '=' => {
                let two = chars.get(i + 1) == Some(&'=');
                toks.push(Tok::Rel(match c {
                    '<' => Cmp::Le,
                    '>' => Cmp::Ge,
                    _ => Cmp::Eq,
                }));
                i += if two && c != '=' { 2 } else { 1 };
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '+' || chars[i] == '-')
                            && matches!(chars.get(i - 1), Some('e') | Some('E'))))
                {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let v: f64 = word
                    .parse()
                    .map_err(|_| err(lineno, raw, format!("bad number `{word}`")))?;
                toks.push(Tok::Num(v));
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::Name(chars[start..i].iter().collect()));
            }
            _ => return Err(err(lineno, raw, format!("unexpected character `{c}`"))),
        }
    }
    Ok(toks)
}

/// A linear expression as `(constant, terms)` over variable names.
type Expr = (f64, Vec<(String, f64)>);

/// Parses a `± coeff name`-sequence from tokens, stopping at a relation
/// token (returned with the consumed count) if one appears.
fn parse_expr(
    toks: &[Tok],
    lineno: usize,
    raw: &str,
) -> Result<(Expr, Option<(Cmp, usize)>), ParseProblemError> {
    let mut constant = 0.0;
    let mut terms: Vec<(String, f64)> = Vec::new();
    let mut sign = 1.0;
    let mut pending: Option<f64> = None;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            Tok::Plus | Tok::Minus => {
                if let Some(c) = pending.take() {
                    constant += sign * c;
                }
                sign = if toks[i] == Tok::Minus { -1.0 } else { 1.0 };
                i += 1;
            }
            Tok::Num(v) => {
                if pending.is_some() {
                    return Err(err(lineno, raw, "two numbers in a row"));
                }
                pending = Some(*v);
                i += 1;
            }
            Tok::Name(name) => {
                let coeff = sign * pending.take().unwrap_or(1.0);
                terms.push((name.clone(), coeff));
                sign = 1.0;
                i += 1;
            }
            Tok::Rel(cmp) => {
                if let Some(c) = pending.take() {
                    constant += sign * c;
                }
                return Ok(((constant, terms), Some((*cmp, i + 1))));
            }
            Tok::Colon => return Err(err(lineno, raw, "unexpected `:`")),
        }
    }
    if let Some(c) = pending.take() {
        constant += sign * c;
    }
    Ok(((constant, terms), None))
}

fn section_of(line: &str) -> Option<Section> {
    let squashed: String = line
        .to_ascii_lowercase()
        .chars()
        .filter(|c| !c.is_whitespace() && *c != '.')
        .collect();
    match squashed.as_str() {
        "minimize" | "minimise" | "min" => Some(Section::Objective),
        "maximize" | "maximise" | "max" => Some(Section::Objective),
        "subjectto" | "st" | "suchthat" => Some(Section::Constraints),
        "binary" | "binaries" | "bin" => Some(Section::Binary),
        "bounds" | "bound" => Some(Section::Bounds),
        "end" => Some(Section::End),
        _ => None,
    }
}

fn is_unsupported_section(line: &str) -> bool {
    let squashed: String = line
        .to_ascii_lowercase()
        .chars()
        .filter(|c| !c.is_whitespace() && *c != '-')
        .collect();
    matches!(
        squashed.as_str(),
        "general" | "generals" | "integer" | "integers" | "semicontinuous" | "free"
    )
}

/// One parsed constraint before lowering.
#[derive(Clone, PartialEq, PartialOrd)]
struct RawRow {
    /// `(variable index, coefficient)` in column order.
    terms: Vec<(usize, i64)>,
    /// 0 = Eq, 1 = Le, 2 = Ge (orderable key).
    cmp_rank: u8,
    bound: i64,
}

fn integral(v: f64, lineno: usize, raw: &str, what: &str) -> Result<i64, ParseProblemError> {
    if v.fract() != 0.0 || v.abs() > 1e15 {
        return Err(err(
            lineno,
            raw,
            format!("{what} must be an integer, got {v}"),
        ));
    }
    Ok(v as i64)
}

/// Parses LP text, lowering to a [`Problem`] via [`ProblemBuilder`].
///
/// # Errors
///
/// Returns [`ParseProblemError`] with line number and offending text on
/// malformed input, undeclared/non-binary variables, fractional
/// constraint coefficients, or unsatisfiable inequalities.
pub fn parse_lp(text: &str) -> Result<Problem, ParseProblemError> {
    let mut section = Section::Preamble;
    let mut sense = Sense::Minimize;
    let mut objective_toks: Vec<Tok> = Vec::new();
    let mut objective_line = 0usize;
    let mut objective_raw = String::new();
    let mut rows: Vec<(usize, String, Vec<Tok>)> = Vec::new();
    let mut binary_order: Vec<String> = Vec::new();
    let mut binary_index: HashMap<String, usize> = HashMap::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('\\').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if is_unsupported_section(line) {
            return Err(err(
                lineno,
                raw,
                "unsupported section (only binary variables are accepted)",
            ));
        }
        if let Some(next) = section_of(line) {
            if next == Section::Objective {
                let squashed = line.to_ascii_lowercase();
                sense = if squashed.starts_with("max") {
                    Sense::Maximize
                } else {
                    Sense::Minimize
                };
            }
            section = next;
            continue;
        }
        match section {
            Section::Preamble => {
                return Err(err(lineno, raw, "expected `Minimize` or `Maximize` first"));
            }
            Section::Objective => {
                let mut toks = tokenize(line, lineno, raw)?;
                // Optional `obj:` label.
                if toks.len() >= 2 && matches!(toks[0], Tok::Name(_)) && toks[1] == Tok::Colon {
                    toks.drain(..2);
                }
                if objective_toks.is_empty() {
                    objective_line = lineno;
                    objective_raw = raw.to_string();
                }
                objective_toks.extend(toks);
            }
            Section::Constraints => {
                let mut toks = tokenize(line, lineno, raw)?;
                if toks.len() >= 2 && matches!(toks[0], Tok::Name(_)) && toks[1] == Tok::Colon {
                    toks.drain(..2);
                }
                rows.push((lineno, raw.to_string(), toks));
            }
            Section::Binary => {
                for tok in tokenize(line, lineno, raw)? {
                    match tok {
                        Tok::Name(name) => {
                            if binary_index.contains_key(&name) {
                                return Err(err(
                                    lineno,
                                    raw,
                                    format!("variable `{name}` declared binary twice"),
                                ));
                            }
                            binary_index.insert(name.clone(), binary_order.len());
                            binary_order.push(name);
                        }
                        _ => return Err(err(lineno, raw, "expected variable names")),
                    }
                }
            }
            Section::Bounds => {
                // Binary variables need no bounds; accept and ignore
                // `0 <= x <= 1`-shaped lines, reject anything else.
                let toks = tokenize(line, lineno, raw)?;
                let ok = matches!(
                    toks.as_slice(),
                    [Tok::Num(lo), Tok::Rel(Cmp::Le), Tok::Name(_), Tok::Rel(Cmp::Le), Tok::Num(hi)]
                        if *lo == 0.0 && *hi == 1.0
                );
                if !ok {
                    return Err(err(lineno, raw, "only `0 <= x <= 1` bounds are accepted"));
                }
            }
            Section::End => {
                return Err(err(lineno, raw, "content after `End`"));
            }
        }
    }

    if binary_order.is_empty() {
        return Err(ParseProblemError::structural(
            "missing `Binary` section (every variable must be declared binary)",
        ));
    }
    let n = binary_order.len();

    // Objective over declared columns.
    let ((obj_constant, obj_terms), rel) =
        parse_expr(&objective_toks, objective_line, &objective_raw)?;
    if rel.is_some() {
        return Err(err(
            objective_line,
            &objective_raw,
            "relation operator in objective",
        ));
    }
    let mut linear = vec![0.0; n];
    for (name, coeff) in obj_terms {
        let &col = binary_index.get(&name).ok_or_else(|| {
            err(
                objective_line,
                &objective_raw,
                format!("variable `{name}` not declared binary"),
            )
        })?;
        linear[col] += coeff;
    }

    // Constraints: parse each line as lhs REL rhs, with integral
    // coefficients, then sort canonically before lowering (slack
    // numbering and fingerprints stay invariant under row permutation).
    let mut raw_rows: Vec<RawRow> = Vec::new();
    for (lineno, raw, toks) in &rows {
        let ((lhs_const, lhs_terms), rel) = parse_expr(toks, *lineno, raw)?;
        let Some((cmp, consumed)) = rel else {
            return Err(err(*lineno, raw, "constraint needs `<=`, `>=`, or `=`"));
        };
        let ((rhs_const, rhs_terms), extra) = parse_expr(&toks[consumed..], *lineno, raw)?;
        if extra.is_some() || !rhs_terms.is_empty() {
            return Err(err(*lineno, raw, "right-hand side must be a single number"));
        }
        let bound = integral(rhs_const - lhs_const, *lineno, raw, "right-hand side")?;
        let mut terms: HashMap<usize, i64> = HashMap::new();
        for (name, coeff) in lhs_terms {
            let &col = binary_index.get(&name).ok_or_else(|| {
                err(
                    *lineno,
                    raw,
                    format!("variable `{name}` not declared binary"),
                )
            })?;
            *terms.entry(col).or_insert(0) +=
                integral(coeff, *lineno, raw, "constraint coefficient")?;
        }
        let mut terms: Vec<(usize, i64)> = terms.into_iter().filter(|&(_, a)| a != 0).collect();
        terms.sort_unstable();
        if terms.is_empty() {
            return Err(err(*lineno, raw, "constraint has no variables"));
        }
        let cmp_rank = match cmp {
            Cmp::Eq => 0,
            Cmp::Le => 1,
            Cmp::Ge => 2,
        };
        raw_rows.push(RawRow {
            terms,
            cmp_rank,
            bound,
        });
    }
    raw_rows.sort_by(|a, b| a.partial_cmp(b).expect("integer keys are totally ordered"));

    let mut builder = ProblemBuilder::new(n, sense)
        .name(format!("lp-n{n}"))
        .linear_objective(&linear)
        .constant(obj_constant);
    for row in &raw_rows {
        let cmp = match row.cmp_rank {
            0 => Cmp::Eq,
            1 => Cmp::Le,
            _ => Cmp::Ge,
        };
        builder = builder.constraint(&row.terms, cmp, row.bound);
    }
    builder
        .build()
        .map_err(|e| ParseProblemError::structural(e.to_string()))
}

/// Serializes a problem as an LP file (equality rows only — slack
/// columns are already materialized as binary variables named in index
/// order `x0..x{n-1}`; original variable names are not preserved).
///
/// # Errors
///
/// Returns a message if the objective has quadratic terms (the LP
/// subset is linear).
pub fn write_lp(problem: &Problem) -> Result<String, String> {
    let obj = problem.objective();
    if !obj.quadratic.is_empty() {
        return Err("LP export requires a linear objective".to_string());
    }
    let n = problem.n_vars();
    let mut out = String::new();
    out.push_str("\\ rasengan lp export v1\n");
    out.push_str(match problem.sense() {
        Sense::Minimize => "Minimize\n",
        Sense::Maximize => "Maximize\n",
    });
    let mut line = String::from(" obj:");
    let mut any = false;
    for (i, &c) in obj.linear.iter().enumerate() {
        if c != 0.0 {
            push_term(&mut line, c, Some(i), any);
            any = true;
        }
    }
    if obj.constant != 0.0 {
        push_term(&mut line, obj.constant, None, any);
        any = true;
    }
    if !any {
        line.push_str(" 0 x0");
    }
    out.push_str(&line);
    out.push('\n');
    out.push_str("Subject To\n");
    for (k, (row, &b)) in problem
        .constraints()
        .iter_rows()
        .zip(problem.rhs().iter())
        .enumerate()
    {
        let mut line = format!(" c{k}:");
        let mut any = false;
        for (i, &a) in row.iter().enumerate() {
            if a != 0 {
                push_term(&mut line, a as f64, Some(i), any);
                any = true;
            }
        }
        if !any {
            line.push_str(" 0 x0");
        }
        line.push_str(&format!(" = {b}"));
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("Binary\n");
    for chunk in (0..n).collect::<Vec<_>>().chunks(12) {
        let names: Vec<String> = chunk.iter().map(|i| format!("x{i}")).collect();
        out.push_str(&format!(" {}\n", names.join(" ")));
    }
    out.push_str("End\n");
    Ok(out)
}

fn push_term(line: &mut String, coeff: f64, var: Option<usize>, follows: bool) {
    let mag = coeff.abs();
    if follows {
        line.push_str(if coeff < 0.0 { " -" } else { " +" });
    } else if coeff < 0.0 {
        line.push_str(" -");
    }
    match var {
        Some(i) if mag == 1.0 => line.push_str(&format!(" x{i}")),
        Some(i) => line.push_str(&format!(" {mag} x{i}")),
        None => line.push_str(&format!(" {mag}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::brute_force_feasible;

    const KNAPSACK: &str = "\\ pick at most 2 of 3 items\nMaximize\n obj: 3 x1 + 5 x2 + 4 x3\nSubject To\n cap: x1 + x2 + x3 <= 2\nBinary\n x1 x2 x3\nEnd\n";

    #[test]
    fn knapsack_parses_and_binarizes() {
        let p = parse_lp(KNAPSACK).unwrap();
        assert_eq!(p.sense(), Sense::Maximize);
        // 3 decisions + 2 slacks for max-LHS 3 vs bound 2.
        assert_eq!(p.n_vars(), 5);
        let feas = brute_force_feasible(&p);
        assert!(feas.iter().all(|x| x[0] + x[1] + x[2] <= 2));
        assert!(p.initial_feasible().is_some());
    }

    #[test]
    fn equality_and_ge_rows() {
        let text = "Minimize\n obj: x1 + 2 x2 + 3 x3\nSubject To\n c1: x1 + x2 + x3 = 2\n c2: x2 + x3 >= 1\nBinary\n x1 x2 x3\nEnd\n";
        let p = parse_lp(text).unwrap();
        let feas = brute_force_feasible(&p);
        assert!(!feas.is_empty());
        for x in &feas {
            assert_eq!(x[0] + x[1] + x[2], 2);
            assert!(x[1] + x[2] >= 1);
        }
    }

    #[test]
    fn objective_may_span_lines_and_carry_constants() {
        let text = "Minimize\n obj: 2 x1\n  + 0.5 x2 + 7\nSubject To\n c1: x1 + x2 = 1\nBinary\n x1 x2\nEnd\n";
        let p = parse_lp(text).unwrap();
        assert_eq!(p.objective().constant, 7.0);
        assert_eq!(p.objective().linear, vec![2.0, 0.5]);
    }

    #[test]
    fn binary_order_fixes_columns() {
        let text = "Minimize\n obj: b + 2 a\nSubject To\n c1: a + b = 1\nBinary\n a b\nEnd\n";
        let p = parse_lp(text).unwrap();
        // Column 0 is `a` (declared first), coefficient 2.
        assert_eq!(p.objective().linear, vec![2.0, 1.0]);
    }

    #[test]
    fn repeated_terms_accumulate() {
        let text =
            "Minimize\n obj: x1 + x1\nSubject To\n c1: x1 + x1 + x2 = 2\nBinary\n x1 x2\nEnd\n";
        let p = parse_lp(text).unwrap();
        assert_eq!(p.objective().linear[0], 2.0);
        assert_eq!(p.constraints().iter_rows().next().unwrap(), &[2, 1]);
    }

    #[test]
    fn error_arms_carry_line_and_text() {
        let arms = [
            ("General\n x1\n", 1, "unsupported section"),
            ("x1 + x2\n", 1, "expected `Minimize`"),
            (
                "Minimize\n obj: 2 3 x1\nBinary\n x1\nEnd\n",
                2,
                "two numbers",
            ),
            (
                "Minimize\n obj: x1 ? x2\nBinary\n x1 x2\nEnd\n",
                2,
                "unexpected character",
            ),
            (
                "Minimize\n obj: x1 <= 2\nBinary\n x1\nEnd\n",
                2,
                "relation operator in objective",
            ),
            (
                "Minimize\n obj: y1\nBinary\n x1\nEnd\n",
                2,
                "not declared binary",
            ),
            (
                "Minimize\n obj: x1\nSubject To\n c1: x1 + x2\nBinary\n x1 x2\nEnd\n",
                4,
                "needs `<=`",
            ),
            (
                "Minimize\n obj: x1\nSubject To\n c1: x1 = x1\nBinary\n x1\nEnd\n",
                4,
                "single number",
            ),
            (
                "Minimize\n obj: x1\nSubject To\n c1: x1 = 1.5\nBinary\n x1\nEnd\n",
                4,
                "must be an integer",
            ),
            (
                "Minimize\n obj: x1\nSubject To\n c1: 0.5 x1 = 1\nBinary\n x1\nEnd\n",
                4,
                "must be an integer",
            ),
            (
                "Minimize\n obj: x1\nSubject To\n c1: 3 = 3\nBinary\n x1\nEnd\n",
                4,
                "no variables",
            ),
            (
                "Minimize\n obj: x1\nBinary\n x1 x1\nEnd\n",
                4,
                "declared binary twice",
            ),
            (
                "Minimize\n obj: x1\nBinary\n x1 + x2\nEnd\n",
                4,
                "expected variable names",
            ),
            (
                "Minimize\n obj: x1\nBinary\n x1\nBounds\n 2 <= x1 <= 3\nEnd\n",
                6,
                "bounds",
            ),
            (
                "Minimize\n obj: x1\nBinary\n x1\nEnd\n x2\n",
                6,
                "after `End`",
            ),
        ];
        for (input, line, fragment) in arms {
            let e = parse_lp(input).unwrap_err();
            assert_eq!(e.line, line, "{input:?}: {e}");
            assert!(e.message.contains(fragment), "{input:?}: {e}");
            assert_eq!(e.text, input.lines().nth(line - 1).unwrap().trim());
        }
        let e = parse_lp("Minimize\n obj: 0\nEnd\n").unwrap_err();
        assert!(e.message.contains("missing `Binary`"), "{e}");
    }

    #[test]
    fn write_then_parse_preserves_semantics() {
        let p = parse_lp(KNAPSACK).unwrap();
        let text = write_lp(&p).unwrap();
        let q = parse_lp(&text).unwrap();
        assert_eq!(q.n_vars(), p.n_vars());
        assert_eq!(q.sense(), p.sense());
        assert_eq!(q.objective().linear, p.objective().linear);
        let mut rows_p: Vec<(Vec<i64>, i64)> = p
            .constraints()
            .iter_rows()
            .zip(p.rhs().iter())
            .map(|(r, &b)| (r.to_vec(), b))
            .collect();
        let mut rows_q: Vec<(Vec<i64>, i64)> = q
            .constraints()
            .iter_rows()
            .zip(q.rhs().iter())
            .map(|(r, &b)| (r.to_vec(), b))
            .collect();
        rows_p.sort();
        rows_q.sort();
        assert_eq!(rows_p, rows_q);
    }

    #[test]
    fn quadratic_objective_rejected_by_writer() {
        let p = crate::kpp::KPartition::generate(4, 2, 1).into_problem();
        assert!(write_lp(&p).is_err());
    }

    #[test]
    fn bounds_zero_one_accepted() {
        let text = "Minimize\n obj: x1\nSubject To\n c1: x1 + x2 = 1\nBounds\n 0 <= x1 <= 1\nBinary\n x1 x2\nEnd\n";
        assert!(parse_lp(text).is_ok());
    }
}
