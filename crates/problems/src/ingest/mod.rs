//! Problem ingestion: standard interchange formats lowered onto the
//! native [`Problem`](crate::problem::Problem) substrate.
//!
//! The native text format (`problems::io`) is Rasengan's own; the rest
//! of the ecosystem speaks QUBO matrix form (the encoding catalog of
//! arXiv:2106.10819) and LP files (the binary-LP intake assumed by the
//! constraint-generation framework of arXiv:2503.21222). This module is
//! the intake layer for both:
//!
//! * [`qubo`] — dense and sparse-coordinate QUBO matrices, with
//!   optional penalty-term **recovery** of `Σ xᵢ = b` equality
//!   constraints where the matrix structure admits it (disjoint
//!   uniform-weight penalty cliques).
//! * [`lp`] — an LP-file subset: binary variables, linear objectives,
//!   equality and inequality rows (inequalities binarized with unit
//!   slacks through [`ProblemBuilder`](crate::builder::ProblemBuilder)).
//!
//! Both parsers canonicalize constraint order before lowering, so the
//! canonical fingerprint of an ingested instance is invariant under
//! comment, whitespace, and constraint-row permutations of the source
//! file — serve caching and the persist tier work unchanged.

pub mod lp;
pub mod qubo;

use crate::io::{parse_problem, write_problem, ParseProblemError};
use crate::problem::Problem;
use std::fmt;

/// A supported interchange format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Format {
    /// The native line-oriented text format of `problems::io`.
    Native,
    /// QUBO matrix form (dense or sparse coordinate), taken at face
    /// value: an unconstrained quadratic objective.
    Qubo,
    /// QUBO matrix form with penalty-term constraint recovery: disjoint
    /// uniform-weight penalty cliques are lifted back into `Σ xᵢ = b`
    /// equality rows and subtracted from the objective.
    QuboRecover,
    /// LP-file subset: binary variables, linear objective, `=`/`≤`/`≥`
    /// rows.
    Lp,
}

impl Format {
    /// All formats, in wire-token order.
    pub fn all() -> [Format; 4] {
        [
            Format::Native,
            Format::Qubo,
            Format::QuboRecover,
            Format::Lp,
        ]
    }

    /// The wire/CLI token naming this format.
    pub fn token(self) -> &'static str {
        match self {
            Format::Native => "native",
            Format::Qubo => "qubo",
            Format::QuboRecover => "qubo-recover",
            Format::Lp => "lp",
        }
    }

    /// Parses a wire/CLI token (case-insensitive).
    pub fn parse(s: &str) -> Option<Format> {
        match s.trim().to_ascii_lowercase().as_str() {
            "native" | "problem" | "text" => Some(Format::Native),
            "qubo" => Some(Format::Qubo),
            "qubo-recover" | "qubo_recover" => Some(Format::QuboRecover),
            "lp" => Some(Format::Lp),
            _ => None,
        }
    }

    /// Infers a format from a file path's extension (`.qubo` → QUBO,
    /// `.lp` → LP, anything else → native).
    pub fn from_path(path: &str) -> Format {
        let lower = path.to_ascii_lowercase();
        if lower.ends_with(".qubo") {
            Format::Qubo
        } else if lower.ends_with(".lp") {
            Format::Lp
        } else {
            Format::Native
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Parses `text` in the given format, lowering to a [`Problem`].
///
/// # Errors
///
/// Returns [`ParseProblemError`] with the 1-based line number and the
/// offending line text on malformed input.
///
/// # Example
///
/// ```
/// use rasengan_problems::ingest::{parse_as, Format};
///
/// let text = "p qubo 0 2 2 1\n0 0 -1\n1 1 -1\n0 1 3\n";
/// let p = parse_as(Format::Qubo, text).unwrap();
/// assert_eq!(p.n_vars(), 2);
/// assert_eq!(p.n_constraints(), 0);
/// ```
pub fn parse_as(format: Format, text: &str) -> Result<Problem, ParseProblemError> {
    match format {
        Format::Native => parse_problem(text),
        Format::Qubo => qubo::parse_qubo(text, false),
        Format::QuboRecover => qubo::parse_qubo(text, true),
        Format::Lp => lp::parse_lp(text),
    }
}

/// Serializes a problem in the given format.
///
/// QUBO export folds equality constraints into quadratic penalty terms
/// (weight chosen automatically; see [`qubo::write_qubo`]); LP export
/// requires a linear objective.
///
/// # Errors
///
/// Returns a message when the problem cannot be represented in the
/// target format (e.g. quadratic objective → LP).
pub fn write_as(format: Format, problem: &Problem) -> Result<String, String> {
    match format {
        Format::Native => Ok(write_problem(problem)),
        Format::Qubo | Format::QuboRecover => qubo::write_qubo(problem, None),
        Format::Lp => lp::write_lp(problem),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_tokens_roundtrip() {
        for f in Format::all() {
            assert_eq!(Format::parse(f.token()), Some(f));
            assert_eq!(f.to_string(), f.token());
        }
        assert_eq!(Format::parse("QUBO"), Some(Format::Qubo));
        assert_eq!(Format::parse("mps"), None);
    }

    #[test]
    fn extension_detection() {
        assert_eq!(Format::from_path("a/b/maxcut.qubo"), Format::Qubo);
        assert_eq!(Format::from_path("knap.LP"), Format::Lp);
        assert_eq!(Format::from_path("F1.problem"), Format::Native);
        assert_eq!(Format::from_path("noext"), Format::Native);
    }

    #[test]
    fn native_passthrough() {
        let text = "vars 2\nconstraint 1 : 1 1\n";
        let p = parse_as(Format::Native, text).unwrap();
        assert_eq!(p.n_vars(), 2);
        let round = write_as(Format::Native, &p).unwrap();
        let q = parse_as(Format::Native, &round).unwrap();
        assert_eq!(p.constraints(), q.constraints());
    }
}
