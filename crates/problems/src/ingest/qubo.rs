//! QUBO matrix-form parsing and writing.
//!
//! Two text layouts are accepted (arXiv:2106.10819 catalogs the
//! encodings this interchange form carries):
//!
//! **Sparse coordinate** (qbsolv-flavored):
//!
//! ```text
//! c anything after 'c' or '#' is a comment
//! s min                       # optional sense line (default min)
//! p qubo 0 <n> <nDiag> <nOffDiag>
//! 0 0 -3.5                    # diagonal entry: linear coefficient
//! 0 1 2.0                     # off-diagonal: coupling w·x0·x1
//! ```
//!
//! **Dense**:
//!
//! ```text
//! d qubo <n>
//! -3.5 2.0
//! 0.0 -1.0                    # row-major n×n matrix Q; value = xᵀQx
//! ```
//!
//! The objective value is `xᵀQx` over binary `x` (so `Q[i][i]` is the
//! linear coefficient and `Q[i][j] + Q[j][i]` the pair coupling).
//!
//! # Constraint recovery
//!
//! A penalty-encoded cardinality constraint `λ(Σ_{i∈S} xᵢ − b)²`
//! expands (min-form, using `x² = x`) to `+2λ` couplings on every pair
//! in `S`, `λ(1−2b)` added to each member's linear coefficient, and a
//! `λb²` constant. [`parse_qubo`] with `recover = true` inverts this
//! where the matrix structure admits it: connected components of the
//! positive-coupling graph that form **uniform-weight cliques** are
//! lifted back into `Σ_{i∈S} xᵢ = b` equality rows, with `λ = w/2` and
//! `b` inferred per member under penalty dominance (`|cᵢ| < λ`, all
//! members agreeing). Components failing any check — non-uniform
//! weights, incomplete cliques, disagreeing or boundary `b` — are left
//! in the objective untouched, so recovery never invents constraints
//! the matrix does not support.

use crate::builder::{Cmp, ProblemBuilder};
use crate::io::ParseProblemError;
use crate::problem::{Problem, Sense};
use std::collections::BTreeMap;

fn err(line: usize, text: &str, message: impl Into<String>) -> ParseProblemError {
    ParseProblemError::at(line, text.trim(), message)
}

/// One parsed QUBO matrix: sense + linear diagonal + pair couplings.
struct RawQubo {
    sense: Sense,
    linear: Vec<f64>,
    /// Coupling per pair `(i, j)` with `i < j`; value is the total
    /// coefficient of `xᵢxⱼ` (dense input sums `Q[i][j] + Q[j][i]`).
    coupling: BTreeMap<(usize, usize), f64>,
}

fn strip_comment(raw: &str) -> &str {
    let no_hash = raw.split('#').next().unwrap_or("");
    let trimmed = no_hash.trim();
    if trimmed == "c" || trimmed.starts_with("c ") {
        ""
    } else {
        no_hash
    }
}

fn parse_raw(text: &str) -> Result<RawQubo, ParseProblemError> {
    let mut sense = Sense::Minimize;
    let mut n: Option<usize> = None;
    let mut dense_rows_left = 0usize;
    let mut dense_row = 0usize;
    let mut expect_diag: Option<usize> = None;
    let mut expect_off: Option<usize> = None;
    let mut linear: Vec<f64> = Vec::new();
    let mut coupling: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut n_diag = 0usize;
    let mut n_off = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        if dense_rows_left > 0 {
            let nn = n.expect("dense header seen");
            if words.len() != nn {
                return Err(err(
                    lineno,
                    raw,
                    format!("dense row has {} values, expected {nn}", words.len()),
                ));
            }
            for (j, w) in words.iter().enumerate() {
                let v: f64 = w
                    .parse()
                    .map_err(|_| err(lineno, raw, format!("bad matrix value `{w}`")))?;
                if v == 0.0 {
                    continue;
                }
                match dense_row.cmp(&j) {
                    std::cmp::Ordering::Equal => linear[j] += v,
                    std::cmp::Ordering::Less => {
                        *coupling.entry((dense_row, j)).or_insert(0.0) += v;
                    }
                    std::cmp::Ordering::Greater => {
                        *coupling.entry((j, dense_row)).or_insert(0.0) += v;
                    }
                }
            }
            dense_row += 1;
            dense_rows_left -= 1;
            continue;
        }
        match words[0] {
            "s" => {
                sense = match words.get(1) {
                    Some(&"min") => Sense::Minimize,
                    Some(&"max") => Sense::Maximize,
                    other => return Err(err(lineno, raw, format!("bad sense {other:?}"))),
                };
            }
            "p" => {
                if n.is_some() {
                    return Err(err(lineno, raw, "duplicate header"));
                }
                if words.get(1) != Some(&"qubo") || words.len() != 6 {
                    return Err(err(
                        lineno,
                        raw,
                        "expected `p qubo 0 <n> <nDiag> <nOffDiag>`",
                    ));
                }
                let parse_count = |w: &str| -> Result<usize, ParseProblemError> {
                    w.parse()
                        .map_err(|_| err(lineno, raw, format!("bad header count `{w}`")))
                };
                let nn = parse_count(words[3])?;
                expect_diag = Some(parse_count(words[4])?);
                expect_off = Some(parse_count(words[5])?);
                n = Some(nn);
                linear = vec![0.0; nn];
            }
            "d" => {
                if n.is_some() {
                    return Err(err(lineno, raw, "duplicate header"));
                }
                if words.get(1) != Some(&"qubo") || words.len() != 3 {
                    return Err(err(lineno, raw, "expected `d qubo <n>`"));
                }
                let nn: usize = words[2]
                    .parse()
                    .map_err(|_| err(lineno, raw, format!("bad size `{}`", words[2])))?;
                n = Some(nn);
                linear = vec![0.0; nn];
                dense_rows_left = nn;
            }
            _ => {
                // Sparse entry line: `i j value`.
                let nn = n.ok_or_else(|| err(lineno, raw, "entry before `p qubo` header"))?;
                if words.len() != 3 {
                    return Err(err(lineno, raw, "expected `i j value`"));
                }
                let i: usize = words[0]
                    .parse()
                    .map_err(|_| err(lineno, raw, format!("bad index `{}`", words[0])))?;
                let j: usize = words[1]
                    .parse()
                    .map_err(|_| err(lineno, raw, format!("bad index `{}`", words[1])))?;
                let v: f64 = words[2]
                    .parse()
                    .map_err(|_| err(lineno, raw, format!("bad value `{}`", words[2])))?;
                if i >= nn || j >= nn {
                    return Err(err(
                        lineno,
                        raw,
                        format!("index out of range for {nn} nodes"),
                    ));
                }
                if i == j {
                    linear[i] += v;
                    n_diag += 1;
                } else {
                    *coupling.entry((i.min(j), i.max(j))).or_insert(0.0) += v;
                    n_off += 1;
                }
            }
        }
    }

    let nn =
        n.ok_or_else(|| ParseProblemError::structural("missing `p qubo` or `d qubo` header"))?;
    if dense_rows_left > 0 {
        return Err(ParseProblemError::structural(format!(
            "dense matrix truncated: {dense_rows_left} of {nn} rows missing"
        )));
    }
    if let Some(expect) = expect_diag {
        if n_diag != expect {
            return Err(ParseProblemError::structural(format!(
                "header promises {expect} diagonal entries, found {n_diag}"
            )));
        }
    }
    if let Some(expect) = expect_off {
        if n_off != expect {
            return Err(ParseProblemError::structural(format!(
                "header promises {expect} off-diagonal entries, found {n_off}"
            )));
        }
    }
    coupling.retain(|_, v| *v != 0.0);
    Ok(RawQubo {
        sense,
        linear,
        coupling,
    })
}

/// A recovered penalty group: members, cardinality bound, weight λ.
struct Recovered {
    members: Vec<usize>,
    bound: i64,
    lambda: f64,
}

const REL_TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

/// Finds disjoint uniform-weight positive-coupling cliques and infers
/// their `Σ xᵢ = b` bounds. Operates on min-form data; returns the
/// recovered groups, leaving rejected components untouched.
///
/// Edges are first classed by coupling value: a penalty `λ(Σxᵢ−b)²`
/// puts exactly `2λ` on every internal pair, so a group's edges share
/// one weight class. Classes are tried largest-first (a penalty weight
/// dominates objective couplings by construction), each class's
/// connected components must be complete cliques of that class, and a
/// variable claimed by an accepted group is off-limits to smaller
/// classes — so incidental objective couplings can neither merge two
/// penalty cliques nor masquerade as one.
fn recover_groups(
    n: usize,
    linear: &[f64],
    coupling: &BTreeMap<(usize, usize), f64>,
) -> Vec<Recovered> {
    // Cluster positive coupling values into tolerance classes.
    let mut values: Vec<f64> = coupling.values().copied().filter(|&w| w > 0.0).collect();
    values.sort_by(|a, b| b.partial_cmp(a).expect("couplings are finite"));
    let mut classes: Vec<f64> = Vec::new();
    for v in values {
        if !classes.iter().any(|&c| close(c, v)) {
            classes.push(v);
        }
    }

    let mut claimed = vec![false; n];
    let mut recovered = Vec::new();
    for &w in &classes {
        // Components of the subgraph restricted to class-w edges.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (&(i, j), &v) in coupling {
            if v > 0.0 && close(v, w) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
        let mut components: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..n {
            let r = find(&mut parent, i);
            components.entry(r).or_default().push(i);
        }

        'comp: for members in components.values() {
            let k = members.len();
            if k < 2 || members.iter().any(|&i| claimed[i]) {
                continue;
            }
            // Clique check: every internal pair must carry a class-w
            // coupling. A missing or off-class pair means this is not a
            // single penalty group — reject rather than guess.
            for (a, &i) in members.iter().enumerate() {
                for &j in &members[a + 1..] {
                    match coupling.get(&(i, j)) {
                        Some(&v) if v > 0.0 && close(v, w) => {}
                        _ => continue 'comp,
                    }
                }
            }
            let lambda = w / 2.0;
            // Each member's linear coefficient is Lᵢ = cᵢ + λ(1−2b);
            // under penalty dominance |cᵢ| < λ, b is the unique integer
            // in the open unit interval (−Lᵢ/2λ, −Lᵢ/2λ + 1). A
            // boundary value (−Lᵢ/2λ integral) is ambiguous — reject.
            let mut bound: Option<i64> = None;
            for &i in members {
                let t = -linear[i] / (2.0 * lambda);
                if (t - t.round()).abs() < REL_TOL {
                    continue 'comp;
                }
                let b = t.ceil() as i64;
                match bound {
                    None => bound = Some(b),
                    Some(prev) if prev == b => {}
                    Some(_) => continue 'comp,
                }
            }
            let b = bound.expect("non-empty member list");
            // A penalty with b outside 1..k−1 would be degenerate
            // (forcing all-zeros or all-ones); real encodings don't
            // emit those.
            if b < 1 || b as usize >= k {
                continue 'comp;
            }
            // Dominance check: the residual objective coefficients the
            // inference implies must actually sit below λ.
            for &i in members {
                let c = linear[i] + (2.0 * b as f64 - 1.0) * lambda;
                if c.abs() >= lambda {
                    continue 'comp;
                }
            }
            for &i in members {
                claimed[i] = true;
            }
            recovered.push(Recovered {
                members: members.clone(),
                bound: b,
                lambda,
            });
        }
    }
    // Canonical group order (components surface in weight-class then
    // union-find root order, which is not stable under permutations).
    recovered.sort_by(|a, b| a.members.cmp(&b.members));
    recovered
}

/// Parses QUBO text. With `recover = false` the result is an
/// unconstrained quadratic objective over `n` binaries; with
/// `recover = true`, penalty-encoded cardinality constraints are lifted
/// back into equality rows where the matrix structure admits it (see
/// module docs).
///
/// # Errors
///
/// Returns [`ParseProblemError`] with line number and offending text on
/// malformed input.
pub fn parse_qubo(text: &str, recover: bool) -> Result<Problem, ParseProblemError> {
    let raw = parse_raw(text)?;
    let n = raw.linear.len();
    if n == 0 {
        return Err(ParseProblemError::structural("empty QUBO (0 nodes)"));
    }
    if !recover {
        let mut builder = ProblemBuilder::new(n, raw.sense)
            .name(format!("qubo-n{n}"))
            .linear_objective(&raw.linear);
        for (&(i, j), &w) in &raw.coupling {
            builder = builder.quadratic_term(i, j, w);
        }
        let problem = builder
            .build()
            .map_err(|e| ParseProblemError::structural(e.to_string()))?;
        // Unconstrained: every point is feasible; seed the all-zeros
        // point so downstream machinery has a start.
        return problem
            .with_initial_feasible(vec![0; n])
            .map_err(|e| ParseProblemError::structural(e.to_string()));
    }

    // Recovery works in min-form: negate a maximization QUBO, lift, and
    // negate the residual back.
    let to_min = |v: f64| match raw.sense {
        Sense::Minimize => v,
        Sense::Maximize => -v,
    };
    let linear_min: Vec<f64> = raw.linear.iter().map(|&v| to_min(v)).collect();
    let coupling_min: BTreeMap<(usize, usize), f64> =
        raw.coupling.iter().map(|(&k, &v)| (k, to_min(v))).collect();

    let groups = recover_groups(n, &linear_min, &coupling_min);
    let mut in_group = vec![false; n];
    let mut grouped_pairs: std::collections::BTreeSet<(usize, usize)> = Default::default();
    for g in &groups {
        for (a, &i) in g.members.iter().enumerate() {
            in_group[i] = true;
            for &j in &g.members[a + 1..] {
                grouped_pairs.insert((i, j));
            }
        }
    }

    // Residual objective (min-form): subtract each group's penalty.
    let mut residual_linear = linear_min.clone();
    for g in &groups {
        for &i in &g.members {
            residual_linear[i] -= g.lambda * (1.0 - 2.0 * g.bound as f64);
        }
    }
    let from_min = to_min; // negation is its own inverse
    let residual_linear: Vec<f64> = residual_linear.iter().map(|&v| from_min(v)).collect();

    let mut builder = ProblemBuilder::new(n, raw.sense)
        .name(format!("qubo-recovered-n{n}"))
        .linear_objective(&residual_linear);
    for (&(i, j), &w) in &coupling_min {
        if !grouped_pairs.contains(&(i, j)) {
            builder = builder.quadratic_term(i, j, from_min(w));
        }
    }
    for g in &groups {
        let terms: Vec<(usize, i64)> = g.members.iter().map(|&i| (i, 1)).collect();
        builder = builder.constraint(&terms, Cmp::Eq, g.bound);
    }
    builder
        .build()
        .map_err(|e| ParseProblemError::structural(e.to_string()))
}

/// Serializes a problem as a sparse-coordinate QUBO, folding every
/// equality constraint `Σ aᵢxᵢ = b` into a quadratic penalty
/// `λ(Σ aᵢxᵢ − b)²` (subtracted under [`Sense::Maximize`]).
///
/// `lambda` defaults to `1 + max|cᵢ| + max|wᵢⱼ|`, which strictly
/// dominates every objective coefficient — the condition constraint
/// recovery needs to re-infer the bounds.
///
/// # Errors
///
/// Returns a message if the problem has no variables.
pub fn write_qubo(problem: &Problem, lambda: Option<f64>) -> Result<String, String> {
    let n = problem.n_vars();
    if n == 0 {
        return Err("cannot export an empty problem".to_string());
    }
    let obj = problem.objective();
    let auto = {
        let max_l = obj.linear.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
        let max_q = obj
            .quadratic
            .iter()
            .fold(0.0f64, |m, &(_, _, w)| m.max(w.abs()));
        1.0 + max_l + max_q
    };
    let lambda = lambda.unwrap_or(auto);
    if lambda <= 0.0 {
        return Err(format!("penalty weight must be positive, got {lambda}"));
    }
    let pen_sign = match problem.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let mut linear: Vec<f64> = obj.linear.clone();
    let mut coupling: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for &(i, j, w) in &obj.quadratic {
        if i == j {
            linear[i] += w;
        } else {
            *coupling.entry((i.min(j), i.max(j))).or_insert(0.0) += w;
        }
    }
    let mut constant = obj.constant;
    for (row, &b) in problem.constraints().iter_rows().zip(problem.rhs().iter()) {
        // λ(Σ aᵢxᵢ − b)² = λ[Σ aᵢ(aᵢ−2b)xᵢ + 2Σ_{i<j} aᵢaⱼxᵢxⱼ + b²]
        for (i, &ai) in row.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            linear[i] += pen_sign * lambda * (ai * (ai - 2 * b)) as f64;
            for (j, &aj) in row.iter().enumerate().skip(i + 1) {
                if aj != 0 {
                    *coupling.entry((i, j)).or_insert(0.0) +=
                        pen_sign * lambda * (2 * ai * aj) as f64;
                }
            }
        }
        constant += pen_sign * lambda * (b * b) as f64;
    }
    coupling.retain(|_, v| *v != 0.0);

    let n_diag = linear.iter().filter(|&&c| c != 0.0).count();
    let mut out = String::new();
    out.push_str("c rasengan qubo export v1\n");
    if constant != 0.0 {
        out.push_str(&format!(
            "c dropped constant offset {constant} (QUBO form carries none)\n"
        ));
    }
    if problem.sense() == Sense::Maximize {
        out.push_str("s max\n");
    }
    out.push_str(&format!("p qubo 0 {n} {n_diag} {}\n", coupling.len()));
    for (i, &c) in linear.iter().enumerate() {
        if c != 0.0 {
            out.push_str(&format!("{i} {i} {c}\n"));
        }
    }
    for (&(i, j), &w) in &coupling {
        out.push_str(&format!("{i} {j} {w}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{brute_force_feasible, optimum};
    use crate::kpp::KPartition;

    #[test]
    fn sparse_parse_basics() {
        let text = "c hello\ns max\np qubo 0 3 2 1\n0 0 2\n2 2 -1\n0 2 0.5\n";
        let p = parse_qubo(text, false).unwrap();
        assert_eq!(p.n_vars(), 3);
        assert_eq!(p.n_constraints(), 0);
        assert_eq!(p.sense(), Sense::Maximize);
        assert_eq!(p.objective().linear, vec![2.0, 0.0, -1.0]);
        assert_eq!(p.objective().quadratic, vec![(0, 2, 0.5)]);
        assert!(
            p.is_feasible(&[1, 1, 1]),
            "unconstrained: all points feasible"
        );
    }

    #[test]
    fn dense_parse_sums_mirrored_entries() {
        let text = "d qubo 2\n1 2\n1 -4\n";
        let p = parse_qubo(text, false).unwrap();
        assert_eq!(p.objective().linear, vec![1.0, -4.0]);
        assert_eq!(p.objective().quadratic, vec![(0, 1, 3.0)]);
    }

    #[test]
    fn header_count_mismatch_rejected() {
        let e = parse_qubo("p qubo 0 2 1 0\n", false).unwrap_err();
        assert!(e.message.contains("promises 1 diagonal"), "{e}");
    }

    #[test]
    fn error_arms_carry_line_and_text() {
        let arms = [
            ("s sideways\n", 1, "bad sense"),
            ("p qubo 0 2\n", 1, "expected `p qubo"),
            ("p qubo 0 x 0 0\n", 1, "bad header count"),
            ("d qubo x\n", 1, "bad size"),
            ("p qubo 0 2 1 0\np qubo 0 2 1 0\n", 2, "duplicate header"),
            ("0 0 1\n", 1, "entry before"),
            ("p qubo 0 2 0 0\n0 0\n", 2, "expected `i j value`"),
            ("p qubo 0 2 0 0\nx 0 1\n", 2, "bad index"),
            ("p qubo 0 2 0 0\n0 0 z\n", 2, "bad value"),
            ("p qubo 0 2 0 0\n5 5 1\n", 2, "out of range"),
            ("d qubo 2\n1 2 3\n", 2, "dense row has 3"),
            ("d qubo 2\n1 z\n", 2, "bad matrix value"),
        ];
        for (input, line, fragment) in arms {
            let e = parse_qubo(input, false).unwrap_err();
            assert_eq!(e.line, line, "{input:?}: {e}");
            assert!(e.message.contains(fragment), "{input:?}: {e}");
            assert_eq!(e.text, input.lines().nth(line - 1).unwrap().trim());
        }
        let e = parse_qubo("c only comments\n", false).unwrap_err();
        assert!(e.message.contains("missing"), "{e}");
        let e = parse_qubo("d qubo 2\n1 0\n", false).unwrap_err();
        assert!(e.message.contains("truncated"), "{e}");
    }

    /// Disjoint one-hot groups + linear costs + one cross-group
    /// quadratic — the structure recovery targets.
    fn assignment_instance() -> Problem {
        crate::builder::ProblemBuilder::new(5, Sense::Minimize)
            .name("assign")
            .linear_objective(&[2.0, 5.0, 1.0, 3.0, 4.0])
            .quadratic_term(0, 3, 1.5)
            .constraint(&[(0, 1), (1, 1), (2, 1)], Cmp::Eq, 1)
            .constraint(&[(3, 1), (4, 1)], Cmp::Eq, 1)
            .build()
            .unwrap()
    }

    #[test]
    fn penalty_recovery_round_trips_disjoint_groups() {
        let original = assignment_instance();
        let text = write_qubo(&original, None).unwrap();
        let recovered = parse_qubo(&text, true).unwrap();
        assert_eq!(recovered.n_vars(), original.n_vars());
        assert_eq!(recovered.sense(), original.sense());
        // Same constraint rows up to order.
        let rows = |p: &Problem| {
            let mut rows: Vec<(Vec<i64>, i64)> = p
                .constraints()
                .iter_rows()
                .zip(p.rhs().iter())
                .map(|(r, &b)| (r.to_vec(), b))
                .collect();
            rows.sort();
            rows
        };
        assert_eq!(rows(&recovered), rows(&original));
        // Coefficients match exactly: the penalty arithmetic stays
        // integral-in-f64 at these magnitudes.
        assert_eq!(recovered.objective().linear, original.objective().linear);
        assert_eq!(
            recovered.objective().quadratic,
            original.objective().quadratic
        );
    }

    #[test]
    fn overlapping_penalty_rows_are_left_in_the_objective() {
        // KPP penalty rows share variables (per-vertex one-hots AND
        // per-part balance rows), so its penalty cliques overlap; the
        // clique test must reject rather than guess.
        let original = KPartition::generate(4, 2, 7).into_problem();
        let text = write_qubo(&original, None).unwrap();
        let recovered = parse_qubo(&text, true).unwrap();
        assert_eq!(recovered.n_constraints(), 0);
    }

    #[test]
    fn recovery_is_conservative_on_nonuniform_couplings() {
        // Positive couplings without dominance structure: a triangle
        // with weights 2,2,3 is not a uniform clique, and the 2,2 pair
        // fails the dominance check — nothing may be recovered.
        let text = "p qubo 0 3 0 3\n0 1 2\n0 2 2\n1 2 3\n";
        let p = parse_qubo(text, true).unwrap();
        assert_eq!(p.n_constraints(), 0);
        assert_eq!(p.objective().quadratic.len(), 3);
    }

    #[test]
    fn unconstrained_and_recovered_agree_on_feasible_points() {
        // The penalty form and the recovered constrained form must rank
        // feasible points identically.
        let original = assignment_instance();
        let text = write_qubo(&original, None).unwrap();
        let flat = parse_qubo(&text, false).unwrap();
        let recovered = parse_qubo(&text, true).unwrap();
        for x in brute_force_feasible(&recovered) {
            let offset = flat.evaluate(&x) - recovered.evaluate(&x);
            // Feasible points pay zero penalty, so the two differ by the
            // dropped constant only.
            let (opt_x, _) = optimum(&recovered);
            let expect = flat.evaluate(&opt_x) - recovered.evaluate(&opt_x);
            assert!((offset - expect).abs() < 1e-9, "penalty leaked into {x:?}");
        }
    }

    #[test]
    fn maximize_sense_recovery() {
        let original = crate::portfolio::Portfolio {
            returns: vec![3.0, 1.0, 2.0, 5.0],
            risk: vec![(0, 2, 1.0)],
            risk_aversion: 1.0,
            sectors: vec![0..2, 2..4],
            picks: vec![1, 1],
        }
        .into_problem();
        let text = write_qubo(&original, None).unwrap();
        let recovered = parse_qubo(&text, true).unwrap();
        assert_eq!(recovered.sense(), Sense::Maximize);
        assert_eq!(recovered.n_constraints(), 2);
        assert_eq!(recovered.objective().linear, original.objective().linear);
    }

    #[test]
    fn explicit_lambda_respected_and_bad_lambda_rejected() {
        let p = assignment_instance();
        let a = write_qubo(&p, Some(100.0)).unwrap();
        let b = write_qubo(&p, Some(200.0)).unwrap();
        assert_ne!(a, b);
        assert!(write_qubo(&p, Some(-1.0)).is_err());
        // Both still recover the same constraint system.
        let pa = parse_qubo(&a, true).unwrap();
        let pb = parse_qubo(&b, true).unwrap();
        assert_eq!(pa.n_constraints(), 2);
        assert_eq!(pa.constraints(), pb.constraints());
    }
}
