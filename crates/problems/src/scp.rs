//! Set covering problem (SCP) generator.
//!
//! Choose a minimum-cost family of sets covering all elements:
//!
//! * `x_i` — set `i` is selected,
//! * per element `e`, coverage `Σ_{i ∋ e} x_i ≥ 1`, binarized with unit
//!   slacks as `Σ_{i ∋ e} x_i − Σ_r s_{er} = 1` where the number of
//!   slacks is `cover(e) − 1` (a cover count of `c` can exceed the bound
//!   by at most `c − 1`).
//!
//! Table 1's 12-qubit set-cover instance and Table 2's S1–S4 come from
//! this generator. The initial feasible solution selects *all* sets
//! (§5.1's `O(s)` construction).

use crate::problem::{Objective, Problem, Sense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasengan_math::IntMatrix;

/// A generated set-covering instance.
#[derive(Clone, Debug)]
pub struct SetCover {
    /// Number of elements to cover.
    pub elements: usize,
    /// `sets[i]` lists the elements covered by set `i`.
    pub sets: Vec<Vec<usize>>,
    /// Cost of selecting each set.
    pub costs: Vec<f64>,
}

impl SetCover {
    /// Generates a seeded random instance: each set covers a random
    /// nonempty subset, with a final pass guaranteeing every element is
    /// covered by at least two sets (so the feasible space is rich).
    ///
    /// # Panics
    ///
    /// Panics if `elements == 0 || n_sets < 2`.
    pub fn generate(elements: usize, n_sets: usize, seed: u64) -> Self {
        assert!(elements > 0 && n_sets >= 2, "degenerate SCP shape");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sets: Vec<Vec<usize>> = (0..n_sets)
            .map(|_| {
                (0..elements)
                    .filter(|_| rng.gen_bool(0.5))
                    .collect::<Vec<_>>()
            })
            .collect();
        // Ensure every element is covered by ≥ 2 sets.
        for e in 0..elements {
            loop {
                let covers = sets.iter().filter(|s| s.contains(&e)).count();
                if covers >= 2 {
                    break;
                }
                let i = rng.gen_range(0..n_sets);
                if !sets[i].contains(&e) {
                    sets[i].push(e);
                }
            }
        }
        for s in &mut sets {
            s.sort_unstable();
        }
        let costs = (0..n_sets).map(|_| rng.gen_range(1..=6) as f64).collect();
        SetCover {
            elements,
            sets,
            costs,
        }
    }

    /// How many sets cover element `e`.
    pub fn cover_count(&self, e: usize) -> usize {
        self.sets.iter().filter(|s| s.contains(&e)).count()
    }

    /// Total number of binary variables: sets plus per-element slacks.
    pub fn n_vars(&self) -> usize {
        self.sets.len()
            + (0..self.elements)
                .map(|e| self.cover_count(e) - 1)
                .sum::<usize>()
    }

    /// Builds the [`Problem`].
    #[allow(clippy::needless_range_loop)] // element index feeds several tables
    pub fn into_problem(self) -> Problem {
        let s = self.sets.len();
        let n = self.n_vars();
        let mut rows = Vec::new();
        let mut rhs = Vec::new();

        // Slack offsets per element.
        let mut slack_base = vec![0usize; self.elements];
        let mut next = s;
        for e in 0..self.elements {
            slack_base[e] = next;
            next += self.cover_count(e) - 1;
        }

        for e in 0..self.elements {
            let mut row = vec![0i64; n];
            for (i, set) in self.sets.iter().enumerate() {
                if set.contains(&e) {
                    row[i] = 1;
                }
            }
            for r in 0..self.cover_count(e) - 1 {
                row[slack_base[e] + r] = -1;
            }
            rows.push(row);
            rhs.push(1);
        }

        let mut linear = vec![0.0; n];
        linear[..s].copy_from_slice(&self.costs);

        // O(s) construction: select all sets; slack count per element is
        // cover(e) − 1, exactly the slack capacity.
        let mut init = vec![0i64; n];
        for x in init.iter_mut().take(s) {
            *x = 1;
        }
        for e in 0..self.elements {
            for r in 0..self.cover_count(e) - 1 {
                init[slack_base[e] + r] = 1;
            }
        }

        let name = format!("scp-{}e{}s", self.elements, s);
        Problem::new(
            name,
            IntMatrix::from_rows(&rows),
            rhs,
            Objective::linear(linear),
            Sense::Minimize,
        )
        .expect("SCP construction is shape-consistent")
        .with_initial_feasible(init)
        .expect("selecting all sets covers everything")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{brute_force_feasible, enumerate_feasible, optimum};

    #[test]
    fn every_element_double_covered() {
        let scp = SetCover::generate(4, 5, 1);
        for e in 0..4 {
            assert!(scp.cover_count(e) >= 2, "element {e} under-covered");
        }
    }

    #[test]
    fn initial_select_all_is_feasible() {
        for seed in 0..5 {
            let p = SetCover::generate(3, 4, seed).into_problem();
            assert!(p.is_feasible(p.initial_feasible().unwrap()));
        }
    }

    #[test]
    fn enumeration_matches_brute_force() {
        let p = SetCover::generate(3, 3, 2).into_problem();
        assert_eq!(enumerate_feasible(&p), brute_force_feasible(&p));
    }

    #[test]
    fn optimum_is_a_cover() {
        let scp = SetCover::generate(4, 4, 3);
        let p = scp.clone().into_problem();
        let (x, _) = optimum(&p);
        for e in 0..4 {
            let covered = scp
                .sets
                .iter()
                .enumerate()
                .any(|(i, set)| x[i] == 1 && set.contains(&e));
            assert!(covered, "optimum leaves element {e} uncovered");
        }
    }

    #[test]
    fn hand_built_instance_optimum() {
        // Sets: {0,1} cost 1, {0} cost 1, {1} cost 1. Optimal cover: the
        // first set alone, cost 1.
        let scp = SetCover {
            elements: 2,
            sets: vec![vec![0, 1], vec![0], vec![1]],
            costs: vec![1.0, 1.0, 1.0],
        };
        let p = scp.into_problem();
        let (_, v) = optimum(&p);
        assert_eq!(v, 1.0);
    }

    #[test]
    fn slack_accounting() {
        let scp = SetCover {
            elements: 2,
            sets: vec![vec![0, 1], vec![0], vec![1]],
            costs: vec![1.0; 3],
        };
        // Element 0 covered twice → 1 slack; element 1 twice → 1 slack.
        assert_eq!(scp.n_vars(), 3 + 2);
    }
}
