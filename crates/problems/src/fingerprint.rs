//! Canonical instance fingerprinting.
//!
//! A [`Problem`]'s fingerprint is a stable 128-bit hash over its
//! *canonicalized* text form: the [`write_problem`](crate::io) output
//! with comments stripped and the `name` line dropped. Two instances
//! with the same constraints, right-hand side, objective, sense, and
//! initial solution therefore share a fingerprint even if they were
//! parsed from differently-formatted files or carry different display
//! names — exactly the identity a solve cache wants to key on.
//!
//! Guaranteed invariances (property-tested in `tests/properties.rs`):
//!
//! * `write_problem` → `parse_problem` round trips,
//! * comment / blank-line / whitespace perturbations of the text form,
//! * renaming the instance.
//!
//! The hash is FNV-1a with a 128-bit state — not cryptographic, but
//! stable across platforms, releases, and processes (no `RandomState`),
//! which is what cache keys and on-disk artifacts need.

use crate::io::write_problem;
use crate::problem::Problem;

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// FNV-1a over a byte stream with 128-bit state.
fn fnv1a_128(hash: u128, bytes: &[u8]) -> u128 {
    let mut h = hash;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

/// Computes the canonical 128-bit fingerprint of a problem.
///
/// Prefer the method form [`Problem::fingerprint`]; this free function
/// exists for call sites that only hold the trait-object-free API.
pub fn fingerprint(problem: &Problem) -> u128 {
    let text = write_problem(problem);
    let mut h = FNV128_OFFSET;
    for raw in text.lines() {
        // Canonicalize exactly like the parser: strip comments and
        // surrounding whitespace, skip blanks — so any text that parses
        // to this problem hashes identically.
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with("name ") || line == "name" {
            continue;
        }
        // Collapse internal whitespace runs to single separators.
        for (i, word) in line.split_whitespace().enumerate() {
            if i > 0 {
                h = fnv1a_128(h, b" ");
            }
            h = fnv1a_128(h, word.as_bytes());
        }
        h = fnv1a_128(h, b"\n");
    }
    h
}

impl Problem {
    /// The canonical 128-bit fingerprint of this instance: a stable
    /// hash of its mathematical content (constraints, rhs, objective,
    /// sense, initial solution) that ignores the display name and any
    /// formatting of the text form. See the [module docs](self).
    ///
    /// # Example
    ///
    /// ```
    /// use rasengan_problems::io::{parse_problem, write_problem};
    /// use rasengan_problems::registry::{benchmark, BenchmarkId};
    ///
    /// let p = benchmark(BenchmarkId::parse("F1").unwrap());
    /// let q = parse_problem(&write_problem(&p)).unwrap();
    /// assert_eq!(p.fingerprint(), q.fingerprint());
    /// ```
    pub fn fingerprint(&self) -> u128 {
        fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::io::parse_problem;
    use crate::registry::{all_ids, benchmark};

    #[test]
    fn distinct_benchmarks_have_distinct_fingerprints() {
        let mut seen = std::collections::HashSet::new();
        for id in all_ids() {
            assert!(
                seen.insert(benchmark(id).fingerprint()),
                "fingerprint collision at {id}"
            );
        }
    }

    #[test]
    fn fingerprint_ignores_name_and_formatting() {
        let base = "vars 2\nobjective linear 0 2.5\nconstraint 1 : 1 1\ninitial 1 0\n";
        let renamed = format!("name something-else\n{base}");
        let noisy = "# header comment\n\nname   x  \n vars   2 # trailing\n\nobjective  linear 0 2.5\nconstraint 1  :  1   1\ninitial 1 0\n";
        let p = parse_problem(base).unwrap();
        let q = parse_problem(&renamed).unwrap();
        let r = parse_problem(noisy).unwrap();
        assert_eq!(p.fingerprint(), q.fingerprint());
        assert_eq!(p.fingerprint(), r.fingerprint());
    }

    #[test]
    fn fingerprint_sees_every_mathematical_field() {
        let base = parse_problem("vars 2\nobjective linear 0 1\nconstraint 1 : 1 1\n").unwrap();
        let diff_obj = parse_problem("vars 2\nobjective linear 0 2\nconstraint 1 : 1 1\n").unwrap();
        let diff_rhs = parse_problem("vars 2\nobjective linear 0 1\nconstraint 0 : 1 1\n").unwrap();
        let diff_sense =
            parse_problem("sense max\nvars 2\nobjective linear 0 1\nconstraint 1 : 1 1\n").unwrap();
        let diff_init =
            parse_problem("vars 2\nobjective linear 0 1\nconstraint 1 : 1 1\ninitial 0 1\n")
                .unwrap();
        for other in [&diff_obj, &diff_rhs, &diff_sense, &diff_init] {
            assert_ne!(base.fingerprint(), other.fingerprint());
        }
    }
}
