//! Constraint-topology statistics (Table 2's "graph topology of
//! constraints" and "average degree" rows).
//!
//! The paper visualizes each benchmark's constraint structure as a graph
//! whose nodes are variables, with an edge between two variables
//! whenever they co-occur in some constraint; "average degree" measures
//! constraint hardness.

use crate::problem::Problem;
use std::collections::HashSet;

/// Summary statistics of a problem's constraint graph.
#[derive(Clone, Debug, PartialEq)]
pub struct ConstraintTopology {
    /// Number of variables (nodes).
    pub n_nodes: usize,
    /// Number of co-occurrence edges.
    pub n_edges: usize,
    /// Average node degree `2|E| / |V|`.
    pub avg_degree: f64,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Maximum number of variables in any single constraint (how many
    /// qubits one transition Hamiltonian may touch).
    pub max_constraint_span: usize,
}

/// Computes constraint-graph statistics for a problem.
///
/// # Example
///
/// ```
/// use rasengan_problems::{constraint_topology, Objective, Problem, Sense};
/// use rasengan_math::IntMatrix;
///
/// let p = Problem::new(
///     "pair",
///     IntMatrix::from_rows(&[vec![1, 1, 0], vec![0, 1, 1]]),
///     vec![1, 1],
///     Objective::linear(vec![0.0; 3]),
///     Sense::Minimize,
/// ).unwrap();
/// let topo = constraint_topology(&p);
/// assert_eq!(topo.n_edges, 2); // (0,1) and (1,2)
/// assert!((topo.avg_degree - 4.0 / 3.0).abs() < 1e-12);
/// ```
pub fn constraint_topology(problem: &Problem) -> ConstraintTopology {
    let c = problem.constraints();
    let n = c.cols();
    let mut edges: HashSet<(usize, usize)> = HashSet::new();
    let mut max_span = 0usize;

    for row in c.iter_rows() {
        let vars: Vec<usize> = (0..n).filter(|&j| row[j] != 0).collect();
        max_span = max_span.max(vars.len());
        for (a_idx, &a) in vars.iter().enumerate() {
            for &b in &vars[a_idx + 1..] {
                edges.insert((a.min(b), a.max(b)));
            }
        }
    }

    let mut degree = vec![0usize; n];
    for &(a, b) in &edges {
        degree[a] += 1;
        degree[b] += 1;
    }
    let n_edges = edges.len();
    ConstraintTopology {
        n_nodes: n,
        n_edges,
        avg_degree: if n == 0 {
            0.0
        } else {
            2.0 * n_edges as f64 / n as f64
        },
        max_degree: degree.iter().copied().max().unwrap_or(0),
        max_constraint_span: max_span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Objective, Sense};
    use rasengan_math::IntMatrix;

    fn problem_with(c: IntMatrix, b: Vec<i64>) -> Problem {
        let n = c.cols();
        Problem::new("t", c, b, Objective::linear(vec![0.0; n]), Sense::Minimize).unwrap()
    }

    #[test]
    fn single_constraint_is_a_clique() {
        let p = problem_with(IntMatrix::from_rows(&[vec![1, 1, 1, 1]]), vec![1]);
        let topo = constraint_topology(&p);
        assert_eq!(topo.n_edges, 6); // K4
        assert_eq!(topo.avg_degree, 3.0);
        assert_eq!(topo.max_constraint_span, 4);
    }

    #[test]
    fn shared_variables_deduplicate_edges() {
        // Both constraints contain the pair (0, 1): one edge only.
        let p = problem_with(
            IntMatrix::from_rows(&[vec![1, 1, 0], vec![1, 1, 1]]),
            vec![1, 1],
        );
        let topo = constraint_topology(&p);
        assert_eq!(topo.n_edges, 3);
        assert_eq!(topo.max_degree, 2);
    }

    #[test]
    fn isolated_variables_have_zero_degree() {
        let p = problem_with(IntMatrix::from_rows(&[vec![1, 0, 0]]), vec![1]);
        let topo = constraint_topology(&p);
        assert_eq!(topo.n_edges, 0);
        assert_eq!(topo.avg_degree, 0.0);
        assert_eq!(topo.max_constraint_span, 1);
    }

    #[test]
    fn paper_example_topology() {
        let p = problem_with(
            IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]]),
            vec![0, 1],
        );
        let topo = constraint_topology(&p);
        // Row 1: clique on {0,1,2}; row 2: clique on {2,3,4}.
        assert_eq!(topo.n_edges, 6);
        assert_eq!(topo.max_degree, 4); // variable 2 links to all others
        assert_eq!(topo.max_constraint_span, 3);
    }
}
