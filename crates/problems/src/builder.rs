//! A builder for custom constrained-binary problems, with automatic
//! slack-variable conversion of inequality constraints (paper §2.1:
//! "inequality constraints can be transformed into equality using
//! auxiliary binary variables").
//!
//! The five domain generators hand-roll their encodings; this builder is
//! the general-purpose front door for user-defined problems.

use crate::problem::{Objective, Problem, ProblemError, Sense};
use rasengan_math::IntMatrix;
use std::fmt;

/// Comparison operator of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ aᵢ xᵢ = b`.
    Eq,
    /// `Σ aᵢ xᵢ ≤ b` (binarized with `+slack` variables).
    Le,
    /// `Σ aᵢ xᵢ ≥ b` (binarized with `−slack` variables).
    Ge,
}

/// Error from [`ProblemBuilder::build`].
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// A constraint references a variable index beyond the declared
    /// count.
    VariableOutOfRange {
        /// Offending index.
        index: usize,
        /// Declared variable count.
        n_vars: usize,
    },
    /// An inequality has unbounded slack (no binary solution can exceed
    /// the bound by the required amount).
    UnsatisfiableInequality {
        /// Constraint index (in insertion order).
        constraint: usize,
    },
    /// Problem validation failed.
    Problem(ProblemError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::VariableOutOfRange { index, n_vars } => {
                write!(f, "variable x{index} out of range for {n_vars} variables")
            }
            BuildError::UnsatisfiableInequality { constraint } => {
                write!(
                    f,
                    "constraint #{constraint} admits no binary slack encoding"
                )
            }
            BuildError::Problem(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// One user-declared constraint before binarization.
#[derive(Clone, Debug)]
struct RawConstraint {
    terms: Vec<(usize, i64)>,
    cmp: Cmp,
    bound: i64,
}

/// Builder for a [`Problem`] over named decision variables, converting
/// `≤` / `≥` constraints to equalities with unit binary slacks.
///
/// # Example
///
/// ```
/// use rasengan_problems::builder::{Cmp, ProblemBuilder};
/// use rasengan_problems::Sense;
///
/// // Knapsack-flavored: pick at most 2 of 3 items, maximize value.
/// let problem = ProblemBuilder::new(3, Sense::Maximize)
///     .linear_objective(&[3.0, 5.0, 4.0])
///     .constraint(&[(0, 1), (1, 1), (2, 1)], Cmp::Le, 2)
///     .build()
///     .unwrap();
/// // One ≤ constraint with max LHS 3 and bound 2 → 2 slack variables.
/// assert_eq!(problem.n_vars(), 3 + 2);
/// assert!(problem.is_feasible(&[1, 1, 0, 0, 0]));
/// assert!(problem.is_feasible(&[0, 0, 0, 1, 1])); // pick nothing
/// ```
#[derive(Clone, Debug)]
pub struct ProblemBuilder {
    n_decision: usize,
    sense: Sense,
    name: String,
    objective: Objective,
    constraints: Vec<RawConstraint>,
}

impl ProblemBuilder {
    /// Starts a builder over `n_decision` binary decision variables.
    pub fn new(n_decision: usize, sense: Sense) -> Self {
        ProblemBuilder {
            n_decision,
            sense,
            name: "custom".to_string(),
            objective: Objective::linear(vec![0.0; n_decision]),
            constraints: Vec::new(),
        }
    }

    /// Names the instance.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets linear objective coefficients over the decision variables.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n_decision`.
    pub fn linear_objective(mut self, coeffs: &[f64]) -> Self {
        assert_eq!(coeffs.len(), self.n_decision, "objective width mismatch");
        self.objective.linear[..self.n_decision].copy_from_slice(coeffs);
        self
    }

    /// Adds a quadratic objective term `w·xᵢxⱼ`.
    pub fn quadratic_term(mut self, i: usize, j: usize, w: f64) -> Self {
        self.objective.quadratic.push((i, j, w));
        self
    }

    /// Adds a constant objective offset.
    pub fn constant(mut self, c: f64) -> Self {
        self.objective.constant = c;
        self
    }

    /// Adds a linear constraint `Σ aᵢ xᵢ  cmp  bound` over decision
    /// variables given as `(index, coefficient)` pairs.
    pub fn constraint(mut self, terms: &[(usize, i64)], cmp: Cmp, bound: i64) -> Self {
        self.constraints.push(RawConstraint {
            terms: terms.to_vec(),
            cmp,
            bound,
        });
        self
    }

    /// Finalizes the problem: allocates slack variables for every
    /// inequality and assembles the equality system.
    ///
    /// Slack sizing: for `Σ a x ≤ b` the slack must absorb up to
    /// `b − min(Σ a x)`; for `≥`, up to `max(Σ a x) − b`. Each slack is
    /// a sum of unit binary variables (keeping the constraint matrix
    /// ternary and TU-friendly).
    ///
    /// # Errors
    ///
    /// See [`BuildError`].
    pub fn build(self) -> Result<Problem, BuildError> {
        // Validate indices.
        for rc in &self.constraints {
            for &(i, _) in &rc.terms {
                if i >= self.n_decision {
                    return Err(BuildError::VariableOutOfRange {
                        index: i,
                        n_vars: self.n_decision,
                    });
                }
            }
        }
        for &(i, j, _) in &self.objective.quadratic {
            let bad = i.max(j);
            if bad >= self.n_decision {
                return Err(BuildError::VariableOutOfRange {
                    index: bad,
                    n_vars: self.n_decision,
                });
            }
        }

        // Slack sizing per constraint.
        let mut slack_sizes = Vec::with_capacity(self.constraints.len());
        for (idx, rc) in self.constraints.iter().enumerate() {
            let min_lhs: i64 = rc.terms.iter().map(|&(_, a)| a.min(0)).sum();
            let max_lhs: i64 = rc.terms.iter().map(|&(_, a)| a.max(0)).sum();
            let size = match rc.cmp {
                Cmp::Eq => 0,
                Cmp::Le => {
                    if rc.bound < min_lhs {
                        return Err(BuildError::UnsatisfiableInequality { constraint: idx });
                    }
                    (rc.bound - min_lhs).max(0) as usize
                }
                Cmp::Ge => {
                    if rc.bound > max_lhs {
                        return Err(BuildError::UnsatisfiableInequality { constraint: idx });
                    }
                    (max_lhs - rc.bound).max(0) as usize
                }
            };
            slack_sizes.push(size);
        }
        let total_slack: usize = slack_sizes.iter().sum();
        let n = self.n_decision + total_slack;

        let mut rows = Vec::with_capacity(self.constraints.len());
        let mut rhs = Vec::with_capacity(self.constraints.len());
        let mut slack_base = self.n_decision;
        for (rc, &size) in self.constraints.iter().zip(&slack_sizes) {
            let mut row = vec![0i64; n];
            for &(i, a) in &rc.terms {
                row[i] += a;
            }
            let sign = match rc.cmp {
                Cmp::Eq => 0,
                Cmp::Le => 1,  // lhs + slack = bound
                Cmp::Ge => -1, // lhs − slack = bound
            };
            for s in 0..size {
                row[slack_base + s] = sign;
            }
            slack_base += size;
            rows.push(row);
            rhs.push(rc.bound);
        }

        let mut objective = self.objective;
        objective.linear.resize(n, 0.0);

        // `from_rows` on an empty list would lose the column count, so
        // unconstrained problems need the explicit 0×n shape.
        let constraints = if rows.is_empty() {
            IntMatrix::zeros(0, n)
        } else {
            IntMatrix::from_rows(&rows)
        };
        let mut problem = Problem::new(self.name, constraints, rhs, objective, self.sense)
            .map_err(BuildError::Problem)?;

        // Try to attach a feasible seed automatically.
        if let Ok(seed) = rasengan_math::find_binary_solution(problem.constraints(), problem.rhs())
        {
            problem = problem
                .with_initial_feasible(seed)
                .map_err(BuildError::Problem)?;
        }
        Ok(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{brute_force_feasible, enumerate_feasible};

    #[test]
    fn equality_only_build() {
        let p = ProblemBuilder::new(3, Sense::Minimize)
            .linear_objective(&[1.0, 2.0, 3.0])
            .constraint(&[(0, 1), (1, 1), (2, 1)], Cmp::Eq, 1)
            .build()
            .unwrap();
        assert_eq!(p.n_vars(), 3);
        assert_eq!(enumerate_feasible(&p).len(), 3);
    }

    #[test]
    fn le_constraint_gets_slacks() {
        let p = ProblemBuilder::new(2, Sense::Maximize)
            .linear_objective(&[1.0, 1.0])
            .constraint(&[(0, 1), (1, 1)], Cmp::Le, 1)
            .build()
            .unwrap();
        // Max LHS 2, bound 1 → 1 slack.
        assert_eq!(p.n_vars(), 3);
        // Feasible decisions: 00, 01, 10 (11 violates).
        let feas = brute_force_feasible(&p);
        let decisions: Vec<(i64, i64)> = feas.iter().map(|x| (x[0], x[1])).collect();
        assert!(decisions.contains(&(0, 0)));
        assert!(decisions.contains(&(1, 0)));
        assert!(decisions.contains(&(0, 1)));
        assert!(!decisions.contains(&(1, 1)));
    }

    #[test]
    fn ge_constraint_gets_negative_slacks() {
        let p = ProblemBuilder::new(3, Sense::Minimize)
            .linear_objective(&[1.0, 1.0, 1.0])
            .constraint(&[(0, 1), (1, 1), (2, 1)], Cmp::Ge, 2)
            .build()
            .unwrap();
        // Max LHS 3, bound 2 → 1 slack with coefficient −1.
        assert_eq!(p.n_vars(), 4);
        let feas = brute_force_feasible(&p);
        for x in &feas {
            assert!(x[0] + x[1] + x[2] >= 2, "under-covered: {x:?}");
        }
    }

    #[test]
    fn seed_attached_automatically() {
        let p = ProblemBuilder::new(2, Sense::Minimize)
            .constraint(&[(0, 1), (1, 1)], Cmp::Eq, 1)
            .build()
            .unwrap();
        assert!(p.initial_feasible().is_some());
    }

    #[test]
    fn out_of_range_variable_rejected() {
        let err = ProblemBuilder::new(2, Sense::Minimize)
            .constraint(&[(5, 1)], Cmp::Eq, 1)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::VariableOutOfRange { index: 5, .. }
        ));
    }

    #[test]
    fn impossible_inequality_rejected() {
        // x0 + x1 ≥ 3 cannot hold for two binaries.
        let err = ProblemBuilder::new(2, Sense::Minimize)
            .constraint(&[(0, 1), (1, 1)], Cmp::Ge, 3)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::UnsatisfiableInequality { constraint: 0 }
        ));
    }

    #[test]
    fn negative_coefficients_size_slacks_correctly() {
        // x0 − x1 ≤ 0: min LHS = −1 → 1 slack.
        let p = ProblemBuilder::new(2, Sense::Minimize)
            .constraint(&[(0, 1), (1, -1)], Cmp::Le, 0)
            .build()
            .unwrap();
        assert_eq!(p.n_vars(), 3);
        let feas = brute_force_feasible(&p);
        for x in &feas {
            assert!(x[0] <= x[1], "x0 ≤ x1 violated: {x:?}");
        }
    }

    #[test]
    fn quadratic_terms_carried_through() {
        let p = ProblemBuilder::new(2, Sense::Minimize)
            .quadratic_term(0, 1, 4.0)
            .constant(1.0)
            .constraint(&[(0, 1), (1, 1)], Cmp::Eq, 2)
            .build()
            .unwrap();
        assert_eq!(p.evaluate(&[1, 1]), 5.0);
    }

    #[test]
    fn built_problems_solve_with_rasengan_machinery() {
        // The builder's output must plug into the basis machinery: a
        // ternary basis exists and spans the feasible set.
        let p = ProblemBuilder::new(4, Sense::Maximize)
            .linear_objective(&[2.0, 1.0, 3.0, 1.0])
            .constraint(&[(0, 1), (1, 1)], Cmp::Le, 1)
            .constraint(&[(2, 1), (3, 1)], Cmp::Eq, 1)
            .build()
            .unwrap();
        let feas_bfs = enumerate_feasible(&p);
        let feas_brute = brute_force_feasible(&p);
        assert_eq!(feas_bfs, feas_brute);
    }
}
