//! Feasible-space enumeration and exact optima.
//!
//! The evaluation needs ground truth: `E_opt` for the ARG metric
//! (paper Eq. 9) and `#feasible solutions` for Table 2. Two engines:
//!
//! * [`enumerate_feasible`] — depth-first search over variable
//!   assignments with per-row interval pruning. This is *exact* (it
//!   enumerates every binary solution of `Cx = b`), and the pruning
//!   makes it scale with the structure of the system rather than `2^n`,
//!   so it handles the 105-variable FLP instances of Fig. 10.
//! * [`brute_force_feasible`] — `2^n` scan, used as a cross-check on
//!   small instances.

use crate::problem::Problem;

/// Enumerates all binary solutions of the problem's constraint system
/// `Cx = b`, in lexicographic order.
///
/// Exact by construction: a depth-first search assigns variables in
/// order, maintaining each row's partial sum together with the minimum
/// and maximum contribution still attainable from the unassigned
/// suffix; a branch is cut as soon as some row can no longer reach its
/// right-hand side. (An earlier implementation walked the ternary-basis
/// transition graph instead, which silently undercounted whenever
/// single ±basis moves with binary intermediates did not connect the
/// feasible set.)
///
/// # Example
///
/// ```
/// use rasengan_problems::{enumerate_feasible, Objective, Problem, Sense};
/// use rasengan_math::IntMatrix;
///
/// // x1 + x2 + x3 = 1 has exactly three feasible points.
/// let p = Problem::new(
///     "one-hot",
///     IntMatrix::from_rows(&[vec![1, 1, 1]]),
///     vec![1],
///     Objective::linear(vec![1.0, 2.0, 3.0]),
///     Sense::Minimize,
/// ).unwrap();
/// assert_eq!(enumerate_feasible(&p).len(), 3);
/// ```
pub fn enumerate_feasible(problem: &Problem) -> Vec<Vec<i64>> {
    let c = problem.constraints();
    let rhs = problem.rhs();
    let n = problem.n_vars();
    let m = c.rows();

    // suffix_neg[r][i] / suffix_pos[r][i]: tightest possible total
    // contribution of variables i.. to row r (choosing x = 1 exactly on
    // negative / positive coefficients).
    let mut suffix_neg = vec![vec![0i64; n + 1]; m];
    let mut suffix_pos = vec![vec![0i64; n + 1]; m];
    for r in 0..m {
        let row = c.row(r);
        for i in (0..n).rev() {
            suffix_neg[r][i] = suffix_neg[r][i + 1] + row[i].min(0);
            suffix_pos[r][i] = suffix_pos[r][i + 1] + row[i].max(0);
        }
    }

    let mut out = Vec::new();
    let mut x = vec![0i64; n];
    let mut sums = vec![0i64; m];
    // Iterative DFS: depth = next variable to assign; branch = next
    // value to try at this depth (0, then 1, then backtrack).
    let mut depth = 0usize;
    let mut branch = vec![0i64; n + 1];
    loop {
        let viable = (0..m).all(|r| {
            sums[r] + suffix_neg[r][depth] <= rhs[r] && rhs[r] <= sums[r] + suffix_pos[r][depth]
        });
        if viable && depth == n {
            out.push(x.clone());
        }
        if viable && depth < n {
            // Descend with x[depth] = 0.
            branch[depth] = 0;
            x[depth] = 0;
            depth += 1;
            branch[depth] = 0;
            continue;
        }
        // Backtrack to the deepest ancestor that still has value 1 to try.
        loop {
            if depth == 0 {
                out.sort();
                return out;
            }
            depth -= 1;
            if branch[depth] == 0 {
                branch[depth] = 1;
                x[depth] = 1;
                for (r, sum) in sums.iter_mut().enumerate() {
                    *sum += c.row(r)[depth];
                }
                depth += 1;
                branch[depth] = 0;
                break;
            }
            // Undo the x[depth] = 1 assignment and keep backtracking.
            x[depth] = 0;
            for (r, sum) in sums.iter_mut().enumerate() {
                *sum -= c.row(r)[depth];
            }
        }
    }
}

/// Enumerates all feasible solutions by scanning `2^n` assignments.
///
/// # Panics
///
/// Panics if `n_vars > 24` (use [`enumerate_feasible`] instead).
pub fn brute_force_feasible(problem: &Problem) -> Vec<Vec<i64>> {
    let n = problem.n_vars();
    assert!(n <= 24, "brute force limited to 24 variables");
    let mut out = Vec::new();
    for label in 0..(1u64 << n) {
        let x: Vec<i64> = (0..n).map(|i| (label >> i & 1) as i64).collect();
        if problem.is_feasible(&x) {
            out.push(x);
        }
    }
    out.sort();
    out
}

/// The exact optimum over the feasible set: `(x*, f(x*))`.
///
/// Uses the generator-attached [`Problem::known_optimum`] when present
/// (required for instances whose feasible set is too large to
/// enumerate); otherwise enumerates.
///
/// # Panics
///
/// Panics if the feasible set is empty.
pub fn optimum(problem: &Problem) -> (Vec<i64>, f64) {
    if let Some((x, v)) = problem.known_optimum() {
        return (x.to_vec(), v);
    }
    let feasible = enumerate_feasible(problem);
    assert!(!feasible.is_empty(), "empty feasible set");
    let sense = problem.sense();
    let mut best = feasible[0].clone();
    let mut best_val = problem.evaluate(&best);
    for x in feasible.into_iter().skip(1) {
        let v = problem.evaluate(&x);
        if sense.is_better(v, best_val) {
            best_val = v;
            best = x;
        }
    }
    (best, best_val)
}

/// Mean objective value across the feasible set — the "average quality
/// of feasible solutions" baseline the paper beats on hardware (§5.4).
pub fn mean_feasible_objective(problem: &Problem) -> f64 {
    let feasible = enumerate_feasible(problem);
    assert!(!feasible.is_empty(), "empty feasible set");
    feasible.iter().map(|x| problem.evaluate(x)).sum::<f64>() / feasible.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Objective, Sense};
    use rasengan_math::IntMatrix;

    fn paper_example() -> Problem {
        // The running example of the paper (Fig. 1a): five variables,
        // two constraints, five feasible solutions.
        Problem::new(
            "paper",
            IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]]),
            vec![0, 1],
            Objective::linear(vec![1.0, 2.0, 3.0, 4.0, 5.0]),
            Sense::Minimize,
        )
        .unwrap()
        .with_initial_feasible(vec![0, 0, 0, 1, 0])
        .unwrap()
    }

    #[test]
    fn paper_example_has_five_feasible_solutions() {
        let p = paper_example();
        let feas = enumerate_feasible(&p);
        assert_eq!(feas.len(), 5);
        // The ones listed in §3: x_p, x_p−u₂, x_p+u₃, x_p−u₂+u₁, …
        assert!(feas.contains(&vec![0, 0, 0, 1, 0]));
        assert!(feas.contains(&vec![1, 0, 1, 0, 0]));
        assert!(feas.contains(&vec![0, 1, 1, 0, 0]));
        assert!(feas.contains(&vec![1, 0, 1, 1, 1]));
        assert!(feas.contains(&vec![0, 1, 1, 1, 1]));
    }

    #[test]
    fn bfs_matches_brute_force() {
        let p = paper_example();
        assert_eq!(enumerate_feasible(&p), brute_force_feasible(&p));
    }

    #[test]
    fn optimum_picks_cheapest() {
        let p = paper_example();
        let (x, v) = optimum(&p);
        // Cheapest of the five: [0,0,0,1,0] with value 4.
        assert_eq!(x, vec![0, 0, 0, 1, 0]);
        assert_eq!(v, 4.0);
    }

    #[test]
    fn optimum_respects_maximization() {
        let mut p = paper_example();
        p = Problem::new(
            p.name().to_string(),
            p.constraints().clone(),
            p.rhs().to_vec(),
            p.objective().clone(),
            Sense::Maximize,
        )
        .unwrap();
        let (_, v) = optimum(&p);
        // Most expensive: [1,0,1,1,1] or [0,1,1,1,1] = 1+3+4+5=13 vs 2+3+4+5=14.
        assert_eq!(v, 14.0);
    }

    #[test]
    fn mean_feasible_between_extremes() {
        let p = paper_example();
        let mean = mean_feasible_objective(&p);
        let (_, best) = optimum(&p);
        assert!(mean > best);
        assert!(mean < 14.0);
    }

    #[test]
    fn enumeration_without_attached_seed() {
        let p = Problem::new(
            "one-hot",
            IntMatrix::from_rows(&[vec![1, 1, 1, 1]]),
            vec![1],
            Objective::linear(vec![1.0; 4]),
            Sense::Minimize,
        )
        .unwrap();
        assert_eq!(enumerate_feasible(&p).len(), 4);
    }
}
