//! Feasible-space enumeration and exact optima.
//!
//! The evaluation needs ground truth: `E_opt` for the ARG metric
//! (paper Eq. 9) and `#feasible solutions` for Table 2. Two engines:
//!
//! * [`enumerate_feasible`] — breadth-first expansion from the initial
//!   feasible solution along the ternary homogeneous basis, exactly the
//!   move set the transition Hamiltonians implement. This scales with
//!   the feasible-set size, not `2^n`, so it handles the 105-variable
//!   FLP instances of Fig. 10.
//! * [`brute_force_feasible`] — `2^n` scan, used as a cross-check on
//!   small instances (and the only option if no ternary basis exists).

use crate::problem::Problem;
use rasengan_math::{basis::ternary_nullspace_basis, find_binary_solution};
use std::collections::{HashSet, VecDeque};

/// Enumerates all feasible solutions reachable from the seed by ±basis
/// moves.
///
/// For totally unimodular constraint systems (all five benchmark
/// domains) this is the *entire* feasible set — the same fact Theorem 1
/// uses to bound the transition-chain length.
///
/// The seed is the problem's attached initial solution if present,
/// otherwise one is found by backtracking search.
///
/// # Panics
///
/// Panics if no feasible solution exists or no ternary basis could be
/// constructed (not the case for any generated benchmark).
///
/// # Example
///
/// ```
/// use rasengan_problems::{enumerate_feasible, Objective, Problem, Sense};
/// use rasengan_math::IntMatrix;
///
/// // x1 + x2 + x3 = 1 has exactly three feasible points.
/// let p = Problem::new(
///     "one-hot",
///     IntMatrix::from_rows(&[vec![1, 1, 1]]),
///     vec![1],
///     Objective::linear(vec![1.0, 2.0, 3.0]),
///     Sense::Minimize,
/// ).unwrap();
/// assert_eq!(enumerate_feasible(&p).len(), 3);
/// ```
pub fn enumerate_feasible(problem: &Problem) -> Vec<Vec<i64>> {
    let seed: Vec<i64> = match problem.initial_feasible() {
        Some(x) => x.to_vec(),
        None => find_binary_solution(problem.constraints(), problem.rhs())
            .expect("problem has no feasible solution"),
    };
    let basis = ternary_nullspace_basis(problem.constraints())
        .expect("constraint system admits no ternary homogeneous basis");

    let mut seen: HashSet<Vec<i64>> = HashSet::new();
    let mut queue = VecDeque::from([seed.clone()]);
    seen.insert(seed);
    while let Some(x) = queue.pop_front() {
        for u in &basis {
            for sign in [1i64, -1] {
                let cand: Vec<i64> = x.iter().zip(u).map(|(&a, &b)| a + sign * b).collect();
                if cand.iter().all(|&v| v == 0 || v == 1) && !seen.contains(&cand) {
                    seen.insert(cand.clone());
                    queue.push_back(cand);
                }
            }
        }
    }
    let mut out: Vec<Vec<i64>> = seen.into_iter().collect();
    out.sort();
    out
}

/// Enumerates all feasible solutions by scanning `2^n` assignments.
///
/// # Panics
///
/// Panics if `n_vars > 24` (use [`enumerate_feasible`] instead).
pub fn brute_force_feasible(problem: &Problem) -> Vec<Vec<i64>> {
    let n = problem.n_vars();
    assert!(n <= 24, "brute force limited to 24 variables");
    let mut out = Vec::new();
    for label in 0..(1u64 << n) {
        let x: Vec<i64> = (0..n).map(|i| (label >> i & 1) as i64).collect();
        if problem.is_feasible(&x) {
            out.push(x);
        }
    }
    out.sort();
    out
}

/// The exact optimum over the feasible set: `(x*, f(x*))`.
///
/// Uses the generator-attached [`Problem::known_optimum`] when present
/// (required for instances whose feasible set is too large to
/// enumerate); otherwise enumerates.
///
/// # Panics
///
/// Panics if the feasible set is empty.
pub fn optimum(problem: &Problem) -> (Vec<i64>, f64) {
    if let Some((x, v)) = problem.known_optimum() {
        return (x.to_vec(), v);
    }
    let feasible = enumerate_feasible(problem);
    assert!(!feasible.is_empty(), "empty feasible set");
    let sense = problem.sense();
    let mut best = feasible[0].clone();
    let mut best_val = problem.evaluate(&best);
    for x in feasible.into_iter().skip(1) {
        let v = problem.evaluate(&x);
        if sense.is_better(v, best_val) {
            best_val = v;
            best = x;
        }
    }
    (best, best_val)
}

/// Mean objective value across the feasible set — the "average quality
/// of feasible solutions" baseline the paper beats on hardware (§5.4).
pub fn mean_feasible_objective(problem: &Problem) -> f64 {
    let feasible = enumerate_feasible(problem);
    assert!(!feasible.is_empty(), "empty feasible set");
    feasible.iter().map(|x| problem.evaluate(x)).sum::<f64>() / feasible.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Objective, Sense};
    use rasengan_math::IntMatrix;

    fn paper_example() -> Problem {
        // The running example of the paper (Fig. 1a): five variables,
        // two constraints, five feasible solutions.
        Problem::new(
            "paper",
            IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]]),
            vec![0, 1],
            Objective::linear(vec![1.0, 2.0, 3.0, 4.0, 5.0]),
            Sense::Minimize,
        )
        .unwrap()
        .with_initial_feasible(vec![0, 0, 0, 1, 0])
        .unwrap()
    }

    #[test]
    fn paper_example_has_five_feasible_solutions() {
        let p = paper_example();
        let feas = enumerate_feasible(&p);
        assert_eq!(feas.len(), 5);
        // The ones listed in §3: x_p, x_p−u₂, x_p+u₃, x_p−u₂+u₁, …
        assert!(feas.contains(&vec![0, 0, 0, 1, 0]));
        assert!(feas.contains(&vec![1, 0, 1, 0, 0]));
        assert!(feas.contains(&vec![0, 1, 1, 0, 0]));
        assert!(feas.contains(&vec![1, 0, 1, 1, 1]));
        assert!(feas.contains(&vec![0, 1, 1, 1, 1]));
    }

    #[test]
    fn bfs_matches_brute_force() {
        let p = paper_example();
        assert_eq!(enumerate_feasible(&p), brute_force_feasible(&p));
    }

    #[test]
    fn optimum_picks_cheapest() {
        let p = paper_example();
        let (x, v) = optimum(&p);
        // Cheapest of the five: [0,0,0,1,0] with value 4.
        assert_eq!(x, vec![0, 0, 0, 1, 0]);
        assert_eq!(v, 4.0);
    }

    #[test]
    fn optimum_respects_maximization() {
        let mut p = paper_example();
        p = Problem::new(
            p.name().to_string(),
            p.constraints().clone(),
            p.rhs().to_vec(),
            p.objective().clone(),
            Sense::Maximize,
        )
        .unwrap();
        let (_, v) = optimum(&p);
        // Most expensive: [1,0,1,1,1] or [0,1,1,1,1] = 1+3+4+5=13 vs 2+3+4+5=14.
        assert_eq!(v, 14.0);
    }

    #[test]
    fn mean_feasible_between_extremes() {
        let p = paper_example();
        let mean = mean_feasible_objective(&p);
        let (_, best) = optimum(&p);
        assert!(mean > best);
        assert!(mean < 14.0);
    }

    #[test]
    fn enumeration_without_attached_seed() {
        let p = Problem::new(
            "one-hot",
            IntMatrix::from_rows(&[vec![1, 1, 1, 1]]),
            vec![1],
            Objective::linear(vec![1.0; 4]),
            Sense::Minimize,
        )
        .unwrap();
        assert_eq!(enumerate_feasible(&p).len(), 4);
    }
}
