//! Job scheduling problem (JSP) generator.
//!
//! Identical-machines scheduling: assign `j` jobs with processing times
//! `p_j` to `m` machines, each machine taking at most `cap` jobs.
//!
//! * `x_{jm}` — job `j` runs on machine `m` (one-hot per job),
//! * capacity per machine binarized with unit slacks:
//!   `Σ_j x_{jm} + Σ_r s_{mr} = cap`.
//!
//! The objective approximates makespan minimization by the (quadratic)
//! sum of squared machine loads — minimized exactly when loads are
//! balanced, the identical-machines objective the paper cites
//! (Wikipedia \[42\]).
//!
//! Initial feasible solution: greedy round-robin placement, `O(j)`
//! (§5.1).

use crate::problem::{Objective, Problem, Sense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasengan_math::IntMatrix;

/// A generated job-scheduling instance.
#[derive(Clone, Debug)]
pub struct JobScheduling {
    /// Number of jobs.
    pub jobs: usize,
    /// Number of identical machines.
    pub machines: usize,
    /// Per-machine job capacity.
    pub capacity: usize,
    /// Processing time of each job.
    pub times: Vec<f64>,
}

impl JobScheduling {
    /// Generates a seeded random instance with processing times 1–5.
    ///
    /// # Panics
    ///
    /// Panics if the capacities cannot hold all jobs
    /// (`machines * capacity < jobs`).
    pub fn generate(jobs: usize, machines: usize, capacity: usize, seed: u64) -> Self {
        assert!(
            machines * capacity >= jobs,
            "insufficient capacity: {machines} machines × {capacity} < {jobs} jobs"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let times = (0..jobs).map(|_| rng.gen_range(1..=5) as f64).collect();
        JobScheduling {
            jobs,
            machines,
            capacity,
            times,
        }
    }

    /// Total number of binary variables: `j·m + m·cap` (assignments plus
    /// capacity slacks).
    pub fn n_vars(&self) -> usize {
        self.jobs * self.machines + self.machines * self.capacity
    }

    /// Index of `x_{jm}`.
    pub fn x(&self, job: usize, machine: usize) -> usize {
        job * self.machines + machine
    }

    /// Index of the `r`-th capacity slack of `machine`.
    pub fn s(&self, machine: usize, r: usize) -> usize {
        self.jobs * self.machines + machine * self.capacity + r
    }

    /// Builds the [`Problem`].
    pub fn into_problem(self) -> Problem {
        let (j, m, cap) = (self.jobs, self.machines, self.capacity);
        let n = self.n_vars();
        let mut rows = Vec::new();
        let mut rhs = Vec::new();

        // One-hot per job.
        for job in 0..j {
            let mut row = vec![0i64; n];
            for mach in 0..m {
                row[self.x(job, mach)] = 1;
            }
            rows.push(row);
            rhs.push(1);
        }
        // Capacity per machine with unit slacks.
        for mach in 0..m {
            let mut row = vec![0i64; n];
            for job in 0..j {
                row[self.x(job, mach)] = 1;
            }
            for r in 0..cap {
                row[self.s(mach, r)] = 1;
            }
            rows.push(row);
            rhs.push(cap as i64);
        }

        // Σ_m (Σ_j p_j x_{jm})² expanded into linear + quadratic terms
        // (x² = x for binaries).
        let mut linear = vec![0.0; n];
        let mut quadratic = Vec::new();
        for mach in 0..m {
            for a in 0..j {
                linear[self.x(a, mach)] += self.times[a] * self.times[a];
                for b in (a + 1)..j {
                    quadratic.push((
                        self.x(a, mach),
                        self.x(b, mach),
                        2.0 * self.times[a] * self.times[b],
                    ));
                }
            }
        }

        // O(j) round-robin placement, then fill slacks to the residual
        // capacity.
        let mut init = vec![0i64; n];
        let mut load = vec![0usize; m];
        for job in 0..j {
            // Round-robin but skip full machines (capacity permits this
            // by the constructor assertion).
            let mut mach = job % m;
            while load[mach] >= cap {
                mach = (mach + 1) % m;
            }
            init[self.x(job, mach)] = 1;
            load[mach] += 1;
        }
        for mach in 0..m {
            for r in 0..cap - load[mach] {
                init[self.s(mach, r)] = 1;
            }
        }

        let name = format!("jsp-{j}j{m}m{cap}c");
        Problem::new(
            name,
            IntMatrix::from_rows(&rows),
            rhs,
            Objective {
                constant: 0.0,
                linear,
                quadratic,
            },
            Sense::Minimize,
        )
        .expect("JSP construction is shape-consistent")
        .with_initial_feasible(init)
        .expect("round-robin placement respects capacities")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{brute_force_feasible, enumerate_feasible, optimum};

    #[test]
    fn shapes() {
        let jsp = JobScheduling::generate(2, 2, 2, 1);
        assert_eq!(jsp.n_vars(), 4 + 4);
        let p = jsp.into_problem();
        assert_eq!(p.n_constraints(), 2 + 2);
    }

    #[test]
    fn initial_is_feasible_across_seeds() {
        for seed in 0..5 {
            let p = JobScheduling::generate(3, 2, 2, seed).into_problem();
            assert!(p.is_feasible(p.initial_feasible().unwrap()));
        }
    }

    #[test]
    fn enumeration_matches_brute_force() {
        let p = JobScheduling::generate(2, 2, 2, 3).into_problem();
        assert_eq!(enumerate_feasible(&p), brute_force_feasible(&p));
    }

    #[test]
    fn balanced_schedule_is_optimal() {
        // Two jobs with equal times on two machines: optimum splits them.
        let jsp = JobScheduling {
            jobs: 2,
            machines: 2,
            capacity: 2,
            times: vec![3.0, 3.0],
        };
        let p = jsp.clone().into_problem();
        let (x, v) = optimum(&p);
        // Balanced: loads (3,3) → 9+9=18; unbalanced: (6,0) → 36.
        assert_eq!(v, 18.0);
        assert_ne!(x[jsp.x(0, 0)], x[jsp.x(1, 0)]);
    }

    #[test]
    fn capacity_limits_respected_by_feasible_set() {
        let jsp = JobScheduling::generate(3, 2, 2, 5);
        let p = jsp.clone().into_problem();
        for x in enumerate_feasible(&p) {
            for mach in 0..2 {
                let load: i64 = (0..3).map(|job| x[jsp.x(job, mach)]).sum();
                assert!(load <= 2, "machine {mach} overloaded: {load}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "insufficient capacity")]
    fn overcommitted_shape_panics() {
        JobScheduling::generate(5, 2, 2, 0);
    }
}
