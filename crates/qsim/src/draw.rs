//! ASCII circuit diagrams.
//!
//! Renders a [`Circuit`] as a text drawing — one line per qubit, time
//! flowing left to right, one column per scheduling layer (gates on
//! disjoint qubits share a column exactly as in the depth metric).
//!
//! ```text
//! q0: ─H─●───────
//!        │
//! q1: ───X─●─────
//!          │
//! q2: ─────X─P(π)
//! ```

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Renders a circuit as an ASCII diagram.
///
/// # Example
///
/// ```
/// use rasengan_qsim::{draw::draw_circuit, Circuit};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let art = draw_circuit(&c);
/// assert!(art.contains("q0:"));
/// assert!(art.contains("●"));
/// assert!(art.contains("X"));
/// ```
pub fn draw_circuit(circuit: &Circuit) -> String {
    let n = circuit.n_qubits();
    // Assign each gate to a column with the same greedy schedule the
    // depth metric uses.
    let mut level = vec![0usize; n];
    let mut columns: Vec<Vec<&Gate>> = Vec::new();
    for g in circuit.gates() {
        let qs = g.qubits();
        let col = qs.iter().map(|&q| level[q]).max().unwrap_or(0);
        if col >= columns.len() {
            columns.resize_with(col + 1, Vec::new);
        }
        columns[col].push(g);
        for q in qs {
            level[q] = col + 1;
        }
    }

    // Render each column into per-qubit cells plus inter-qubit link rows.
    let mut wire_rows: Vec<String> = (0..n).map(|q| format!("q{q}: ")).collect();
    let mut link_rows: Vec<String> = vec![String::new(); n.saturating_sub(1)];
    let prefix_width = wire_rows.iter().map(String::len).max().unwrap_or(0);
    for row in &mut wire_rows {
        while row.len() < prefix_width {
            row.push(' ');
        }
    }
    for row in &mut link_rows {
        while row.chars().count() < prefix_width {
            row.push(' ');
        }
    }

    for col in &columns {
        let mut cells: Vec<String> = vec!["─".to_string(); n];
        let mut links: Vec<bool> = vec![false; n.saturating_sub(1)];
        for g in col {
            let qs = g.qubits();
            let lo = *qs.iter().min().expect("gate has qubits");
            let hi = *qs.iter().max().expect("gate has qubits");
            for link in links.iter_mut().take(hi).skip(lo) {
                *link = true;
            }
            match g {
                Gate::X(q) => cells[*q] = "X".into(),
                Gate::Y(q) => cells[*q] = "Y".into(),
                Gate::Z(q) => cells[*q] = "Z".into(),
                Gate::H(q) => cells[*q] = "H".into(),
                Gate::Rx(q, t) => cells[*q] = format!("Rx({t:.2})"),
                Gate::Ry(q, t) => cells[*q] = format!("Ry({t:.2})"),
                Gate::Rz(q, t) => cells[*q] = format!("Rz({t:.2})"),
                Gate::Phase(q, t) => cells[*q] = format!("P({t:.2})"),
                Gate::Cx(c, t) => {
                    cells[*c] = "●".into();
                    cells[*t] = "X".into();
                }
                Gate::Cz(a, b) => {
                    cells[*a] = "●".into();
                    cells[*b] = "●".into();
                }
                Gate::Swap(a, b) => {
                    cells[*a] = "x".into();
                    cells[*b] = "x".into();
                }
                Gate::Rzz(a, b, t) => {
                    cells[*a] = format!("ZZ({t:.2})");
                    cells[*b] = "ZZ".into();
                }
                Gate::Cp(c, t, theta) => {
                    cells[*c] = "●".into();
                    cells[*t] = format!("P({theta:.2})");
                }
                Gate::Mcp {
                    controls,
                    target,
                    theta,
                } => {
                    for c in controls {
                        cells[*c] = "●".into();
                    }
                    cells[*target] = format!("P({theta:.2})");
                }
                Gate::Mcx { controls, target } => {
                    for c in controls {
                        cells[*c] = "●".into();
                    }
                    cells[*target] = "X".into();
                }
            }
        }
        // Pad cells of this column to equal display width.
        let width = cells.iter().map(|c| c.chars().count()).max().unwrap_or(1);
        for (q, cell) in cells.iter().enumerate() {
            let pad = width - cell.chars().count();
            wire_rows[q].push('─');
            wire_rows[q].push_str(cell);
            wire_rows[q].push_str(&"─".repeat(pad));
        }
        for (w, &linked) in links.iter().enumerate() {
            link_rows[w].push(' ');
            let mark = if linked { '│' } else { ' ' };
            let mid = width / 2;
            for i in 0..width {
                link_rows[w].push(if i == mid { mark } else { ' ' });
            }
        }
    }

    // Interleave wire and link rows.
    let mut out = String::new();
    for q in 0..n {
        out.push_str(&wire_rows[q]);
        out.push('\n');
        if q + 1 < n {
            let row = &link_rows[q];
            if row.contains('│') {
                out.push_str(row);
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_circuit_draws() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let art = draw_circuit(&c);
        assert!(art.starts_with("q0: "));
        assert!(art.contains('H'));
        assert!(art.contains('●'));
        assert!(art.contains('X'));
        assert!(art.contains('│'), "control link missing:\n{art}");
    }

    #[test]
    fn parallel_gates_share_a_column() {
        let mut c = Circuit::new(2);
        c.x(0).x(1);
        let art = draw_circuit(&c);
        let lines: Vec<&str> = art.lines().collect();
        // Both Xs at the same horizontal offset.
        assert_eq!(lines[0].find('X'), lines[1].find('X'));
    }

    #[test]
    fn serial_gates_use_separate_columns() {
        let mut c = Circuit::new(1);
        c.x(0).h(0);
        let art = draw_circuit(&c);
        let line = art.lines().next().unwrap();
        assert!(line.find('X').unwrap() < line.find('H').unwrap());
    }

    #[test]
    fn rotation_angles_rendered() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.25);
        assert!(draw_circuit(&c).contains("Rz(0.25)"));
    }

    #[test]
    fn tau_circuit_draws_without_panic() {
        let c = crate::synth::tau_circuit(&[1, -1, 0, 1], 0.7, 4);
        let art = draw_circuit(&c);
        assert_eq!(art.lines().filter(|l| l.starts_with('q')).count(), 4);
    }

    #[test]
    fn empty_circuit_is_just_wires() {
        let art = draw_circuit(&Circuit::new(2));
        assert_eq!(art, "q0: \nq1: \n");
    }
}
