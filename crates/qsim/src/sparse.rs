//! Sparse basis-state simulator.
//!
//! Rasengan's circuits contain only `X`, `CX`, `MCX`, phase-type gates,
//! and transition operators `τ(u, t)` (paper §5.1: "Circuits of Rasengan
//! only include X, control-X, and phase gates, so we accelerate their
//! simulation on the DDSim simulator"). Every such gate maps a
//! computational basis state to a single basis state (up to phase), and a
//! transition operator maps it to at most *two*. The quantum state is
//! therefore always a superposition over a small set of basis states —
//! bounded by the number of feasible solutions — regardless of qubit
//! count.
//!
//! [`SparseState`] stores that superposition as a `label → amplitude`
//! map, giving exact simulation past 100 qubits (the paper's Fig. 10
//! scales FLP to 105 variables).

use crate::circuit::Circuit;
use crate::complex::Complex;
use crate::gate::Gate;
use rand::Rng;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;

/// A basis-state label on up to 128 qubits; bit `i` is qubit `i`.
pub type Label = u128;

/// A transition operator `τ(u, t) = exp(-i H^τ(u) t)` in mask form.
///
/// `H^τ(u) = ⊗σ(uᵢ) + ⊗σ(-uᵢ)` (paper Definition 1). For a basis state
/// `|x⟩` the first term is nonzero only when every `+1` position of `u`
/// has `xᵢ = 0` and every `-1` position has `xᵢ = 1` (then it maps to
/// `|x + u⟩`); the adjoint term handles `|x − u⟩`. At most one of the two
/// applies to any given `x`, so
///
/// ```text
/// exp(-i H t)|x⟩ = cos(t)|x⟩ − i·sin(t)|partner(x)⟩   (partner exists)
/// exp(-i H t)|x⟩ = |x⟩                                 (otherwise)
/// ```
///
/// which is Eq. 6 of the paper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    /// Qubits where `u = +1` (σ⁺ in the forward term).
    pub plus_mask: Label,
    /// Qubits where `u = -1` (σ⁻ in the forward term).
    pub minus_mask: Label,
}

impl Transition {
    /// Builds a transition from a ternary homogeneous basis vector.
    ///
    /// # Panics
    ///
    /// Panics if `u` has entries outside `{-1,0,1}`, is all-zero, or is
    /// longer than 128.
    pub fn from_u(u: &[i64]) -> Self {
        assert!(u.len() <= 128, "transition vectors limited to 128 qubits");
        let mut plus = 0u128;
        let mut minus = 0u128;
        for (i, &v) in u.iter().enumerate() {
            match v {
                1 => plus |= 1 << i,
                -1 => minus |= 1 << i,
                0 => {}
                other => panic!("non-ternary entry {other} in transition vector"),
            }
        }
        assert!(plus | minus != 0, "transition vector must be nonzero");
        Transition {
            plus_mask: plus,
            minus_mask: minus,
        }
    }

    /// Number of qubits the operator touches (`k` in the 34k cost model).
    pub fn weight(&self) -> u32 {
        (self.plus_mask | self.minus_mask).count_ones()
    }

    /// The unique basis state connected to `x` by this transition, if
    /// any: `x + u` when the forward term applies, `x − u` when the
    /// adjoint term applies, `None` otherwise.
    pub fn partner(&self, x: Label) -> Option<Label> {
        // Forward |x+u⟩: needs plus positions clear and minus positions set.
        if x & self.plus_mask == 0 && x & self.minus_mask == self.minus_mask {
            return Some((x | self.plus_mask) & !self.minus_mask);
        }
        // Adjoint |x−u⟩: needs plus positions set and minus positions clear.
        if x & self.plus_mask == self.plus_mask && x & self.minus_mask == 0 {
            return Some((x & !self.plus_mask) | self.minus_mask);
        }
        None
    }
}

/// Error applying a gate the sparse backend cannot represent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsupportedGate {
    /// Human-readable gate description.
    pub gate: String,
}

impl fmt::Display for UnsupportedGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gate `{}` creates dense superpositions; use the dense backend",
            self.gate
        )
    }
}

impl std::error::Error for UnsupportedGate {}

/// A sparse quantum state: superposition over few basis states.
///
/// # Example
///
/// ```
/// use rasengan_qsim::{SparseState, Transition};
///
/// // Start from the paper's particular solution x_p = [0,0,0,1,0].
/// let mut s = SparseState::basis_state(5, 0b01000);
/// // Apply τ(u₁, π/4) with u₁ = [-1, 1, 0, 0, 0]... wait, x_p has
/// // x₀ = 0 so the σ⁻ term needs x₀ = 1: no partner, state unchanged.
/// let u1 = Transition::from_u(&[-1, 1, 0, 0, 0]);
/// s.apply_transition(&u1, std::f64::consts::FRAC_PI_4);
/// assert_eq!(s.support().len(), 1);
///
/// // u₂ = [0,0,0,1,1] connects x_p to [0,0,0,0,1]... σ⁺ on q3,q4 needs
/// // both 0; σ⁻ needs both 1. x_p = 01000 has q3=1,q4=0: no match either
/// // direction — still unchanged. A full expansion needs the right u's.
/// let u2 = Transition::from_u(&[0, 0, 0, 1, 1]);
/// s.apply_transition(&u2, 0.5);
/// assert_eq!(s.support().len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct SparseState {
    n_qubits: usize,
    pub(crate) amps: HashMap<Label, Complex>,
    /// Double buffer for the rebuild-style kernels (`map_labels`,
    /// `apply_transition`, the fused permutation kernel): the hot
    /// trajectory loops apply thousands of such ops per shot, and a
    /// fresh `HashMap` per op dominated their profile. Invariant: empty
    /// between operations, so `Clone` stays cheap.
    pub(crate) scratch: HashMap<Label, Complex>,
}

/// Amplitudes below this magnitude are dropped during compaction.
const PRUNE_EPS: f64 = 1e-14;

impl SparseState {
    /// Creates the basis state `|label⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the label uses bits at or above `n_qubits`.
    pub fn basis_state(n_qubits: usize, label: Label) -> Self {
        assert!(n_qubits <= 128, "sparse backend limited to 128 qubits");
        assert!(
            n_qubits == 128 || label < (1u128 << n_qubits),
            "basis label out of range for {n_qubits} qubits"
        );
        let mut amps = HashMap::new();
        amps.insert(label, Complex::ONE);
        SparseState {
            n_qubits,
            amps,
            scratch: HashMap::new(),
        }
    }

    /// Creates a basis state from a binary solution vector.
    ///
    /// # Panics
    ///
    /// Panics if any entry is not 0/1 or the vector exceeds 128 bits.
    pub fn from_bits(bits: &[i64]) -> Self {
        Self::basis_state(bits.len(), label_from_bits(bits))
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The basis labels currently in superposition (sorted).
    pub fn support(&self) -> Vec<Label> {
        let mut v: Vec<Label> = self.amps.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of basis states in the superposition.
    pub fn support_size(&self) -> usize {
        self.amps.len()
    }

    /// Amplitude of `|label⟩` (zero if absent).
    pub fn amplitude(&self, label: Label) -> Complex {
        self.amps.get(&label).copied().unwrap_or(Complex::ZERO)
    }

    /// Squared norm.
    pub fn norm_sqr(&self) -> f64 {
        self.amps.values().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalizes to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the state is numerically zero.
    pub fn normalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        assert!(n > 1e-300, "cannot normalize zero sparse state");
        for a in self.amps.values_mut() {
            *a = a.scale(1.0 / n);
        }
    }

    /// Probability of measuring `|label⟩`.
    pub fn probability(&self, label: Label) -> f64 {
        self.amplitude(label).norm_sqr()
    }

    /// Total probability mass on states with qubit `q` equal to 1
    /// (computed directly over the sparse support; hot path of the
    /// damping channels).
    pub fn population(&self, q: usize) -> f64 {
        let mask = 1u128 << q;
        self.amps
            .iter()
            .filter(|(l, _)| *l & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Label → probability for the whole support (sorted by label).
    pub fn distribution(&self) -> BTreeMap<Label, f64> {
        self.amps.iter().map(|(&l, a)| (l, a.norm_sqr())).collect()
    }

    /// Applies every gate of `circuit` in order.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedGate`] on the first gate outside the sparse
    /// gate set (`H`, `Rx`, `Ry`). The state is left at the failing gate.
    pub fn run(&mut self, circuit: &Circuit) -> Result<(), UnsupportedGate> {
        for g in circuit.gates() {
            self.apply(g)?;
        }
        Ok(())
    }

    /// Applies one gate.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedGate`] for gates that create dense
    /// superpositions (`H`, `Rx`, `Ry`).
    pub fn apply(&mut self, gate: &Gate) -> Result<(), UnsupportedGate> {
        match gate {
            Gate::X(q) => self.map_labels(|l| l ^ (1 << q)),
            Gate::Y(q) => {
                // Y = iXZ: flip the bit and phase ±i by prior bit value.
                let mask = 1u128 << q;
                self.scratch.clear();
                self.scratch.reserve(self.amps.len());
                for (&l, &a) in &self.amps {
                    let phase = if l & mask == 0 {
                        Complex::I
                    } else {
                        -Complex::I
                    };
                    self.scratch.insert(l ^ mask, a * phase);
                }
                std::mem::swap(&mut self.amps, &mut self.scratch);
                self.scratch.clear();
            }
            Gate::Z(q) => self.phase_if(|l| l >> q & 1 == 1, std::f64::consts::PI),
            Gate::Rz(q, t) => {
                let m0 = Complex::cis(-t / 2.0);
                let m1 = Complex::cis(t / 2.0);
                let mask = 1u128 << q;
                for (l, a) in self.amps.iter_mut() {
                    *a *= if l & mask == 0 { m0 } else { m1 };
                }
            }
            Gate::Phase(q, t) => self.phase_if(|l| l >> q & 1 == 1, *t),
            Gate::Cx(c, t) => {
                let (cm, tm) = (1u128 << c, 1u128 << t);
                self.map_labels(|l| if l & cm != 0 { l ^ tm } else { l });
            }
            Gate::Cz(a, b) => {
                let m = (1u128 << a) | (1u128 << b);
                self.phase_if(move |l| l & m == m, std::f64::consts::PI);
            }
            Gate::Swap(a, b) => {
                let (ma, mb) = (1u128 << a, 1u128 << b);
                self.map_labels(|l| {
                    let ba = (l & ma != 0) as u128;
                    let bb = (l & mb != 0) as u128;
                    if ba == bb {
                        l
                    } else {
                        l ^ ma ^ mb
                    }
                });
            }
            Gate::Rzz(a, b, t) => {
                let (ma, mb) = (1u128 << a, 1u128 << b);
                let minus = Complex::cis(-t / 2.0);
                let plus = Complex::cis(t / 2.0);
                for (l, amp) in self.amps.iter_mut() {
                    let parity = ((l & ma != 0) as u8) ^ ((l & mb != 0) as u8);
                    *amp *= if parity == 0 { minus } else { plus };
                }
            }
            Gate::Cp(c, t, theta) => {
                let m = (1u128 << c) | (1u128 << t);
                self.phase_if(move |l| l & m == m, *theta);
            }
            Gate::Mcp {
                controls,
                target,
                theta,
            } => {
                let mut m: Label = 1 << target;
                for &c in controls {
                    m |= 1 << c;
                }
                self.phase_if(move |l| l & m == m, *theta);
            }
            Gate::Mcx { controls, target } => {
                let cm: Label = controls.iter().fold(0, |m, &c| m | (1 << c));
                let tm = 1u128 << target;
                self.map_labels(|l| if l & cm == cm { l ^ tm } else { l });
            }
            g @ (Gate::H(_) | Gate::Rx(..) | Gate::Ry(..)) => {
                return Err(UnsupportedGate {
                    gate: g.to_string(),
                })
            }
        }
        Ok(())
    }

    /// Applies a transition operator `τ(u, t)` analytically (Eq. 6).
    ///
    /// Unpaired basis states pass through unchanged (the `H|φ⟩ = 0` case
    /// in Theorem 1's proof); paired states mix as
    /// `cos(t)|x⟩ − i·sin(t)|partner⟩`.
    pub fn apply_transition(&mut self, tr: &Transition, t: f64) {
        self.apply_transition_with(tr, Complex::from(t.cos()), Complex::new(0.0, -t.sin()));
    }

    /// [`Self::apply_transition`] with the mixing constants `cos(t)` and
    /// `-i·sin(t)` precomputed by the caller — compiled segment programs
    /// evaluate them once per operator instead of once per shot. Merges
    /// through the reusable scratch buffer, so repeated application (the
    /// trajectory hot path) never allocates.
    ///
    /// Each output label receives at most two contributions (from `l`
    /// and from `partner(l)`), and two-term f64 addition commutes
    /// bitwise, so the result is independent of the map's iteration
    /// order.
    pub fn apply_transition_with(&mut self, tr: &Transition, cos: Complex, misin: Complex) {
        self.scratch.clear();
        self.scratch.reserve(self.amps.len() * 2);
        for (&l, &a) in &self.amps {
            match tr.partner(l) {
                Some(p) => {
                    *self.scratch.entry(l).or_insert(Complex::ZERO) += cos * a;
                    *self.scratch.entry(p).or_insert(Complex::ZERO) += misin * a;
                }
                None => {
                    *self.scratch.entry(l).or_insert(Complex::ZERO) += a;
                }
            }
        }
        self.scratch
            .retain(|_, a| a.norm_sqr() > PRUNE_EPS * PRUNE_EPS);
        std::mem::swap(&mut self.amps, &mut self.scratch);
        self.scratch.clear();
    }

    /// Multiplies each basis amplitude by `e^{i·phase(label)}` — the
    /// time evolution of an arbitrary diagonal Hamiltonian, used for the
    /// QAOA objective layer `e^{-iγ H_obj}` (pass `-γ·f(label)`).
    pub fn apply_diagonal_phase(&mut self, phase: impl Fn(Label) -> f64) {
        for (l, a) in self.amps.iter_mut() {
            *a *= Complex::cis(phase(*l));
        }
    }

    /// Like [`Self::apply_diagonal_phase`] but the closure returns the
    /// complex factor directly (and may mutate, e.g. a memo cache of
    /// `cis` evaluations keyed by label — the fused Choco-Q path reuses
    /// objective evaluations across trajectories this way).
    pub fn apply_diagonal_phase_with(&mut self, mut factor: impl FnMut(Label) -> Complex) {
        for (l, a) in self.amps.iter_mut() {
            *a *= factor(*l);
        }
    }

    /// Projects onto the subspace where qubit `q` equals `keep_one`,
    /// renormalizing (a damping-jump Kraus branch).
    ///
    /// # Panics
    ///
    /// Panics if the projected state is zero (the jump had probability
    /// zero and should not have been sampled).
    pub fn project_qubit(&mut self, q: usize, keep_one: bool) {
        let mask = 1u128 << q;
        self.amps.retain(|l, _| (l & mask != 0) == keep_one);
        self.normalize();
    }

    /// Scales amplitudes of labels with qubit `q` set by `factor`
    /// (no-jump damping branch; caller renormalizes).
    pub fn scale_where_qubit_one(&mut self, q: usize, factor: f64) {
        let mask = 1u128 << q;
        for (l, a) in self.amps.iter_mut() {
            if l & mask != 0 {
                *a = a.scale(factor);
            }
        }
    }

    /// Builds a reusable measurement sampler for the state's current
    /// distribution: the support is sorted once (label order, so the
    /// backing `HashMap`'s per-process randomized order never leaks into
    /// results) and a cumulative-probability table is built once. Each
    /// subsequent [`PreparedSampler::draw`] is a binary search.
    ///
    /// # Panics
    ///
    /// Panics if the state is empty.
    pub fn prepared_sampler(&self) -> PreparedSampler {
        assert!(!self.amps.is_empty(), "cannot sample an empty state");
        let mut support: Vec<(Label, f64)> =
            self.amps.iter().map(|(&l, a)| (l, a.norm_sqr())).collect();
        support.sort_unstable_by_key(|&(l, _)| l);
        let mut labels = Vec::with_capacity(support.len());
        let mut cdf = Vec::with_capacity(support.len());
        let mut acc = 0.0f64;
        let mut last_support = 0usize;
        for (i, (l, p)) in support.into_iter().enumerate() {
            if p > 0.0 {
                last_support = i;
            }
            acc += p;
            labels.push(l);
            cdf.push(acc);
        }
        PreparedSampler {
            labels,
            cdf,
            total: acc,
            last_support,
        }
    }

    /// Draws `shots` measurement outcomes, returning label → count.
    ///
    /// The support is prepared once (`O(s log s)`), then each shot is a
    /// binary search (`O(log s)`) — the earlier implementation rescanned
    /// the support linearly per shot.
    pub fn sample(&self, shots: usize, rng: &mut impl Rng) -> BTreeMap<Label, usize> {
        if self.amps.is_empty() {
            // Preserved behavior of the old scan: an empty support maps
            // every shot to label 0.
            return if shots == 0 {
                BTreeMap::new()
            } else {
                BTreeMap::from([(0, shots)])
            };
        }
        let sampler = self.prepared_sampler();
        let mut counts = BTreeMap::new();
        for _ in 0..shots {
            *counts.entry(sampler.draw(rng)).or_insert(0) += 1;
        }
        counts
    }

    /// Draws a single measurement outcome via a one-off
    /// [`Self::prepared_sampler`]. Callers drawing repeatedly from the
    /// *same* state should hold the sampler and call
    /// [`PreparedSampler::draw`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the state is empty.
    pub fn sample_one(&self, rng: &mut impl Rng) -> Label {
        self.prepared_sampler().draw(rng)
    }

    /// Replaces each label by `f(label)` (a basis permutation), reusing
    /// the scratch buffer.
    fn map_labels(&mut self, f: impl Fn(Label) -> Label) {
        self.scratch.clear();
        self.scratch.reserve(self.amps.len());
        for (&l, &a) in &self.amps {
            *self.scratch.entry(f(l)).or_insert(Complex::ZERO) += a;
        }
        std::mem::swap(&mut self.amps, &mut self.scratch);
        self.scratch.clear();
    }

    /// Multiplies amplitudes of labels satisfying `pred` by `e^{iθ}`.
    fn phase_if(&mut self, pred: impl Fn(Label) -> bool, theta: f64) {
        let phase = Complex::cis(theta);
        for (l, a) in self.amps.iter_mut() {
            if pred(*l) {
                *a *= phase;
            }
        }
    }
}

/// A frozen measurement distribution of a [`SparseState`]: sorted
/// support labels plus a cumulative-probability table.
///
/// Built once by [`SparseState::prepared_sampler`]; every [`draw`]
/// (binary search) is `O(log s)` where `s` is the support size. The
/// sorted-label construction makes draws deterministic for a fixed RNG
/// across processes and thread counts.
///
/// [`draw`]: PreparedSampler::draw
#[derive(Clone, Debug)]
pub struct PreparedSampler {
    labels: Vec<Label>,
    cdf: Vec<f64>,
    total: f64,
    /// Index of the last entry with nonzero mass. A support entry can
    /// carry zero probability (an amplitude damped to exactly 0 that
    /// still occupies its map slot), so the rounding fallback clamps
    /// here rather than to `labels.len() - 1` — otherwise a degenerate
    /// norm would let the draw return a zero-probability label.
    last_support: usize,
}

impl PreparedSampler {
    /// Draws one measurement outcome.
    pub fn draw(&self, rng: &mut impl Rng) -> Label {
        let r: f64 = rng.gen::<f64>() * self.total;
        // First entry whose cumulative mass exceeds r; accumulated
        // rounding can push r past the last supported entry (and a
        // 0/NaN total sends the search to the ends), so the fallback
        // clamps into the support. The binary search cannot select an
        // interior zero-mass entry itself (its cdf value equals its
        // predecessor's), so healthy states draw exactly as before.
        let idx = self.cdf.partition_point(|&c| c <= r).min(self.last_support);
        self.labels[idx]
    }

    /// Number of labels in the support.
    pub fn support_size(&self) -> usize {
        self.labels.len()
    }

    /// Total probability mass of the support (≈ 1 for normalized states).
    pub fn total_mass(&self) -> f64 {
        self.total
    }
}

/// Packs a binary solution vector into a basis label (bit `i` = `x[i]`).
///
/// # Panics
///
/// Panics if entries are not 0/1 or the vector exceeds 128 bits.
///
/// # Example
///
/// ```
/// use rasengan_qsim::sparse::label_from_bits;
/// assert_eq!(label_from_bits(&[0, 0, 0, 1, 0]), 0b01000);
/// ```
pub fn label_from_bits(bits: &[i64]) -> Label {
    assert!(bits.len() <= 128, "at most 128 bits");
    bits.iter().enumerate().fold(0u128, |acc, (i, &b)| {
        assert!(b == 0 || b == 1, "non-binary entry {b}");
        acc | ((b as u128) << i)
    })
}

/// Unpacks a basis label into a binary solution vector of length `n`.
///
/// # Example
///
/// ```
/// use rasengan_qsim::sparse::bits_from_label;
/// assert_eq!(bits_from_label(0b01000, 5), vec![0, 0, 0, 1, 0]);
/// ```
pub fn bits_from_label(label: Label, n: usize) -> Vec<i64> {
    (0..n).map(|i| (label >> i & 1) as i64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-12;

    #[test]
    fn prepared_sampler_matches_distribution_chi_squared() {
        // Spread a basis state over several labels, then check the
        // shared CDF sampler against the exact distribution.
        let mut s = SparseState::basis_state(5, 0b01000);
        s.apply_transition(&Transition::from_u(&[-1, 0, -1, 1, 0]), 0.9);
        s.apply_transition(&Transition::from_u(&[1, -1, 0, 0, 0]), 0.7);
        let dist = s.distribution();
        assert!(dist.len() >= 3, "want a multi-label support");
        let shots = 8000usize;
        let mut rng = StdRng::seed_from_u64(31);
        let counts = s.sample(shots, &mut rng);
        let mut chi2 = 0.0;
        for (label, p) in &dist {
            let e = p * shots as f64;
            let obs = counts.get(label).copied().unwrap_or(0) as f64;
            chi2 += (obs - e).powi(2) / e.max(1e-9);
        }
        // Generous cutoff for df = support-1 at p = 0.001.
        assert!(chi2 < 30.0, "chi-squared {chi2} too large");
        // No mass outside the support.
        assert!(counts.keys().all(|l| dist.contains_key(l)));
    }

    #[test]
    fn sample_one_draws_follow_distribution() {
        // Repeated sample_one draws must follow the same distribution
        // as batch sampling (they share the prepared CDF sampler).
        let mut s = SparseState::basis_state(5, 0b01000);
        s.apply_transition(&Transition::from_u(&[-1, 0, -1, 1, 0]), 0.6);
        let dist = s.distribution();
        let sampler = s.prepared_sampler();
        assert_eq!(sampler.support_size(), dist.len());
        assert!((sampler.total_mass() - 1.0).abs() < 1e-9);
        let shots = 4000usize;
        let mut rng = StdRng::seed_from_u64(37);
        let mut counts: std::collections::BTreeMap<Label, usize> =
            std::collections::BTreeMap::new();
        for _ in 0..shots {
            *counts.entry(sampler.draw(&mut rng)).or_insert(0) += 1;
        }
        let mut chi2 = 0.0;
        for (label, p) in &dist {
            let e = p * shots as f64;
            let obs = counts.get(label).copied().unwrap_or(0) as f64;
            chi2 += (obs - e).powi(2) / e.max(1e-9);
        }
        assert!(chi2 < 30.0, "chi-squared {chi2} too large");
    }

    #[test]
    fn prepared_sampler_clamps_degenerate_norms_into_support() {
        // A support slot damped to exactly zero at the top label: the
        // rounding fallback must clamp to the last *supported* entry,
        // never the zero-probability one.
        let mut s = SparseState::basis_state(3, 0b001);
        s.amps.insert(0b100, Complex::ZERO);
        let sampler = s.prepared_sampler();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            assert_eq!(sampler.draw(&mut rng), 0b001);
        }
        // Every amplitude exactly zero (total mass 0): the draw must
        // fall back to the first label, not the maximum one.
        let mut z = SparseState::basis_state(2, 0b00);
        *z.amps.get_mut(&0b00).unwrap() = Complex::ZERO;
        z.amps.insert(0b11, Complex::ZERO);
        let sampler = z.prepared_sampler();
        for _ in 0..20 {
            assert_eq!(sampler.draw(&mut rng), 0b00);
        }
    }

    #[test]
    fn transition_from_paper_u2() {
        // u₂ = [-1, 0, -1, 1, 0]: x_p = [0,0,0,1,0] matches the adjoint
        // term (x−u): plus positions {3} set? plus_mask is q3 (u=+1);
        // minus_mask is q0,q2. x_p has q3=1, q0=q2=0 → partner = x−u =
        // [1,0,1,0,0].
        let tr = Transition::from_u(&[-1, 0, -1, 1, 0]);
        let xp = label_from_bits(&[0, 0, 0, 1, 0]);
        let partner = tr.partner(xp).expect("partner must exist");
        assert_eq!(bits_from_label(partner, 5), vec![1, 0, 1, 0, 0]);
        // And the partnership is symmetric.
        assert_eq!(tr.partner(partner), Some(xp));
    }

    #[test]
    fn transition_no_partner_for_non_binary_move() {
        let tr = Transition::from_u(&[1, 0, 0, 0, 0]);
        // x with q0=1: forward needs q0=0; adjoint (x−u) needs q0=1 and
        // no minus bits — partner = q0 cleared. So a partner exists both
        // ways for weight-1 u. Use a 2-qubit u instead:
        let tr2 = Transition::from_u(&[1, -1, 0, 0, 0]);
        // x = [0,0,...]: forward needs q0=0 (ok) and q1=1 (fails);
        // adjoint needs q0=1 (fails). No partner.
        assert_eq!(tr2.partner(0), None);
        let _ = tr;
    }

    #[test]
    fn transition_weight() {
        assert_eq!(Transition::from_u(&[1, -1, 0, 1]).weight(), 3);
    }

    #[test]
    #[should_panic(expected = "non-ternary")]
    fn non_ternary_transition_panics() {
        Transition::from_u(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_transition_panics() {
        Transition::from_u(&[0, 0]);
    }

    #[test]
    fn apply_transition_superposes_pair() {
        let tr = Transition::from_u(&[1, 0]);
        let mut s = SparseState::basis_state(2, 0);
        let t = std::f64::consts::FRAC_PI_4;
        s.apply_transition(&tr, t);
        assert_eq!(s.support_size(), 2);
        assert!(s.amplitude(0b00).approx_eq(Complex::from(t.cos()), TOL));
        assert!(s
            .amplitude(0b01)
            .approx_eq(Complex::new(0.0, -t.sin()), TOL));
        assert!((s.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn apply_transition_half_pi_is_full_swap() {
        // t = π/2 collapses fully onto the partner (a basis state, which
        // is the mechanism Rasengan uses to land on the optimum).
        let tr = Transition::from_u(&[1, 0]);
        let mut s = SparseState::basis_state(2, 0);
        s.apply_transition(&tr, std::f64::consts::FRAC_PI_2);
        assert_eq!(s.support(), vec![0b01]);
    }

    #[test]
    fn transition_unpaired_state_unchanged() {
        let tr = Transition::from_u(&[1, -1]);
        let mut s = SparseState::basis_state(2, 0b00);
        s.apply_transition(&tr, 1.2);
        assert_eq!(s.support(), vec![0b00]);
        assert!(s.amplitude(0b00).approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn transition_is_unitary_on_superposition() {
        let tr = Transition::from_u(&[1, 0, -1]);
        let mut s = SparseState::basis_state(3, 0b100);
        s.apply_transition(&tr, 0.7);
        s.apply_transition(&Transition::from_u(&[0, 1, 0]), 0.3);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn transition_inverse_restores() {
        let tr = Transition::from_u(&[1, 0, -1]);
        let mut s = SparseState::basis_state(3, 0b100);
        s.apply_transition(&tr, 0.9);
        s.apply_transition(&tr, -0.9);
        assert_eq!(s.support(), vec![0b100]);
        assert!(s.amplitude(0b100).approx_eq(Complex::ONE, 1e-10));
    }

    #[test]
    fn sparse_gates_match_expectations() {
        let mut s = SparseState::basis_state(3, 0b000);
        s.apply(&Gate::X(0)).unwrap();
        s.apply(&Gate::Cx(0, 1)).unwrap();
        s.apply(&Gate::Mcx {
            controls: vec![0, 1],
            target: 2,
        })
        .unwrap();
        assert_eq!(s.support(), vec![0b111]);
        s.apply(&Gate::Mcp {
            controls: vec![0, 1],
            target: 2,
            theta: 1.0,
        })
        .unwrap();
        assert!(s.amplitude(0b111).approx_eq(Complex::cis(1.0), TOL));
    }

    #[test]
    fn sparse_swap_and_phase_gates() {
        let mut s = SparseState::basis_state(2, 0b01);
        s.apply(&Gate::Swap(0, 1)).unwrap();
        assert_eq!(s.support(), vec![0b10]);
        s.apply(&Gate::Phase(1, 0.5)).unwrap();
        assert!(s.amplitude(0b10).approx_eq(Complex::cis(0.5), TOL));
        s.apply(&Gate::Z(1)).unwrap();
        assert!(s
            .amplitude(0b10)
            .approx_eq(Complex::cis(0.5 + std::f64::consts::PI), TOL));
    }

    #[test]
    fn sparse_y_gate() {
        let mut s = SparseState::basis_state(1, 0);
        s.apply(&Gate::Y(0)).unwrap();
        assert!(s.amplitude(1).approx_eq(Complex::I, TOL));
        s.apply(&Gate::Y(0)).unwrap();
        assert!(s.amplitude(0).approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn unsupported_gate_reports_error() {
        let mut s = SparseState::basis_state(1, 0);
        let err = s.apply(&Gate::H(0)).unwrap_err();
        assert!(err.to_string().contains("h q0"));
    }

    #[test]
    fn sampling_concentrates_on_support() {
        let tr = Transition::from_u(&[1, 0]);
        let mut s = SparseState::basis_state(2, 0);
        s.apply_transition(&tr, std::f64::consts::FRAC_PI_4);
        let mut rng = StdRng::seed_from_u64(3);
        let counts = s.sample(4000, &mut rng);
        assert!(counts.keys().all(|l| *l == 0b00 || *l == 0b01));
        let c0 = *counts.get(&0b00).unwrap_or(&0) as f64 / 4000.0;
        assert!((c0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn large_register_transitions() {
        // 100 qubits: dense simulation is impossible; sparse is trivial.
        let mut u = vec![0i64; 100];
        u[97] = 1;
        u[3] = -1;
        let tr = Transition::from_u(&u);
        let mut s = SparseState::basis_state(100, 1 << 3);
        s.apply_transition(&tr, std::f64::consts::FRAC_PI_2);
        assert_eq!(s.support(), vec![1u128 << 97]);
    }

    #[test]
    fn bits_roundtrip() {
        let bits = vec![1, 0, 1, 1, 0, 0, 1];
        assert_eq!(bits_from_label(label_from_bits(&bits), 7), bits);
    }
}
