//! Coupling maps and SWAP routing.
//!
//! Real devices only support two-qubit gates between coupled qubits. The
//! paper reports "circuit depth compiled via Quebec" (Fig. 10b): logical
//! circuits are routed onto the device's heavy-hex topology, inserting
//! SWAPs along shortest paths. This module implements the coupling
//! graphs and a greedy shortest-path router.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::collections::VecDeque;

/// An undirected qubit-coupling graph.
///
/// # Example
///
/// ```
/// use rasengan_qsim::route::CouplingMap;
///
/// let line = CouplingMap::linear(4);
/// assert!(line.are_coupled(1, 2));
/// assert!(!line.are_coupled(0, 3));
/// assert_eq!(line.shortest_path(0, 3), vec![0, 1, 2, 3]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CouplingMap {
    n_qubits: usize,
    adjacency: Vec<Vec<usize>>,
}

impl CouplingMap {
    /// Builds a coupling map from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `>= n_qubits`.
    pub fn from_edges(n_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut adjacency = vec![Vec::new(); n_qubits];
        for &(a, b) in edges {
            assert!(a < n_qubits && b < n_qubits, "edge ({a},{b}) out of range");
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        CouplingMap {
            n_qubits,
            adjacency,
        }
    }

    /// A linear chain `0—1—…—(n−1)`.
    pub fn linear(n_qubits: usize) -> Self {
        let edges: Vec<_> = (1..n_qubits).map(|i| (i - 1, i)).collect();
        Self::from_edges(n_qubits, &edges)
    }

    /// Fully connected (used for "algorithmic" depth, no routing cost).
    pub fn full(n_qubits: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n_qubits {
            for b in (a + 1)..n_qubits {
                edges.push((a, b));
            }
        }
        Self::from_edges(n_qubits, &edges)
    }

    /// An IBM-style heavy-hex lattice fragment with at least `n_qubits`
    /// qubits (rows of degree-2/3 qubits as on Eagle-class devices).
    ///
    /// The construction tiles rows of length `row` connected by bridge
    /// qubits every four columns, which reproduces heavy-hex's
    /// low average degree (≤ 3) and its routing distances.
    pub fn heavy_hex(n_qubits: usize) -> Self {
        let row = 15usize;
        let mut edges = Vec::new();
        let mut total = 0usize;
        let mut rows = Vec::new();
        while total < n_qubits {
            rows.push(total);
            // Row qubits are consecutive.
            for i in 1..row {
                edges.push((total + i - 1, total + i));
            }
            total += row;
        }
        // Bridges between consecutive rows every 4 columns.
        let mut bridge = total;
        for w in rows.windows(2) {
            let (top, bottom) = (w[0], w[1]);
            let mut col = 0;
            while col < row {
                edges.push((top + col, bridge));
                edges.push((bridge, bottom + col));
                bridge += 1;
                col += 4;
            }
        }
        Self::from_edges(total.max(bridge), &edges)
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Whether `a` and `b` share an edge.
    pub fn are_coupled(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].contains(&b)
    }

    /// BFS shortest path between two qubits (inclusive of endpoints).
    ///
    /// # Panics
    ///
    /// Panics if the qubits are in disconnected components.
    pub fn shortest_path(&self, from: usize, to: usize) -> Vec<usize> {
        if from == to {
            return vec![from];
        }
        let mut prev = vec![usize::MAX; self.n_qubits];
        let mut queue = VecDeque::from([from]);
        prev[from] = from;
        while let Some(v) = queue.pop_front() {
            for &w in &self.adjacency[v] {
                if prev[w] == usize::MAX {
                    prev[w] = v;
                    if w == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return path;
                    }
                    queue.push_back(w);
                }
            }
        }
        panic!("qubits {from} and {to} are not connected");
    }
}

/// Result of routing a logical circuit onto a coupling map.
#[derive(Clone, Debug)]
pub struct RoutedCircuit {
    /// The physical circuit (includes inserted SWAPs).
    pub circuit: Circuit,
    /// Number of SWAP gates inserted.
    pub swaps_inserted: usize,
    /// Final logical→physical layout.
    pub layout: Vec<usize>,
}

/// Routes `circuit` onto `coupling` with a greedy shortest-path SWAP
/// strategy, starting from the trivial layout.
///
/// Multi-qubit gates beyond arity 2 (`MCP`, `MCX`) are charged by
/// routing their control/target pairs pairwise toward the target — the
/// same first-order cost a real transpiler pays before decomposing them.
///
/// # Example
///
/// ```
/// use rasengan_qsim::route::{route_circuit, CouplingMap};
/// use rasengan_qsim::Circuit;
///
/// let mut c = Circuit::new(4);
/// c.cx(0, 3);
/// let routed = route_circuit(&c, &CouplingMap::linear(4));
/// assert!(routed.swaps_inserted >= 2);
/// ```
pub fn route_circuit(circuit: &Circuit, coupling: &CouplingMap) -> RoutedCircuit {
    assert!(
        coupling.n_qubits() >= circuit.n_qubits(),
        "device has fewer qubits than the circuit"
    );
    // layout[logical] = physical; phys2log inverse.
    let mut layout: Vec<usize> = (0..circuit.n_qubits()).collect();
    let mut phys2log: Vec<Option<usize>> = (0..coupling.n_qubits()).map(Some).collect();
    for slot in phys2log.iter_mut().skip(circuit.n_qubits()) {
        *slot = None;
    }
    let mut out = Circuit::new(coupling.n_qubits());
    let mut swaps = 0usize;

    let mut bring_adjacent = |a: usize,
                              b: usize,
                              layout: &mut Vec<usize>,
                              phys2log: &mut Vec<Option<usize>>,
                              out: &mut Circuit| {
        // Move logical a along the shortest path toward logical b.
        loop {
            let (pa, pb) = (layout[a], layout[b]);
            if coupling.are_coupled(pa, pb) || pa == pb {
                break;
            }
            let path = coupling.shortest_path(pa, pb);
            let next = path[1];
            out.push(Gate::Swap(pa, next));
            swaps += 1;
            // Update the layout for whatever logical qubit sat at `next`.
            let displaced = phys2log[next];
            phys2log[next] = Some(a);
            phys2log[pa] = displaced;
            layout[a] = next;
            if let Some(d) = displaced {
                layout[d] = pa;
            }
        }
    };

    for g in circuit.gates() {
        let qs = g.qubits();
        match qs.len() {
            1 => {
                out.push(remap_gate(g, &layout));
            }
            2 => {
                bring_adjacent(qs[0], qs[1], &mut layout, &mut phys2log, &mut out);
                out.push(remap_gate(g, &layout));
            }
            _ => {
                // Route every control next to the target, greedily.
                let target = *qs.last().expect("multi-qubit gate has qubits");
                for &c in &qs[..qs.len() - 1] {
                    bring_adjacent(c, target, &mut layout, &mut phys2log, &mut out);
                }
                out.push(remap_gate(g, &layout));
            }
        }
    }

    RoutedCircuit {
        circuit: out,
        swaps_inserted: swaps,
        layout,
    }
}

/// Rewrites a gate's qubit indices through the layout.
fn remap_gate(g: &Gate, layout: &[usize]) -> Gate {
    let m = |q: usize| layout[q];
    match g {
        Gate::X(q) => Gate::X(m(*q)),
        Gate::Y(q) => Gate::Y(m(*q)),
        Gate::Z(q) => Gate::Z(m(*q)),
        Gate::H(q) => Gate::H(m(*q)),
        Gate::Rx(q, t) => Gate::Rx(m(*q), *t),
        Gate::Ry(q, t) => Gate::Ry(m(*q), *t),
        Gate::Rz(q, t) => Gate::Rz(m(*q), *t),
        Gate::Phase(q, t) => Gate::Phase(m(*q), *t),
        Gate::Cx(a, b) => Gate::Cx(m(*a), m(*b)),
        Gate::Cz(a, b) => Gate::Cz(m(*a), m(*b)),
        Gate::Swap(a, b) => Gate::Swap(m(*a), m(*b)),
        Gate::Rzz(a, b, t) => Gate::Rzz(m(*a), m(*b), *t),
        Gate::Cp(a, b, t) => Gate::Cp(m(*a), m(*b), *t),
        Gate::Mcp {
            controls,
            target,
            theta,
        } => Gate::Mcp {
            controls: controls.iter().map(|&c| m(c)).collect(),
            target: m(*target),
            theta: *theta,
        },
        Gate::Mcx { controls, target } => Gate::Mcx {
            controls: controls.iter().map(|&c| m(c)).collect(),
            target: m(*target),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_map_structure() {
        let m = CouplingMap::linear(5);
        assert!(m.are_coupled(0, 1));
        assert!(m.are_coupled(3, 4));
        assert!(!m.are_coupled(0, 2));
    }

    #[test]
    fn shortest_path_endpoints() {
        let m = CouplingMap::linear(6);
        assert_eq!(m.shortest_path(2, 2), vec![2]);
        assert_eq!(m.shortest_path(1, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn full_map_needs_no_swaps() {
        let mut c = Circuit::new(5);
        c.cx(0, 4).cx(1, 3);
        let routed = route_circuit(&c, &CouplingMap::full(5));
        assert_eq!(routed.swaps_inserted, 0);
        assert_eq!(routed.circuit.two_qubit_gate_count(), 2);
    }

    #[test]
    fn linear_map_inserts_swaps_for_distant_pair() {
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let routed = route_circuit(&c, &CouplingMap::linear(4));
        assert_eq!(routed.swaps_inserted, 2);
        // The CX itself plus two swaps.
        assert_eq!(routed.circuit.two_qubit_gate_count(), 3);
    }

    #[test]
    fn routed_circuit_preserves_semantics() {
        use crate::dense::DenseState;
        // |x⟩ through CX(0,3) on a line must equal the unrouted result
        // after accounting for the final layout permutation.
        let mut c = Circuit::new(4);
        c.x(0).cx(0, 3);
        let routed = route_circuit(&c, &CouplingMap::linear(4));
        let s = DenseState::from_circuit(&routed.circuit);
        // Logical state is x0=1, x3=1; find them through the layout.
        let expect = (1u64 << routed.layout[0]) | (1u64 << routed.layout[3]);
        assert!(s.amplitude(expect).norm_sqr() > 0.999);
    }

    #[test]
    fn heavy_hex_is_connected_and_sparse() {
        let m = CouplingMap::heavy_hex(30);
        assert!(m.n_qubits() >= 30);
        // Connectivity: BFS from 0 reaches everything.
        for q in 0..m.n_qubits() {
            let _ = m.shortest_path(0, q);
        }
        // Sparsity: average degree ≤ 3 (heavy-hex signature).
        let total_degree: usize = (0..m.n_qubits())
            .map(|q| (0..m.n_qubits()).filter(|&w| m.are_coupled(q, w)).count())
            .sum();
        assert!(total_degree as f64 / m.n_qubits() as f64 <= 3.0);
    }

    #[test]
    fn mcp_routing_brings_controls_to_target() {
        let mut c = Circuit::new(5);
        c.mcp(vec![0, 4], 2, 0.3);
        let routed = route_circuit(&c, &CouplingMap::linear(5));
        // After routing, controls are adjacent to the target.
        let last = routed.circuit.gates().last().unwrap();
        if let Gate::Mcp {
            controls, target, ..
        } = last
        {
            for c in controls {
                assert!(
                    CouplingMap::linear(5).are_coupled(*c, *target),
                    "control {c} not adjacent to target {target}"
                );
            }
        } else {
            panic!("expected MCP at tail");
        }
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn disconnected_components_panic() {
        let m = CouplingMap::from_edges(4, &[(0, 1), (2, 3)]);
        m.shortest_path(0, 3);
    }
}
