//! Quantum circuits: ordered gate lists with depth and cost metrics.

use crate::gate::Gate;
use std::fmt;

/// An ordered sequence of gates on `n_qubits` qubits.
///
/// # Example
///
/// ```
/// use rasengan_qsim::{Circuit, Gate};
///
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).cx(1, 2);
/// assert_eq!(c.len(), 3);
/// assert_eq!(c.depth(), 3);
/// assert_eq!(c.two_qubit_gate_count(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in execution order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit `>= n_qubits`.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        for q in gate.qubits() {
            assert!(
                q < self.n_qubits,
                "gate {gate} references qubit {q} outside register of {}",
                self.n_qubits
            );
        }
        self.gates.push(gate);
        self
    }

    /// Appends all gates of another circuit.
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than this circuit has.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.n_qubits <= self.n_qubits,
            "cannot extend {}-qubit circuit with {}-qubit circuit",
            self.n_qubits,
            other.n_qubits
        );
        for g in &other.gates {
            self.gates.push(g.clone());
        }
        self
    }

    /// The inverse circuit (gates reversed and individually inverted).
    pub fn inverse(&self) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            gates: self.gates.iter().rev().map(Gate::inverse).collect(),
        }
    }

    /// Circuit depth: the length of the critical path when gates on
    /// disjoint qubits run concurrently.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        let mut max = 0;
        for g in &self.gates {
            let qs = g.qubits();
            let d = qs.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for q in qs {
                level[q] = d;
            }
            max = max.max(d);
        }
        max
    }

    /// Depth counting only multi-qubit gates (the dominant error source
    /// on hardware; the paper's "circuit depth" tables use the compiled
    /// two-qubit depth).
    pub fn two_qubit_depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        let mut max = 0;
        for g in &self.gates {
            if !g.is_multi_qubit() {
                continue;
            }
            let qs = g.qubits();
            let d = qs.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for q in qs {
                level[q] = d;
            }
            max = max.max(d);
        }
        max
    }

    /// Total number of multi-qubit gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_multi_qubit()).count()
    }

    /// Number of single-qubit gates.
    pub fn single_qubit_gate_count(&self) -> usize {
        self.len() - self.two_qubit_gate_count()
    }

    // --- fluent builders -------------------------------------------------

    /// Appends an X gate.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X(q))
    }

    /// Appends a Hadamard gate.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H(q))
    }

    /// Appends an `Rx(θ)` gate.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rx(q, theta))
    }

    /// Appends an `Ry(θ)` gate.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Ry(q, theta))
    }

    /// Appends an `Rz(θ)` gate.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rz(q, theta))
    }

    /// Appends a phase gate `diag(1, e^{iθ})`.
    pub fn phase(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Phase(q, theta))
    }

    /// Appends a CX gate.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cx(control, target))
    }

    /// Appends an `Rzz(θ)` gate.
    pub fn rzz(&mut self, a: usize, b: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rzz(a, b, theta))
    }

    /// Appends a controlled-phase gate.
    pub fn cp(&mut self, control: usize, target: usize, theta: f64) -> &mut Self {
        self.push(Gate::Cp(control, target, theta))
    }

    /// Appends a multi-controlled phase gate.
    pub fn mcp(&mut self, controls: Vec<usize>, target: usize, theta: f64) -> &mut Self {
        self.push(Gate::Mcp {
            controls,
            target,
            theta,
        })
    }

    /// Appends a multi-controlled X gate.
    pub fn mcx(&mut self, controls: Vec<usize>, target: usize) -> &mut Self {
        self.push(Gate::Mcx { controls, target })
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit({} qubits, {} gates):",
            self.n_qubits,
            self.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_accounts_for_parallelism() {
        let mut c = Circuit::new(4);
        // Two CX on disjoint pairs can run in parallel: depth 1.
        c.cx(0, 1).cx(2, 3);
        assert_eq!(c.depth(), 1);
        // A third CX sharing qubit 1 serializes.
        c.cx(1, 2);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn two_qubit_depth_ignores_singles() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).h(0).cx(0, 1);
        assert_eq!(c.two_qubit_depth(), 1);
        assert_eq!(c.depth(), 4);
    }

    #[test]
    fn gate_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).mcp(vec![0, 1], 2, 0.3).x(2);
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.single_qubit_gate_count(), 2);
    }

    #[test]
    fn inverse_reverses_and_negates() {
        let mut c = Circuit::new(2);
        c.rx(0, 0.5).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.gates()[0], Gate::Cx(0, 1));
        assert_eq!(inv.gates()[1], Gate::Rx(0, -0.5));
    }

    #[test]
    #[should_panic(expected = "outside register")]
    fn out_of_range_qubit_panics() {
        Circuit::new(1).cx(0, 1);
    }

    #[test]
    fn extend_appends() {
        let mut a = Circuit::new(2);
        a.x(0);
        let mut b = Circuit::new(2);
        b.x(1);
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_circuit_properties() {
        let c = Circuit::new(3);
        assert!(c.is_empty());
        assert_eq!(c.depth(), 0);
        assert_eq!(c.two_qubit_depth(), 0);
    }
}
