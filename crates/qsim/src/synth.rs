//! Circuit synthesis for transition operators (paper Fig. 4).
//!
//! A transition operator `τ(u, t) = exp(-i H^τ(u) t)` is a Givens-style
//! rotation between each basis state matching the pattern of `u` and its
//! partner. The paper proves it decomposes into a *symmetric* structure:
//! a CX/X conjugation sandwiching **two multi-controlled phase gates**.
//! This module emits exactly that structure:
//!
//! ```text
//!   [CX fan-out from pivot] [X pattern adjust] [H pivot]
//!        MCP(rest, −t)   MCP(rest → pivot, 2t)
//!   [H pivot] [X pattern adjust] [CX fan-out]
//! ```
//!
//! After conjugating with `CX(pivot → q)` for every other support qubit
//! `q`, the two pattern states differ only on the pivot, and the rotation
//! becomes a multi-controlled `Rx(2t)`; the `H`s move it to the Z basis
//! where it splits into the two MCPs shown in Fig. 4.

use crate::circuit::Circuit;
use crate::decompose::{mcp_cx_cost, tau_cx_cost};
use crate::sparse::Transition;

/// Synthesizes the gate-level circuit of `τ(u, t)` on `n` qubits.
///
/// The result is exact: running it on the dense simulator matches
/// [`crate::SparseState::apply_transition`] amplitude-for-amplitude
/// (cross-validated in tests).
///
/// # Panics
///
/// Panics if `u` has entries outside `{-1,0,1}`, is all-zero, or is
/// longer than `n`.
///
/// # Example
///
/// ```
/// use rasengan_qsim::synth::tau_circuit;
///
/// let c = tau_circuit(&[1, -1, 0], 0.5, 3);
/// // Symmetric structure: two MCP gates in the middle.
/// let mcps = c.gates().iter().filter(|g| matches!(g, rasengan_qsim::Gate::Mcp { .. } | rasengan_qsim::Gate::Phase(..))).count();
/// assert!(mcps >= 2 || c.n_qubits() == 3);
/// ```
pub fn tau_circuit(u: &[i64], t: f64, n: usize) -> Circuit {
    assert!(u.len() <= n, "basis vector longer than register");
    let tr = Transition::from_u(u);
    let support: Vec<usize> = (0..u.len()).filter(|&i| u[i] != 0).collect();
    let pivot = support[0];
    let mut c = Circuit::new(n);

    if support.len() == 1 {
        // τ = exp(-i t X_pivot) = Rx(2t), emitted in the Z frame so only
        // phase-type gates appear past the H conjugation.
        c.h(pivot).rz(pivot, 2.0 * t).h(pivot);
        return c;
    }

    // Forward-matching pattern: a_q = 1 iff u_q = -1 (σ⁻ needs |1⟩).
    let a_bit = |q: usize| -> u8 { (tr.minus_mask >> q & 1) as u8 };
    let rest: Vec<usize> = support[1..].to_vec();

    // 1. CX fan-out: relabel q ↦ q ⊕ pivot for q in rest, after which the
    //    two pattern states agree on `rest` and differ only on the pivot.
    for &q in &rest {
        c.cx(pivot, q);
    }
    // 2. X adjust: make the shared pattern all-ones on `rest`.
    let ap = a_bit(pivot);
    for &q in &rest {
        if a_bit(q) ^ ap == 0 {
            c.x(q);
        }
    }
    // 3. Multi-controlled Rx(2t) on the pivot, in the Z frame.
    c.h(pivot);
    // MC-Rz(2t) = phase e^{-it} on "rest all ones" ⊕ MCP(rest → pivot, 2t).
    if rest.len() == 1 {
        c.phase(rest[0], -t);
    } else {
        c.mcp(rest[..rest.len() - 1].to_vec(), rest[rest.len() - 1], -t);
    }
    c.mcp(rest.clone(), pivot, 2.0 * t);
    c.h(pivot);
    // 4. Undo the conjugation.
    for &q in rest.iter().rev() {
        if a_bit(q) ^ ap == 0 {
            c.x(q);
        }
    }
    for &q in rest.iter().rev() {
        c.cx(pivot, q);
    }
    c
}

/// CX-count of the synthesized `τ(u, t)` under the paper's linear-cost
/// native-gate model: `34k` for `k` nonzero entries (§3.2).
pub fn tau_native_cx_count(u: &[i64]) -> usize {
    tau_cx_cost(u.iter().filter(|&&v| v != 0).count())
}

/// CX-count of the synthesized `τ` if the two MCPs and the CX fan-out
/// are charged individually with [`mcp_cx_cost`] — used to sanity-check
/// the `34k` aggregate model.
pub fn tau_itemized_cx_count(u: &[i64]) -> usize {
    let k = u.iter().filter(|&&v| v != 0).count();
    if k <= 1 {
        return 2; // Rx via H·Rz·H has no CX; charge the 2 boundary 1Q gates as 2.
    }
    2 * (k - 1) + mcp_cx_cost(k - 1) + mcp_cx_cost(k.saturating_sub(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseState;
    use crate::sparse::SparseState;

    /// Cross-validates the synthesized circuit against the analytic
    /// sparse transition on every basis state of an `n`-qubit register.
    fn check_tau(u: &[i64], t: f64) {
        let n = u.len();
        let circuit = tau_circuit(u, t, n);
        let tr = Transition::from_u(u);
        for basis in 0..(1u128 << n) {
            let mut dense = DenseState::basis_state(n, basis as u64);
            dense.run(&circuit);
            let mut sparse = SparseState::basis_state(n, basis);
            sparse.apply_transition(&tr, t);
            for l in 0..(1u128 << n) {
                let d = dense.amplitude(l as u64);
                let s = sparse.amplitude(l);
                assert!(
                    d.approx_eq(s, 1e-9),
                    "u={u:?} t={t} basis={basis:#b} label={l:#b}: circuit {d:?} vs analytic {s:?}"
                );
            }
        }
    }

    #[test]
    fn weight_one_tau_matches() {
        check_tau(&[1, 0, 0], 0.7);
        check_tau(&[0, 0, -1], 1.3);
    }

    #[test]
    fn weight_two_tau_matches() {
        check_tau(&[1, -1, 0], 0.5);
        check_tau(&[-1, 0, 1], 0.9);
        check_tau(&[1, 1, 0], 0.31);
        check_tau(&[0, -1, -1], 2.2);
    }

    #[test]
    fn weight_three_tau_matches() {
        check_tau(&[1, -1, 1], 0.4);
        check_tau(&[-1, -1, 1], 1.1);
        check_tau(&[1, 1, 1], std::f64::consts::FRAC_PI_2);
    }

    #[test]
    fn weight_four_paper_example() {
        // u₂ = [-1, 0, -1, 1, 0] from the paper's running example —
        // restricted to 4 active qubits for the dense cross-check.
        check_tau(&[-1, -1, 1, 0], 0.8);
    }

    #[test]
    fn tau_at_zero_time_is_identity() {
        let c = tau_circuit(&[1, -1, 0], 0.0, 3);
        for basis in 0..8u64 {
            let mut s = DenseState::basis_state(3, basis);
            s.run(&c);
            assert!(s
                .amplitude(basis)
                .approx_eq(crate::complex::Complex::ONE, 1e-9));
        }
    }

    #[test]
    fn native_cost_is_34k() {
        assert_eq!(tau_native_cx_count(&[1, -1, 0, 1]), 102);
        assert_eq!(tau_native_cx_count(&[1, 0, 0, 0]), 34);
    }

    #[test]
    fn itemized_cost_grows_linearly() {
        let c3 = tau_itemized_cx_count(&[1, 1, 1]);
        let c4 = tau_itemized_cx_count(&[1, 1, 1, 1]);
        let c5 = tau_itemized_cx_count(&[1, 1, 1, 1, 1]);
        assert_eq!(c4 - c3, c5 - c4, "itemized cost must be linear in k");
    }
}
