//! A minimal complex-number type for state-vector simulation.
//!
//! Self-contained (no `num` dependency): the simulators only need
//! add/mul/scale/conj/norm and `e^{iθ}`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use rasengan_qsim::Complex;
///
/// let i = Complex::I;
/// assert_eq!(i * i, -Complex::ONE);
/// assert!((Complex::cis(std::f64::consts::PI).re + 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates `re + i·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// The complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Whether both components are within `tol` of another value.
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex::I * Complex::I).approx_eq(-Complex::ONE, TOL));
    }

    #[test]
    fn cis_matches_euler() {
        let z = Complex::cis(1.234);
        assert!((z.re - 1.234f64.cos()).abs() < TOL);
        assert!((z.im - 1.234f64.sin()).abs() < TOL);
        assert!((z.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        assert!((z.abs() - 5.0).abs() < TOL);
        assert!((z * z.conj()).approx_eq(Complex::from(25.0), TOL));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.25, 0.75);
        assert!(((a * b) / b).approx_eq(a, 1e-10));
    }

    #[test]
    fn scale_and_assign_ops() {
        let mut z = Complex::ONE;
        z += Complex::I;
        z *= Complex::new(0.0, 1.0);
        z -= Complex::new(-1.0, 0.0);
        assert!(z.approx_eq(Complex::new(0.0, 1.0), TOL));
        assert!(z.scale(2.0).approx_eq(Complex::new(0.0, 2.0), TOL));
    }

    #[test]
    fn debug_format_shows_sign() {
        assert_eq!(
            format!("{:?}", Complex::new(1.0, -1.0)),
            "1.000000-1.000000i"
        );
    }
}
