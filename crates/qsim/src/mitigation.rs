//! Measurement-error mitigation by subspace confusion-matrix inversion
//! (the "M3" approach: restrict the tensored readout confusion matrix
//! to the observed bitstrings and solve the small linear system).
//!
//! Purification (Rasengan's own mitigation) removes constraint-violating
//! outcomes; readout mitigation is the orthogonal correction for the
//! classical bit-flip channel at measurement. Composing both mirrors a
//! production error-mitigation stack.

use crate::sparse::Label;
use std::collections::BTreeMap;

/// A symmetric per-qubit readout-error model: each measured bit flips
/// independently with probability `rate`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReadoutModel {
    /// Per-bit flip probability.
    pub rate: f64,
}

impl ReadoutModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate < 0.5` (at 0.5 the channel is not
    /// invertible).
    pub fn new(rate: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&rate),
            "readout rate must be in [0, 0.5)"
        );
        ReadoutModel { rate }
    }

    /// Probability of measuring `observed` given the true state `truth`
    /// on `n` bits: `rate^d (1-rate)^(n-d)` with `d` the Hamming
    /// distance.
    pub fn transition(&self, truth: Label, observed: Label, n: usize) -> f64 {
        let d = (truth ^ observed).count_ones() as i32;
        self.rate.powi(d) * (1.0 - self.rate).powi(n as i32 - d)
    }
}

/// Mitigates readout errors on a measured distribution by inverting the
/// confusion matrix restricted to the observed support (M3 style).
///
/// Returns the corrected distribution, clipped to non-negative values
/// and renormalized. With `rate == 0` the input is returned unchanged.
///
/// # Panics
///
/// Panics if the distribution is empty or the restricted system is
/// singular (cannot happen for `rate < 0.5`).
///
/// # Example
///
/// ```
/// use rasengan_qsim::mitigation::{mitigate_readout, ReadoutModel};
/// use std::collections::BTreeMap;
///
/// // A state that is truly |01⟩ but read out with 10% bit flips.
/// let measured = BTreeMap::from([(0b01u128, 0.82), (0b00, 0.09), (0b11, 0.09)]);
/// let fixed = mitigate_readout(&measured, 2, ReadoutModel::new(0.1));
/// assert!(fixed[&0b01] > 0.95);
/// ```
pub fn mitigate_readout(
    dist: &BTreeMap<Label, f64>,
    n: usize,
    model: ReadoutModel,
) -> BTreeMap<Label, f64> {
    assert!(!dist.is_empty(), "empty distribution");
    if model.rate == 0.0 {
        return dist.clone();
    }
    let labels: Vec<Label> = dist.keys().copied().collect();
    let k = labels.len();

    // Restricted confusion matrix A[i][j] = P(observe labels[i] | truth
    // labels[j]).
    let mut a = vec![vec![0.0f64; k]; k];
    for (i, &obs) in labels.iter().enumerate() {
        for (j, &truth) in labels.iter().enumerate() {
            a[i][j] = model.transition(truth, obs, n);
        }
    }
    let y: Vec<f64> = labels.iter().map(|l| dist[l]).collect();

    let x = solve_dense(a, y).expect("restricted confusion matrix is invertible");

    // Clip negatives (sampling noise artifacts) and renormalize.
    let clipped: Vec<f64> = x.iter().map(|&v| v.max(0.0)).collect();
    let total: f64 = clipped.iter().sum();
    assert!(total > 0.0, "mitigation produced an all-zero distribution");
    labels
        .into_iter()
        .zip(clipped)
        .filter(|(_, p)| *p > 0.0)
        .map(|(l, p)| (l, p / total))
        .collect()
}

/// Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // textbook index form
fn solve_dense(mut a: Vec<Vec<f64>>, mut y: Vec<f64>) -> Option<Vec<f64>> {
    let n = y.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        y.swap(col, pivot);
        for r in (col + 1)..n {
            let f = a[r][col] / a[col][col];
            for c in col..n {
                a[r][c] -= f * a[col][c];
            }
            y[r] -= f * y[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = y[row];
        for c in (row + 1)..n {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::apply_readout_error;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_rate_is_identity() {
        let d = BTreeMap::from([(0b1u128, 0.5), (0b0, 0.5)]);
        assert_eq!(mitigate_readout(&d, 1, ReadoutModel::new(0.0)), d);
    }

    #[test]
    fn transition_probabilities_sum_over_outcomes() {
        let m = ReadoutModel::new(0.2);
        let total: f64 = (0..8u128).map(|obs| m.transition(0b101, obs, 3)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_a_corrupted_point_mass() {
        // Simulate readout corruption of a pure |0110⟩ and mitigate.
        let truth = 0b0110u128;
        let n = 4;
        let model = ReadoutModel::new(0.08);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts: BTreeMap<Label, usize> = BTreeMap::new();
        for _ in 0..20_000 {
            let obs = apply_readout_error(truth, n, model.rate, &mut rng);
            *counts.entry(obs).or_insert(0) += 1;
        }
        let total: usize = counts.values().sum();
        let measured: BTreeMap<Label, f64> = counts
            .into_iter()
            .map(|(l, c)| (l, c as f64 / total as f64))
            .collect();
        // Before mitigation the truth has clearly lost mass.
        assert!(measured[&truth] < 0.75);
        let fixed = mitigate_readout(&measured, n, model);
        assert!(
            fixed[&truth] > 0.97,
            "mitigated mass on truth only {}",
            fixed[&truth]
        );
    }

    #[test]
    fn output_is_normalized_distribution() {
        let d = BTreeMap::from([(0u128, 0.6), (1, 0.3), (3, 0.1)]);
        let fixed = mitigate_readout(&d, 2, ReadoutModel::new(0.15));
        let total: f64 = fixed.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(fixed.values().all(|&p| p >= 0.0));
    }

    #[test]
    #[should_panic(expected = "readout rate")]
    fn rate_half_rejected() {
        ReadoutModel::new(0.5);
    }
}
