//! Compact binary wire format for persisted artifacts.
//!
//! The on-disk tier (PR 7) stores compiled artifacts and finished
//! outcomes as flat byte records. This module provides the shared
//! primitives: a little-endian [`WireWriter`]/[`WireReader`] pair whose
//! encodings are canonical (one value, one byte sequence — so
//! byte-equality of encodings means value equality), the FNV-1a
//! checksum the record headers carry, and a codec for [`Circuit`] —
//! the qter-style compiler/interpreter split where the *source* gate
//! list is the durable form and [`Program::compile`](
//! crate::exec::Program::compile) deterministically rebuilds the fused
//! kernels on load.
//!
//! # Corruption discipline
//!
//! Every reader method is total: corrupt or truncated input returns
//! [`WireError`], never panics and never reads out of bounds. Decoders
//! built on top (circuit here, `Prepared`/`Outcome` in
//! `rasengan-core`) add semantic validation — qubit bounds, ternary
//! entries, range sanity — so a record that passes its checksum but
//! carries nonsense still degrades to a structured error. The storage
//! layer treats any [`WireError`] as "quarantine and recompute".

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Error decoding a wire payload. Carries enough to name the failure
/// in quarantine accounting, nothing more — corrupt records are not
/// worth a backtrace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the value it promised.
    Truncated,
    /// A field decoded but failed semantic validation.
    Invalid(&'static str),
    /// Bytes remained after the decoder consumed the full value.
    Trailing,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("payload truncated"),
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
            WireError::Trailing => f.write_str("trailing bytes after payload"),
        }
    }
}

impl std::error::Error for WireError {}

/// 64-bit FNV-1a over a byte slice — the record checksum. Not
/// cryptographic; the threat model is bit rot and torn writes, not an
/// adversary with write access to the state directory.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends little-endian primitives to a growing buffer.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128` (basis-state labels, fingerprints).
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit regardless of
    /// host width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` by bit pattern — exact round trip, including
    /// NaN payloads and signed zeros, so re-serialized outcomes stay
    /// byte-identical.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
}

/// Reads little-endian primitives from a byte slice, refusing to read
/// past the end.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over the full slice.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors with [`WireError::Trailing`] unless the payload was
    /// consumed exactly. Decoders call this last so a record with junk
    /// appended is rejected, not silently accepted.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing)
        }
    }

    /// Consumes and returns every byte not yet read — for payloads
    /// that embed a key prefix followed by an opaque codec body.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u128`.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` stored as `u64`, rejecting values the host
    /// cannot represent.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Invalid("usize overflows host"))
    }

    /// Reads a length-like `usize` and sanity-checks it against the
    /// bytes actually remaining (each element needs at least
    /// `min_element_bytes`). A corrupt length field then fails here
    /// with [`WireError::Truncated`] instead of driving a
    /// multi-gigabyte `Vec::with_capacity`.
    pub fn len(&mut self, min_element_bytes: usize) -> Result<usize, WireError> {
        let n = self.usize()?;
        if n.checked_mul(min_element_bytes.max(1))
            .is_none_or(|need| need > self.remaining())
        {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool, rejecting anything but 0 or 1 (canonical form —
    /// a flipped bit in a bool must not decode silently).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("non-canonical bool")),
        }
    }
}

/// Gate tags of the circuit codec. Fixed for all time once a format
/// version ships; new gates append new tags.
mod tag {
    pub const X: u8 = 0;
    pub const Y: u8 = 1;
    pub const Z: u8 = 2;
    pub const H: u8 = 3;
    pub const RX: u8 = 4;
    pub const RY: u8 = 5;
    pub const RZ: u8 = 6;
    pub const PHASE: u8 = 7;
    pub const CX: u8 = 8;
    pub const CZ: u8 = 9;
    pub const SWAP: u8 = 10;
    pub const RZZ: u8 = 11;
    pub const CP: u8 = 12;
    pub const MCP: u8 = 13;
    pub const MCX: u8 = 14;
}

/// Encodes a circuit as `n_qubits · gate_count · gates`. The durable
/// form is the source gate list, not the fused kernels:
/// [`Program::compile`](crate::exec::Program::compile) is
/// deterministic, so compiling a decoded circuit reproduces the
/// original program exactly, and the format stays valid across kernel
/// layout changes.
pub fn encode_circuit(circuit: &Circuit) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.usize(circuit.n_qubits());
    w.usize(circuit.len());
    for gate in circuit.gates() {
        encode_gate(&mut w, gate);
    }
    w.into_bytes()
}

fn encode_gate(w: &mut WireWriter, gate: &Gate) {
    match gate {
        Gate::X(q) => {
            w.u8(tag::X);
            w.usize(*q);
        }
        Gate::Y(q) => {
            w.u8(tag::Y);
            w.usize(*q);
        }
        Gate::Z(q) => {
            w.u8(tag::Z);
            w.usize(*q);
        }
        Gate::H(q) => {
            w.u8(tag::H);
            w.usize(*q);
        }
        Gate::Rx(q, t) => {
            w.u8(tag::RX);
            w.usize(*q);
            w.f64(*t);
        }
        Gate::Ry(q, t) => {
            w.u8(tag::RY);
            w.usize(*q);
            w.f64(*t);
        }
        Gate::Rz(q, t) => {
            w.u8(tag::RZ);
            w.usize(*q);
            w.f64(*t);
        }
        Gate::Phase(q, t) => {
            w.u8(tag::PHASE);
            w.usize(*q);
            w.f64(*t);
        }
        Gate::Cx(c, t) => {
            w.u8(tag::CX);
            w.usize(*c);
            w.usize(*t);
        }
        Gate::Cz(c, t) => {
            w.u8(tag::CZ);
            w.usize(*c);
            w.usize(*t);
        }
        Gate::Swap(a, b) => {
            w.u8(tag::SWAP);
            w.usize(*a);
            w.usize(*b);
        }
        Gate::Rzz(a, b, t) => {
            w.u8(tag::RZZ);
            w.usize(*a);
            w.usize(*b);
            w.f64(*t);
        }
        Gate::Cp(c, t, theta) => {
            w.u8(tag::CP);
            w.usize(*c);
            w.usize(*t);
            w.f64(*theta);
        }
        Gate::Mcp {
            controls,
            target,
            theta,
        } => {
            w.u8(tag::MCP);
            w.usize(controls.len());
            for &c in controls {
                w.usize(c);
            }
            w.usize(*target);
            w.f64(*theta);
        }
        Gate::Mcx { controls, target } => {
            w.u8(tag::MCX);
            w.usize(controls.len());
            for &c in controls {
                w.usize(c);
            }
            w.usize(*target);
        }
    }
}

/// Decodes a circuit encoded by [`encode_circuit`], validating every
/// qubit index against the register width (via [`Circuit::push`]'s
/// invariant, checked here *before* pushing so corrupt input errors
/// instead of panicking).
pub fn decode_circuit(bytes: &[u8]) -> Result<Circuit, WireError> {
    let mut r = WireReader::new(bytes);
    let n_qubits = r.usize()?;
    if n_qubits > 128 {
        return Err(WireError::Invalid("register wider than 128 qubits"));
    }
    let n_gates = r.len(1)?;
    let mut circuit = Circuit::new(n_qubits);
    let qubit = |r: &mut WireReader| -> Result<usize, WireError> {
        let q = r.usize()?;
        if q >= n_qubits {
            return Err(WireError::Invalid("qubit outside register"));
        }
        Ok(q)
    };
    for _ in 0..n_gates {
        let gate = match r.u8()? {
            tag::X => Gate::X(qubit(&mut r)?),
            tag::Y => Gate::Y(qubit(&mut r)?),
            tag::Z => Gate::Z(qubit(&mut r)?),
            tag::H => Gate::H(qubit(&mut r)?),
            tag::RX => Gate::Rx(qubit(&mut r)?, r.f64()?),
            tag::RY => Gate::Ry(qubit(&mut r)?, r.f64()?),
            tag::RZ => Gate::Rz(qubit(&mut r)?, r.f64()?),
            tag::PHASE => Gate::Phase(qubit(&mut r)?, r.f64()?),
            tag::CX => Gate::Cx(qubit(&mut r)?, qubit(&mut r)?),
            tag::CZ => Gate::Cz(qubit(&mut r)?, qubit(&mut r)?),
            tag::SWAP => Gate::Swap(qubit(&mut r)?, qubit(&mut r)?),
            tag::RZZ => Gate::Rzz(qubit(&mut r)?, qubit(&mut r)?, r.f64()?),
            tag::CP => Gate::Cp(qubit(&mut r)?, qubit(&mut r)?, r.f64()?),
            tag::MCP => {
                let n = r.len(8)?;
                let controls = (0..n)
                    .map(|_| qubit(&mut r))
                    .collect::<Result<Vec<_>, _>>()?;
                Gate::Mcp {
                    controls,
                    target: qubit(&mut r)?,
                    theta: r.f64()?,
                }
            }
            tag::MCX => {
                let n = r.len(8)?;
                let controls = (0..n)
                    .map(|_| qubit(&mut r))
                    .collect::<Result<Vec<_>, _>>()?;
                Gate::Mcx {
                    controls,
                    target: qubit(&mut r)?,
                }
            }
            _ => return Err(WireError::Invalid("unknown gate tag")),
        };
        circuit.push(gate);
    }
    r.finish()?;
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Program;
    use crate::DenseState;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.h(0)
            .x(1)
            .rx(2, 0.3)
            .ry(3, -0.7)
            .rz(0, 1.1)
            .phase(1, 0.25)
            .cx(0, 1)
            .rzz(1, 2, 0.5)
            .cp(2, 3, -0.4)
            .mcp(vec![0, 1], 2, 0.9)
            .mcx(vec![1, 2, 3], 0);
        c.push(Gate::Y(2));
        c.push(Gate::Z(3));
        c.push(Gate::Cz(0, 3));
        c.push(Gate::Swap(1, 3));
        c
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u16(65535);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.u128(u128::MAX / 3);
        w.i64(-42);
        w.usize(123_456);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        w.bool(false);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65535);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 123_456);
        // -0.0 and NaN must survive by bit pattern.
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn reader_never_reads_past_end() {
        let mut r = WireReader::new(&[1, 2, 3]);
        assert_eq!(r.u16().unwrap(), 0x0201);
        assert_eq!(r.u64(), Err(WireError::Truncated));
        // A failed read consumes nothing; the last byte is intact.
        assert_eq!(r.u8().unwrap(), 3);
        assert_eq!(r.u8(), Err(WireError::Truncated));
    }

    #[test]
    fn length_fields_are_bounded_by_remaining_bytes() {
        // A corrupt 2^60 length must fail fast, not allocate.
        let mut w = WireWriter::new();
        w.usize(1 << 60);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.len(8), Err(WireError::Truncated));
    }

    #[test]
    fn non_canonical_bool_rejected() {
        let mut r = WireReader::new(&[2]);
        assert_eq!(r.bool(), Err(WireError::Invalid("non-canonical bool")));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = WireWriter::new();
        w.u8(1);
        let mut bytes = w.into_bytes();
        bytes.push(0);
        let mut r = WireReader::new(&bytes);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::Trailing));
    }

    #[test]
    fn fnv64_detects_single_bit_flips() {
        let bytes = encode_circuit(&sample_circuit());
        let clean = fnv64(&bytes);
        for bit in [0, 7, 63, 8 * bytes.len() - 1] {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(fnv64(&flipped), clean, "flip at bit {bit} undetected");
        }
    }

    #[test]
    fn circuit_round_trips_exactly() {
        let circuit = sample_circuit();
        let bytes = encode_circuit(&circuit);
        let decoded = decode_circuit(&bytes).unwrap();
        assert_eq!(decoded, circuit);
        // Canonical: re-encoding yields the same bytes.
        assert_eq!(encode_circuit(&decoded), bytes);
    }

    #[test]
    fn decoded_circuit_compiles_to_an_equivalent_program() {
        // The compiler/interpreter split: the durable form is the gate
        // list, and compiling the decoded circuit must reproduce the
        // original program's dense execution exactly.
        let circuit = sample_circuit();
        let decoded = decode_circuit(&encode_circuit(&circuit)).unwrap();
        let original = Program::compile(&circuit);
        let reloaded = Program::compile(&decoded);
        let mut a = DenseState::zero_state(circuit.n_qubits());
        let mut b = DenseState::zero_state(circuit.n_qubits());
        original.run_dense(&mut a);
        reloaded.run_dense(&mut b);
        for l in 0..(1u64 << circuit.n_qubits()) {
            let (x, y) = (a.amplitude(l), b.amplitude(l));
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "label {l}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "label {l}");
        }
    }

    #[test]
    fn corrupt_circuits_error_instead_of_panicking() {
        let bytes = encode_circuit(&sample_circuit());
        // Truncations at every prefix length.
        for cut in 0..bytes.len() {
            assert!(
                decode_circuit(&bytes[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
        // An out-of-register qubit index.
        let mut w = WireWriter::new();
        w.usize(2);
        w.usize(1);
        w.u8(tag::X);
        w.usize(5);
        assert_eq!(
            decode_circuit(&w.into_bytes()),
            Err(WireError::Invalid("qubit outside register"))
        );
        // An unknown gate tag.
        let mut w = WireWriter::new();
        w.usize(2);
        w.usize(1);
        w.u8(200);
        assert_eq!(
            decode_circuit(&w.into_bytes()),
            Err(WireError::Invalid("unknown gate tag"))
        );
        // An absurd register width.
        let mut w = WireWriter::new();
        w.usize(100_000);
        w.usize(0);
        assert!(decode_circuit(&w.into_bytes()).is_err());
    }
}
