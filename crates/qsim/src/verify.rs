//! Verification utilities for circuits and states: unitarity checks and
//! circuit equivalence up to global phase.
//!
//! Used throughout the test suites to validate synthesized transition
//! circuits, decompositions, and routed programs; exposed publicly so
//! downstream users can verify their own constructions.

use crate::circuit::Circuit;
use crate::complex::Complex;
use crate::dense::DenseState;

/// Maximum register width for exhaustive matrix reconstruction.
const MAX_VERIFY_QUBITS: usize = 10;

/// Reconstructs the full unitary matrix of a circuit column-by-column.
///
/// # Panics
///
/// Panics if the circuit exceeds `MAX_VERIFY_QUBITS` (10) qubits (the
/// reconstruction is `4^n` in space).
pub fn circuit_matrix(circuit: &Circuit) -> Vec<Vec<Complex>> {
    let n = circuit.n_qubits();
    assert!(
        n <= MAX_VERIFY_QUBITS,
        "matrix reconstruction limited to {MAX_VERIFY_QUBITS} qubits"
    );
    let dim = 1usize << n;
    let mut columns = Vec::with_capacity(dim);
    for basis in 0..dim {
        let mut s = DenseState::basis_state(n, basis as u64);
        s.run(circuit);
        columns.push(s.amplitudes().to_vec());
    }
    // Transpose columns into row-major form.
    (0..dim)
        .map(|r| (0..dim).map(|c| columns[c][r]).collect())
        .collect()
}

/// Whether a circuit implements a unitary operator (columns orthonormal
/// within `tol`). Trivially true for gate-built circuits; useful for
/// catching bugs in hand-assembled gate lists and custom decompositions.
pub fn is_unitary(circuit: &Circuit, tol: f64) -> bool {
    let m = circuit_matrix(circuit);
    let dim = m.len();
    for a in 0..dim {
        for b in a..dim {
            // ⟨col_a | col_b⟩ over the row-major matrix.
            let mut dot = Complex::ZERO;
            for row in m.iter() {
                dot += row[a].conj() * row[b];
            }
            let expect = if a == b { Complex::ONE } else { Complex::ZERO };
            if !dot.approx_eq(expect, tol) {
                return false;
            }
        }
    }
    true
}

/// Whether two circuits implement the same unitary up to a global phase.
///
/// The phase is fixed on the first matrix entry with non-negligible
/// magnitude and divided out before comparison.
pub fn equivalent_up_to_phase(a: &Circuit, b: &Circuit, tol: f64) -> bool {
    if a.n_qubits() != b.n_qubits() {
        return false;
    }
    let ma = circuit_matrix(a);
    let mb = circuit_matrix(b);
    let dim = ma.len();

    // Find the reference entry.
    let mut phase: Option<Complex> = None;
    'outer: for r in 0..dim {
        for c in 0..dim {
            if ma[r][c].abs() > 1e-6 && mb[r][c].abs() > 1e-6 {
                phase = Some(mb[r][c] / ma[r][c]);
                break 'outer;
            }
        }
    }
    let Some(phase) = phase else { return false };
    if (phase.abs() - 1.0).abs() > tol {
        return false;
    }
    for r in 0..dim {
        for c in 0..dim {
            if !(ma[r][c] * phase).approx_eq(mb[r][c], tol) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn gate_circuits_are_unitary() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .ry(2, 0.7)
            .rzz(1, 2, 0.3)
            .mcp(vec![0, 1], 2, 0.9);
        assert!(is_unitary(&c, 1e-9));
    }

    #[test]
    fn identity_matrix_of_empty_circuit() {
        let m = circuit_matrix(&Circuit::new(2));
        for (r, row) in m.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                let expect = if r == c { Complex::ONE } else { Complex::ZERO };
                assert!(v.approx_eq(expect, 1e-12));
            }
        }
    }

    #[test]
    fn hzh_equals_x_up_to_phase() {
        let mut a = Circuit::new(1);
        a.h(0).push(Gate::Z(0)).h(0);
        let mut b = Circuit::new(1);
        b.x(0);
        assert!(equivalent_up_to_phase(&a, &b, 1e-9));
    }

    #[test]
    fn rz_and_phase_differ_only_by_global_phase() {
        let mut a = Circuit::new(1);
        a.rz(0, 0.8);
        let mut b = Circuit::new(1);
        b.phase(0, 0.8);
        assert!(equivalent_up_to_phase(&a, &b, 1e-9));
        // But they are not equal as raw matrices.
        let ma = circuit_matrix(&a);
        let mb = circuit_matrix(&b);
        assert!(!ma[0][0].approx_eq(mb[0][0], 1e-12));
    }

    #[test]
    fn different_circuits_are_not_equivalent() {
        let mut a = Circuit::new(1);
        a.x(0);
        let mut b = Circuit::new(1);
        b.h(0);
        assert!(!equivalent_up_to_phase(&a, &b, 1e-9));
    }

    #[test]
    fn width_mismatch_is_not_equivalent() {
        assert!(!equivalent_up_to_phase(
            &Circuit::new(1),
            &Circuit::new(2),
            1e-9
        ));
    }

    #[test]
    fn synthesized_tau_is_unitary() {
        let c = crate::synth::tau_circuit(&[1, -1, 1], 1.2, 3);
        assert!(is_unitary(&c, 1e-9));
    }
}
