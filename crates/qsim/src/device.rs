//! Device models: calibration data and latency estimation for the IBM
//! platforms the paper evaluates on.
//!
//! The paper uses three devices: **IBM Kyiv** and **IBM Brisbane**
//! (127-qubit Eagle r3) for the real-hardware experiments (Fig. 11),
//! and the **IBM Quebec** timing model for latency/depth accounting
//! (Table 1, Fig. 10b, Fig. 12). Here each device is a noise model, a
//! heavy-hex coupling map, and gate/readout durations, so the whole
//! "run on hardware" flow becomes: route → decompose-depth → trajectory
//! noise → timed execution.

use crate::circuit::Circuit;
use crate::noise::NoiseModel;
use crate::route::CouplingMap;

/// A quantum device model: calibration + topology + timing.
///
/// # Example
///
/// ```
/// use rasengan_qsim::Device;
///
/// let kyiv = Device::ibm_kyiv();
/// assert_eq!(kyiv.name, "IBM-Kyiv");
/// assert!(kyiv.noise.p2 > kyiv.noise.p1);
/// ```
#[derive(Clone, Debug)]
pub struct Device {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of physical qubits.
    pub n_qubits: usize,
    /// Gate-level noise model from calibration data.
    pub noise: NoiseModel,
    /// Single-qubit gate duration in seconds.
    pub gate_time_1q: f64,
    /// Two-qubit gate duration in seconds.
    pub gate_time_2q: f64,
    /// Readout duration in seconds.
    pub readout_time: f64,
    /// Qubit reset / initialization time in seconds.
    pub reset_time: f64,
    /// Median T1 in seconds (decoherence budget).
    pub t1: f64,
    /// Median T2 in seconds.
    pub t2: f64,
}

impl Device {
    /// IBM Kyiv (Eagle r3): 2Q error 1.2% (paper §5.4), typical Eagle
    /// timings.
    pub fn ibm_kyiv() -> Self {
        Device {
            name: "IBM-Kyiv",
            n_qubits: 127,
            noise: NoiseModel::ibm_like(4.0e-4, 1.2e-2, 1.3e-2)
                .with_amplitude_damping(3.0e-4)
                .with_phase_damping(3.0e-4),
            gate_time_1q: 6.0e-8,
            gate_time_2q: 5.33e-7,
            readout_time: 1.4e-6,
            reset_time: 1.0e-6,
            t1: 2.6e-4,
            t2: 1.1e-4,
        }
    }

    /// IBM Brisbane (Eagle r3): 2Q error 0.82% — the less-noisy device
    /// in Fig. 11.
    pub fn ibm_brisbane() -> Self {
        Device {
            name: "IBM-Brisbane",
            n_qubits: 127,
            noise: NoiseModel::ibm_like(2.5e-4, 8.2e-3, 1.0e-2)
                .with_amplitude_damping(2.0e-4)
                .with_phase_damping(2.0e-4),
            gate_time_1q: 6.0e-8,
            gate_time_2q: 6.6e-7,
            readout_time: 1.3e-6,
            reset_time: 1.0e-6,
            t1: 2.3e-4,
            t2: 1.3e-4,
        }
    }

    /// IBM Quebec timing model (used by Table 1 and Fig. 10b for
    /// compiled depth/latency accounting).
    pub fn ibm_quebec() -> Self {
        Device {
            name: "IBM-Quebec",
            n_qubits: 127,
            noise: NoiseModel::ibm_like(3.0e-4, 9.0e-3, 1.1e-2),
            gate_time_1q: 6.0e-8,
            gate_time_2q: 5.6e-7,
            readout_time: 1.3e-6,
            reset_time: 1.0e-6,
            t1: 2.8e-4,
            t2: 1.4e-4,
        }
    }

    /// An idealized noise-free device with Eagle-like timings (for
    /// latency studies without error effects).
    pub fn noise_free(n_qubits: usize) -> Self {
        Device {
            name: "noise-free",
            n_qubits,
            noise: NoiseModel::noise_free(),
            gate_time_1q: 6.0e-8,
            gate_time_2q: 5.6e-7,
            readout_time: 1.3e-6,
            reset_time: 1.0e-6,
            t1: f64::INFINITY,
            t2: f64::INFINITY,
        }
    }

    /// The device's heavy-hex coupling map (fragments sized to
    /// `n_qubits`).
    pub fn coupling(&self) -> CouplingMap {
        CouplingMap::heavy_hex(self.n_qubits)
    }

    /// Wall-clock duration of one circuit execution (single shot):
    /// reset + critical-path gate time + readout.
    ///
    /// Gate time is estimated from the depth split: two-qubit layers at
    /// `gate_time_2q`, remaining layers at `gate_time_1q`.
    pub fn shot_duration(&self, circuit: &Circuit) -> f64 {
        let d2 = circuit.two_qubit_depth() as f64;
        let d1 = (circuit.depth() as f64 - d2).max(0.0);
        self.reset_time + d1 * self.gate_time_1q + d2 * self.gate_time_2q + self.readout_time
    }

    /// Total quantum latency for `shots` repetitions of a circuit.
    pub fn execution_latency(&self, circuit: &Circuit, shots: usize) -> f64 {
        self.shot_duration(circuit) * shots as f64
    }

    /// Whether a circuit's critical path fits inside the decoherence
    /// budget (heuristic: gate time below `min(T1, T2) / 2` — circuits
    /// beyond this produce mostly noise on hardware).
    pub fn fits_decoherence(&self, circuit: &Circuit) -> bool {
        let gate_path = self.shot_duration(circuit) - self.reset_time - self.readout_time;
        gate_path < self.t1.min(self.t2) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_error_ordering() {
        let kyiv = Device::ibm_kyiv();
        let brisbane = Device::ibm_brisbane();
        // §5.4: Kyiv's 2Q error (1.2%) is 1.48× Brisbane's (0.82%).
        let ratio = kyiv.noise.p2 / brisbane.noise.p2;
        assert!((ratio - 1.46).abs() < 0.05, "error ratio {ratio}");
    }

    #[test]
    fn shot_duration_scales_with_depth() {
        let dev = Device::ibm_quebec();
        let mut shallow = Circuit::new(2);
        shallow.cx(0, 1);
        let mut deep = Circuit::new(2);
        for _ in 0..100 {
            deep.cx(0, 1);
        }
        assert!(dev.shot_duration(&deep) > dev.shot_duration(&shallow));
        let delta = dev.shot_duration(&deep) - dev.shot_duration(&shallow);
        assert!((delta - 99.0 * dev.gate_time_2q).abs() < 1e-9);
    }

    #[test]
    fn execution_latency_is_linear_in_shots() {
        let dev = Device::ibm_kyiv();
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let one = dev.execution_latency(&c, 1);
        let thousand = dev.execution_latency(&c, 1000);
        assert!((thousand / one - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn decoherence_budget_rejects_huge_circuits() {
        let dev = Device::ibm_kyiv();
        let mut huge = Circuit::new(2);
        for _ in 0..1_000_000 {
            huge.cx(0, 1);
        }
        assert!(!dev.fits_decoherence(&huge));
        let mut small = Circuit::new(2);
        small.cx(0, 1);
        assert!(dev.fits_decoherence(&small));
    }

    #[test]
    fn coupling_map_covers_device() {
        let dev = Device::noise_free(20);
        assert!(dev.coupling().n_qubits() >= 20);
    }
}
