//! Deterministic fault injection for resilience testing.
//!
//! A [`FaultPlan`] describes transient failures to inject into a
//! shot-based execution: whole shot batches lost in flight, readout
//! corruption bursts, calibration drift on the device error rates,
//! targeted "kill" faults that wipe a segment's feasible output, and
//! NaN / out-of-range corruption of optimizer parameters. Every fault
//! decision is a *pure function* of the plan seed and the fault site
//! (evaluation stream, segment, attempt, batch), derived through the
//! same SplitMix64 stream derivation as [`crate::parallel`] — so a
//! fault schedule is bit-reproducible at any thread count, and a
//! recovery path exercised once in a test fires identically forever.
//!
//! The plan itself is inert: it only answers queries. The solver's
//! execution engine consults it at well-defined sites and applies the
//! corruption itself, which keeps the injection logic out of the hot
//! sampling loops when no plan is armed.
//!
//! # Example
//!
//! ```
//! use rasengan_qsim::fault::FaultPlan;
//!
//! let plan = FaultPlan::new(7)
//!     .with_shot_loss(0.2)
//!     .with_readout_burst(0.1, 0.5)
//!     .kill_segment(1, 1); // segment 1 yields nothing feasible once
//! assert!(plan.is_active());
//! assert!(plan.kills_segment(1, 0));
//! assert!(!plan.kills_segment(1, 1)); // a retry attempt succeeds
//! // Decisions are pure functions of the site:
//! assert_eq!(plan.batch_lost(3, 0, 0, 5), plan.batch_lost(3, 0, 0, 5));
//! ```

use crate::noise::NoiseModel;
use crate::parallel::derive_seed;

/// Domain tags keeping the per-fault-kind streams disjoint.
const TAG_BATCH_LOSS: u64 = 0xFA17_0001;
const TAG_BURST: u64 = 0xFA17_0002;
const TAG_DRIFT: u64 = 0xFA17_0003;
const TAG_PARAM: u64 = 0xFA17_0004;

/// A targeted transient fault: segment `segment` produces no feasible
/// outcome for its first `attempts` execution attempts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentKill {
    /// Index of the segment whose feasible output is wiped.
    pub segment: usize,
    /// Number of leading attempts that fail (`usize::MAX` = permanent).
    pub attempts: usize,
}

/// The kinds of fault a [`FaultPlan`] can inject, for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// An entire shot batch was lost (shots charged, counts dropped).
    ShotBatchLoss,
    /// A readout-corruption burst flipped measured bits at an elevated
    /// rate for one segment attempt.
    ReadoutBurst,
    /// Calibration drift scaled the device error rates for one segment
    /// attempt.
    CalibrationDrift,
    /// A targeted kill wiped the segment's feasible output.
    FeasibilityKill,
    /// Optimizer parameters were corrupted to NaN / out-of-range.
    ParamCorruption,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::ShotBatchLoss => "shot-batch loss",
            FaultKind::ReadoutBurst => "readout burst",
            FaultKind::CalibrationDrift => "calibration drift",
            FaultKind::FeasibilityKill => "feasibility kill",
            FaultKind::ParamCorruption => "parameter corruption",
        };
        f.write_str(s)
    }
}

/// A deterministic, seed-derived schedule of transient faults.
///
/// All probabilities are clamped into `[0, 1]` (NaN → 0) on
/// construction, mirroring [`NoiseModel`]'s validation.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Base seed of the fault schedule. Independent of the solver's
    /// sampling seed so fault scenarios can be swept separately.
    pub seed: u64,
    /// Per-batch probability that an entire shot batch is lost in
    /// flight: its shots are charged but its counts discarded.
    pub shot_loss: f64,
    /// Per-(segment, attempt) probability of a readout corruption
    /// burst.
    pub readout_burst: f64,
    /// Per-bit flip rate applied to every measured label while a burst
    /// is active.
    pub burst_flip_rate: f64,
    /// Relative calibration-drift amplitude: each segment attempt's
    /// error rates are scaled by a factor drawn uniformly from
    /// `[1 - a, 1 + a]` (clamped to valid probabilities).
    pub calibration_drift: f64,
    /// Per-evaluation probability that one optimizer parameter is
    /// corrupted to a non-finite or absurd value before execution.
    pub param_corruption: f64,
    /// Targeted transient kills.
    kills: Vec<SegmentKill>,
}

fn clamp_rate(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

/// A uniform draw in `[0, 1)` from the site-addressed stream.
fn unit(seed: u64, tag: u64, a: u64, b: u64, c: u64) -> f64 {
    let z = derive_seed(derive_seed(derive_seed(derive_seed(seed, tag), a), b), c);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// A plan with no faults armed; builders below add them.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            shot_loss: 0.0,
            readout_burst: 0.0,
            burst_flip_rate: 0.0,
            calibration_drift: 0.0,
            param_corruption: 0.0,
            kills: Vec::new(),
        }
    }

    /// Arms per-batch shot loss with probability `p`.
    #[must_use]
    pub fn with_shot_loss(mut self, p: f64) -> Self {
        self.shot_loss = clamp_rate(p);
        self
    }

    /// Arms readout bursts: with probability `p` per segment attempt,
    /// every measured bit flips with probability `flip_rate`.
    #[must_use]
    pub fn with_readout_burst(mut self, p: f64, flip_rate: f64) -> Self {
        self.readout_burst = clamp_rate(p);
        self.burst_flip_rate = clamp_rate(flip_rate);
        self
    }

    /// Arms calibration drift with relative amplitude `amplitude`
    /// (e.g. `0.5` = rates wander ±50%). Negative amplitudes are
    /// treated as zero.
    #[must_use]
    pub fn with_calibration_drift(mut self, amplitude: f64) -> Self {
        self.calibration_drift = if amplitude.is_nan() {
            0.0
        } else {
            amplitude.max(0.0)
        };
        self
    }

    /// Arms optimizer-parameter corruption with per-evaluation
    /// probability `p`.
    #[must_use]
    pub fn with_param_corruption(mut self, p: f64) -> Self {
        self.param_corruption = clamp_rate(p);
        self
    }

    /// Adds a targeted kill: segment `segment` produces no feasible
    /// outcome on its first `attempts` attempts (per execution).
    #[must_use]
    pub fn kill_segment(mut self, segment: usize, attempts: usize) -> Self {
        self.kills.push(SegmentKill { segment, attempts });
        self
    }

    /// Whether any fault is armed.
    pub fn is_active(&self) -> bool {
        self.shot_loss > 0.0
            || self.readout_burst > 0.0
            || self.calibration_drift > 0.0
            || self.param_corruption > 0.0
            || !self.kills.is_empty()
    }

    /// The configured targeted kills.
    pub fn kills(&self) -> &[SegmentKill] {
        &self.kills
    }

    /// Whether a targeted kill wipes `segment`'s feasible output on
    /// `attempt` (0-based). Deterministic and independent of the
    /// evaluation stream, so retry ladders see a *transient* fault:
    /// attempts at or past the kill's budget succeed.
    pub fn kills_segment(&self, segment: usize, attempt: usize) -> bool {
        self.kills
            .iter()
            .any(|k| k.segment == segment && attempt < k.attempts)
    }

    /// Whether shot batch `batch` of `(segment, attempt)` under
    /// evaluation stream `stream` is lost.
    pub fn batch_lost(&self, stream: u64, segment: usize, attempt: usize, batch: u64) -> bool {
        self.shot_loss > 0.0
            && unit(
                self.seed ^ stream,
                TAG_BATCH_LOSS,
                segment as u64,
                attempt as u64,
                batch,
            ) < self.shot_loss
    }

    /// The extra per-bit flip rate if a readout burst strikes
    /// `(segment, attempt)` under evaluation stream `stream`.
    pub fn burst_flip_rate(&self, stream: u64, segment: usize, attempt: usize) -> Option<f64> {
        if self.readout_burst > 0.0
            && unit(
                self.seed ^ stream,
                TAG_BURST,
                segment as u64,
                attempt as u64,
                0,
            ) < self.readout_burst
        {
            Some(self.burst_flip_rate)
        } else {
            None
        }
    }

    /// The noise model with calibration drift applied for
    /// `(segment, attempt)` under evaluation stream `stream`. Returns
    /// `base` unchanged when drift is not armed. Drifted rates are
    /// clamped back into `[0, 1]`.
    pub fn drifted(
        &self,
        base: &NoiseModel,
        stream: u64,
        segment: usize,
        attempt: usize,
    ) -> NoiseModel {
        if self.calibration_drift <= 0.0 {
            return *base;
        }
        let u = unit(
            self.seed ^ stream,
            TAG_DRIFT,
            segment as u64,
            attempt as u64,
            0,
        );
        let factor = 1.0 + self.calibration_drift * (2.0 * u - 1.0);
        NoiseModel {
            p1: clamp_rate(base.p1 * factor),
            p2: clamp_rate(base.p2 * factor),
            readout: clamp_rate(base.readout * factor),
            amplitude_damping: clamp_rate(base.amplitude_damping * factor),
            phase_damping: clamp_rate(base.phase_damping * factor),
        }
    }

    /// Corrupts one evolution-time parameter for evaluation `eval` if
    /// the corruption fault fires: index `i` (site-derived) becomes NaN,
    /// +∞, or an absurd magnitude, cycling through the three shapes.
    /// Returns the corrupted index, or `None` if the fault did not
    /// fire. The executor is expected to *sanitize* these, not crash.
    pub fn corrupt_params(&self, eval: u64, params: &mut [f64]) -> Option<usize> {
        if params.is_empty()
            || self.param_corruption <= 0.0
            || unit(self.seed, TAG_PARAM, eval, 0, 0) >= self.param_corruption
        {
            return None;
        }
        let pick = derive_seed(derive_seed(self.seed, TAG_PARAM), eval);
        let idx = (pick % params.len() as u64) as usize;
        params[idx] = match pick >> 32 & 3 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => 1e18,
        };
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_is_inactive_and_transparent() {
        let plan = FaultPlan::new(3);
        assert!(!plan.is_active());
        assert!(!plan.kills_segment(0, 0));
        assert!(!plan.batch_lost(1, 0, 0, 0));
        assert!(plan.burst_flip_rate(1, 0, 0).is_none());
        let base = NoiseModel::depolarizing(1e-3);
        assert_eq!(plan.drifted(&base, 1, 0, 0), base);
        let mut params = vec![0.5, 0.7];
        assert_eq!(plan.corrupt_params(9, &mut params), None);
        assert_eq!(params, vec![0.5, 0.7]);
    }

    #[test]
    fn decisions_are_pure_functions_of_the_site() {
        let plan = FaultPlan::new(11)
            .with_shot_loss(0.5)
            .with_readout_burst(0.5, 0.3)
            .with_calibration_drift(0.4);
        for site in 0..50u64 {
            assert_eq!(
                plan.batch_lost(site, 1, 0, site),
                plan.batch_lost(site, 1, 0, site)
            );
            assert_eq!(
                plan.burst_flip_rate(site, 2, 1),
                plan.burst_flip_rate(site, 2, 1)
            );
            let base = NoiseModel::ibm_like(1e-3, 1e-2, 1e-2);
            assert_eq!(
                plan.drifted(&base, site, 0, 0),
                plan.drifted(&base, site, 0, 0)
            );
        }
    }

    #[test]
    fn fault_rates_match_configured_probability() {
        let plan = FaultPlan::new(5).with_shot_loss(0.3);
        let hits = (0..10_000u64)
            .filter(|&b| plan.batch_lost(1, 0, 0, b))
            .count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed loss rate {rate}");
    }

    #[test]
    fn kill_is_transient_over_attempts() {
        let plan = FaultPlan::new(0).kill_segment(2, 3);
        assert!(plan.kills_segment(2, 0));
        assert!(plan.kills_segment(2, 2));
        assert!(!plan.kills_segment(2, 3));
        assert!(!plan.kills_segment(1, 0));
        let permanent = FaultPlan::new(0).kill_segment(0, usize::MAX);
        assert!(permanent.kills_segment(0, 1_000_000));
    }

    #[test]
    fn drift_keeps_rates_in_range() {
        let plan = FaultPlan::new(13).with_calibration_drift(5.0);
        let base = NoiseModel::ibm_like(0.5, 0.9, 0.4).with_amplitude_damping(0.3);
        for site in 0..200u64 {
            let d = plan.drifted(&base, site, 0, 0);
            for rate in [d.p1, d.p2, d.readout, d.amplitude_damping, d.phase_damping] {
                assert!((0.0..=1.0).contains(&rate), "drifted rate {rate}");
            }
        }
    }

    #[test]
    fn drift_actually_moves_rates() {
        let plan = FaultPlan::new(1).with_calibration_drift(0.5);
        let base = NoiseModel::depolarizing(1e-2);
        let moved = (0..20u64).any(|s| plan.drifted(&base, s, 0, 0).p2 != base.p2);
        assert!(moved, "drift never changed the rates");
    }

    #[test]
    fn param_corruption_injects_bad_values_deterministically() {
        let plan = FaultPlan::new(2).with_param_corruption(1.0);
        let mut a = vec![0.1, 0.2, 0.3, 0.4];
        let mut b = a.clone();
        let ia = plan.corrupt_params(7, &mut a).expect("p = 1 must fire");
        let ib = plan.corrupt_params(7, &mut b).expect("p = 1 must fire");
        assert_eq!(ia, ib);
        assert_eq!(a[ia].to_bits(), b[ib].to_bits());
        assert!(!a[ia].is_finite() || a[ia].abs() > 1e12);
    }

    #[test]
    fn rates_are_clamped_on_construction() {
        let plan = FaultPlan::new(0)
            .with_shot_loss(1.7)
            .with_readout_burst(-0.2, f64::NAN)
            .with_calibration_drift(f64::NAN)
            .with_param_corruption(2.0);
        assert_eq!(plan.shot_loss, 1.0);
        assert_eq!(plan.readout_burst, 0.0);
        assert_eq!(plan.burst_flip_rate, 0.0);
        assert_eq!(plan.calibration_drift, 0.0);
        assert_eq!(plan.param_corruption, 1.0);
    }
}
