//! Peephole circuit optimization.
//!
//! Local rewrite rules applied until fixpoint:
//!
//! 1. **Involution cancellation** — adjacent identical self-inverse
//!    gates (`X·X`, `H·H`, `CX·CX`, `Swap·Swap`, `Z·Z`, …) vanish.
//! 2. **Rotation fusion** — adjacent rotations about the same axis on
//!    the same qubit(s) merge (`Rz(a)·Rz(b) → Rz(a+b)`, same for
//!    `Rx`/`Ry`/`Phase`/`Rzz`/`Cp`).
//! 3. **Zero-rotation elision** — rotations with angle ≈ 0 disappear.
//!
//! "Adjacent" means no intervening gate touches any shared qubit, so
//! rules fire across unrelated gates on other qubits. The pass is used
//! on synthesized segment circuits before export, where the
//! `H-conjugation` shells of consecutive τ operators on the same pivot
//! frequently cancel.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Angle magnitude below which a rotation is treated as identity.
const EPS: f64 = 1e-12;

/// Applies the peephole rules until no rule fires, returning the
/// optimized circuit.
///
/// The result is exactly equivalent (not just up to global phase): every
/// rewrite preserves the unitary.
///
/// # Example
///
/// ```
/// use rasengan_qsim::{peephole::optimize, Circuit};
///
/// let mut c = Circuit::new(2);
/// c.h(0).h(0).rz(1, 0.3).rz(1, -0.3).cx(0, 1);
/// let opt = optimize(&c);
/// assert_eq!(opt.len(), 1); // only the CX survives
/// ```
pub fn optimize(circuit: &Circuit) -> Circuit {
    let mut gates: Vec<Gate> = circuit.gates().to_vec();
    loop {
        let before = gates.len();
        gates = one_pass(gates);
        if gates.len() == before {
            break;
        }
    }
    let mut out = Circuit::new(circuit.n_qubits());
    for g in gates {
        out.push(g);
    }
    out
}

/// Runs one sweep of the rewrite rules.
fn one_pass(gates: Vec<Gate>) -> Vec<Gate> {
    let mut out: Vec<Gate> = Vec::with_capacity(gates.len());
    'next: for g in gates {
        // Drop identity rotations outright.
        if rotation_angle(&g).is_some_and(|t| t.abs() < EPS) {
            continue;
        }
        // Look backwards for a peephole partner, stopping at the first
        // gate sharing a qubit.
        let qubits = g.qubits();
        for i in (0..out.len()).rev() {
            let prev = &out[i];
            let overlaps = prev.qubits().iter().any(|q| qubits.contains(q));
            if !overlaps {
                continue;
            }
            // Involution cancellation: identical self-inverse gate.
            if is_self_inverse(prev) && *prev == g {
                out.remove(i);
                continue 'next;
            }
            // Rotation fusion: same gate kind, same operands.
            if let Some(merged) = fuse(prev, &g) {
                if rotation_angle(&merged).is_some_and(|t| t.abs() < EPS) {
                    out.remove(i);
                } else {
                    out[i] = merged;
                }
                continue 'next;
            }
            break; // blocked by a non-matching overlapping gate
        }
        out.push(g);
    }
    out
}

/// Whether a gate is its own inverse.
fn is_self_inverse(g: &Gate) -> bool {
    matches!(
        g,
        Gate::X(_)
            | Gate::Y(_)
            | Gate::Z(_)
            | Gate::H(_)
            | Gate::Cx(..)
            | Gate::Cz(..)
            | Gate::Swap(..)
            | Gate::Mcx { .. }
    )
}

/// The rotation angle of a parameterized gate, if any.
fn rotation_angle(g: &Gate) -> Option<f64> {
    match g {
        Gate::Rx(_, t)
        | Gate::Ry(_, t)
        | Gate::Rz(_, t)
        | Gate::Phase(_, t)
        | Gate::Rzz(_, _, t)
        | Gate::Cp(_, _, t) => Some(*t),
        Gate::Mcp { theta, .. } => Some(*theta),
        _ => None,
    }
}

/// Merges two same-axis rotations on identical operands.
fn fuse(a: &Gate, b: &Gate) -> Option<Gate> {
    match (a, b) {
        (Gate::Rx(q1, t1), Gate::Rx(q2, t2)) if q1 == q2 => Some(Gate::Rx(*q1, t1 + t2)),
        (Gate::Ry(q1, t1), Gate::Ry(q2, t2)) if q1 == q2 => Some(Gate::Ry(*q1, t1 + t2)),
        (Gate::Rz(q1, t1), Gate::Rz(q2, t2)) if q1 == q2 => Some(Gate::Rz(*q1, t1 + t2)),
        (Gate::Phase(q1, t1), Gate::Phase(q2, t2)) if q1 == q2 => Some(Gate::Phase(*q1, t1 + t2)),
        (Gate::Rzz(a1, b1, t1), Gate::Rzz(a2, b2, t2))
            if (a1, b1) == (a2, b2) || (a1, b1) == (b2, a2) =>
        {
            Some(Gate::Rzz(*a1, *b1, t1 + t2))
        }
        (Gate::Cp(c1, t1, x1), Gate::Cp(c2, t2, x2))
            if (c1, t1) == (c2, t2) || (c1, t1) == (t2, c2) =>
        {
            Some(Gate::Cp(*c1, *t1, x1 + x2))
        }
        (
            Gate::Mcp {
                controls: c1,
                target: t1,
                theta: x1,
            },
            Gate::Mcp {
                controls: c2,
                target: t2,
                theta: x2,
            },
        ) if same_control_set(c1, *t1, c2, *t2) => Some(Gate::Mcp {
            controls: c1.clone(),
            target: *t1,
            theta: x1 + x2,
        }),
        _ => None,
    }
}

/// MCP gates are symmetric in {controls ∪ target}; compare as sets.
fn same_control_set(c1: &[usize], t1: usize, c2: &[usize], t2: usize) -> bool {
    let mut s1: Vec<usize> = c1.to_vec();
    s1.push(t1);
    s1.sort_unstable();
    let mut s2: Vec<usize> = c2.to_vec();
    s2.push(t2);
    s2.sort_unstable();
    s1 == s2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::equivalent_up_to_phase;

    #[test]
    fn double_h_cancels() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        assert!(optimize(&c).is_empty());
    }

    #[test]
    fn cancellation_across_unrelated_qubits() {
        let mut c = Circuit::new(2);
        c.x(0).h(1).x(0); // the H on q1 does not block the X·X pair
        let opt = optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.gates()[0], Gate::H(1));
    }

    #[test]
    fn blocking_gate_prevents_cancellation() {
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1).x(0); // CX shares q0: X's must not cancel
        assert_eq!(optimize(&c).len(), 3);
    }

    #[test]
    fn rotations_fuse_and_elide() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.3).rz(0, 0.4).rz(0, -0.7);
        assert!(optimize(&c).is_empty());
        let mut c = Circuit::new(1);
        c.rz(0, 0.3).rz(0, 0.4);
        let opt = optimize(&c);
        assert_eq!(opt.len(), 1);
        match opt.gates()[0] {
            Gate::Rz(0, t) => assert!((t - 0.7).abs() < 1e-12),
            ref g => panic!("unexpected {g}"),
        }
    }

    #[test]
    fn rzz_fuses_orientation_insensitively() {
        let mut c = Circuit::new(2);
        c.rzz(0, 1, 0.2).rzz(1, 0, 0.3);
        let opt = optimize(&c);
        assert_eq!(opt.len(), 1);
    }

    #[test]
    fn mcp_fuses_as_a_set() {
        let mut c = Circuit::new(3);
        c.mcp(vec![0, 1], 2, 0.2).mcp(vec![2, 0], 1, 0.3);
        let opt = optimize(&c);
        assert_eq!(opt.len(), 1);
        match &opt.gates()[0] {
            Gate::Mcp { theta, .. } => assert!((theta - 0.5).abs() < 1e-12),
            g => panic!("unexpected {g}"),
        }
    }

    #[test]
    fn optimization_preserves_unitary() {
        let mut c = Circuit::new(3);
        c.h(0)
            .x(1)
            .rz(0, 0.4)
            .rz(0, 0.3)
            .cx(0, 1)
            .cx(0, 1)
            .x(1)
            .ry(2, 0.2)
            .ry(2, -0.2)
            .mcp(vec![0], 2, 0.5);
        let opt = optimize(&c);
        assert!(opt.len() < c.len());
        assert!(equivalent_up_to_phase(&c, &opt, 1e-9));
    }

    #[test]
    fn consecutive_tau_shells_shrink() {
        // Two τs sharing a pivot: their trailing/leading H and CX shells
        // partially cancel after concatenation.
        use crate::synth::tau_circuit;
        let mut joined = Circuit::new(3);
        joined.extend(&tau_circuit(&[1, -1, 0], 0.4, 3));
        joined.extend(&tau_circuit(&[1, -1, 0], 0.6, 3));
        let opt = optimize(&joined);
        assert!(
            opt.len() < joined.len(),
            "no shell cancellation: {} vs {}",
            opt.len(),
            joined.len()
        );
        assert!(equivalent_up_to_phase(&joined, &opt, 1e-9));
    }

    #[test]
    fn fixpoint_terminates_on_alternating_pattern() {
        let mut c = Circuit::new(1);
        for _ in 0..50 {
            c.x(0).h(0);
        }
        let opt = optimize(&c);
        assert!(opt.len() <= c.len());
    }
}
