//! Noise channels via Monte-Carlo wavefunction (quantum-trajectory)
//! sampling.
//!
//! The paper evaluates three noise regimes: depolarizing (Pauli) noise
//! calibrated to IBM devices (Fig. 14a), amplitude damping on top of a
//! fixed background (Fig. 14b), and the full device models for the
//! "real-world platform" experiments (Fig. 11, Fig. 16). All are
//! implemented here as stochastic trajectories: each run samples one
//! noise realization, and repeated runs reproduce the channel statistics.
//! Trajectories keep sparse states sparse — a Pauli error maps basis
//! states to basis states, and damping jumps are projections — which is
//! what lets the noisy Rasengan experiments scale.

use crate::dense::DenseState;
use crate::gate::Gate;
use crate::sparse::{Label, SparseState};
use rand::Rng;

/// A gate-level noise model.
///
/// Probabilities are per gate: after every gate each involved qubit
/// suffers a depolarizing error with the arity-matched probability, then
/// amplitude/phase damping with the configured strengths.
///
/// # Example
///
/// ```
/// use rasengan_qsim::NoiseModel;
///
/// let noisy = NoiseModel::depolarizing(1e-3);
/// assert!(noisy.is_noisy());
/// assert!(!NoiseModel::noise_free().is_noisy());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability after a single-qubit gate.
    pub p1: f64,
    /// Depolarizing probability after a multi-qubit gate (per qubit).
    pub p2: f64,
    /// Per-bit readout flip probability at measurement.
    pub readout: f64,
    /// Amplitude-damping probability per gate per qubit.
    pub amplitude_damping: f64,
    /// Phase-damping probability per gate per qubit.
    pub phase_damping: f64,
}

/// Clamps a probability into `[0, 1]`, mapping NaN to 0. Every
/// [`NoiseModel`] constructor routes its rates through this, so a model
/// built from drifted calibration data or a bad config file can never
/// carry a probability the trajectory samplers would misinterpret.
pub(crate) fn clamp_probability(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

impl NoiseModel {
    /// No noise at all.
    pub fn noise_free() -> Self {
        NoiseModel {
            p1: 0.0,
            p2: 0.0,
            readout: 0.0,
            amplitude_damping: 0.0,
            phase_damping: 0.0,
        }
    }

    /// Pure depolarizing noise with the same rate on 1Q and 2Q gates
    /// (the Fig. 14a sweep). `p` is clamped into `[0, 1]` (NaN → 0).
    pub fn depolarizing(p: f64) -> Self {
        let p = clamp_probability(p);
        NoiseModel {
            p1: p,
            p2: p,
            ..NoiseModel::noise_free()
        }
    }

    /// IBM-like noise: separate 1Q/2Q/readout error rates
    /// (Fig. 14b background: 1Q 0.035%, 2Q 0.875%). Each rate is
    /// clamped into `[0, 1]` (NaN → 0).
    pub fn ibm_like(p1: f64, p2: f64, readout: f64) -> Self {
        NoiseModel {
            p1: clamp_probability(p1),
            p2: clamp_probability(p2),
            readout: clamp_probability(readout),
            ..NoiseModel::noise_free()
        }
    }

    /// Adds amplitude damping to an existing model (builder style).
    /// `gamma` is clamped into `[0, 1]` (NaN → 0).
    pub fn with_amplitude_damping(mut self, gamma: f64) -> Self {
        self.amplitude_damping = clamp_probability(gamma);
        self
    }

    /// Adds phase damping to an existing model (builder style).
    /// `lambda` is clamped into `[0, 1]` (NaN → 0).
    pub fn with_phase_damping(mut self, lambda: f64) -> Self {
        self.phase_damping = clamp_probability(lambda);
        self
    }

    /// Whether any channel is active.
    pub fn is_noisy(&self) -> bool {
        self.p1 > 0.0
            || self.p2 > 0.0
            || self.readout > 0.0
            || self.amplitude_damping > 0.0
            || self.phase_damping > 0.0
    }

    /// The depolarizing probability matching a gate's arity.
    pub fn gate_error(&self, gate: &Gate) -> f64 {
        if gate.is_multi_qubit() {
            self.p2
        } else {
            self.p1
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::noise_free()
    }
}

/// One of the three non-identity Pauli errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pauli {
    X,
    Y,
    Z,
}

fn sample_pauli(rng: &mut impl Rng) -> Pauli {
    match rng.gen_range(0..3) {
        0 => Pauli::X,
        1 => Pauli::Y,
        _ => Pauli::Z,
    }
}

// ---------------------------------------------------------------------
// Dense-state channels
// ---------------------------------------------------------------------

/// Applies post-gate noise on a dense state for all `qubits` a gate
/// touched.
pub fn apply_gate_noise_dense(
    state: &mut DenseState,
    qubits: &[usize],
    p: f64,
    noise: &NoiseModel,
    rng: &mut impl Rng,
) {
    for &q in qubits {
        if p > 0.0 && rng.gen::<f64>() < p {
            match sample_pauli(rng) {
                Pauli::X => state.apply(&Gate::X(q)),
                Pauli::Y => state.apply(&Gate::Y(q)),
                Pauli::Z => state.apply(&Gate::Z(q)),
            }
        }
        if noise.amplitude_damping > 0.0 {
            amplitude_damping_dense(state, q, noise.amplitude_damping, rng);
        }
        if noise.phase_damping > 0.0 {
            phase_damping_dense(state, q, noise.phase_damping, rng);
        }
    }
}

/// One amplitude-damping trajectory step on qubit `q` of a dense state.
///
/// With probability `γ·P(q = 1)` the excitation decays (`|1⟩ → |0⟩`
/// jump); otherwise the no-jump Kraus operator `diag(1, √(1−γ))` is
/// applied and the state renormalized.
pub fn amplitude_damping_dense(state: &mut DenseState, q: usize, gamma: f64, rng: &mut impl Rng) {
    let p1 = population_dense(state, q);
    let p_jump = gamma * p1;
    if p_jump > 0.0 && rng.gen::<f64>() < p_jump {
        // Jump: project onto |1⟩_q then flip to |0⟩_q.
        project_and_flip_dense(state, q);
    } else {
        // No jump: scale |1⟩_q amplitudes by √(1−γ), renormalize.
        scale_one_amplitudes_dense(state, q, (1.0 - gamma).sqrt());
        state.normalize();
    }
}

/// One phase-damping trajectory step on qubit `q` of a dense state.
pub fn phase_damping_dense(state: &mut DenseState, q: usize, lambda: f64, rng: &mut impl Rng) {
    let p1 = population_dense(state, q);
    let p_jump = lambda * p1;
    if p_jump > 0.0 && rng.gen::<f64>() < p_jump {
        // Jump: project onto |1⟩_q (pure dephasing, no flip).
        project_dense(state, q, true);
    } else {
        scale_one_amplitudes_dense(state, q, (1.0 - lambda).sqrt());
        state.normalize();
    }
}

fn population_dense(state: &DenseState, q: usize) -> f64 {
    let mask = 1usize << q;
    state
        .amplitudes()
        .iter()
        .enumerate()
        .filter(|(i, _)| i & mask != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum()
}

fn scale_one_amplitudes_dense(state: &mut DenseState, q: usize, factor: f64) {
    // Implemented via a tiny diagonal "gate": Rz plus phase won't do a
    // non-unitary scale, so rebuild through the public API: we use the
    // internal amplitude access instead.
    let n = state.n_qubits();
    let mask = 1u64 << q;
    let mut rebuilt = Vec::with_capacity(1 << n);
    for (i, a) in state.amplitudes().iter().enumerate() {
        if (i as u64) & mask != 0 {
            rebuilt.push(a.scale(factor));
        } else {
            rebuilt.push(*a);
        }
    }
    *state = DenseState::from_amplitudes(n, rebuilt);
}

fn project_dense(state: &mut DenseState, q: usize, keep_one: bool) {
    let n = state.n_qubits();
    let mask = 1u64 << q;
    let mut rebuilt = Vec::with_capacity(1usize << n);
    for (i, a) in state.amplitudes().iter().enumerate() {
        let is_one = (i as u64) & mask != 0;
        if is_one == keep_one {
            rebuilt.push(*a);
        } else {
            rebuilt.push(crate::complex::Complex::ZERO);
        }
    }
    *state = DenseState::from_amplitudes(n, rebuilt);
    state.normalize();
}

fn project_and_flip_dense(state: &mut DenseState, q: usize) {
    project_dense(state, q, true);
    state.apply(&Gate::X(q));
}

/// Runs a circuit on a dense state with gate-level trajectory noise.
///
/// # Example
///
/// ```
/// use rasengan_qsim::{noise, Circuit, NoiseModel};
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let s = noise::run_dense_trajectory(&c, &NoiseModel::depolarizing(0.01), &mut rng);
/// assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
/// ```
pub fn run_dense_trajectory(
    circuit: &crate::circuit::Circuit,
    noise: &NoiseModel,
    rng: &mut impl Rng,
) -> DenseState {
    let mut state = DenseState::zero_state(circuit.n_qubits());
    for g in circuit.gates() {
        state.apply(g);
        apply_gate_noise_dense(&mut state, &g.qubits(), noise.gate_error(g), noise, rng);
    }
    state
}

// ---------------------------------------------------------------------
// Sparse-state channels
// ---------------------------------------------------------------------

/// Applies post-gate noise on a sparse state for all `qubits` a gate
/// touched. Pauli errors, damping jumps, and no-jump scalings all keep
/// the support sparse.
pub fn apply_gate_noise_sparse(
    state: &mut SparseState,
    qubits: &[usize],
    p: f64,
    noise: &NoiseModel,
    rng: &mut impl Rng,
) {
    for &q in qubits {
        if p > 0.0 && rng.gen::<f64>() < p {
            let g = match sample_pauli(rng) {
                Pauli::X => Gate::X(q),
                Pauli::Y => Gate::Y(q),
                Pauli::Z => Gate::Z(q),
            };
            state.apply(&g).expect("Pauli gates are always sparse-safe");
        }
        if noise.amplitude_damping > 0.0 {
            amplitude_damping_sparse(state, q, noise.amplitude_damping, rng);
        }
        if noise.phase_damping > 0.0 {
            phase_damping_sparse(state, q, noise.phase_damping, rng);
        }
    }
}

/// One amplitude-damping trajectory step on qubit `q` of a sparse state.
pub fn amplitude_damping_sparse(state: &mut SparseState, q: usize, gamma: f64, rng: &mut impl Rng) {
    let p1 = population_sparse(state, q);
    let p_jump = gamma * p1;
    if p_jump > 0.0 && rng.gen::<f64>() < p_jump {
        state.project_qubit(q, true);
        state.apply(&Gate::X(q)).expect("X is always sparse-safe");
    } else {
        state.scale_where_qubit_one(q, (1.0 - gamma).sqrt());
        state.normalize();
    }
}

/// One phase-damping trajectory step on qubit `q` of a sparse state.
pub fn phase_damping_sparse(state: &mut SparseState, q: usize, lambda: f64, rng: &mut impl Rng) {
    let p1 = population_sparse(state, q);
    let p_jump = lambda * p1;
    if p_jump > 0.0 && rng.gen::<f64>() < p_jump {
        state.project_qubit(q, true);
    } else {
        state.scale_where_qubit_one(q, (1.0 - lambda).sqrt());
        state.normalize();
    }
}

fn population_sparse(state: &SparseState, q: usize) -> f64 {
    state.population(q)
}

// ---------------------------------------------------------------------
// Readout error
// ---------------------------------------------------------------------

/// Flips each of the `n` measured bits independently with probability
/// `rate` (symmetric readout error).
pub fn apply_readout_error(label: Label, n: usize, rate: f64, rng: &mut impl Rng) -> Label {
    if rate <= 0.0 {
        return label;
    }
    let mut out = label;
    for q in 0..n {
        if rng.gen::<f64>() < rate {
            out ^= 1 << q;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noise_free_model_is_quiet() {
        let nm = NoiseModel::noise_free();
        assert!(!nm.is_noisy());
        assert_eq!(nm.gate_error(&Gate::X(0)), 0.0);
    }

    #[test]
    fn gate_error_matches_arity() {
        let nm = NoiseModel::ibm_like(0.001, 0.01, 0.02);
        assert_eq!(nm.gate_error(&Gate::H(0)), 0.001);
        assert_eq!(nm.gate_error(&Gate::Cx(0, 1)), 0.01);
    }

    #[test]
    fn builder_adds_damping() {
        let nm = NoiseModel::noise_free()
            .with_amplitude_damping(0.02)
            .with_phase_damping(0.01);
        assert!(nm.is_noisy());
        assert_eq!(nm.amplitude_damping, 0.02);
        assert_eq!(nm.phase_damping, 0.01);
    }

    #[test]
    fn noise_free_trajectory_matches_ideal() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let noisy = run_dense_trajectory(&c, &NoiseModel::noise_free(), &mut rng);
        let ideal = DenseState::from_circuit(&c);
        for i in 0..4 {
            assert!(noisy.amplitude(i).approx_eq(ideal.amplitude(i), 1e-12));
        }
    }

    #[test]
    fn heavy_depolarizing_noise_spreads_population() {
        // With p = 0.5 on every gate, many trajectories flip qubits that
        // an ideal run would leave at |0⟩.
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        let mut hit_other = false;
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = run_dense_trajectory(&c, &NoiseModel::depolarizing(0.5), &mut rng);
            let p = s.probabilities();
            if p[0b11] < 0.99 {
                hit_other = true;
                break;
            }
        }
        assert!(
            hit_other,
            "noise never perturbed the state in 50 trajectories"
        );
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        // |1⟩ under repeated damping ends in |0⟩ with probability → 1.
        let mut zeros = 0;
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = DenseState::basis_state(1, 1);
            for _ in 0..64 {
                amplitude_damping_dense(&mut s, 0, 0.1, &mut rng);
            }
            if s.probabilities()[0] > 0.99 {
                zeros += 1;
            }
        }
        assert!(zeros > 190, "only {zeros}/200 trajectories decayed");
    }

    #[test]
    fn amplitude_damping_leaves_ground_state_alone() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = DenseState::zero_state(1);
        amplitude_damping_dense(&mut s, 0, 0.5, &mut rng);
        assert!((s.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_damping_preserves_populations() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut c = Circuit::new(1);
        c.h(0);
        let mut s = DenseState::from_circuit(&c);
        phase_damping_dense(&mut s, 0, 0.3, &mut rng);
        let p = s.probabilities();
        // Populations are preserved by either trajectory branch up to
        // renormalization of the no-jump branch.
        assert!((p[0] + p[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sparse_and_dense_damping_agree_statistically() {
        let gamma = 0.25;
        let trials = 2000;
        let mut dense_decays = 0;
        let mut sparse_decays = 0;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = DenseState::basis_state(1, 1);
            amplitude_damping_dense(&mut d, 0, gamma, &mut rng);
            if d.probabilities()[0] > 0.5 {
                dense_decays += 1;
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = SparseState::basis_state(1, 1);
            amplitude_damping_sparse(&mut s, 0, gamma, &mut rng);
            if s.probability(0) > 0.5 {
                sparse_decays += 1;
            }
        }
        assert_eq!(
            dense_decays, sparse_decays,
            "backends must agree trajectory-wise"
        );
        let rate = dense_decays as f64 / trials as f64;
        assert!(
            (rate - gamma).abs() < 0.03,
            "decay rate {rate} vs γ {gamma}"
        );
    }

    #[test]
    fn depolarizing_clamps_out_of_range_rates() {
        assert_eq!(NoiseModel::depolarizing(1.5).p1, 1.0);
        assert_eq!(NoiseModel::depolarizing(-0.3).p2, 0.0);
        assert_eq!(NoiseModel::depolarizing(f64::NAN).p1, 0.0);
        assert!(!NoiseModel::depolarizing(f64::NAN).is_noisy());
    }

    #[test]
    fn ibm_like_clamps_each_rate_independently() {
        let nm = NoiseModel::ibm_like(-1.0, 2.0, f64::NAN);
        assert_eq!(nm.p1, 0.0);
        assert_eq!(nm.p2, 1.0);
        assert_eq!(nm.readout, 0.0);
    }

    #[test]
    fn amplitude_damping_builder_clamps() {
        assert_eq!(
            NoiseModel::noise_free()
                .with_amplitude_damping(7.0)
                .amplitude_damping,
            1.0
        );
        assert_eq!(
            NoiseModel::noise_free()
                .with_amplitude_damping(-0.5)
                .amplitude_damping,
            0.0
        );
        assert_eq!(
            NoiseModel::noise_free()
                .with_amplitude_damping(f64::NAN)
                .amplitude_damping,
            0.0
        );
    }

    #[test]
    fn phase_damping_builder_clamps() {
        assert_eq!(
            NoiseModel::noise_free()
                .with_phase_damping(3.0)
                .phase_damping,
            1.0
        );
        assert_eq!(
            NoiseModel::noise_free()
                .with_phase_damping(-1e-3)
                .phase_damping,
            0.0
        );
        assert_eq!(
            NoiseModel::noise_free()
                .with_phase_damping(f64::NAN)
                .phase_damping,
            0.0
        );
    }

    #[test]
    fn readout_error_flips_bits() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut flipped = 0;
        for _ in 0..1000 {
            if apply_readout_error(0, 1, 0.3, &mut rng) == 1 {
                flipped += 1;
            }
        }
        assert!((flipped as f64 / 1000.0 - 0.3).abs() < 0.05);
        assert_eq!(apply_readout_error(0b101, 3, 0.0, &mut rng), 0b101);
    }
}
