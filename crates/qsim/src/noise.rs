//! Noise channels via Monte-Carlo wavefunction (quantum-trajectory)
//! sampling.
//!
//! The paper evaluates three noise regimes: depolarizing (Pauli) noise
//! calibrated to IBM devices (Fig. 14a), amplitude damping on top of a
//! fixed background (Fig. 14b), and the full device models for the
//! "real-world platform" experiments (Fig. 11, Fig. 16). All are
//! implemented here as stochastic trajectories: each run samples one
//! noise realization, and repeated runs reproduce the channel statistics.
//! Trajectories keep sparse states sparse — a Pauli error maps basis
//! states to basis states, and damping jumps are projections — which is
//! what lets the noisy Rasengan experiments scale.

use crate::complex::Complex;
use crate::dense::DenseState;
use crate::gate::Gate;
use crate::sparse::{Label, SparseState};
use rand::Rng;

/// A gate-level noise model.
///
/// Probabilities are per gate: after every gate each involved qubit
/// suffers a depolarizing error with the arity-matched probability, then
/// amplitude/phase damping with the configured strengths.
///
/// # Example
///
/// ```
/// use rasengan_qsim::NoiseModel;
///
/// let noisy = NoiseModel::depolarizing(1e-3);
/// assert!(noisy.is_noisy());
/// assert!(!NoiseModel::noise_free().is_noisy());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability after a single-qubit gate.
    pub p1: f64,
    /// Depolarizing probability after a multi-qubit gate (per qubit).
    pub p2: f64,
    /// Per-bit readout flip probability at measurement.
    pub readout: f64,
    /// Amplitude-damping probability per gate per qubit.
    pub amplitude_damping: f64,
    /// Phase-damping probability per gate per qubit.
    pub phase_damping: f64,
}

/// Clamps a probability into `[0, 1]`, mapping NaN to 0. Every
/// [`NoiseModel`] constructor routes its rates through this, so a model
/// built from drifted calibration data or a bad config file can never
/// carry a probability the trajectory samplers would misinterpret.
pub(crate) fn clamp_probability(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

impl NoiseModel {
    /// No noise at all.
    pub fn noise_free() -> Self {
        NoiseModel {
            p1: 0.0,
            p2: 0.0,
            readout: 0.0,
            amplitude_damping: 0.0,
            phase_damping: 0.0,
        }
    }

    /// Pure depolarizing noise with the same rate on 1Q and 2Q gates
    /// (the Fig. 14a sweep). `p` is clamped into `[0, 1]` (NaN → 0).
    pub fn depolarizing(p: f64) -> Self {
        let p = clamp_probability(p);
        NoiseModel {
            p1: p,
            p2: p,
            ..NoiseModel::noise_free()
        }
    }

    /// IBM-like noise: separate 1Q/2Q/readout error rates
    /// (Fig. 14b background: 1Q 0.035%, 2Q 0.875%). Each rate is
    /// clamped into `[0, 1]` (NaN → 0).
    pub fn ibm_like(p1: f64, p2: f64, readout: f64) -> Self {
        NoiseModel {
            p1: clamp_probability(p1),
            p2: clamp_probability(p2),
            readout: clamp_probability(readout),
            ..NoiseModel::noise_free()
        }
    }

    /// Adds amplitude damping to an existing model (builder style).
    /// `gamma` is clamped into `[0, 1]` (NaN → 0).
    pub fn with_amplitude_damping(mut self, gamma: f64) -> Self {
        self.amplitude_damping = clamp_probability(gamma);
        self
    }

    /// Adds phase damping to an existing model (builder style).
    /// `lambda` is clamped into `[0, 1]` (NaN → 0).
    pub fn with_phase_damping(mut self, lambda: f64) -> Self {
        self.phase_damping = clamp_probability(lambda);
        self
    }

    /// Whether any channel is active.
    pub fn is_noisy(&self) -> bool {
        self.p1 > 0.0
            || self.p2 > 0.0
            || self.readout > 0.0
            || self.amplitude_damping > 0.0
            || self.phase_damping > 0.0
    }

    /// The depolarizing probability matching a gate's arity.
    pub fn gate_error(&self, gate: &Gate) -> f64 {
        if gate.is_multi_qubit() {
            self.p2
        } else {
            self.p1
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::noise_free()
    }
}

/// One of the three non-identity Pauli errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pauli {
    X,
    Y,
    Z,
}

fn sample_pauli(rng: &mut impl Rng) -> Pauli {
    match rng.gen_range(0..3) {
        0 => Pauli::X,
        1 => Pauli::Y,
        _ => Pauli::Z,
    }
}

// ---------------------------------------------------------------------
// Dense-state channels
// ---------------------------------------------------------------------

/// Applies post-gate noise on a dense state for all `qubits` a gate
/// touched.
pub fn apply_gate_noise_dense(
    state: &mut DenseState,
    qubits: &[usize],
    p: f64,
    noise: &NoiseModel,
    rng: &mut impl Rng,
) {
    for &q in qubits {
        if p > 0.0 && rng.gen::<f64>() < p {
            match sample_pauli(rng) {
                Pauli::X => state.apply(&Gate::X(q)),
                Pauli::Y => state.apply(&Gate::Y(q)),
                Pauli::Z => state.apply(&Gate::Z(q)),
            }
        }
        if noise.amplitude_damping > 0.0 {
            amplitude_damping_dense(state, q, noise.amplitude_damping, rng);
        }
        if noise.phase_damping > 0.0 {
            phase_damping_dense(state, q, noise.phase_damping, rng);
        }
    }
}

/// One amplitude-damping trajectory step on qubit `q` of a dense state.
///
/// With probability `γ·P(q = 1)` the excitation decays (`|1⟩ → |0⟩`
/// jump); otherwise the no-jump Kraus operator `diag(1, √(1−γ))` is
/// applied and the state renormalized.
pub fn amplitude_damping_dense(state: &mut DenseState, q: usize, gamma: f64, rng: &mut impl Rng) {
    let p1 = population_dense(state, q);
    let p_jump = gamma * p1;
    if p_jump > 0.0 && rng.gen::<f64>() < p_jump {
        // Jump: project onto |1⟩_q then flip to |0⟩_q.
        project_and_flip_dense(state, q);
    } else {
        // No jump: scale |1⟩_q amplitudes by √(1−γ), renormalize.
        scale_one_amplitudes_dense(state, q, (1.0 - gamma).sqrt());
        state.normalize();
    }
}

/// One phase-damping trajectory step on qubit `q` of a dense state.
pub fn phase_damping_dense(state: &mut DenseState, q: usize, lambda: f64, rng: &mut impl Rng) {
    let p1 = population_dense(state, q);
    let p_jump = lambda * p1;
    if p_jump > 0.0 && rng.gen::<f64>() < p_jump {
        // Jump: project onto |1⟩_q (pure dephasing, no flip).
        project_dense(state, q, true);
    } else {
        scale_one_amplitudes_dense(state, q, (1.0 - lambda).sqrt());
        state.normalize();
    }
}

fn population_dense(state: &DenseState, q: usize) -> f64 {
    let mask = 1usize << q;
    state
        .amplitudes()
        .iter()
        .enumerate()
        .filter(|(i, _)| i & mask != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum()
}

fn scale_one_amplitudes_dense(state: &mut DenseState, q: usize, factor: f64) {
    // Implemented via a tiny diagonal "gate": Rz plus phase won't do a
    // non-unitary scale, so rebuild through the public API: we use the
    // internal amplitude access instead.
    let n = state.n_qubits();
    let mask = 1u64 << q;
    let mut rebuilt = Vec::with_capacity(1 << n);
    for (i, a) in state.amplitudes().iter().enumerate() {
        if (i as u64) & mask != 0 {
            rebuilt.push(a.scale(factor));
        } else {
            rebuilt.push(*a);
        }
    }
    *state = DenseState::from_amplitudes(n, rebuilt);
}

fn project_dense(state: &mut DenseState, q: usize, keep_one: bool) {
    let n = state.n_qubits();
    let mask = 1u64 << q;
    let mut rebuilt = Vec::with_capacity(1usize << n);
    for (i, a) in state.amplitudes().iter().enumerate() {
        let is_one = (i as u64) & mask != 0;
        if is_one == keep_one {
            rebuilt.push(*a);
        } else {
            rebuilt.push(crate::complex::Complex::ZERO);
        }
    }
    *state = DenseState::from_amplitudes(n, rebuilt);
    state.normalize();
}

fn project_and_flip_dense(state: &mut DenseState, q: usize) {
    project_dense(state, q, true);
    state.apply(&Gate::X(q));
}

/// Applies post-gate noise on a lockstep trajectory batch for all
/// `qubits` a gate touched, lane `l` drawing from `rngs[l]`.
///
/// Iteration is qubits outer / lanes inner, so each lane's RNG sees
/// the per-qubit channel sequence (Pauli roll, amplitude damping,
/// phase damping) at exactly the draw points
/// [`apply_gate_noise_dense`] has, and every channel application
/// touches only that lane's amplitude stripe with the identical
/// single-trajectory arithmetic — which keeps each lane bit-identical
/// to a sequential run of its stream.
///
/// # Panics
///
/// Panics if `rngs.len()` differs from the batch width.
pub fn apply_gate_noise_batch<R: Rng>(
    batch: &mut crate::batch::DenseBatch,
    qubits: &[usize],
    p: f64,
    noise: &NoiseModel,
    rngs: &mut [R],
) {
    assert_eq!(rngs.len(), batch.lanes(), "one RNG stream per lane");
    for &q in qubits {
        for (lane, rng) in rngs.iter_mut().enumerate() {
            if p > 0.0 && rng.gen::<f64>() < p {
                match sample_pauli(rng) {
                    Pauli::X => batch.apply_1q_lane(lane, q, crate::dense::x_matrix()),
                    Pauli::Y => batch.apply_1q_lane(lane, q, crate::dense::y_matrix()),
                    Pauli::Z => batch.apply_phase_pair_lane(lane, q, Complex::ONE, -Complex::ONE),
                }
            }
            if noise.amplitude_damping > 0.0 {
                amplitude_damping_lane(batch, lane, q, noise.amplitude_damping, rng);
            }
            if noise.phase_damping > 0.0 {
                phase_damping_lane(batch, lane, q, noise.phase_damping, rng);
            }
        }
    }
}

/// [`amplitude_damping_dense`] on one lane of a trajectory batch.
fn amplitude_damping_lane(
    batch: &mut crate::batch::DenseBatch,
    lane: usize,
    q: usize,
    gamma: f64,
    rng: &mut impl Rng,
) {
    let p1 = batch.population_lane(lane, q);
    let p_jump = gamma * p1;
    if p_jump > 0.0 && rng.gen::<f64>() < p_jump {
        // Jump: project onto |1⟩_q (renormalizing) then flip to |0⟩_q.
        batch.project_lane(lane, q, true);
        batch.apply_1q_lane(lane, q, crate::dense::x_matrix());
    } else {
        batch.scale_one_lane(lane, q, (1.0 - gamma).sqrt());
        batch.normalize_lane(lane);
    }
}

/// [`phase_damping_dense`] on one lane of a trajectory batch.
fn phase_damping_lane(
    batch: &mut crate::batch::DenseBatch,
    lane: usize,
    q: usize,
    lambda: f64,
    rng: &mut impl Rng,
) {
    let p1 = batch.population_lane(lane, q);
    let p_jump = lambda * p1;
    if p_jump > 0.0 && rng.gen::<f64>() < p_jump {
        batch.project_lane(lane, q, true);
    } else {
        batch.scale_one_lane(lane, q, (1.0 - lambda).sqrt());
        batch.normalize_lane(lane);
    }
}

/// Runs a circuit on a dense state with gate-level trajectory noise.
///
/// # Example
///
/// ```
/// use rasengan_qsim::{noise, Circuit, NoiseModel};
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let s = noise::run_dense_trajectory(&c, &NoiseModel::depolarizing(0.01), &mut rng);
/// assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
/// ```
pub fn run_dense_trajectory(
    circuit: &crate::circuit::Circuit,
    noise: &NoiseModel,
    rng: &mut impl Rng,
) -> DenseState {
    let mut state = DenseState::zero_state(circuit.n_qubits());
    for g in circuit.gates() {
        state.apply(g);
        apply_gate_noise_dense(&mut state, &g.qubits(), noise.gate_error(g), noise, rng);
    }
    state
}

// ---------------------------------------------------------------------
// Sparse-state channels
// ---------------------------------------------------------------------

/// Applies post-gate noise on a sparse state for all `qubits` a gate
/// touched. Pauli errors, damping jumps, and no-jump scalings all keep
/// the support sparse.
pub fn apply_gate_noise_sparse(
    state: &mut SparseState,
    qubits: &[usize],
    p: f64,
    noise: &NoiseModel,
    rng: &mut impl Rng,
) {
    for &q in qubits {
        if p > 0.0 && rng.gen::<f64>() < p {
            let g = match sample_pauli(rng) {
                Pauli::X => Gate::X(q),
                Pauli::Y => Gate::Y(q),
                Pauli::Z => Gate::Z(q),
            };
            state.apply(&g).expect("Pauli gates are always sparse-safe");
        }
        if noise.amplitude_damping > 0.0 {
            amplitude_damping_sparse(state, q, noise.amplitude_damping, rng);
        }
        if noise.phase_damping > 0.0 {
            phase_damping_sparse(state, q, noise.phase_damping, rng);
        }
    }
}

/// One amplitude-damping trajectory step on qubit `q` of a sparse state.
pub fn amplitude_damping_sparse(state: &mut SparseState, q: usize, gamma: f64, rng: &mut impl Rng) {
    let p1 = population_sparse(state, q);
    let p_jump = gamma * p1;
    if p_jump > 0.0 && rng.gen::<f64>() < p_jump {
        state.project_qubit(q, true);
        state.apply(&Gate::X(q)).expect("X is always sparse-safe");
    } else {
        state.scale_where_qubit_one(q, (1.0 - gamma).sqrt());
        state.normalize();
    }
}

/// One phase-damping trajectory step on qubit `q` of a sparse state.
pub fn phase_damping_sparse(state: &mut SparseState, q: usize, lambda: f64, rng: &mut impl Rng) {
    let p1 = population_sparse(state, q);
    let p_jump = lambda * p1;
    if p_jump > 0.0 && rng.gen::<f64>() < p_jump {
        state.project_qubit(q, true);
    } else {
        state.scale_where_qubit_one(q, (1.0 - lambda).sqrt());
        state.normalize();
    }
}

fn population_sparse(state: &SparseState, q: usize) -> f64 {
    state.population(q)
}

/// [`apply_gate_noise_sparse`] for the compiled (fused) trajectory
/// paths: identical channels at identical RNG draw points, with each
/// qubit's damping folded through [`apply_damping_slot_sparse`].
pub fn apply_gate_noise_sparse_fused(
    state: &mut SparseState,
    qubits: &[usize],
    p: f64,
    noise: &NoiseModel,
    rng: &mut impl Rng,
) {
    for &q in qubits {
        if p > 0.0 && rng.gen::<f64>() < p {
            let g = match sample_pauli(rng) {
                Pauli::X => Gate::X(q),
                Pauli::Y => Gate::Y(q),
                Pauli::Z => Gate::Z(q),
            };
            state.apply(&g).expect("Pauli gates are always sparse-safe");
        }
        apply_damping_slot_sparse(state, &[q], noise, rng);
    }
}

/// Folded damping channels for one noise slot (one or two qubits) on
/// the compiled trajectory path.
///
/// Equivalent to [`amplitude_damping_sparse`] then
/// [`phase_damping_sparse`] per qubit in slot order — the sequence
/// [`apply_gate_noise_sparse`] runs with `p = 0` — with the same RNG
/// draw points: each channel rolls iff its jump probability is nonzero.
/// The no-jump branches (overwhelmingly likely at calibrated rates) are
/// plain rescalings of the four `(qubit_a, qubit_b)` population
/// classes, so the fold computes the class masses in one read pass,
/// walks every channel's threshold in that 4-element mass space, and
/// applies the accumulated per-class factors in one write pass — versus
/// the unfused path's four support passes per channel. Thresholds match
/// the unfused path's population sums to rounding (the same last-ulp
/// order the two paths' distinct hash maps already exhibit); a channel
/// that does jump materializes the no-jump prefix and falls back to the
/// exact per-channel sequence from that point.
pub fn apply_damping_slot_sparse(
    state: &mut SparseState,
    qubits: &[usize],
    noise: &NoiseModel,
    rng: &mut impl Rng,
) {
    debug_assert!(matches!(qubits.len(), 1 | 2), "a slot has 1 or 2 qubits");
    let gamma = noise.amplitude_damping;
    let lambda = noise.phase_damping;
    if gamma <= 0.0 && lambda <= 0.0 {
        return;
    }
    let ma: Label = 1 << qubits[0];
    let mb: Label = if qubits.len() == 2 { 1 << qubits[1] } else { 0 };
    let class_of = |l: Label| ((l & ma != 0) as usize) | (((l & mb != 0) as usize) << 1);

    // Class masses in one pass over the support.
    let mut m = [0.0f64; 4];
    for (l, a) in state.amps.iter() {
        m[class_of(*l)] += a.norm_sqr();
    }

    let mut factors = [1.0f64; 4];
    for (ci, &q) in qubits.iter().enumerate() {
        let sel = 1usize << ci;
        for is_amp in [true, false] {
            let rate = if is_amp { gamma } else { lambda };
            if rate <= 0.0 {
                continue;
            }
            let pop = if sel == 1 { m[1] + m[3] } else { m[2] + m[3] };
            let p_jump = rate * pop;
            if p_jump > 0.0 && rng.gen::<f64>() < p_jump {
                // Jump: materialize the prefix, take the exact branch,
                // then run the remaining channels unfolded.
                apply_class_factors(state, class_of, &factors);
                state.project_qubit(q, true);
                if is_amp {
                    state.apply(&Gate::X(q)).expect("X is always sparse-safe");
                    if lambda > 0.0 {
                        phase_damping_sparse(state, q, lambda, rng);
                    }
                }
                for &q2 in &qubits[ci + 1..] {
                    if gamma > 0.0 {
                        amplitude_damping_sparse(state, q2, gamma, rng);
                    }
                    if lambda > 0.0 {
                        phase_damping_sparse(state, q2, lambda, rng);
                    }
                }
                return;
            }
            // No jump: scale the qubit's |1⟩ classes, renormalize (by
            // reciprocal multiply, the same form `normalize` uses).
            let keep = 1.0 - rate;
            for i in 0..4 {
                if i & sel != 0 {
                    m[i] *= keep;
                    factors[i] *= keep;
                }
            }
            let inv = 1.0 / (m[0] + m[1] + m[2] + m[3]);
            for i in 0..4 {
                m[i] *= inv;
                factors[i] *= inv;
            }
        }
    }
    apply_class_factors(state, class_of, &factors);
}

/// Applies accumulated mass-space class factors as amplitude scalings
/// (one write pass; amplitude factor = √mass factor).
fn apply_class_factors(
    state: &mut SparseState,
    class_of: impl Fn(Label) -> usize,
    factors: &[f64; 4],
) {
    if *factors == [1.0; 4] {
        return;
    }
    let f = [
        factors[0].sqrt(),
        factors[1].sqrt(),
        factors[2].sqrt(),
        factors[3].sqrt(),
    ];
    for (l, a) in state.amps.iter_mut() {
        *a = a.scale(f[class_of(*l)]);
    }
}

/// Runs one transition operator's whole noise-slot loop — `slots`
/// iterations of the per-CX depolarizing roll plus the random-operand
/// damping slot — over a flat snapshot of the support.
///
/// Per slot this is equivalent to the unfused sequence (a `p2` roll
/// applying a uniform Pauli on a random support qubit via
/// [`apply_gate_noise_sparse`] with `p = 1`, then
/// [`apply_damping_slot_sparse`] on a random operand pair) with RNG
/// draws at identical points. The win is memory traffic: none of the
/// slot channels grow the support (Pauli events permute labels, damping
/// branches rescale or project), so the hash map is flattened into a
/// contiguous `Vec` once per call and rebuilt once at the end, and the
/// hundreds of per-slot passes walk the `Vec` instead of re-iterating
/// hash buckets. Population sums reassociate relative to map order —
/// the same last-ulp class of drift the fused path's distinct hash maps
/// already exhibit.
pub fn run_noise_slots_sparse(
    state: &mut SparseState,
    support: &[usize],
    slots: usize,
    p2: f64,
    noise: &NoiseModel,
    rng: &mut impl Rng,
) {
    let gamma = noise.amplitude_damping;
    let lambda = noise.phase_damping;
    let damping = gamma > 0.0 || lambda > 0.0;
    if slots == 0 || support.is_empty() || (p2 <= 0.0 && !damping) {
        return;
    }
    let mut flat: Vec<(Label, Complex)> = state.amps.iter().map(|(&l, &a)| (l, a)).collect();
    // A slot's accumulated class factors are applied lazily: the next
    // slot's mass pass scales each amplitude as it reads it, so the
    // steady state is one pass per slot instead of read + write. The
    // arithmetic per amplitude is identical (scale, then norm), so the
    // deferral is bit-exact versus eager application.
    let mut pend: Option<(Label, Label, [f64; 4])> = None;
    for _ in 0..slots {
        if p2 > 0.0 && rng.gen::<f64>() < p2 {
            let q = support[rng.gen_range(0..support.len())];
            // `apply_gate_noise_sparse` with `p = 1` draws its roll
            // (always below 1) and applies the sampled Pauli. Pending
            // class factors key off current labels, so flush before
            // the labels move.
            let _roll: f64 = rng.gen();
            flush_pending(&mut flat, &mut pend);
            flat_pauli(&mut flat, sample_pauli(rng), 1 << q);
        }
        if damping {
            let a = support[rng.gen_range(0..support.len())];
            let b = support[rng.gen_range(0..support.len())];
            let mb = if b == a { 0 } else { 1 << b };
            flat_damping_slot(&mut flat, 1 << a, mb, noise, rng, &mut pend);
        }
    }
    flush_pending(&mut flat, &mut pend);
    state.amps.clear();
    state.amps.extend(flat);
}

/// Applies deferred per-class amplitude factors from the previous
/// damping slot (`(ma, mb, √mass-factors)`).
fn flush_pending(flat: &mut [(Label, Complex)], pend: &mut Option<(Label, Label, [f64; 4])>) {
    if let Some((ma, mb, f)) = pend.take() {
        let class_of = |l: Label| ((l & ma != 0) as usize) | (((l & mb != 0) as usize) << 1);
        for (l, a) in flat.iter_mut() {
            *a = a.scale(f[class_of(*l)]);
        }
    }
}

/// [`apply_damping_slot_sparse`]'s mass-space fold on a flat support
/// snapshot (`mb == 0` for a single-qubit slot). Consumes any deferred
/// factors from the previous slot during its mass pass and defers its
/// own factors into `pend` instead of writing them eagerly.
fn flat_damping_slot(
    flat: &mut Vec<(Label, Complex)>,
    ma: Label,
    mb: Label,
    noise: &NoiseModel,
    rng: &mut impl Rng,
    pend: &mut Option<(Label, Label, [f64; 4])>,
) {
    let gamma = noise.amplitude_damping;
    let lambda = noise.phase_damping;
    let class_of = |l: Label| ((l & ma != 0) as usize) | (((l & mb != 0) as usize) << 1);
    let mut m = [0.0f64; 4];
    if let Some((pa, pb, pf)) = pend.take() {
        let pclass = |l: Label| ((l & pa != 0) as usize) | (((l & pb != 0) as usize) << 1);
        for (l, a) in flat.iter_mut() {
            *a = a.scale(pf[pclass(*l)]);
            m[class_of(*l)] += a.norm_sqr();
        }
    } else {
        for (l, a) in flat.iter() {
            m[class_of(*l)] += a.norm_sqr();
        }
    }
    let mut factors = [1.0f64; 4];
    let masks = [ma, mb];
    let n_ch = if mb != 0 { 2 } else { 1 };
    for (ci, &mask) in masks[..n_ch].iter().enumerate() {
        let sel = 1usize << ci;
        for is_amp in [true, false] {
            let rate = if is_amp { gamma } else { lambda };
            if rate <= 0.0 {
                continue;
            }
            let pop = if sel == 1 { m[1] + m[3] } else { m[2] + m[3] };
            let p_jump = rate * pop;
            if p_jump > 0.0 && rng.gen::<f64>() < p_jump {
                // Jump: materialize the prefix, take the exact branch,
                // then run the remaining channels unfolded.
                flat_class_factors(flat, class_of, &factors);
                flat_project_one(flat, mask);
                if is_amp {
                    for (l, _) in flat.iter_mut() {
                        *l ^= mask;
                    }
                    if lambda > 0.0 {
                        flat_phase_damping(flat, mask, lambda, rng);
                    }
                }
                for &m2 in &masks[ci + 1..n_ch] {
                    if gamma > 0.0 {
                        flat_amp_damping(flat, m2, gamma, rng);
                    }
                    if lambda > 0.0 {
                        flat_phase_damping(flat, m2, lambda, rng);
                    }
                }
                return;
            }
            let keep = 1.0 - rate;
            for i in 0..4 {
                if i & sel != 0 {
                    m[i] *= keep;
                    factors[i] *= keep;
                }
            }
            let inv = 1.0 / (m[0] + m[1] + m[2] + m[3]);
            for i in 0..4 {
                m[i] *= inv;
                factors[i] *= inv;
            }
        }
    }
    if factors != [1.0; 4] {
        *pend = Some((
            ma,
            mb,
            [
                factors[0].sqrt(),
                factors[1].sqrt(),
                factors[2].sqrt(),
                factors[3].sqrt(),
            ],
        ));
    }
}

/// [`apply_class_factors`] on a flat snapshot.
fn flat_class_factors(
    flat: &mut [(Label, Complex)],
    class_of: impl Fn(Label) -> usize,
    factors: &[f64; 4],
) {
    if *factors == [1.0; 4] {
        return;
    }
    let f = [
        factors[0].sqrt(),
        factors[1].sqrt(),
        factors[2].sqrt(),
        factors[3].sqrt(),
    ];
    for (l, a) in flat.iter_mut() {
        *a = a.scale(f[class_of(*l)]);
    }
}

/// A uniform Pauli on a flat snapshot (matching [`SparseState::apply`]
/// semantics: `Y` phases by `±i` from the prior bit value).
fn flat_pauli(flat: &mut [(Label, Complex)], pauli: Pauli, mask: Label) {
    match pauli {
        Pauli::X => {
            for (l, _) in flat.iter_mut() {
                *l ^= mask;
            }
        }
        Pauli::Y => {
            for (l, a) in flat.iter_mut() {
                *a *= if *l & mask == 0 {
                    Complex::I
                } else {
                    -Complex::I
                };
                *l ^= mask;
            }
        }
        Pauli::Z => {
            for (l, a) in flat.iter_mut() {
                if *l & mask != 0 {
                    *a = -*a;
                }
            }
        }
    }
}

/// `project_qubit(q, true)` on a flat snapshot: retain the `|1⟩` labels
/// and renormalize.
fn flat_project_one(flat: &mut Vec<(Label, Complex)>, mask: Label) {
    flat.retain(|(l, _)| *l & mask != 0);
    let n: f64 = flat.iter().map(|(_, a)| a.norm_sqr()).sum::<f64>().sqrt();
    assert!(n > 1e-300, "cannot normalize zero sparse state");
    for (_, a) in flat.iter_mut() {
        *a = a.scale(1.0 / n);
    }
}

/// [`amplitude_damping_sparse`] on a flat snapshot.
fn flat_amp_damping(flat: &mut Vec<(Label, Complex)>, mask: Label, gamma: f64, rng: &mut impl Rng) {
    let p1: f64 = flat
        .iter()
        .filter(|(l, _)| *l & mask != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum();
    let p_jump = gamma * p1;
    if p_jump > 0.0 && rng.gen::<f64>() < p_jump {
        flat_project_one(flat, mask);
        for (l, _) in flat.iter_mut() {
            *l ^= mask;
        }
    } else {
        flat_scale_and_normalize(flat, mask, (1.0 - gamma).sqrt());
    }
}

/// [`phase_damping_sparse`] on a flat snapshot.
fn flat_phase_damping(
    flat: &mut Vec<(Label, Complex)>,
    mask: Label,
    lambda: f64,
    rng: &mut impl Rng,
) {
    let p1: f64 = flat
        .iter()
        .filter(|(l, _)| *l & mask != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum();
    let p_jump = lambda * p1;
    if p_jump > 0.0 && rng.gen::<f64>() < p_jump {
        flat_project_one(flat, mask);
    } else {
        flat_scale_and_normalize(flat, mask, (1.0 - lambda).sqrt());
    }
}

/// The no-jump damping branch on a flat snapshot: scale the `|1⟩`
/// labels by `factor`, then renormalize.
fn flat_scale_and_normalize(flat: &mut [(Label, Complex)], mask: Label, factor: f64) {
    for (l, a) in flat.iter_mut() {
        if *l & mask != 0 {
            *a = a.scale(factor);
        }
    }
    let n: f64 = flat.iter().map(|(_, a)| a.norm_sqr()).sum::<f64>().sqrt();
    assert!(n > 1e-300, "cannot normalize zero sparse state");
    for (_, a) in flat.iter_mut() {
        *a = a.scale(1.0 / n);
    }
}

// ---------------------------------------------------------------------
// Readout error
// ---------------------------------------------------------------------

/// Flips each of the `n` measured bits independently with probability
/// `rate` (symmetric readout error).
pub fn apply_readout_error(label: Label, n: usize, rate: f64, rng: &mut impl Rng) -> Label {
    if rate <= 0.0 {
        return label;
    }
    let mut out = label;
    for q in 0..n {
        if rng.gen::<f64>() < rate {
            out ^= 1 << q;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noise_free_model_is_quiet() {
        let nm = NoiseModel::noise_free();
        assert!(!nm.is_noisy());
        assert_eq!(nm.gate_error(&Gate::X(0)), 0.0);
    }

    #[test]
    fn gate_error_matches_arity() {
        let nm = NoiseModel::ibm_like(0.001, 0.01, 0.02);
        assert_eq!(nm.gate_error(&Gate::H(0)), 0.001);
        assert_eq!(nm.gate_error(&Gate::Cx(0, 1)), 0.01);
    }

    #[test]
    fn builder_adds_damping() {
        let nm = NoiseModel::noise_free()
            .with_amplitude_damping(0.02)
            .with_phase_damping(0.01);
        assert!(nm.is_noisy());
        assert_eq!(nm.amplitude_damping, 0.02);
        assert_eq!(nm.phase_damping, 0.01);
    }

    #[test]
    fn noise_free_trajectory_matches_ideal() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let noisy = run_dense_trajectory(&c, &NoiseModel::noise_free(), &mut rng);
        let ideal = DenseState::from_circuit(&c);
        for i in 0..4 {
            assert!(noisy.amplitude(i).approx_eq(ideal.amplitude(i), 1e-12));
        }
    }

    #[test]
    fn heavy_depolarizing_noise_spreads_population() {
        // With p = 0.5 on every gate, many trajectories flip qubits that
        // an ideal run would leave at |0⟩.
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        let mut hit_other = false;
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = run_dense_trajectory(&c, &NoiseModel::depolarizing(0.5), &mut rng);
            let p = s.probabilities();
            if p[0b11] < 0.99 {
                hit_other = true;
                break;
            }
        }
        assert!(
            hit_other,
            "noise never perturbed the state in 50 trajectories"
        );
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        // |1⟩ under repeated damping ends in |0⟩ with probability → 1.
        let mut zeros = 0;
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = DenseState::basis_state(1, 1);
            for _ in 0..64 {
                amplitude_damping_dense(&mut s, 0, 0.1, &mut rng);
            }
            if s.probabilities()[0] > 0.99 {
                zeros += 1;
            }
        }
        assert!(zeros > 190, "only {zeros}/200 trajectories decayed");
    }

    #[test]
    fn amplitude_damping_leaves_ground_state_alone() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = DenseState::zero_state(1);
        amplitude_damping_dense(&mut s, 0, 0.5, &mut rng);
        assert!((s.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_damping_preserves_populations() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut c = Circuit::new(1);
        c.h(0);
        let mut s = DenseState::from_circuit(&c);
        phase_damping_dense(&mut s, 0, 0.3, &mut rng);
        let p = s.probabilities();
        // Populations are preserved by either trajectory branch up to
        // renormalization of the no-jump branch.
        assert!((p[0] + p[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sparse_and_dense_damping_agree_statistically() {
        let gamma = 0.25;
        let trials = 2000;
        let mut dense_decays = 0;
        let mut sparse_decays = 0;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = DenseState::basis_state(1, 1);
            amplitude_damping_dense(&mut d, 0, gamma, &mut rng);
            if d.probabilities()[0] > 0.5 {
                dense_decays += 1;
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = SparseState::basis_state(1, 1);
            amplitude_damping_sparse(&mut s, 0, gamma, &mut rng);
            if s.probability(0) > 0.5 {
                sparse_decays += 1;
            }
        }
        assert_eq!(
            dense_decays, sparse_decays,
            "backends must agree trajectory-wise"
        );
        let rate = dense_decays as f64 / trials as f64;
        assert!(
            (rate - gamma).abs() < 0.03,
            "decay rate {rate} vs γ {gamma}"
        );
    }

    #[test]
    fn depolarizing_clamps_out_of_range_rates() {
        assert_eq!(NoiseModel::depolarizing(1.5).p1, 1.0);
        assert_eq!(NoiseModel::depolarizing(-0.3).p2, 0.0);
        assert_eq!(NoiseModel::depolarizing(f64::NAN).p1, 0.0);
        assert!(!NoiseModel::depolarizing(f64::NAN).is_noisy());
    }

    #[test]
    fn ibm_like_clamps_each_rate_independently() {
        let nm = NoiseModel::ibm_like(-1.0, 2.0, f64::NAN);
        assert_eq!(nm.p1, 0.0);
        assert_eq!(nm.p2, 1.0);
        assert_eq!(nm.readout, 0.0);
    }

    #[test]
    fn amplitude_damping_builder_clamps() {
        assert_eq!(
            NoiseModel::noise_free()
                .with_amplitude_damping(7.0)
                .amplitude_damping,
            1.0
        );
        assert_eq!(
            NoiseModel::noise_free()
                .with_amplitude_damping(-0.5)
                .amplitude_damping,
            0.0
        );
        assert_eq!(
            NoiseModel::noise_free()
                .with_amplitude_damping(f64::NAN)
                .amplitude_damping,
            0.0
        );
    }

    #[test]
    fn phase_damping_builder_clamps() {
        assert_eq!(
            NoiseModel::noise_free()
                .with_phase_damping(3.0)
                .phase_damping,
            1.0
        );
        assert_eq!(
            NoiseModel::noise_free()
                .with_phase_damping(-1e-3)
                .phase_damping,
            0.0
        );
        assert_eq!(
            NoiseModel::noise_free()
                .with_phase_damping(f64::NAN)
                .phase_damping,
            0.0
        );
    }

    /// A 3-qubit superposition with asymmetric per-qubit populations.
    fn spread_state() -> SparseState {
        let mut s = SparseState::basis_state(3, 0b000);
        s.amps.clear();
        s.amps.insert(0b000, crate::complex::Complex::new(0.6, 0.1));
        s.amps
            .insert(0b011, crate::complex::Complex::new(-0.3, 0.4));
        s.amps
            .insert(0b101, crate::complex::Complex::new(0.2, -0.5));
        s.amps.insert(0b110, crate::complex::Complex::new(0.1, 0.2));
        s.normalize();
        s
    }

    #[test]
    fn folded_damping_slot_matches_unfused_channels() {
        // The fold must consume the RNG at the same points and leave the
        // same state (to rounding) as the per-channel sequence — across
        // seeds that exercise both jump and no-jump branches (rates are
        // large so ~half the seeds jump somewhere).
        let noise = NoiseModel::noise_free()
            .with_amplitude_damping(0.2)
            .with_phase_damping(0.15);
        let damping_only = noise;
        for qubits in [&[1][..], &[0, 2][..], &[2, 1][..]] {
            for seed in 0..300 {
                let mut fused = spread_state();
                let mut unfused = spread_state();
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut rng_b = StdRng::seed_from_u64(seed);
                apply_damping_slot_sparse(&mut fused, qubits, &noise, &mut rng_a);
                apply_gate_noise_sparse(&mut unfused, qubits, 0.0, &damping_only, &mut rng_b);
                assert_eq!(
                    rng_a.gen::<u64>(),
                    rng_b.gen::<u64>(),
                    "RNG streams diverged (qubits {qubits:?}, seed {seed})"
                );
                for l in 0..8u128 {
                    assert!(
                        fused.amplitude(l).approx_eq(unfused.amplitude(l), 1e-12),
                        "amplitude {l:#b} diverged (qubits {qubits:?}, seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn folded_damping_slot_handles_single_channel_models() {
        for noise in [
            NoiseModel::noise_free().with_amplitude_damping(0.3),
            NoiseModel::noise_free().with_phase_damping(0.3),
        ] {
            for seed in 0..100 {
                let mut fused = spread_state();
                let mut unfused = spread_state();
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut rng_b = StdRng::seed_from_u64(seed);
                apply_damping_slot_sparse(&mut fused, &[0, 1], &noise, &mut rng_a);
                apply_gate_noise_sparse(&mut unfused, &[0, 1], 0.0, &noise, &mut rng_b);
                assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
                for l in 0..8u128 {
                    assert!(fused.amplitude(l).approx_eq(unfused.amplitude(l), 1e-12));
                }
            }
        }
    }

    #[test]
    fn fused_gate_noise_matches_unfused_with_pauli_rolls() {
        let noise = NoiseModel::ibm_like(0.4, 0.0, 0.0)
            .with_amplitude_damping(0.1)
            .with_phase_damping(0.1);
        for seed in 0..200 {
            let mut fused = spread_state();
            let mut unfused = spread_state();
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            apply_gate_noise_sparse_fused(&mut fused, &[0, 1, 2], noise.p1, &noise, &mut rng_a);
            apply_gate_noise_sparse(&mut unfused, &[0, 1, 2], noise.p1, &noise, &mut rng_b);
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
            for l in 0..8u128 {
                assert!(fused.amplitude(l).approx_eq(unfused.amplitude(l), 1e-12));
            }
        }
    }

    #[test]
    fn folded_damping_skips_rolls_for_unpopulated_qubits() {
        // A qubit with zero |1⟩ population must not consume a jump roll
        // (the unfused path short-circuits on `p_jump > 0`).
        let noise = NoiseModel::noise_free().with_amplitude_damping(0.5);
        let mut s = SparseState::basis_state(2, 0b00);
        let mut rng = StdRng::seed_from_u64(7);
        let before = {
            let mut probe = StdRng::seed_from_u64(7);
            probe.gen::<u64>()
        };
        apply_damping_slot_sparse(&mut s, &[0, 1], &noise, &mut rng);
        assert_eq!(rng.gen::<u64>(), before, "rolls consumed on |00⟩");
        assert!((s.probability(0b00) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flat_slot_loop_matches_unfused_slot_loop() {
        // The flat-snapshot slot runner must consume the RNG at the
        // same points and leave the same state (to rounding) as the
        // per-slot unfused sequence: a p₂ roll applying a uniform Pauli
        // on a random support qubit, then the damping slot on a random
        // operand pair. Rates are large so jumps and Pauli events both
        // fire across the seed sweep.
        let noise = NoiseModel::ibm_like(0.0, 0.3, 0.0)
            .with_amplitude_damping(0.05)
            .with_phase_damping(0.04);
        let support = [0usize, 1, 2];
        let slots = 12;
        let noise_free = NoiseModel::noise_free();
        for seed in 0..300 {
            let mut fused = spread_state();
            let mut unfused = spread_state();
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            run_noise_slots_sparse(&mut fused, &support, slots, noise.p2, &noise, &mut rng_a);
            for _ in 0..slots {
                if noise.p2 > 0.0 && rng_b.gen::<f64>() < noise.p2 {
                    let q = support[rng_b.gen_range(0..support.len())];
                    apply_gate_noise_sparse(&mut unfused, &[q], 1.0, &noise_free, &mut rng_b);
                }
                let a = support[rng_b.gen_range(0..support.len())];
                let b = support[rng_b.gen_range(0..support.len())];
                let pair = [a, b];
                let slot: &[usize] = if a == b { &pair[..1] } else { &pair[..] };
                apply_damping_slot_sparse(&mut unfused, slot, &noise, &mut rng_b);
            }
            assert_eq!(
                rng_a.gen::<u64>(),
                rng_b.gen::<u64>(),
                "RNG streams diverged (seed {seed})"
            );
            for l in 0..8u128 {
                assert!(
                    fused.amplitude(l).approx_eq(unfused.amplitude(l), 1e-9),
                    "amplitude {l:#b} diverged (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn flat_slot_loop_is_quiet_without_channels() {
        // With p₂ and both damping rates zero the unfused loop body
        // does nothing and draws nothing; the flat runner must match.
        let noise = NoiseModel::noise_free();
        let mut s = spread_state();
        // Clone (not a fresh `spread_state()`): `normalize` sums in map
        // order, so two instances differ at last ulp.
        let reference = s.clone();
        let mut rng = StdRng::seed_from_u64(3);
        let before = {
            let mut probe = StdRng::seed_from_u64(3);
            probe.gen::<u64>()
        };
        run_noise_slots_sparse(&mut s, &[0, 1, 2], 50, noise.p2, &noise, &mut rng);
        assert_eq!(rng.gen::<u64>(), before, "draws consumed with no channels");
        for l in 0..8u128 {
            assert!(s.amplitude(l).approx_eq(reference.amplitude(l), 0.0));
        }
    }

    #[test]
    fn readout_error_flips_bits() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut flipped = 0;
        for _ in 0..1000 {
            if apply_readout_error(0, 1, 0.3, &mut rng) == 1 {
                flipped += 1;
            }
        }
        assert!((flipped as f64 / 1000.0 - 0.3).abs() < 0.05);
        assert_eq!(apply_readout_error(0b101, 3, 0.0, &mut rng), 0b101);
    }
}
