//! OpenQASM 3 export.
//!
//! Rasengan's deployability story ends with circuits running on IBM
//! hardware; this module serializes any [`Circuit`] to OpenQASM 3 text
//! accepted by Qiskit's `qasm3` importer, so synthesized transition
//! circuits can be shipped to real backends. Multi-controlled gates are
//! lowered with [`crate::decompose`] first (QASM 3 has no native
//! `mcphase`).

use crate::circuit::Circuit;
use crate::decompose::decompose_circuit;
use crate::gate::Gate;
use std::fmt::Write as _;

/// Serializes a circuit to OpenQASM 3.
///
/// `MCP`/`MCX`/`Swap`/`Rzz`/`Cp`/`Cz` are decomposed to the
/// `{1Q, cx}` native set before printing; the header declares one
/// quantum and one classical register and ends with a full measurement.
///
/// # Example
///
/// ```
/// use rasengan_qsim::{qasm::to_qasm3, Circuit};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let text = to_qasm3(&c);
/// assert!(text.contains("OPENQASM 3.0;"));
/// assert!(text.contains("h q[0];"));
/// assert!(text.contains("cx q[0], q[1];"));
/// ```
pub fn to_qasm3(circuit: &Circuit) -> String {
    let native = decompose_circuit(circuit);
    let n = native.n_qubits();
    let mut out = String::new();
    out.push_str("OPENQASM 3.0;\n");
    out.push_str("include \"stdgates.inc\";\n");
    let _ = writeln!(out, "qubit[{n}] q;");
    let _ = writeln!(out, "bit[{n}] c;");
    for g in native.gates() {
        let line = match g {
            Gate::X(q) => format!("x q[{q}];"),
            Gate::Y(q) => format!("y q[{q}];"),
            Gate::Z(q) => format!("z q[{q}];"),
            Gate::H(q) => format!("h q[{q}];"),
            Gate::Rx(q, t) => format!("rx({t}) q[{q}];"),
            Gate::Ry(q, t) => format!("ry({t}) q[{q}];"),
            Gate::Rz(q, t) => format!("rz({t}) q[{q}];"),
            Gate::Phase(q, t) => format!("p({t}) q[{q}];"),
            Gate::Cx(a, b) => format!("cx q[{a}], q[{b}];"),
            // Everything else is removed by decomposition; keep the
            // match exhaustive for compiler-enforced coverage.
            Gate::Cz(a, b) => format!("cz q[{a}], q[{b}];"),
            Gate::Swap(a, b) => format!("swap q[{a}], q[{b}];"),
            Gate::Rzz(..) | Gate::Cp(..) | Gate::Mcp { .. } | Gate::Mcx { .. } => {
                unreachable!("decompose_circuit lowers composite gates")
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("c = measure q;\n");
    out
}

/// Statistics of an exported program (for report tables).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QasmStats {
    /// Number of gate statements.
    pub gates: usize,
    /// Number of `cx` statements.
    pub cx_count: usize,
    /// Declared register width.
    pub qubits: usize,
}

/// Parses the statistics back out of a QASM string produced by
/// [`to_qasm3`] (used in round-trip tests and reports).
pub fn qasm_stats(text: &str) -> QasmStats {
    let mut gates = 0;
    let mut cx_count = 0;
    let mut qubits = 0;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("qubit[") {
            if let Some(end) = rest.find(']') {
                qubits = rest[..end].parse().unwrap_or(0);
            }
        } else if line.starts_with("cx ") {
            gates += 1;
            cx_count += 1;
        } else if line.ends_with(';')
            && !line.starts_with("OPENQASM")
            && !line.starts_with("include")
            && !line.starts_with("bit[")
            && !line.starts_with("c =")
            && !line.starts_with("qubit[")
        {
            gates += 1;
        }
    }
    QasmStats {
        gates,
        cx_count,
        qubits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::tau_circuit;

    #[test]
    fn header_and_measurement_present() {
        let mut c = Circuit::new(3);
        c.x(0).cx(0, 1);
        let text = to_qasm3(&c);
        assert!(text.starts_with("OPENQASM 3.0;\n"));
        assert!(text.contains("qubit[3] q;"));
        assert!(text.contains("bit[3] c;"));
        assert!(text.trim_end().ends_with("c = measure q;"));
    }

    #[test]
    fn composite_gates_are_lowered() {
        let mut c = Circuit::new(4);
        c.mcp(vec![0, 1, 2], 3, 0.5).rzz(0, 1, 0.3);
        let text = to_qasm3(&c);
        assert!(!text.contains("mcp"));
        assert!(!text.contains("rzz"));
        assert!(text.contains("cx q["));
    }

    #[test]
    fn tau_circuit_exports() {
        let c = tau_circuit(&[1, -1, 0, 1], 0.7, 4);
        let text = to_qasm3(&c);
        let stats = qasm_stats(&text);
        assert_eq!(stats.qubits, 4);
        assert!(stats.cx_count >= 2, "τ export must contain CX gates");
        assert!(stats.gates > stats.cx_count);
    }

    #[test]
    fn stats_roundtrip_counts_cx() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).cx(1, 0).rz(1, 0.2);
        let stats = qasm_stats(&to_qasm3(&c));
        assert_eq!(stats.cx_count, 2);
        assert_eq!(stats.gates, 4);
    }

    #[test]
    fn rotation_angles_serialized_fully() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.123456789012345);
        let text = to_qasm3(&c);
        assert!(text.contains("rz(0.123456789012345) q[0];"));
    }
}
