//! Lockstep batched-trajectory execution: K trajectories per kernel
//! sweep.
//!
//! [`DenseBatch`] stores K independent trajectory states
//! structure-of-arrays style, with the real and imaginary planes split
//! per row: basis row `i` occupies the `2K` flat `f64`s at
//! `i * 2K ..`, laid out as K contiguous real parts then K contiguous
//! imaginary parts. Splitting the planes matters: complex multiplies
//! over an interleaved `(re, im)` array need lane shuffles the
//! autovectorizer won't emit under the baseline target, while the
//! planar row turns every kernel into pure elementwise `f64` loops.
//! Every fused kernel from [`crate::exec`] has a batched variant here
//! whose *per-lane arithmetic is the exact operation sequence of the
//! single-trajectory kernel in the same amplitude-index order* — sums
//! accumulate row-by-row per lane, diagonal factors multiply
//! term-by-term per element, and the planar expansions spell out the
//! same `re·re − im·im` / `re·im + im·re` products [`Complex`]'s
//! operators perform — so each lane's state is bit-identical to what a
//! [`DenseTrajectoryRunner`] would produce for that lane's RNG stream.
//!
//! Noise stays lockstep because PR 1's per-shot SplitMix64 streams
//! ([`derive_seed`]) make every trajectory's draw sequence independent
//! of execution order: the batched noise walk
//! ([`crate::noise::apply_gate_noise_batch`]) iterates qubits outer /
//! lanes inner, giving each lane's RNG the same draw points the
//! sequential path has, while per-lane channel applications (Pauli
//! kicks, damping jumps and rescalings) touch only that lane's stripe.
//!
//! The inner lane loops are contiguous and fixed-stride, which is what
//! the autovectorizer needs; the 2×2 kernel additionally carries a
//! manual 4-wide unroll for the case the compiler won't vectorize the
//! short lane trip count (verified via the fusion bench harness, not
//! asm inspection).

use crate::complex::Complex;
use crate::dense::DenseState;
use crate::exec::{
    apply_perm_steps, channel_activity, DenseTrajectoryRunner, DiagTerm, GateOp, PermRun, PlanStep,
    Program,
};
use crate::noise::{self, NoiseModel};
use crate::parallel::{derive_seed, par_chunks_aligned, par_map, resolve_threads, split_ranges};
use crate::sparse::Label;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Minimum flat `f64` count before batched kernels fan out to threads
/// (the batch already amortizes per-row work over K lanes, so the same
/// floor as the single-trajectory kernels applies to the flat buffer).
const PAR_MIN_AMPS: usize = 1 << 14;

/// Maximum automatic batch width (`K_max`): wide enough to fill a
/// 512-bit vector lane with `f64` pairs twice over, small enough that
/// K working sets stay cache-resident at bench scales.
pub const MAX_LANES: usize = 8;

/// Resolves a batch width: explicit request → `RASENGAN_BATCH`
/// environment variable → auto (`min(MAX_LANES, shots)`), clamped into
/// `[1, shots]` so a wide request on a tiny run never pads lanes.
pub fn resolve_lanes(requested: Option<usize>, shots: usize) -> usize {
    let env = || {
        std::env::var("RASENGAN_BATCH")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    };
    let k = requested
        .or_else(env)
        .unwrap_or_else(|| MAX_LANES.min(shots.max(1)));
    k.clamp(1, shots.max(1))
}

/// K dense trajectory states in row-planar structure-of-arrays layout:
/// the flat `f64` buffer holds `2^n · 2·lanes` values, basis row `i`
/// at `i * 2·lanes` as `lanes` real parts followed by `lanes`
/// imaginary parts. Lane `l` of row `i` is
/// `(amps[i·2K + l], amps[i·2K + K + l])`.
#[derive(Clone, Debug)]
pub struct DenseBatch {
    n_qubits: usize,
    lanes: usize,
    amps: Vec<f64>,
}

/// Multiplies one planar row block (`K` reals then `K` imaginaries) by
/// a row-constant complex factor. Per lane this is exactly
/// `a *= f` under [`Complex`]'s `Mul`:
/// `(a.re·f.re − a.im·f.im, a.re·f.im + a.im·f.re)`.
#[inline(always)]
fn mul_row(row: &mut [f64], k: usize, f: Complex) {
    let (re, im) = row.split_at_mut(k);
    for l in 0..k {
        let (a, b) = (re[l], im[l]);
        re[l] = a * f.re - b * f.im;
        im[l] = a * f.im + b * f.re;
    }
}

/// The 2×2 update across a whole K-lane planar row pair, monomorphized
/// on K so the lane loops have a constant trip count and the planar
/// expansion is pure elementwise `f64` arithmetic. Per lane this spells
/// out `m[0]*a0 + m[1]*a1` / `m[2]*a0 + m[3]*a1` exactly as
/// [`Complex`]'s operators evaluate them (each product
/// `(re·re − im·im, re·im + im·re)`, then a componentwise add), so only
/// independent lanes are reordered and results stay bitwise identical.
#[inline(always)]
fn lane_pair_fixed<const K: usize>(amps: &mut [f64], i0: usize, j0: usize, m: &[Complex; 4]) {
    let a0re: [f64; K] = amps[i0..i0 + K].try_into().unwrap();
    let a0im: [f64; K] = amps[i0 + K..i0 + 2 * K].try_into().unwrap();
    let a1re: [f64; K] = amps[j0..j0 + K].try_into().unwrap();
    let a1im: [f64; K] = amps[j0 + K..j0 + 2 * K].try_into().unwrap();
    for l in 0..K {
        amps[i0 + l] =
            (m[0].re * a0re[l] - m[0].im * a0im[l]) + (m[1].re * a1re[l] - m[1].im * a1im[l]);
    }
    for l in 0..K {
        amps[i0 + K + l] =
            (m[0].re * a0im[l] + m[0].im * a0re[l]) + (m[1].re * a1im[l] + m[1].im * a1re[l]);
    }
    for l in 0..K {
        amps[j0 + l] =
            (m[2].re * a0re[l] - m[2].im * a0im[l]) + (m[3].re * a1re[l] - m[3].im * a1im[l]);
    }
    for l in 0..K {
        amps[j0 + K + l] =
            (m[2].re * a0im[l] + m[2].im * a0re[l]) + (m[3].re * a1im[l] + m[3].im * a1re[l]);
    }
}

/// The 1-qubit sweep body with the lane count lifted to a const
/// generic: every row pair in `chunk` gets [`lane_pair_fixed`].
#[inline(always)]
fn sweep_1q_fixed<const K: usize>(chunk: &mut [f64], mask: usize, m: &[Complex; 4]) {
    let w = 2 * K;
    let rows = chunk.len() / w;
    for r in 0..rows {
        if r & mask == 0 {
            lane_pair_fixed::<K>(chunk, r * w, (r | mask) * w, m);
        }
    }
}

/// True when the AVX2 fast paths apply: x86-64 with AVX2 available at
/// runtime and a lane count that fills whole 4-wide `f64` vectors. The
/// baseline build targets SSE2, so without the runtime-dispatched
/// kernels the planar lane loops autovectorize at most 2-wide.
#[inline]
fn avx2_ok(k: usize) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        k.is_multiple_of(4) && std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = k;
        false
    }
}

/// [`mul_row`] with the AVX2 path selected by a hoisted capability flag
/// (checked once per kernel invocation, not once per row).
#[inline(always)]
fn mul_row_dispatch(row: &mut [f64], k: usize, f: Complex, avx: bool) {
    #[cfg(target_arch = "x86_64")]
    if avx {
        // SAFETY: `avx` is only true after runtime AVX2 detection, and
        // it implies `k % 4 == 0` so every vector load is in bounds.
        unsafe { simd::mul_row_avx2(row, k, f) };
        return;
    }
    let _ = avx;
    mul_row(row, k, f);
}

/// AVX2 widenings of the planar row kernels, runtime-dispatched so the
/// baseline (SSE2) build still runs everywhere. Every vector op is an
/// elementwise IEEE mul/add/sub (`vmulpd`/`vaddpd`/`vsubpd`) over the
/// same operands in the same order as the scalar expansions — no FMA
/// contraction, no reassociation — so each lane's results are bitwise
/// identical to the scalar path and to the single-trajectory kernels.
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::Complex;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// [`super::mul_row`] over whole 4-lane vectors.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime and that
    /// `k % 4 == 0` with `row.len() == 2 * k`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_row_avx2(row: &mut [f64], k: usize, f: Complex) {
        debug_assert!(k.is_multiple_of(4) && row.len() == 2 * k);
        let fre = _mm256_set1_pd(f.re);
        let fim = _mm256_set1_pd(f.im);
        let p = row.as_mut_ptr();
        for l in (0..k).step_by(4) {
            let re = _mm256_loadu_pd(p.add(l));
            let im = _mm256_loadu_pd(p.add(k + l));
            let nre = _mm256_sub_pd(_mm256_mul_pd(re, fre), _mm256_mul_pd(im, fim));
            let nim = _mm256_add_pd(_mm256_mul_pd(re, fim), _mm256_mul_pd(im, fre));
            _mm256_storeu_pd(p.add(l), nre);
            _mm256_storeu_pd(p.add(k + l), nim);
        }
    }

    /// The 1-qubit sweep ([`super::sweep_1q_fixed`]) over whole 4-lane
    /// vectors: each `(i, i|mask)` planar row pair gets the 2×2 update
    /// with the matrix entries broadcast once per sweep.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime and that
    /// `k % 4 == 0` with `chunk.len()` a multiple of `2 * k`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sweep_1q_avx2(chunk: &mut [f64], mask: usize, k: usize, m: &[Complex; 4]) {
        debug_assert!(k.is_multiple_of(4) && chunk.len().is_multiple_of(2 * k));
        let w = 2 * k;
        let rows = chunk.len() / w;
        let m0re = _mm256_set1_pd(m[0].re);
        let m0im = _mm256_set1_pd(m[0].im);
        let m1re = _mm256_set1_pd(m[1].re);
        let m1im = _mm256_set1_pd(m[1].im);
        let m2re = _mm256_set1_pd(m[2].re);
        let m2im = _mm256_set1_pd(m[2].im);
        let m3re = _mm256_set1_pd(m[3].re);
        let m3im = _mm256_set1_pd(m[3].im);
        let p = chunk.as_mut_ptr();
        for r in 0..rows {
            if r & mask != 0 {
                continue;
            }
            let i0 = r * w;
            let j0 = (r | mask) * w;
            for l in (0..k).step_by(4) {
                let a0re = _mm256_loadu_pd(p.add(i0 + l));
                let a0im = _mm256_loadu_pd(p.add(i0 + k + l));
                let a1re = _mm256_loadu_pd(p.add(j0 + l));
                let a1im = _mm256_loadu_pd(p.add(j0 + k + l));
                let b0re = _mm256_add_pd(
                    _mm256_sub_pd(_mm256_mul_pd(m0re, a0re), _mm256_mul_pd(m0im, a0im)),
                    _mm256_sub_pd(_mm256_mul_pd(m1re, a1re), _mm256_mul_pd(m1im, a1im)),
                );
                let b0im = _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(m0re, a0im), _mm256_mul_pd(m0im, a0re)),
                    _mm256_add_pd(_mm256_mul_pd(m1re, a1im), _mm256_mul_pd(m1im, a1re)),
                );
                let b1re = _mm256_add_pd(
                    _mm256_sub_pd(_mm256_mul_pd(m2re, a0re), _mm256_mul_pd(m2im, a0im)),
                    _mm256_sub_pd(_mm256_mul_pd(m3re, a1re), _mm256_mul_pd(m3im, a1im)),
                );
                let b1im = _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(m2re, a0im), _mm256_mul_pd(m2im, a0re)),
                    _mm256_add_pd(_mm256_mul_pd(m3re, a1im), _mm256_mul_pd(m3im, a1re)),
                );
                _mm256_storeu_pd(p.add(i0 + l), b0re);
                _mm256_storeu_pd(p.add(i0 + k + l), b0im);
                _mm256_storeu_pd(p.add(j0 + l), b1re);
                _mm256_storeu_pd(p.add(j0 + k + l), b1im);
            }
        }
    }
}

impl DenseBatch {
    /// Creates `lanes` copies of `|0…0⟩` on `n_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > DenseState::MAX_QUBITS` or `lanes == 0`.
    pub fn zero_state(n_qubits: usize, lanes: usize) -> Self {
        assert!(
            n_qubits <= DenseState::MAX_QUBITS,
            "dense simulation beyond {} qubits is not supported",
            DenseState::MAX_QUBITS
        );
        assert!(lanes > 0, "a batch needs at least one lane");
        let mut amps = vec![0.0f64; (1usize << n_qubits) * 2 * lanes];
        // Row 0's real plane: every lane starts at amplitude 1.
        amps[..lanes].fill(1.0);
        DenseBatch {
            n_qubits,
            lanes,
            amps,
        }
    }

    /// Number of qubits per lane.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of lanes (trajectories) in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Basis rows per lane (`2^n`).
    fn dim(&self) -> usize {
        self.amps.len() / (2 * self.lanes)
    }

    /// Resets every lane to `|0…0⟩` without reallocating.
    pub fn reset_zero(&mut self) {
        self.amps.fill(0.0);
        self.amps[..self.lanes].fill(1.0);
    }

    /// Lane `l` of row `i` as a [`Complex`] (the per-lane ops go
    /// through this, so their arithmetic is literally [`Complex`]'s).
    #[inline(always)]
    fn get_lane(&self, i: usize, lane: usize) -> Complex {
        let w = 2 * self.lanes;
        Complex::new(
            self.amps[i * w + lane],
            self.amps[i * w + self.lanes + lane],
        )
    }

    #[inline(always)]
    fn set_lane(&mut self, i: usize, lane: usize, a: Complex) {
        let w = 2 * self.lanes;
        self.amps[i * w + lane] = a.re;
        self.amps[i * w + self.lanes + lane] = a.im;
    }

    /// Copies one lane out as a standalone [`DenseState`] (tests and
    /// debugging; the hot paths sample lanes in place).
    pub fn lane_state(&self, lane: usize) -> DenseState {
        let amps = (0..self.dim()).map(|i| self.get_lane(i, lane)).collect();
        DenseState::from_amplitudes(self.n_qubits, amps)
    }

    // -- all-lane kernels (one sweep updates every trajectory) --------

    pub(crate) fn apply_1q(&mut self, q: usize, m: [Complex; 4]) {
        let mask = 1usize << q;
        let k = self.lanes;
        let w = 2 * k;
        // Chunks are aligned to whole 2^(q+1)-row blocks, so every
        // (i, i|mask) row pair lives inside one chunk. Vector-filling
        // lane widths on AVX2 hardware take the runtime-dispatched wide
        // sweep; the common widths otherwise get monomorphized sweeps
        // (constant trip counts over planar rows — pure elementwise f64
        // loops the autovectorizer handles); anything else takes the
        // generic per-lane loop.
        let avx = avx2_ok(k);
        par_chunks_aligned(&mut self.amps, (mask << 1) * w, PAR_MIN_AMPS, |_, chunk| {
            #[cfg(target_arch = "x86_64")]
            if avx {
                // SAFETY: `avx` is only true after runtime AVX2
                // detection and implies `k % 4 == 0`.
                unsafe { simd::sweep_1q_avx2(chunk, mask, k, &m) };
                return;
            }
            let _ = avx;
            match k {
                8 => sweep_1q_fixed::<8>(chunk, mask, &m),
                4 => sweep_1q_fixed::<4>(chunk, mask, &m),
                2 => sweep_1q_fixed::<2>(chunk, mask, &m),
                1 => sweep_1q_fixed::<1>(chunk, mask, &m),
                _ => {
                    let rows = chunk.len() / w;
                    for r in 0..rows {
                        if r & mask == 0 {
                            let i0 = r * w;
                            let j0 = (r | mask) * w;
                            for l in 0..k {
                                let a0 = Complex::new(chunk[i0 + l], chunk[i0 + k + l]);
                                let a1 = Complex::new(chunk[j0 + l], chunk[j0 + k + l]);
                                let b0 = m[0] * a0 + m[1] * a1;
                                let b1 = m[2] * a0 + m[3] * a1;
                                chunk[i0 + l] = b0.re;
                                chunk[i0 + k + l] = b0.im;
                                chunk[j0 + l] = b1.re;
                                chunk[j0 + k + l] = b1.im;
                            }
                        }
                    }
                }
            }
        });
    }

    pub(crate) fn apply_phase_pair(&mut self, q: usize, p0: Complex, p1: Complex) {
        let mask = 1usize << q;
        let k = self.lanes;
        let w = 2 * k;
        let avx = avx2_ok(k);
        par_chunks_aligned(&mut self.amps, w, PAR_MIN_AMPS, |base, chunk| {
            let row0 = base / w;
            for (r, row) in chunk.chunks_exact_mut(w).enumerate() {
                let f = if (row0 + r) & mask == 0 { p0 } else { p1 };
                mul_row_dispatch(row, k, f, avx);
            }
        });
    }

    pub(crate) fn apply_controlled_x_masks(&mut self, cmask: usize, tmask: usize) {
        let k = self.lanes;
        let w = 2 * k;
        par_chunks_aligned(
            &mut self.amps,
            (tmask << 1) * w,
            PAR_MIN_AMPS,
            |base, chunk| {
                let row0 = base / w;
                let rows = chunk.len() / w;
                for r in 0..rows {
                    let g = row0 + r;
                    if g & cmask == cmask && g & tmask == 0 {
                        let (i0, j0) = (r * w, (r | tmask) * w);
                        for x in 0..w {
                            chunk.swap(i0 + x, j0 + x);
                        }
                    }
                }
            },
        );
    }

    pub(crate) fn apply_controlled_phase_masks(&mut self, mask: usize, phase: Complex) {
        let k = self.lanes;
        let w = 2 * k;
        let avx = avx2_ok(k);
        par_chunks_aligned(&mut self.amps, w, PAR_MIN_AMPS, |base, chunk| {
            let row0 = base / w;
            for (r, row) in chunk.chunks_exact_mut(w).enumerate() {
                if (row0 + r) & mask == mask {
                    mul_row_dispatch(row, k, phase, avx);
                }
            }
        });
    }

    pub(crate) fn apply_swap_masks(&mut self, ma: usize, mb: usize) {
        let k = self.lanes;
        let w = 2 * k;
        let unit = (ma.max(mb) << 1) * w;
        par_chunks_aligned(&mut self.amps, unit, PAR_MIN_AMPS, |base, chunk| {
            let row0 = base / w;
            let rows = chunk.len() / w;
            for r in 0..rows {
                let g = row0 + r;
                if g & ma != 0 && g & mb == 0 {
                    let (i0, j0) = (r * w, (r ^ ma ^ mb) * w);
                    for x in 0..w {
                        chunk.swap(i0 + x, j0 + x);
                    }
                }
            }
        });
    }

    pub(crate) fn apply_rzz_masks(&mut self, ma: usize, mb: usize, minus: Complex, plus: Complex) {
        let k = self.lanes;
        let w = 2 * k;
        let avx = avx2_ok(k);
        par_chunks_aligned(&mut self.amps, w, PAR_MIN_AMPS, |base, chunk| {
            let row0 = base / w;
            for (r, row) in chunk.chunks_exact_mut(w).enumerate() {
                let g = row0 + r;
                let parity = ((g & ma != 0) as u8) ^ ((g & mb != 0) as u8);
                let f = if parity == 0 { minus } else { plus };
                mul_row_dispatch(row, k, f, avx);
            }
        });
    }

    /// Batched fused-diagonal kernel. Factors multiply term-by-term per
    /// element — the same per-amplitude product sequence as the
    /// single-trajectory kernel — with each term's row-constant factor
    /// hoisted out of the lane loop.
    pub(crate) fn apply_diagonal(&mut self, terms: &[DiagTerm]) {
        let k = self.lanes;
        let w = 2 * k;
        let avx = avx2_ok(k);
        par_chunks_aligned(&mut self.amps, w, PAR_MIN_AMPS, |base, chunk| {
            let row0 = base / w;
            for (r, row) in chunk.chunks_exact_mut(w).enumerate() {
                let label = (row0 + r) as Label;
                for t in terms {
                    match *t {
                        DiagTerm::MaskPhase { mask, phase } => {
                            if label & mask == mask {
                                mul_row_dispatch(row, k, phase, avx);
                            }
                        }
                        DiagTerm::BitPair { mask, m0, m1 } => {
                            let f = if label & mask == 0 { m0 } else { m1 };
                            mul_row_dispatch(row, k, f, avx);
                        }
                        DiagTerm::ParityPair { ma, mb, m0, m1 } => {
                            let parity = ((label & ma != 0) as u8) ^ ((label & mb != 0) as u8);
                            let f = if parity == 0 { m0 } else { m1 };
                            mul_row_dispatch(row, k, f, avx);
                        }
                    }
                }
            }
        });
    }

    /// Batched fused single-qubit run: one matrix pass per touched
    /// qubit, all lanes per pass.
    pub(crate) fn apply_one_q_run(&mut self, matrices: &[(usize, [Complex; 4])]) {
        for &(q, m) in matrices {
            self.apply_1q(q, m);
        }
    }

    /// Batched permutation run: one whole-row scatter through the
    /// precomputed table when one exists (a bijection, so every target
    /// row is written), else the per-lane step walk.
    pub(crate) fn apply_perm_run(&mut self, run: &PermRun, scratch: &mut Vec<f64>) {
        let k = self.lanes;
        let w = 2 * k;
        if run.index.is_empty() {
            scratch.clear();
            scratch.resize(self.amps.len(), 0.0);
            for (i, row) in self.amps.chunks_exact(w).enumerate() {
                for l in 0..k {
                    let a = Complex::new(row[l], row[k + l]);
                    let (l2, amp) = apply_perm_steps(&run.steps, i as Label, a);
                    let dst = l2 as usize * w;
                    scratch[dst + l] = amp.re;
                    scratch[dst + k + l] = amp.im;
                }
            }
            std::mem::swap(&mut self.amps, scratch);
            return;
        }
        scratch.resize(self.amps.len(), 0.0);
        if run.factors.is_empty() {
            for (i, row) in self.amps.chunks_exact(w).enumerate() {
                let dst = run.index[i] as usize * w;
                scratch[dst..dst + w].copy_from_slice(row);
            }
        } else {
            for (i, row) in self.amps.chunks_exact(w).enumerate() {
                // Per lane: `f * a` exactly as Complex::mul evaluates
                // it (self = f, rhs = a), expanded planar.
                let f = run.factors[i];
                let dst = run.index[i] as usize * w;
                let (sre, sim) = scratch[dst..dst + w].split_at_mut(k);
                let (are, aim) = row.split_at(k);
                for l in 0..k {
                    sre[l] = f.re * are[l] - f.im * aim[l];
                    sim[l] = f.re * aim[l] + f.im * are[l];
                }
            }
        }
        std::mem::swap(&mut self.amps, scratch);
    }

    // -- per-lane operations (noise channels touch one trajectory) ----

    pub(crate) fn apply_1q_lane(&mut self, lane: usize, q: usize, m: [Complex; 4]) {
        let mask = 1usize << q;
        for i in 0..self.dim() {
            if i & mask == 0 {
                let j = i | mask;
                let a0 = self.get_lane(i, lane);
                let a1 = self.get_lane(j, lane);
                self.set_lane(i, lane, m[0] * a0 + m[1] * a1);
                self.set_lane(j, lane, m[2] * a0 + m[3] * a1);
            }
        }
    }

    pub(crate) fn apply_phase_pair_lane(
        &mut self,
        lane: usize,
        q: usize,
        p0: Complex,
        p1: Complex,
    ) {
        let mask = 1usize << q;
        for i in 0..self.dim() {
            let mut a = self.get_lane(i, lane);
            a *= if i & mask == 0 { p0 } else { p1 };
            self.set_lane(i, lane, a);
        }
    }

    /// `P(qubit q = 1)` for one lane, accumulated in row order exactly
    /// like the single-trajectory population sum.
    pub(crate) fn population_lane(&self, lane: usize, q: usize) -> f64 {
        let mask = 1usize << q;
        let mut acc = 0.0f64;
        for i in 0..self.dim() {
            if i & mask != 0 {
                acc += self.get_lane(i, lane).norm_sqr();
            }
        }
        acc
    }

    /// Scales one lane's `|1⟩_q` amplitudes by `factor` (the no-jump
    /// damping Kraus branch).
    pub(crate) fn scale_one_lane(&mut self, lane: usize, q: usize, factor: f64) {
        let mask = 1usize << q;
        for i in 0..self.dim() {
            if i & mask != 0 {
                let a = self.get_lane(i, lane);
                self.set_lane(i, lane, a.scale(factor));
            }
        }
    }

    /// Renormalizes one lane; the norm accumulates over every row in
    /// index order — the same add sequence as [`DenseState::normalize`].
    ///
    /// # Panics
    ///
    /// Panics if the lane is (numerically) zero.
    pub(crate) fn normalize_lane(&mut self, lane: usize) {
        let mut norm = 0.0f64;
        for i in 0..self.dim() {
            norm += self.get_lane(i, lane).norm_sqr();
        }
        let n = norm.sqrt();
        assert!(n > 1e-300, "cannot normalize zero state");
        for i in 0..self.dim() {
            let a = self.get_lane(i, lane);
            self.set_lane(i, lane, a.scale(1.0 / n));
        }
    }

    /// Projects one lane onto qubit `q` being `keep_one`, then
    /// renormalizes (a damping jump).
    pub(crate) fn project_lane(&mut self, lane: usize, q: usize, keep_one: bool) {
        let mask = 1usize << q;
        for i in 0..self.dim() {
            if ((i & mask) != 0) != keep_one {
                self.set_lane(i, lane, Complex::ZERO);
            }
        }
        self.normalize_lane(lane);
    }

    /// Draws one measurement outcome from one lane — the arithmetic of
    /// [`DenseState::sample_one`] restricted to the lane's stripe: norm
    /// and prefix sums in row order, one RNG draw, and a fallback
    /// clamped to the last supported row (never an out-of-support
    /// label, even for degenerate norms).
    pub fn sample_one_lane(&self, lane: usize, rng: &mut impl Rng) -> u64 {
        let mut norm = 0.0f64;
        let mut last_support = 0usize;
        for i in 0..self.dim() {
            let p = self.get_lane(i, lane).norm_sqr();
            if p > 0.0 {
                last_support = i;
            }
            norm += p;
        }
        let r: f64 = rng.gen::<f64>() * norm;
        let mut acc = 0.0f64;
        for i in 0..=last_support {
            acc += self.get_lane(i, lane).norm_sqr();
            if acc > r {
                return i as u64;
            }
        }
        last_support as u64
    }
}

impl GateOp {
    /// Applies the compiled gate to every lane (the batched counterpart
    /// of the dense single-trajectory dispatch).
    pub(crate) fn apply_batch(&self, batch: &mut DenseBatch) {
        match *self {
            GateOp::OneQ { q, m } => batch.apply_1q(q, m),
            GateOp::PhasePair { q, p0, p1 } => batch.apply_phase_pair(q, p0, p1),
            GateOp::CtrlX { cmask, tmask } => {
                batch.apply_controlled_x_masks(cmask as usize, tmask as usize)
            }
            GateOp::CtrlPhase { mask, phase } => {
                batch.apply_controlled_phase_masks(mask as usize, phase)
            }
            GateOp::SwapQ { ma, mb } => batch.apply_swap_masks(ma as usize, mb as usize),
            GateOp::RzzQ {
                ma,
                mb,
                minus,
                plus,
            } => batch.apply_rzz_masks(ma as usize, mb as usize, minus, plus),
        }
    }
}

/// Executes a compiled program over K lockstep trajectories, reusing
/// one batch buffer (and one noise-specialized plan) across runs.
///
/// Lane `l` of a [`run`](Self::run) is bit-identical to a
/// [`DenseTrajectoryRunner::run`] fed `rngs[l]`'s starting state: the
/// batched kernels replay the single-trajectory arithmetic per lane in
/// the same index order, and the batched noise walk gives each lane's
/// RNG the same draw points.
pub struct DenseBatchRunner<'p> {
    program: &'p Program,
    batch: DenseBatch,
    plan: Vec<PlanStep>,
    plan_activity: Option<(bool, bool)>,
    scratch: Vec<f64>,
}

impl<'p> DenseBatchRunner<'p> {
    /// Creates a runner with `lanes` zeroed trajectory lanes.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds [`DenseState::MAX_QUBITS`] or
    /// `lanes == 0`.
    pub fn new(program: &'p Program, lanes: usize) -> Self {
        DenseBatchRunner {
            batch: DenseBatch::zero_state(program.n_qubits(), lanes),
            program,
            plan: Vec::new(),
            plan_activity: None,
            scratch: Vec::new(),
        }
    }

    /// Runs one trajectory per lane from `|0…0⟩`, lane `l` drawing from
    /// `rngs[l]`, and returns the batch.
    ///
    /// # Panics
    ///
    /// Panics if `rngs.len()` differs from the batch width.
    pub fn run<R: Rng>(&mut self, noise: &NoiseModel, rngs: &mut [R]) -> &DenseBatch {
        assert_eq!(
            rngs.len(),
            self.batch.lanes(),
            "one RNG stream per lane is required"
        );
        let activity = channel_activity(noise);
        if self.plan_activity != Some(activity) {
            self.plan = self.program.build_traj_plan(activity.0, activity.1);
            self.plan_activity = Some(activity);
            if let Some(reg) = rasengan_obs::metrics::try_global() {
                reg.counter_add("qsim.traj_plan.miss", 1);
            }
        } else if let Some(reg) = rasengan_obs::metrics::try_global() {
            reg.counter_add("qsim.traj_plan.hit", 1);
        }
        self.batch.reset_zero();
        for step in &self.plan {
            match step {
                PlanStep::Gate(i) => {
                    let tg = &self.program.traj[*i as usize];
                    tg.op.apply_batch(&mut self.batch);
                    let p = if tg.multi { noise.p2 } else { noise.p1 };
                    let qs = &self.program.qubit_buf[tg.qubits.0 as usize..tg.qubits.1 as usize];
                    noise::apply_gate_noise_batch(&mut self.batch, qs, p, noise, rngs);
                }
                PlanStep::OneQ(matrices) => self.batch.apply_one_q_run(matrices),
                PlanStep::Diagonal(terms) => self.batch.apply_diagonal(terms),
                PlanStep::Permutation(run) => self.batch.apply_perm_run(run, &mut self.scratch),
            }
        }
        &self.batch
    }

    /// The batch left by the last [`run`](Self::run).
    pub fn batch(&self) -> &DenseBatch {
        &self.batch
    }
}

/// Samples `shots` noisy-trajectory measurement outcomes, batching
/// lockstep groups of `lanes` trajectories per kernel sweep.
///
/// Shot `s` draws from `StdRng::seed_from_u64(derive_seed(seed, s))` —
/// the same per-shot stream at any batch width or thread count — and
/// the result vector is in shot order, so the output is byte-identical
/// across every `RASENGAN_BATCH` × `RASENGAN_THREADS` combination,
/// including `lanes = 1` and the sequential reference
/// ([`DenseTrajectoryRunner`] + [`DenseState::sample_one`] +
/// [`noise::apply_readout_error`] per shot). Work is split into
/// contiguous ordered slabs of whole batches ([`split_ranges`]); the
/// `shots % lanes` remainder runs on the single-trajectory path.
///
/// `lanes`/`threads` default to `RASENGAN_BATCH` / `RASENGAN_THREADS`
/// (then auto) when `None`.
pub fn sample_trajectories(
    program: &Program,
    noise: &NoiseModel,
    shots: usize,
    seed: u64,
    lanes: Option<usize>,
    threads: Option<usize>,
) -> Vec<u64> {
    if shots == 0 {
        return Vec::new();
    }
    let k = resolve_lanes(lanes, shots);
    let threads = resolve_threads(threads);
    let n = program.n_qubits();
    let full = if k >= 2 { shots - shots % k } else { 0 };
    let mut out: Vec<u64> = Vec::with_capacity(shots);
    if full > 0 {
        let slabs = split_ranges(full / k, threads);
        let results = par_map(&slabs, threads, |_, range| {
            let mut runner = DenseBatchRunner::new(program, k);
            let mut labels = Vec::with_capacity(range.len() * k);
            let mut rngs: Vec<StdRng> = Vec::with_capacity(k);
            for b in range.clone() {
                let base = (b * k) as u64;
                rngs.clear();
                rngs.extend(
                    (0..k as u64).map(|l| StdRng::seed_from_u64(derive_seed(seed, base + l))),
                );
                runner.run(noise, &mut rngs);
                for (l, rng) in rngs.iter_mut().enumerate() {
                    let label = runner.batch().sample_one_lane(l, rng);
                    labels.push(
                        noise::apply_readout_error(label as Label, n, noise.readout, rng) as u64,
                    );
                }
            }
            labels
        });
        out.extend(results.into_iter().flatten());
    }
    if full < shots {
        let mut runner = DenseTrajectoryRunner::new(program);
        for shot in full..shots {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, shot as u64));
            let state = runner.run(noise, &mut rng);
            let label = state.sample_one(&mut rng);
            out.push(noise::apply_readout_error(label as Label, n, noise.readout, &mut rng) as u64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gate::Gate;

    /// A HEA-shaped circuit plus diagonal and permutation tails so a
    /// plan exercises every batched kernel class.
    fn mixed_circuit(n: usize, layers: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for l in 0..layers {
            for q in 0..n {
                c.ry(q, 0.3 + 0.1 * (l * n + q) as f64)
                    .rz(q, -0.2 + 0.05 * q as f64);
            }
            for q in 0..n - 1 {
                c.cx(q, q + 1);
            }
        }
        c.rzz(0, n - 1, 0.4)
            .mcp(vec![0, 1], 2, 0.6)
            .push(Gate::Swap(0, 1))
            .push(Gate::Y(1))
            .cp(1, 2, 0.3);
        c
    }

    fn lane_rngs(seed: u64, base: u64, k: usize) -> Vec<StdRng> {
        (0..k as u64)
            .map(|l| StdRng::seed_from_u64(derive_seed(seed, base + l)))
            .collect()
    }

    #[test]
    fn batched_lanes_match_single_trajectory_bitwise() {
        let c = mixed_circuit(4, 2);
        let p = Program::compile(&c);
        // All channels active: the plan is pure gate-by-gate barriers.
        let hot = NoiseModel::ibm_like(0.05, 0.1, 0.01)
            .with_amplitude_damping(0.02)
            .with_phase_damping(0.01);
        // Readout-only: the plan is fully fused kernels.
        let quiet = NoiseModel::ibm_like(0.0, 0.0, 0.02);
        // 2Q-dominated: barriers and fused runs interleave.
        let mixed = NoiseModel::ibm_like(0.0, 0.03, 0.01);
        for noise in [hot, quiet, mixed] {
            for k in [1usize, 2, 4, 8] {
                let mut batch_runner = DenseBatchRunner::new(&p, k);
                let mut single = DenseTrajectoryRunner::new(&p);
                let mut rngs = lane_rngs(7, 0, k);
                batch_runner.run(&noise, &mut rngs);
                for (lane, lane_rng) in rngs.iter_mut().enumerate() {
                    let mut rng = StdRng::seed_from_u64(derive_seed(7, lane as u64));
                    let reference = single.run(&noise, &mut rng);
                    assert_eq!(
                        batch_runner.batch().lane_state(lane).amplitudes(),
                        reference.amplitudes(),
                        "lane {lane} diverged at k = {k}"
                    );
                    // Identical RNG consumption per lane.
                    assert_eq!(lane_rng.gen::<u64>(), rng.gen::<u64>());
                }
            }
        }
    }

    #[test]
    fn batched_sampling_matches_lane_states() {
        let c = mixed_circuit(4, 2);
        let p = Program::compile(&c);
        let noise = NoiseModel::ibm_like(0.05, 0.1, 0.03).with_amplitude_damping(0.02);
        let k = 4;
        let mut runner = DenseBatchRunner::new(&p, k);
        let mut rngs = lane_rngs(11, 0, k);
        runner.run(&noise, &mut rngs);
        for (lane, lane_rng) in rngs.iter_mut().enumerate() {
            let mut reference_rng = {
                // Clone the lane's post-run RNG state by replaying.
                let mut r = StdRng::seed_from_u64(derive_seed(11, lane as u64));
                let mut single = DenseTrajectoryRunner::new(&p);
                single.run(&noise, &mut r);
                r
            };
            let expect = runner
                .batch()
                .lane_state(lane)
                .sample_one(&mut reference_rng);
            let got = runner.batch().sample_one_lane(lane, lane_rng);
            assert_eq!(got, expect, "lane {lane} sampled differently");
            assert_eq!(lane_rng.gen::<u64>(), reference_rng.gen::<u64>());
        }
    }

    #[test]
    fn perm_fallback_matches_table_path() {
        // Force the step-walk fallback by clearing the scatter table;
        // both paths must leave identical amplitudes.
        let mut c = Circuit::new(3);
        c.h(0).ry(1, 0.4);
        c.x(0).cx(0, 1).push(Gate::Swap(1, 2)).push(Gate::Y(2));
        let p = Program::compile(&c);
        let quiet = NoiseModel::ibm_like(0.0, 0.0, 0.0);
        let mut with_table = DenseBatchRunner::new(&p, 3);
        let mut rngs = lane_rngs(3, 0, 3);
        with_table.run(&quiet, &mut rngs);

        // Rebuild the same plan with tables stripped.
        let mut batch = DenseBatch::zero_state(3, 3);
        let mut scratch = Vec::new();
        for step in p.build_traj_plan(false, false) {
            match step {
                PlanStep::Gate(_) => unreachable!("no active channels"),
                PlanStep::OneQ(m) => batch.apply_one_q_run(&m),
                PlanStep::Diagonal(t) => batch.apply_diagonal(&t),
                PlanStep::Permutation(run) => {
                    let stripped = PermRun {
                        steps: run.steps.clone(),
                        index: Vec::new(),
                        factors: Vec::new(),
                    };
                    batch.apply_perm_run(&stripped, &mut scratch);
                }
            }
        }
        for lane in 0..3 {
            assert_eq!(
                batch.lane_state(lane).amplitudes(),
                with_table.batch().lane_state(lane).amplitudes(),
                "fallback diverged on lane {lane}"
            );
        }
    }

    #[test]
    fn sample_trajectories_is_invariant_across_lanes_and_threads() {
        let c = mixed_circuit(4, 2);
        let p = Program::compile(&c);
        let noise = NoiseModel::ibm_like(0.02, 0.08, 0.02).with_amplitude_damping(0.01);
        let shots = 13; // not divisible by 2, 4, or 8
        let reference = sample_trajectories(&p, &noise, shots, 42, Some(1), Some(1));
        assert_eq!(reference.len(), shots);
        for k in [2usize, 4, 8] {
            for threads in [1usize, 2, 4] {
                let got = sample_trajectories(&p, &noise, shots, 42, Some(k), Some(threads));
                assert_eq!(
                    got, reference,
                    "diverged at lanes = {k}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn sample_trajectories_matches_manual_sequential_reference() {
        let c = mixed_circuit(4, 2);
        let p = Program::compile(&c);
        let noise = NoiseModel::ibm_like(0.01, 0.05, 0.013);
        let shots = 10;
        let mut expect = Vec::with_capacity(shots);
        let mut runner = DenseTrajectoryRunner::new(&p);
        for shot in 0..shots as u64 {
            let mut rng = StdRng::seed_from_u64(derive_seed(5, shot));
            let state = runner.run(&noise, &mut rng);
            let label = state.sample_one(&mut rng);
            expect.push(noise::apply_readout_error(
                label as Label,
                p.n_qubits(),
                noise.readout,
                &mut rng,
            ) as u64);
        }
        let got = sample_trajectories(&p, &noise, shots, 5, Some(4), Some(2));
        assert_eq!(got, expect);
    }

    #[test]
    fn resolve_lanes_precedence_and_clamping() {
        // Explicit request wins and clamps into [1, shots].
        assert_eq!(resolve_lanes(Some(4), 100), 4);
        assert_eq!(resolve_lanes(Some(16), 3), 3);
        assert_eq!(resolve_lanes(Some(1), 0), 1);
        // Auto: min(MAX_LANES, shots). (The env fallback is covered by
        // the CI matrix, not here — env vars are racy across tests.)
        if std::env::var("RASENGAN_BATCH").is_err() {
            assert_eq!(resolve_lanes(None, 3), 3);
            assert_eq!(resolve_lanes(None, 100), MAX_LANES);
        }
    }

    #[test]
    fn zero_shots_yield_empty() {
        let c = mixed_circuit(3, 1);
        let p = Program::compile(&c);
        let out = sample_trajectories(&p, &NoiseModel::noise_free(), 0, 1, None, None);
        assert!(out.is_empty());
    }
}
