//! Dense state-vector simulator.
//!
//! Stores all `2^n` amplitudes; used for the HEA and P-QAOA baselines
//! whose `Rx`/`Ry` layers act on the full Hilbert space (the paper runs
//! these on CUDA-Quantum). Practical to ~20 qubits, which covers every
//! Table 2 benchmark.

use crate::circuit::Circuit;
use crate::complex::Complex;
use crate::gate::Gate;
use crate::parallel::par_chunks_aligned;
use rand::Rng;
use std::collections::BTreeMap;

/// Minimum amplitude count before gate kernels fan out to threads;
/// below this, spawn overhead exceeds the arithmetic.
const PAR_MIN_AMPS: usize = 1 << 14;

/// A dense `2^n`-amplitude quantum state.
///
/// Basis-state labels are little-endian: bit `i` of the label is qubit
/// `i`.
///
/// # Example
///
/// ```
/// use rasengan_qsim::{Circuit, DenseState};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let state = DenseState::from_circuit(&bell);
/// let p = state.probabilities();
/// assert!((p[0b00] - 0.5).abs() < 1e-12);
/// assert!((p[0b11] - 0.5).abs() < 1e-12);
/// assert!(p[0b01].abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DenseState {
    n_qubits: usize,
    amps: Vec<Complex>,
}

impl DenseState {
    /// Maximum qubit count before the amplitude vector exceeds ~1 GiB.
    pub const MAX_QUBITS: usize = 26;

    /// Creates `|0…0⟩` on `n_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > Self::MAX_QUBITS`.
    pub fn zero_state(n_qubits: usize) -> Self {
        Self::basis_state(n_qubits, 0)
    }

    /// Creates the computational basis state `|label⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > Self::MAX_QUBITS` or the label does not fit.
    pub fn basis_state(n_qubits: usize, label: u64) -> Self {
        assert!(
            n_qubits <= Self::MAX_QUBITS,
            "dense simulation beyond {} qubits is not supported",
            Self::MAX_QUBITS
        );
        assert!(
            n_qubits == 64 || label < (1u64 << n_qubits),
            "basis label {label} out of range for {n_qubits} qubits"
        );
        let mut amps = vec![Complex::ZERO; 1usize << n_qubits];
        amps[label as usize] = Complex::ONE;
        DenseState { n_qubits, amps }
    }

    /// Builds a state from a raw amplitude vector (used by the noise
    /// channels, which apply non-unitary Kraus branches).
    ///
    /// # Panics
    ///
    /// Panics if `amps.len() != 2^n_qubits`.
    pub fn from_amplitudes(n_qubits: usize, amps: Vec<Complex>) -> Self {
        assert_eq!(
            amps.len(),
            1usize << n_qubits,
            "amplitude vector has wrong length"
        );
        DenseState { n_qubits, amps }
    }

    /// Runs `circuit` from `|0…0⟩` and returns the final state.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut s = Self::zero_state(circuit.n_qubits());
        s.run(circuit);
        s
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The amplitude of `|label⟩`.
    pub fn amplitude(&self, label: u64) -> Complex {
        self.amps[label as usize]
    }

    /// All amplitudes, indexed by basis label.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Mutable access to the raw amplitude vector (fused kernels in
    /// [`crate::exec`] swap in their scratch buffer).
    pub(crate) fn amps_vec_mut(&mut self) -> &mut Vec<Complex> {
        &mut self.amps
    }

    /// Applies every gate of `circuit` in order.
    pub fn run(&mut self, circuit: &Circuit) {
        assert_eq!(
            circuit.n_qubits(),
            self.n_qubits,
            "circuit width does not match state"
        );
        for g in circuit.gates() {
            self.apply(g);
        }
    }

    /// Applies a single gate.
    pub fn apply(&mut self, gate: &Gate) {
        match gate {
            Gate::X(q) => self.apply_1q(*q, x_matrix()),
            Gate::Y(q) => self.apply_1q(*q, y_matrix()),
            Gate::Z(q) => self.apply_phase_pair(*q, Complex::ONE, -Complex::ONE),
            Gate::H(q) => self.apply_1q(*q, h_matrix()),
            Gate::Rx(q, t) => self.apply_1q(*q, rx_matrix(*t)),
            Gate::Ry(q, t) => self.apply_1q(*q, ry_matrix(*t)),
            Gate::Rz(q, t) => {
                self.apply_phase_pair(*q, Complex::cis(-t / 2.0), Complex::cis(t / 2.0))
            }
            Gate::Phase(q, t) => self.apply_phase_pair(*q, Complex::ONE, Complex::cis(*t)),
            Gate::Cx(c, t) => self.apply_controlled_x(&[*c], *t),
            Gate::Cz(a, b) => self.apply_controlled_phase(&[*a], *b, std::f64::consts::PI),
            Gate::Swap(a, b) => self.apply_swap(*a, *b),
            Gate::Rzz(a, b, t) => self.apply_rzz(*a, *b, *t),
            Gate::Cp(c, t, theta) => self.apply_controlled_phase(&[*c], *t, *theta),
            Gate::Mcp {
                controls,
                target,
                theta,
            } => self.apply_controlled_phase(controls, *target, *theta),
            Gate::Mcx { controls, target } => self.apply_controlled_x(controls, *target),
        }
    }

    /// Resets the buffer to `|0…0⟩` without reallocating (trajectory
    /// runners reuse one state across shots).
    pub(crate) fn reset_zero(&mut self) {
        self.amps.fill(Complex::ZERO);
        self.amps[0] = Complex::ONE;
    }

    pub(crate) fn apply_1q(&mut self, q: usize, m: [Complex; 4]) {
        let mask = 1usize << q;
        // Chunks are aligned to 2^(q+1), so every (i, i|mask) pair lives
        // inside one chunk and threads never share an amplitude.
        par_chunks_aligned(&mut self.amps, mask << 1, PAR_MIN_AMPS, |_, chunk| {
            for i in 0..chunk.len() {
                if i & mask == 0 {
                    let j = i | mask;
                    let a0 = chunk[i];
                    let a1 = chunk[j];
                    chunk[i] = m[0] * a0 + m[1] * a1;
                    chunk[j] = m[2] * a0 + m[3] * a1;
                }
            }
        });
    }

    /// Applies `diag(p0, p1)` on qubit `q`.
    pub(crate) fn apply_phase_pair(&mut self, q: usize, p0: Complex, p1: Complex) {
        let mask = 1usize << q;
        par_chunks_aligned(&mut self.amps, 1, PAR_MIN_AMPS, |base, chunk| {
            for (i, a) in chunk.iter_mut().enumerate() {
                *a *= if (base + i) & mask == 0 { p0 } else { p1 };
            }
        });
    }

    fn apply_controlled_x(&mut self, controls: &[usize], target: usize) {
        let cmask: usize = controls.iter().map(|&c| 1usize << c).sum();
        self.apply_controlled_x_masks(cmask, 1usize << target);
    }

    pub(crate) fn apply_controlled_x_masks(&mut self, cmask: usize, tmask: usize) {
        par_chunks_aligned(&mut self.amps, tmask << 1, PAR_MIN_AMPS, |base, chunk| {
            for i in 0..chunk.len() {
                let g = base + i;
                if g & cmask == cmask && g & tmask == 0 {
                    chunk.swap(i, i | tmask);
                }
            }
        });
    }

    fn apply_controlled_phase(&mut self, controls: &[usize], target: usize, theta: f64) {
        let mut mask: usize = controls.iter().map(|&c| 1usize << c).sum();
        mask |= 1usize << target;
        self.apply_controlled_phase_masks(mask, Complex::cis(theta));
    }

    pub(crate) fn apply_controlled_phase_masks(&mut self, mask: usize, phase: Complex) {
        par_chunks_aligned(&mut self.amps, 1, PAR_MIN_AMPS, |base, chunk| {
            for (i, a) in chunk.iter_mut().enumerate() {
                if (base + i) & mask == mask {
                    *a *= phase;
                }
            }
        });
    }

    fn apply_swap(&mut self, a: usize, b: usize) {
        self.apply_swap_masks(1usize << a, 1usize << b);
    }

    pub(crate) fn apply_swap_masks(&mut self, ma: usize, mb: usize) {
        // Swapped labels agree above bit max(a, b), so chunks aligned to
        // the larger mask keep both members of each pair together.
        let unit = ma.max(mb) << 1;
        par_chunks_aligned(&mut self.amps, unit, PAR_MIN_AMPS, |base, chunk| {
            for i in 0..chunk.len() {
                let g = base + i;
                if g & ma != 0 && g & mb == 0 {
                    chunk.swap(i, i ^ ma ^ mb);
                }
            }
        });
    }

    fn apply_rzz(&mut self, a: usize, b: usize, theta: f64) {
        let (ma, mb) = (1usize << a, 1usize << b);
        let minus = Complex::cis(-theta / 2.0);
        let plus = Complex::cis(theta / 2.0);
        self.apply_rzz_masks(ma, mb, minus, plus);
    }

    pub(crate) fn apply_rzz_masks(&mut self, ma: usize, mb: usize, minus: Complex, plus: Complex) {
        par_chunks_aligned(&mut self.amps, 1, PAR_MIN_AMPS, |base, chunk| {
            for (i, amp) in chunk.iter_mut().enumerate() {
                let g = base + i;
                let parity = ((g & ma != 0) as u8) ^ ((g & mb != 0) as u8);
                *amp *= if parity == 0 { minus } else { plus };
            }
        });
    }

    /// Flips the sign of every basis amplitude whose label satisfies
    /// `marked` — an idealized oracle call (used by the Grover adaptive
    /// search baseline; real implementations synthesize this from
    /// arithmetic comparators).
    pub fn apply_phase_flip(&mut self, marked: impl Fn(u64) -> bool) {
        for (i, a) in self.amps.iter_mut().enumerate() {
            if marked(i as u64) {
                *a = -*a;
            }
        }
    }

    /// Applies the Grover diffusion operator `2|s⟩⟨s| − I` (inversion
    /// about the uniform-state mean).
    pub fn apply_diffusion(&mut self) {
        let len = self.amps.len() as f64;
        let mut mean = Complex::ZERO;
        for a in &self.amps {
            mean += *a;
        }
        mean = mean.scale(1.0 / len);
        for a in &mut self.amps {
            *a = mean.scale(2.0) - *a;
        }
    }

    /// Measurement probabilities for every basis label.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Squared norm of the state (should be 1 up to rounding).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalizes the state to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the state is (numerically) zero.
    pub fn normalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        assert!(n > 1e-300, "cannot normalize zero state");
        for a in &mut self.amps {
            *a = a.scale(1.0 / n);
        }
    }

    /// Expectation value of a diagonal observable `f(label)`.
    pub fn expectation_diagonal(&self, f: impl Fn(u64) -> f64) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .map(|(i, a)| a.norm_sqr() * f(i as u64))
            .sum()
    }

    /// Draws `shots` measurement outcomes, returning label → count.
    ///
    /// Builds the cumulative-probability table once (`O(2^n)`), then
    /// each shot is a binary search (`O(log 2^n)`). The earlier
    /// implementation recomputed the full norm and linearly scanned the
    /// probability vector *per shot* — `O(shots · 2^n)`, the dominant
    /// cost for shot-heavy noisy workloads.
    pub fn sample(&self, shots: usize, rng: &mut impl Rng) -> BTreeMap<u64, usize> {
        let mut cdf = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0f64;
        let mut last_support = 0usize;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > 0.0 {
                last_support = i;
            }
            acc += p;
            cdf.push(acc);
        }
        let norm = acc;
        let mut counts = BTreeMap::new();
        for _ in 0..shots {
            let r: f64 = rng.gen::<f64>() * norm;
            // First index whose cumulative mass exceeds r, falling back
            // to the last *supported* label when r lands on accumulated
            // rounding. Clamping to `cdf.len() - 1` here would return an
            // out-of-support label for a state whose mass has collapsed
            // onto a prefix (e.g. after heavy amplitude damping) — the
            // un-renormalized CDF tail is a flat plateau the fallback
            // used to land on. The binary search itself can never select
            // an interior zero-mass index (that needs cdf[i] > r with
            // cdf[i-1] <= r and the two equal), so for healthy states
            // this clamp is byte-identical to the old one.
            let outcome = cdf.partition_point(|&c| c <= r).min(last_support);
            *counts.entry(outcome as u64).or_insert(0) += 1;
        }
        counts
    }

    /// Draws one measurement outcome without building the cumulative
    /// table [`Self::sample`] allocates. The norm is accumulated in the
    /// same left-to-right order and the outcome resolved by the same
    /// "first prefix sum exceeding `r`" rule, so for a given RNG state
    /// this returns exactly the label `sample(1, rng)` would, with
    /// identical RNG consumption (one draw).
    pub fn sample_one(&self, rng: &mut impl Rng) -> u64 {
        let mut norm = 0.0f64;
        let mut last_support = 0usize;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > 0.0 {
                last_support = i;
            }
            norm += p;
        }
        let r: f64 = rng.gen::<f64>() * norm;
        let mut acc = 0.0f64;
        // The prefix scan cannot terminate past the last supported
        // index (later prefixes are flat), so the fallback — reached
        // when rounding pushes r up to the full norm, or the norm is
        // degenerate (0/NaN after pathological damping) — clamps to the
        // support instead of the raw last label.
        for i in 0..=last_support {
            acc += self.amps[i].norm_sqr();
            if acc > r {
                return i as u64;
            }
        }
        last_support as u64
    }
}

pub(crate) fn x_matrix() -> [Complex; 4] {
    [Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO]
}

pub(crate) fn y_matrix() -> [Complex; 4] {
    [Complex::ZERO, -Complex::I, Complex::I, Complex::ZERO]
}

pub(crate) fn h_matrix() -> [Complex; 4] {
    let s = Complex::from(std::f64::consts::FRAC_1_SQRT_2);
    [s, s, s, -s]
}

pub(crate) fn rx_matrix(theta: f64) -> [Complex; 4] {
    let c = Complex::from((theta / 2.0).cos());
    let s = Complex::new(0.0, -(theta / 2.0).sin());
    [c, s, s, c]
}

pub(crate) fn ry_matrix(theta: f64) -> [Complex; 4] {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    [
        Complex::from(c),
        Complex::from(-s),
        Complex::from(s),
        Complex::from(c),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-12;

    #[test]
    fn cdf_sampling_matches_probabilities_chi_squared() {
        // Uniform 3-qubit superposition: 8 equiprobable outcomes. The
        // CDF sampler's counts must pass a chi-squared check against
        // the exact probabilities (df = 7, p = 0.001 cutoff ~24.3).
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        let s = DenseState::from_circuit(&c);
        let shots = 8000usize;
        let mut rng = StdRng::seed_from_u64(17);
        let counts = s.sample(shots, &mut rng);
        let expected = shots as f64 / 8.0;
        let chi2: f64 = (0..8u64)
            .map(|l| {
                let obs = *counts.get(&l).unwrap_or(&0) as f64;
                (obs - expected).powi(2) / expected
            })
            .sum();
        assert!(chi2 < 24.3, "chi-squared {chi2} too large for uniform");
    }

    #[test]
    fn cdf_sampling_matches_skewed_probabilities() {
        // A skewed two-outcome state: Rx rotation puts cos^2/sin^2 mass
        // on |0>/|1>; chi-squared df = 1, p = 0.001 cutoff ~10.8.
        let mut s = DenseState::zero_state(1);
        s.apply(&Gate::Rx(0, 1.2));
        let p = s.probabilities();
        let shots = 8000usize;
        let mut rng = StdRng::seed_from_u64(23);
        let counts = s.sample(shots, &mut rng);
        let chi2: f64 = (0..2u64)
            .map(|l| {
                let e = p[l as usize] * shots as f64;
                let obs = *counts.get(&l).unwrap_or(&0) as f64;
                (obs - e).powi(2) / e
            })
            .sum();
        assert!(chi2 < 10.8, "chi-squared {chi2} too large for skewed state");
    }

    #[test]
    fn sample_one_matches_sample_single_shot() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).rx(2, 0.7);
        let s = DenseState::from_circuit(&c);
        for seed in 0..50 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let via_sample = *s.sample(1, &mut a).iter().next().unwrap().0;
            assert_eq!(s.sample_one(&mut b), via_sample);
            // Both must consume exactly one draw.
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn sampling_degenerate_states_stays_in_support() {
        // Mass collapsed onto a prefix (the post-heavy-damping shape):
        // trailing zero-amplitude labels must never be drawn.
        let mut amps = vec![Complex::ZERO; 8];
        amps[1] = Complex::new(0.3, -0.4);
        let s = DenseState::from_amplitudes(3, amps);
        let mut rng = StdRng::seed_from_u64(99);
        let counts = s.sample(500, &mut rng);
        assert_eq!(counts, BTreeMap::from([(1u64, 500usize)]));
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            assert_eq!(s.sample_one(&mut rng), 1);
        }
        // A numerically zero state: the old fallback clamped to the
        // last raw label (here 3); the clamp must stay in the support
        // prefix and return label 0.
        let zero = DenseState::from_amplitudes(2, vec![Complex::ZERO; 4]);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(zero.sample_one(&mut rng), 0);
        assert_eq!(zero.sample(4, &mut rng), BTreeMap::from([(0u64, 4usize)]));
    }

    #[test]
    fn reset_zero_restores_initial_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut s = DenseState::from_circuit(&c);
        s.reset_zero();
        assert_eq!(s, DenseState::zero_state(2));
    }

    #[test]
    fn x_flips_basis_state() {
        let mut s = DenseState::zero_state(1);
        s.apply(&Gate::X(0));
        assert!(s.amplitude(1).approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn hadamard_twice_is_identity() {
        let mut s = DenseState::zero_state(1);
        s.apply(&Gate::H(0));
        s.apply(&Gate::H(0));
        assert!(s.amplitude(0).approx_eq(Complex::ONE, 1e-10));
    }

    #[test]
    fn bell_state_probabilities() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = DenseState::from_circuit(&c);
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < TOL);
        assert!((p[3] - 0.5).abs() < TOL);
        assert!(p[1] < TOL && p[2] < TOL);
    }

    #[test]
    fn rx_pi_equals_x_up_to_phase() {
        let mut a = DenseState::zero_state(1);
        a.apply(&Gate::Rx(0, std::f64::consts::PI));
        // Rx(π)|0> = -i|1>
        assert!(a.amplitude(1).approx_eq(-Complex::I, 1e-10));
    }

    #[test]
    fn rz_applies_relative_phase() {
        let mut s = DenseState::zero_state(1);
        s.apply(&Gate::H(0));
        s.apply(&Gate::Rz(0, std::f64::consts::PI));
        s.apply(&Gate::H(0));
        // HRz(π)H = X up to global phase: probability all on |1>.
        assert!((s.probabilities()[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn mcp_only_phases_all_ones() {
        let mut c = Circuit::new(3);
        c.x(0).x(1).x(2).mcp(vec![0, 1], 2, 1.0);
        let s = DenseState::from_circuit(&c);
        assert!(s.amplitude(0b111).approx_eq(Complex::cis(1.0), TOL));

        let mut c2 = Circuit::new(3);
        c2.x(0).x(2).mcp(vec![0, 1], 2, 1.0); // control q1 is |0> -> no phase
        let s2 = DenseState::from_circuit(&c2);
        assert!(s2.amplitude(0b101).approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn mcx_flips_only_when_all_controls_set() {
        let mut c = Circuit::new(3);
        c.x(0).x(1).mcx(vec![0, 1], 2);
        let s = DenseState::from_circuit(&c);
        assert!(s.amplitude(0b111).approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut c = Circuit::new(2);
        c.x(0).push(Gate::Swap(0, 1));
        let s = DenseState::from_circuit(&c);
        assert!(s.amplitude(0b10).approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn rzz_phases_by_parity() {
        let mut s = DenseState::basis_state(2, 0b01);
        s.apply(&Gate::Rzz(0, 1, 1.0));
        assert!(s.amplitude(0b01).approx_eq(Complex::cis(0.5), TOL));
        let mut s = DenseState::basis_state(2, 0b11);
        s.apply(&Gate::Rzz(0, 1, 1.0));
        assert!(s.amplitude(0b11).approx_eq(Complex::cis(-0.5), TOL));
    }

    #[test]
    fn norm_preserved_by_random_circuit() {
        let mut c = Circuit::new(4);
        c.h(0)
            .rx(1, 0.3)
            .ry(2, 1.1)
            .rz(3, -0.7)
            .cx(0, 1)
            .cx(2, 3)
            .rzz(1, 2, 0.5);
        let s = DenseState::from_circuit(&c);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn expectation_of_diagonal_observable() {
        let mut c = Circuit::new(2);
        c.h(0);
        let s = DenseState::from_circuit(&c);
        // f(label) = label as f64: E = 0.5*0 + 0.5*1 = 0.5
        let e = s.expectation_diagonal(|l| l as f64);
        assert!((e - 0.5).abs() < TOL);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut c = Circuit::new(1);
        c.h(0);
        let s = DenseState::from_circuit(&c);
        let mut rng = StdRng::seed_from_u64(7);
        let counts = s.sample(10_000, &mut rng);
        let ones = *counts.get(&1).unwrap_or(&0) as f64;
        assert!((ones / 10_000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    fn inverse_circuit_restores_initial_state() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .ry(2, 0.4)
            .rzz(0, 2, 0.9)
            .mcp(vec![0], 2, 0.3);
        let mut s = DenseState::zero_state(3);
        s.run(&c);
        s.run(&c.inverse());
        assert!(s.amplitude(0).approx_eq(Complex::ONE, 1e-10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_label_out_of_range_panics() {
        DenseState::basis_state(2, 4);
    }
}
