//! Deterministic scoped-thread parallelism.
//!
//! Every parallel construct in the workspace is built on two rules that
//! together make results **bit-identical at any thread count**:
//!
//! 1. *Work is split by index, never by arrival order.* [`par_map`]
//!    assigns contiguous index ranges to worker threads and returns
//!    results in input order, so any reduction the caller performs runs
//!    in the same order as a sequential loop.
//! 2. *Randomness is derived, never shared.* A trajectory/shot/start at
//!    global index `i` draws from an RNG seeded with
//!    [`derive_seed`]`(seed, i)` — a SplitMix64-style finalizer mix —
//!    instead of consuming a shared RNG stream whose state would depend
//!    on scheduling.
//!
//! Thread counts resolve as: explicit request → `RASENGAN_THREADS`
//! environment variable → [`std::thread::available_parallelism`]. Only
//! `std::thread::scope` is used; there is no pool and no external
//! dependency.

use std::sync::OnceLock;

/// SplitMix64 finalizer: a bijective 64-bit mix with full avalanche
/// (every output bit depends on every input bit).
///
/// This is the mixing step of Steele et al.'s SplitMix generator, also
/// used as the xoshiro seed expander. Unlike `seed.wrapping_add(k * C)`,
/// nearby inputs produce unrelated outputs, so derived streams never
/// replay each other.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent RNG seed for stream `stream` of a base `seed`.
///
/// Used for per-shot noise trajectories, per-input sampling streams, and
/// multistart restarts. Both arguments go through the finalizer, so
/// user seeds that differ by any fixed offset still yield unrelated
/// streams (the `seed + start * 0x9E37` replay bug this replaces).
#[must_use]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    splitmix64(seed ^ splitmix64(stream))
}

/// Threads to use when the caller did not pick a count: the
/// `RASENGAN_THREADS` environment variable if set to a positive
/// integer, else the machine's available parallelism.
pub fn available_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(v) = std::env::var("RASENGAN_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, usize::from)
    })
}

/// Resolves an optional explicit thread request against the environment
/// default; always at least 1.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => available_threads(),
    }
}

/// Maps `f` over `items` on up to `threads` scoped threads, returning
/// results in input order.
///
/// `f` receives the item's index alongside the item, which is how
/// callers derive per-item RNG streams. The first chunk runs on the
/// calling thread, so `threads == 1` (or a single item) degenerates to
/// a plain sequential loop with no spawn overhead.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut chunks = items.chunks(chunk);
    let first = chunks.next().unwrap_or(&[]);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .enumerate()
            .map(|(i, slice)| {
                let f = &f;
                let base = (i + 1) * chunk;
                s.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(base + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        results.push(first.iter().enumerate().map(|(j, t)| f(j, t)).collect());
        for h in handles {
            results.push(h.join().expect("parallel worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Runs `kernel(base_index, chunk)` over disjoint contiguous chunks of
/// `data`, in parallel when the slice is large enough to amortize
/// spawning.
///
/// `unit` is the chunk alignment: every chunk boundary is a multiple of
/// `unit`, so a kernel whose index pairs live within aligned
/// `unit`-blocks (e.g. the `(i, i | 1 << q)` pairs of a single-qubit
/// gate with `unit = 2^(q+1)`) never crosses a chunk. Results are
/// bit-identical at any thread count because each element is written by
/// exactly one kernel invocation with the same global index.
pub fn par_chunks_aligned<T, F>(data: &mut [T], unit: usize, min_len: usize, kernel: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    let threads = available_threads();
    if threads <= 1 || len < min_len || unit >= len {
        kernel(0, data);
        return;
    }
    let chunk = len.div_ceil(threads).div_ceil(unit) * unit;
    std::thread::scope(|s| {
        for (i, slice) in data.chunks_mut(chunk).enumerate() {
            let kernel = &kernel;
            s.spawn(move || kernel(i * chunk, slice));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_avalanches_nearby_seeds() {
        // The old additive scheme made seed and seed ± k*0x9E37 collide
        // across streams; the finalizer must not.
        let a = derive_seed(5, 1);
        let b = derive_seed(5 + 0x9E37, 0);
        let c = derive_seed(5, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // And it is a pure function.
        assert_eq!(derive_seed(5, 1), a);
    }

    #[test]
    fn splitmix_is_bijective_on_samples() {
        use std::collections::HashSet;
        let outputs: HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outputs.len(), 10_000);
    }

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 3 + i as u64)
            .collect();
        for threads in [1, 2, 3, 7, 64] {
            let got = par_map(&items, threads, |i, &x| x * 3 + i as u64);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_edge_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[42], 8, |i, &x| (i, x)), vec![(0, 42)]);
    }

    #[test]
    fn par_chunks_respects_alignment_and_indices() {
        let mut data: Vec<usize> = vec![0; 1 << 10];
        // Force the parallel path with a tiny min_len; each element gets
        // its own global index, pairs within unit-4 blocks.
        par_chunks_aligned(&mut data, 4, 1, |base, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = base + i;
            }
        });
        let expect: Vec<usize> = (0..1 << 10).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn resolve_threads_floor_is_one() {
        assert_eq!(resolve_threads(Some(0)), 1);
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }
}
