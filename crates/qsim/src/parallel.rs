//! Deterministic scoped-thread parallelism.
//!
//! Every parallel construct in the workspace is built on two rules that
//! together make results **bit-identical at any thread count**:
//!
//! 1. *Work is split by index, never by arrival order.* [`par_map`]
//!    assigns contiguous index ranges to worker threads and returns
//!    results in input order, so any reduction the caller performs runs
//!    in the same order as a sequential loop.
//! 2. *Randomness is derived, never shared.* A trajectory/shot/start at
//!    global index `i` draws from an RNG seeded with
//!    [`derive_seed`]`(seed, i)` — a SplitMix64-style finalizer mix —
//!    instead of consuming a shared RNG stream whose state would depend
//!    on scheduling.
//!
//! Thread counts resolve as: explicit request → `RASENGAN_THREADS`
//! environment variable → [`std::thread::available_parallelism`]. Only
//! `std::thread::scope` is used; there is no pool and no external
//! dependency.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// SplitMix64 finalizer: a bijective 64-bit mix with full avalanche
/// (every output bit depends on every input bit).
///
/// This is the mixing step of Steele et al.'s SplitMix generator, also
/// used as the xoshiro seed expander. Unlike `seed.wrapping_add(k * C)`,
/// nearby inputs produce unrelated outputs, so derived streams never
/// replay each other.
///
/// The definition lives in `rasengan-obs` (span-ID derivation uses the
/// same finalizer); this re-export keeps `parallel::splitmix64` the
/// canonical path for seed work.
pub use rasengan_obs::splitmix64;

/// Derives an independent RNG seed for stream `stream` of a base `seed`.
///
/// Used for per-shot noise trajectories, per-input sampling streams, and
/// multistart restarts. Both arguments go through the finalizer, so
/// user seeds that differ by any fixed offset still yield unrelated
/// streams (the `seed + start * 0x9E37` replay bug this replaces).
#[must_use]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    splitmix64(seed ^ splitmix64(stream))
}

/// Threads to use when the caller did not pick a count: the
/// `RASENGAN_THREADS` environment variable if set to a positive
/// integer, else the machine's available parallelism.
pub fn available_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(v) = std::env::var("RASENGAN_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, usize::from)
    })
}

/// Resolves an optional explicit thread request against the environment
/// default; always at least 1.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => available_threads(),
    }
}

/// Splits `0..total` into at most `parts` contiguous, order-preserving
/// ranges of near-equal length (first ranges get the remainder).
///
/// Used to assign whole work slabs — e.g. batched-trajectory groups —
/// to [`par_map`] workers while keeping the global index order intact,
/// which is what makes batched results byte-identical to sequential
/// execution at any thread count.
#[must_use]
pub fn split_ranges(total: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, total.max(1));
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Maps `f` over `items` on up to `threads` scoped threads, returning
/// results in input order.
///
/// `f` receives the item's index alongside the item, which is how
/// callers derive per-item RNG streams. The first chunk runs on the
/// calling thread, so `threads == 1` (or a single item) degenerates to
/// a plain sequential loop with no spawn overhead.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    // Engine-level metrics hook: one `OnceLock` load when no registry
    // is installed, one counter bump per *call* (never per item) when
    // one is. Batch counts are how the observability layer sees work
    // distribution without touching the hot per-item path.
    if let Some(reg) = rasengan_obs::metrics::try_global() {
        reg.counter_add("qsim.par_map.calls", 1);
        reg.counter_add("qsim.par_map.items", items.len() as u64);
        reg.counter_add("qsim.par_map.batches", threads as u64);
    }
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut chunks = items.chunks(chunk);
    let first = chunks.next().unwrap_or(&[]);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .enumerate()
            .map(|(i, slice)| {
                let f = &f;
                let base = (i + 1) * chunk;
                s.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(base + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        results.push(first.iter().enumerate().map(|(j, t)| f(j, t)).collect());
        for h in handles {
            results.push(h.join().expect("parallel worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Runs `kernel(base_index, chunk)` over disjoint contiguous chunks of
/// `data`, in parallel when the slice is large enough to amortize
/// spawning.
///
/// `unit` is the chunk alignment: every chunk boundary is a multiple of
/// `unit`, so a kernel whose index pairs live within aligned
/// `unit`-blocks (e.g. the `(i, i | 1 << q)` pairs of a single-qubit
/// gate with `unit = 2^(q+1)`) never crosses a chunk. Results are
/// bit-identical at any thread count because each element is written by
/// exactly one kernel invocation with the same global index.
pub fn par_chunks_aligned<T, F>(data: &mut [T], unit: usize, min_len: usize, kernel: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    let threads = available_threads();
    if threads <= 1 || len < min_len || unit >= len {
        kernel(0, data);
        return;
    }
    let chunk = len.div_ceil(threads).div_ceil(unit) * unit;
    std::thread::scope(|s| {
        for (i, slice) in data.chunks_mut(chunk).enumerate() {
            let kernel = &kernel;
            s.spawn(move || kernel(i * chunk, slice));
        }
    });
}

/// A bounded multi-producer multi-consumer FIFO queue built on
/// `Mutex` + `Condvar` (std-only, like everything else in this module).
///
/// Producers use [`try_push`](BoundedQueue::try_push), which *never
/// blocks*: a full queue is an admission-control signal the caller must
/// handle (shed load, report busy), not something to wait out.
/// Consumers block in [`pop`](BoundedQueue::pop) until an item arrives
/// or the queue is closed and drained — so a pool of worker threads can
/// drain gracefully on shutdown.
///
/// Cloning shares the same underlying queue.
#[derive(Clone, Debug)]
pub struct BoundedQueue<T> {
    inner: Arc<QueueInner<T>>,
}

#[derive(Debug)]
struct QueueInner<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Arc::new(QueueInner {
                state: Mutex::new(QueueState {
                    items: VecDeque::with_capacity(capacity),
                    capacity,
                    closed: false,
                }),
                available: Condvar::new(),
            }),
        }
    }

    /// Attempts to enqueue without blocking. Returns the item back via
    /// `Err` when the queue is full or closed, so the caller can shed
    /// the work with a structured response instead of stalling.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.inner.state.lock().expect("queue poisoned");
        if state.closed || state.items.len() >= state.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        if let Some(reg) = rasengan_obs::metrics::try_global() {
            reg.counter_add("qsim.queue.pushed", 1);
            reg.gauge_set("qsim.queue.depth", depth as i64);
            reg.gauge_max("qsim.queue.depth_max", depth as i64);
        }
        self.inner.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and dequeues it. Returns
    /// `None` once the queue is closed *and* empty — the worker-exit
    /// signal for graceful drain.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.inner.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                let depth = state.items.len();
                drop(state);
                if let Some(reg) = rasengan_obs::metrics::try_global() {
                    reg.gauge_set("qsim.queue.depth", depth as i64);
                }
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.inner.available.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: further pushes fail, and consumers drain the
    /// remaining items before `pop` starts returning `None`.
    pub fn close(&self) {
        let mut state = self.inner.state.lock().expect("queue poisoned");
        state.closed = true;
        drop(state);
        self.inner.available.notify_all();
    }

    /// Items currently queued (a snapshot; stale by the time it returns).
    pub fn len(&self) -> usize {
        self.inner.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty (a snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.state.lock().expect("queue poisoned").capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_avalanches_nearby_seeds() {
        // The old additive scheme made seed and seed ± k*0x9E37 collide
        // across streams; the finalizer must not.
        let a = derive_seed(5, 1);
        let b = derive_seed(5 + 0x9E37, 0);
        let c = derive_seed(5, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // And it is a pure function.
        assert_eq!(derive_seed(5, 1), a);
    }

    #[test]
    fn splitmix_is_bijective_on_samples() {
        use std::collections::HashSet;
        let outputs: HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outputs.len(), 10_000);
    }

    #[test]
    fn split_ranges_covers_in_order() {
        for (total, parts) in [(0, 4), (1, 4), (7, 3), (8, 3), (13, 4), (100, 7), (5, 9)] {
            let ranges = split_ranges(total, parts);
            let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
            assert_eq!(flat, (0..total).collect::<Vec<_>>(), "{total}/{parts}");
            assert!(ranges.len() <= parts.max(1));
            if let (Some(min), Some(max)) = (
                ranges.iter().map(ExactSizeIterator::len).min(),
                ranges.iter().map(ExactSizeIterator::len).max(),
            ) {
                assert!(
                    max - min <= 1,
                    "unbalanced split {total}/{parts}: {ranges:?}"
                );
            }
        }
    }

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 3 + i as u64)
            .collect();
        for threads in [1, 2, 3, 7, 64] {
            let got = par_map(&items, threads, |i, &x| x * 3 + i as u64);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_edge_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[42], 8, |i, &x| (i, x)), vec![(0, 42)]);
    }

    #[test]
    fn par_chunks_respects_alignment_and_indices() {
        let mut data: Vec<usize> = vec![0; 1 << 10];
        // Force the parallel path with a tiny min_len; each element gets
        // its own global index, pairs within unit-4 blocks.
        par_chunks_aligned(&mut data, 4, 1, |base, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = base + i;
            }
        });
        let expect: Vec<usize> = (0..1 << 10).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn resolve_threads_floor_is_one() {
        assert_eq!(resolve_threads(Some(0)), 1);
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn bounded_queue_sheds_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "a full queue must refuse work");
        assert_eq!(q.len(), 2);
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "space freed by pop is reusable");
    }

    #[test]
    fn bounded_queue_drains_after_close() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err("c"), "closed queue refuses work");
        // Remaining items drain in FIFO order before the exit signal.
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed-and-empty stays terminal");
    }

    #[test]
    fn bounded_queue_hands_items_across_threads() {
        let q: BoundedQueue<usize> = BoundedQueue::new(64);
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..50 {
            while q.try_push(i).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }
}
