//! Quantum-circuit substrate for the Rasengan reproduction.
//!
//! The paper's software stack uses Qiskit + CUDA-Quantum (dense
//! simulation of HEA/QAOA baselines) and DDSim (decision-diagram
//! simulation of Rasengan's phase-type circuits). This crate provides
//! the equivalent substrate from scratch:
//!
//! * [`Circuit`]/[`Gate`] — the circuit IR shared by all four
//!   algorithms, with depth and gate-count metrics.
//! * [`DenseState`] — dense state-vector simulation (baselines, ≤ 20
//!   qubits).
//! * [`SparseState`] — sparse basis-state simulation with analytic
//!   transition operators ([`Transition`]), exact for Rasengan/Choco-Q
//!   circuits at 100+ qubits.
//! * [`exec`] — compiled circuit programs: gate fusion (1-qubit matrix
//!   runs, diagonal-phase runs, label-permutation runs) for
//!   compile-once/execute-many workloads such as trajectory sampling.
//! * [`noise`] — trajectory-sampled depolarizing, amplitude-damping,
//!   phase-damping, and readout channels.
//! * [`batch`] — lockstep batched-trajectory execution: K trajectories
//!   per fused-kernel sweep in a structure-of-arrays store, bit-identical
//!   per lane to sequential execution.
//! * [`parallel`] — deterministic scoped-thread parallelism (derived
//!   per-stream seeds, index-ordered results, aligned chunking).
//! * [`fault`] — deterministic seed-derived fault injection (shot-batch
//!   loss, readout bursts, calibration drift, targeted kills) for
//!   exercising the solver's recovery paths.
//! * [`synth`] — gate-level synthesis of transition operators
//!   (paper Fig. 4's symmetric two-MCP structure).
//! * [`decompose`] — lowering to `{1Q, CX}` and the paper's `34k`
//!   CX-cost model.
//! * [`route`] — coupling maps (linear, heavy-hex) and greedy SWAP
//!   routing ("compiled via Quebec").
//! * [`Device`] — IBM Kyiv/Brisbane/Quebec calibration, timing, and
//!   latency models.
//!
//! # Example: cross-validating the two backends
//!
//! ```
//! use rasengan_qsim::{synth::tau_circuit, DenseState, SparseState, Transition};
//!
//! let u = [1i64, -1, 0];
//! let t = 0.6;
//!
//! // Dense: run the synthesized gate circuit.
//! let mut dense = DenseState::basis_state(3, 0b010);
//! dense.run(&tau_circuit(&u, t, 3));
//!
//! // Sparse: apply Eq. 6 analytically.
//! let mut sparse = SparseState::basis_state(3, 0b010);
//! sparse.apply_transition(&Transition::from_u(&u), t);
//!
//! for label in 0..8u64 {
//!     assert!(dense
//!         .amplitude(label)
//!         .approx_eq(sparse.amplitude(label as u128), 1e-9));
//! }
//! ```

pub mod batch;
pub mod circuit;
pub mod complex;
pub mod decompose;
pub mod dense;
pub mod density;
pub mod device;
pub mod draw;
pub mod exec;
pub mod fault;
pub mod gate;
pub mod mitigation;
pub mod noise;
pub mod parallel;
pub mod peephole;
pub mod qasm;
pub mod route;
pub mod sparse;
pub mod synth;
pub mod verify;
pub mod wire;

pub use batch::{sample_trajectories, DenseBatch, DenseBatchRunner};
pub use circuit::Circuit;
pub use complex::Complex;
pub use dense::DenseState;
pub use device::Device;
pub use exec::{DenseTrajectoryRunner, Program};
pub use fault::{FaultKind, FaultPlan};
pub use gate::Gate;
pub use noise::NoiseModel;
pub use sparse::{Label, PreparedSampler, SparseState, Transition};
