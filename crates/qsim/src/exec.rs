//! Compiled circuit programs: gate fusion for execute-many workloads.
//!
//! A [`Program`] walks a [`Circuit`] once and compiles it into two
//! complementary forms:
//!
//! * **Fused kernels** for noise-free execution: adjacent single-qubit
//!   gates collapse into one 2×2 matrix per qubit, maximal runs of
//!   diagonal gates (`Z`/`Rz`/`Phase`/`Cz`/`Rzz`/`Cp`/`Mcp`) merge into
//!   one diagonal-phase kernel with precomputed factors, and maximal
//!   runs of permutation gates (`X`/`Y`/`Cx`/`Swap`/`Mcx`) merge into
//!   one label-permutation kernel the sparse backend applies with a
//!   single map rebuild instead of one per gate.
//! * **Per-gate trajectory steps** for noisy execution: every *active*
//!   noise channel attaches after its gate and acts as a fusion
//!   barrier. A channel is active when its depolarizing rate or either
//!   damping rate is nonzero; an inactive channel touches neither the
//!   state nor the RNG, so [`DenseTrajectoryRunner`] fuses maximal runs
//!   of gates whose channels are inactive into the same kernel classes
//!   as the noise-free path, and trajectory sampling still attaches at
//!   exactly the points the gate-by-gate path would. Angles, masks, and
//!   matrices are precomputed once at compile time, the per-trajectory
//!   loop runs allocation-free over plain-old-data ops, and the state
//!   buffer is reused across trajectories.
//!
//! Diagonal and permutation fusion multiply each amplitude by the same
//! factor sequence, in gate order, that gate-by-gate execution would —
//! so those kernels are bit-identical to the unfused path. Only fused
//! 1-qubit matrix products introduce rounding (bounded by the property
//! tests at 1e-9).

use crate::circuit::Circuit;
use crate::complex::Complex;
use crate::dense::{self, DenseState};
use crate::gate::Gate;
use crate::noise::{self, NoiseModel};
use crate::parallel::par_chunks_aligned;
use crate::sparse::{Label, SparseState, UnsupportedGate};
use rand::Rng;

/// Minimum dense amplitude count before fused kernels fan out to
/// threads (mirrors the per-gate kernels in [`crate::dense`]).
const PAR_MIN_AMPS: usize = 1 << 14;

/// One term of a fused diagonal kernel. Factors are precomputed at
/// compile time; application order matches gate order, so the product
/// sequence per amplitude is exactly what gate-by-gate execution does.
#[derive(Clone, Copy, Debug)]
pub enum DiagTerm {
    /// Multiply by `phase` when all `mask` bits are set
    /// (`Z`/`Phase`/`Cz`/`Cp`/`Mcp`).
    MaskPhase {
        /// Required-ones mask.
        mask: Label,
        /// Phase factor applied on match.
        phase: Complex,
    },
    /// `Rz`: `m0` when the bit is clear, `m1` when set.
    BitPair {
        /// The rotated qubit's mask.
        mask: Label,
        /// Factor for bit = 0.
        m0: Complex,
        /// Factor for bit = 1.
        m1: Complex,
    },
    /// `Rzz`: `m0` on even parity of the two bits, `m1` on odd.
    ParityPair {
        /// First qubit mask.
        ma: Label,
        /// Second qubit mask.
        mb: Label,
        /// Factor for even parity.
        m0: Complex,
        /// Factor for odd parity.
        m1: Complex,
    },
}

impl DiagTerm {
    #[inline]
    fn apply(&self, label: Label, amp: &mut Complex) {
        match *self {
            DiagTerm::MaskPhase { mask, phase } => {
                if label & mask == mask {
                    *amp *= phase;
                }
            }
            DiagTerm::BitPair { mask, m0, m1 } => {
                *amp *= if label & mask == 0 { m0 } else { m1 };
            }
            DiagTerm::ParityPair { ma, mb, m0, m1 } => {
                let parity = ((label & ma != 0) as u8) ^ ((label & mb != 0) as u8);
                *amp *= if parity == 0 { m0 } else { m1 };
            }
        }
    }
}

/// One step of a fused label-permutation kernel.
#[derive(Clone, Copy, Debug)]
pub enum PermStep {
    /// Unconditional bit flips (`X`).
    Xor(Label),
    /// Flip `xor` when all `ctrl` bits are set (`Cx`/`Mcx`).
    CondXor {
        /// Control mask (all bits must be set).
        ctrl: Label,
        /// Target mask to flip.
        xor: Label,
    },
    /// Exchange two bit positions (`Swap`).
    SwapBits {
        /// First bit mask.
        ma: Label,
        /// Second bit mask.
        mb: Label,
    },
    /// `Y`: flip the bit and phase by `±i` depending on its prior value.
    YFlip(Label),
}

/// Applies a permutation run to one `(label, amplitude)` pair, walking
/// the steps in gate order.
#[inline]
pub(crate) fn apply_perm_steps(
    steps: &[PermStep],
    mut label: Label,
    mut amp: Complex,
) -> (Label, Complex) {
    for s in steps {
        match *s {
            PermStep::Xor(m) => label ^= m,
            PermStep::CondXor { ctrl, xor } => {
                if label & ctrl == ctrl {
                    label ^= xor;
                }
            }
            PermStep::SwapBits { ma, mb } => {
                let ba = (label & ma != 0) as u8;
                let bb = (label & mb != 0) as u8;
                if ba != bb {
                    label ^= ma | mb;
                }
            }
            PermStep::YFlip(m) => {
                amp *= if label & m == 0 {
                    Complex::I
                } else {
                    -Complex::I
                };
                label ^= m;
            }
        }
    }
    (label, amp)
}

/// A fused execution kernel: the unit of work after compilation.
#[derive(Clone, Debug)]
pub enum Kernel {
    /// A run of single-qubit gates fused into one 2×2 matrix per
    /// touched qubit (in first-touch order). The sparse backend cannot
    /// execute this class; `first` records the offending gate for the
    /// error message.
    OneQ {
        /// `(qubit, fused matrix)` per touched qubit.
        matrices: Vec<(usize, [Complex; 4])>,
        /// Display form of the run's first gate (for error reporting).
        first: String,
    },
    /// A maximal run of diagonal gates: one pass, factors in gate order.
    Diagonal {
        /// Precomputed per-gate factors.
        terms: Vec<DiagTerm>,
    },
    /// A maximal run of permutation gates: one label rebuild.
    Permutation {
        /// Label-transform steps in gate order.
        steps: Vec<PermStep>,
    },
}

/// A single compiled gate for trajectory (noisy) execution, with all
/// masks, angles, and matrices precomputed. Application is bit-identical
/// to [`DenseState::apply`] on the corresponding [`Gate`].
#[derive(Clone, Copy, Debug)]
pub(crate) enum GateOp {
    OneQ {
        q: usize,
        m: [Complex; 4],
    },
    PhasePair {
        q: usize,
        p0: Complex,
        p1: Complex,
    },
    CtrlX {
        cmask: Label,
        tmask: Label,
    },
    CtrlPhase {
        mask: Label,
        phase: Complex,
    },
    SwapQ {
        ma: Label,
        mb: Label,
    },
    RzzQ {
        ma: Label,
        mb: Label,
        minus: Complex,
        plus: Complex,
    },
}

impl GateOp {
    fn apply_dense(&self, state: &mut DenseState) {
        match *self {
            GateOp::OneQ { q, m } => state.apply_1q(q, m),
            GateOp::PhasePair { q, p0, p1 } => state.apply_phase_pair(q, p0, p1),
            GateOp::CtrlX { cmask, tmask } => {
                state.apply_controlled_x_masks(cmask as usize, tmask as usize)
            }
            GateOp::CtrlPhase { mask, phase } => {
                state.apply_controlled_phase_masks(mask as usize, phase)
            }
            GateOp::SwapQ { ma, mb } => state.apply_swap_masks(ma as usize, mb as usize),
            GateOp::RzzQ {
                ma,
                mb,
                minus,
                plus,
            } => state.apply_rzz_masks(ma as usize, mb as usize, minus, plus),
        }
    }
}

/// One trajectory step: a compiled gate plus the metadata its noise
/// barrier needs (touched-qubit range into the program's flat buffer
/// and the arity class selecting `p1` vs `p2`).
#[derive(Clone, Debug)]
pub(crate) struct TrajGate {
    pub(crate) op: GateOp,
    pub(crate) qubits: (u32, u32),
    pub(crate) multi: bool,
}

/// What the compiler is currently accumulating.
enum Pending {
    None,
    OneQ(Vec<(usize, [Complex; 4])>, String),
    Diag(Vec<DiagTerm>),
    Perm(Vec<PermStep>),
}

/// A gate's fusion classification, retained per trajectory step so a
/// noise-aware plan can re-fuse runs whose channels turn out inactive
/// for a particular [`NoiseModel`].
#[derive(Clone, Copy, Debug)]
struct FuseInfo {
    one_q: Option<(usize, [Complex; 4])>,
    diag: Option<DiagTerm>,
    perm: Option<PermStep>,
}

/// One step of a noise-specialized trajectory plan.
#[derive(Clone, Debug)]
pub(crate) enum PlanStep {
    /// A gate whose noise channel is active: apply the compiled op,
    /// then its noise barrier — exactly the gate-by-gate sequence.
    Gate(u32),
    /// A fused run of 1-qubit gates with inactive channels.
    OneQ(Vec<(usize, [Complex; 4])>),
    /// A fused run of diagonal gates with inactive channels.
    Diagonal(Vec<DiagTerm>),
    /// A fused run of permutation gates with inactive channels.
    Permutation(PermRun),
}

/// States small enough to precompute a permutation run into a scatter
/// table (2^22 `u32` entries = 16 MiB; above that the per-amplitude
/// step chain wins on memory).
const PERM_TABLE_MAX_QUBITS: usize = 22;

/// A permutation run for dense plan execution, optionally precomputed
/// into a scatter table so the hot loop is `out[index[l]] = f·amps[l]`
/// instead of re-walking the step chain per amplitude.
#[derive(Clone, Debug)]
pub(crate) struct PermRun {
    /// Label-transform steps in gate order (the fallback above the
    /// table threshold, and the source the table is built from).
    pub(crate) steps: Vec<PermStep>,
    /// Destination label per source label (empty above the threshold).
    pub(crate) index: Vec<u32>,
    /// Amplitude factor per source label — products of the `±i` phases
    /// `Y` flips contribute; empty when every factor is 1.
    pub(crate) factors: Vec<Complex>,
}

impl PermRun {
    fn new(steps: Vec<PermStep>, n_qubits: usize) -> PermRun {
        let mut run = PermRun {
            steps,
            index: Vec::new(),
            factors: Vec::new(),
        };
        if n_qubits > PERM_TABLE_MAX_QUBITS {
            return run;
        }
        let dim = 1usize << n_qubits;
        run.index.reserve_exact(dim);
        run.factors.reserve_exact(dim);
        let mut trivial = true;
        for l in 0..dim {
            let (l2, f) = apply_perm_steps(&run.steps, l as Label, Complex::ONE);
            run.index.push(l2 as u32);
            trivial &= f == Complex::ONE;
            run.factors.push(f);
        }
        if trivial {
            run.factors = Vec::new();
        }
        run
    }
}

/// A circuit compiled into fused kernels (noise-free execution) and
/// precomputed per-gate trajectory steps (noisy execution).
///
/// # Example
///
/// ```
/// use rasengan_qsim::exec::Program;
/// use rasengan_qsim::{Circuit, DenseState};
///
/// let mut c = Circuit::new(2);
/// c.h(0).rz(0, 0.4).rz(1, -0.2).cx(0, 1);
/// let program = Program::compile(&c);
/// assert!(program.kernel_count() < c.len());
/// let mut fused = DenseState::zero_state(2);
/// program.run_dense(&mut fused);
/// let reference = DenseState::from_circuit(&c);
/// for l in 0..4 {
///     assert!(fused.amplitude(l).approx_eq(reference.amplitude(l), 1e-12));
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Program {
    n_qubits: usize,
    kernels: Vec<Kernel>,
    pub(crate) traj: Vec<TrajGate>,
    fuse_info: Vec<FuseInfo>,
    pub(crate) qubit_buf: Vec<usize>,
    gate_count: usize,
}

/// Fusion counters for one trajectory plan, reported by
/// [`Program::fusion_stats`]. Every source gate is accounted exactly
/// once: either it stayed a gate-by-gate step (`barriers` — an active
/// noise channel attaches after it) or it was absorbed into a fused
/// run (`gates_fused`, broken down by run kind), so
/// `gates_fused + barriers == gate_count` always.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Gates in the source circuit.
    pub gate_count: usize,
    /// Gates executed individually because their noise channel is
    /// active (the noise barrier after each one blocks fusion).
    pub barriers: usize,
    /// Gates absorbed into fused runs (sum of the three kinds below).
    pub gates_fused: usize,
    /// Gates absorbed into fused single-qubit matrix runs.
    pub one_q_gates: usize,
    /// Gates absorbed into diagonal runs.
    pub diagonal_gates: usize,
    /// Gates absorbed into permutation runs.
    pub permutation_gates: usize,
    /// Number of fused single-qubit runs.
    pub one_q_runs: usize,
    /// Number of diagonal runs.
    pub diagonal_runs: usize,
    /// Number of permutation runs.
    pub permutation_runs: usize,
    /// Longest diagonal run (in gates).
    pub diagonal_run_len_max: usize,
    /// Longest permutation run (in gates).
    pub permutation_run_len_max: usize,
}

/// The 2×2 matrix of a single-qubit gate (`None` for multi-qubit
/// gates). Matches the matrices [`DenseState::apply`] uses.
fn one_q_matrix(g: &Gate) -> Option<[Complex; 4]> {
    Some(match g {
        Gate::X(_) => dense::x_matrix(),
        Gate::Y(_) => dense::y_matrix(),
        Gate::H(_) => dense::h_matrix(),
        Gate::Rx(_, t) => dense::rx_matrix(*t),
        Gate::Ry(_, t) => dense::ry_matrix(*t),
        Gate::Z(_) => [Complex::ONE, Complex::ZERO, Complex::ZERO, -Complex::ONE],
        Gate::Rz(_, t) => [
            Complex::cis(-t / 2.0),
            Complex::ZERO,
            Complex::ZERO,
            Complex::cis(t / 2.0),
        ],
        Gate::Phase(_, t) => [Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::cis(*t)],
        _ => return None,
    })
}

/// `b · a` as 2×2 row-major matrices (gate `b` applied after `a`).
fn matmul(b: [Complex; 4], a: [Complex; 4]) -> [Complex; 4] {
    [
        b[0] * a[0] + b[1] * a[2],
        b[0] * a[1] + b[1] * a[3],
        b[2] * a[0] + b[3] * a[2],
        b[2] * a[1] + b[3] * a[3],
    ]
}

fn diag_term(g: &Gate) -> Option<DiagTerm> {
    Some(match g {
        Gate::Z(q) => DiagTerm::MaskPhase {
            mask: 1 << q,
            phase: Complex::cis(std::f64::consts::PI),
        },
        Gate::Phase(q, t) => DiagTerm::MaskPhase {
            mask: 1 << q,
            phase: Complex::cis(*t),
        },
        Gate::Rz(q, t) => DiagTerm::BitPair {
            mask: 1 << q,
            m0: Complex::cis(-t / 2.0),
            m1: Complex::cis(t / 2.0),
        },
        Gate::Cz(a, b) => DiagTerm::MaskPhase {
            mask: (1 << a) | (1 << b),
            phase: Complex::cis(std::f64::consts::PI),
        },
        Gate::Cp(a, b, t) => DiagTerm::MaskPhase {
            mask: (1 << a) | (1 << b),
            phase: Complex::cis(*t),
        },
        Gate::Mcp {
            controls,
            target,
            theta,
        } => DiagTerm::MaskPhase {
            mask: controls.iter().fold(1u128 << target, |m, &c| m | (1 << c)),
            phase: Complex::cis(*theta),
        },
        Gate::Rzz(a, b, t) => DiagTerm::ParityPair {
            ma: 1 << a,
            mb: 1 << b,
            m0: Complex::cis(-t / 2.0),
            m1: Complex::cis(t / 2.0),
        },
        _ => return None,
    })
}

fn perm_step(g: &Gate) -> Option<PermStep> {
    Some(match g {
        Gate::X(q) => PermStep::Xor(1 << q),
        Gate::Y(q) => PermStep::YFlip(1 << q),
        Gate::Cx(c, t) => PermStep::CondXor {
            ctrl: 1 << c,
            xor: 1 << t,
        },
        Gate::Mcx { controls, target } => PermStep::CondXor {
            ctrl: controls.iter().fold(0u128, |m, &c| m | (1 << c)),
            xor: 1 << target,
        },
        Gate::Swap(a, b) => PermStep::SwapBits {
            ma: 1 << a,
            mb: 1 << b,
        },
        _ => return None,
    })
}

/// The per-gate trajectory op, with the exact constants
/// [`DenseState::apply`] would compute at application time.
fn gate_op(g: &Gate) -> GateOp {
    match g {
        Gate::X(q) => GateOp::OneQ {
            q: *q,
            m: dense::x_matrix(),
        },
        Gate::Y(q) => GateOp::OneQ {
            q: *q,
            m: dense::y_matrix(),
        },
        Gate::H(q) => GateOp::OneQ {
            q: *q,
            m: dense::h_matrix(),
        },
        Gate::Rx(q, t) => GateOp::OneQ {
            q: *q,
            m: dense::rx_matrix(*t),
        },
        Gate::Ry(q, t) => GateOp::OneQ {
            q: *q,
            m: dense::ry_matrix(*t),
        },
        Gate::Z(q) => GateOp::PhasePair {
            q: *q,
            p0: Complex::ONE,
            p1: -Complex::ONE,
        },
        Gate::Rz(q, t) => GateOp::PhasePair {
            q: *q,
            p0: Complex::cis(-t / 2.0),
            p1: Complex::cis(t / 2.0),
        },
        Gate::Phase(q, t) => GateOp::PhasePair {
            q: *q,
            p0: Complex::ONE,
            p1: Complex::cis(*t),
        },
        Gate::Cx(c, t) => GateOp::CtrlX {
            cmask: 1 << c,
            tmask: 1 << t,
        },
        Gate::Mcx { controls, target } => GateOp::CtrlX {
            cmask: controls.iter().fold(0u128, |m, &c| m | (1 << c)),
            tmask: 1 << target,
        },
        Gate::Cz(a, b) => GateOp::CtrlPhase {
            mask: (1 << a) | (1 << b),
            phase: Complex::cis(std::f64::consts::PI),
        },
        Gate::Cp(a, b, t) => GateOp::CtrlPhase {
            mask: (1 << a) | (1 << b),
            phase: Complex::cis(*t),
        },
        Gate::Mcp {
            controls,
            target,
            theta,
        } => GateOp::CtrlPhase {
            mask: controls.iter().fold(1u128 << target, |m, &c| m | (1 << c)),
            phase: Complex::cis(*theta),
        },
        Gate::Swap(a, b) => GateOp::SwapQ {
            ma: 1 << a,
            mb: 1 << b,
        },
        Gate::Rzz(a, b, t) => GateOp::RzzQ {
            ma: 1 << a,
            mb: 1 << b,
            minus: Complex::cis(-t / 2.0),
            plus: Complex::cis(t / 2.0),
        },
    }
}

impl Program {
    /// Compiles a circuit: one walk, greedy maximal-run fusion.
    pub fn compile(circuit: &Circuit) -> Program {
        let mut kernels = Vec::new();
        let mut pending = Pending::None;
        let mut traj = Vec::with_capacity(circuit.len());
        let mut fuse_info = Vec::with_capacity(circuit.len());
        let mut qubit_buf = Vec::new();

        let flush = |pending: &mut Pending, kernels: &mut Vec<Kernel>| match std::mem::replace(
            pending,
            Pending::None,
        ) {
            Pending::None => {}
            Pending::OneQ(matrices, first) => kernels.push(Kernel::OneQ { matrices, first }),
            Pending::Diag(terms) => kernels.push(Kernel::Diagonal { terms }),
            Pending::Perm(steps) => kernels.push(Kernel::Permutation { steps }),
        };

        for g in circuit.gates() {
            // Trajectory form: every gate stands alone (noise barriers).
            let start = qubit_buf.len() as u32;
            qubit_buf.extend_from_slice(&g.qubits());
            traj.push(TrajGate {
                op: gate_op(g),
                qubits: (start, qubit_buf.len() as u32),
                multi: g.is_multi_qubit(),
            });
            fuse_info.push(FuseInfo {
                one_q: one_q_matrix(g).map(|m| (g.qubits()[0], m)),
                diag: diag_term(g),
                perm: perm_step(g),
            });

            // Fused form: extend the pending kernel or start a new one.
            if let Pending::OneQ(matrices, _) = &mut pending {
                // An open 1-qubit run absorbs any single-qubit gate.
                if let Some(m) = one_q_matrix(g) {
                    let q = g.qubits()[0];
                    match matrices.iter_mut().find(|(mq, _)| *mq == q) {
                        Some((_, acc)) => *acc = matmul(m, *acc),
                        None => matrices.push((q, m)),
                    }
                    continue;
                }
            }
            if let Some(term) = diag_term(g) {
                match &mut pending {
                    Pending::Diag(terms) => terms.push(term),
                    _ => {
                        flush(&mut pending, &mut kernels);
                        pending = Pending::Diag(vec![term]);
                    }
                }
            } else if let Some(step) = perm_step(g) {
                match &mut pending {
                    Pending::Perm(steps) => steps.push(step),
                    _ => {
                        flush(&mut pending, &mut kernels);
                        pending = Pending::Perm(vec![step]);
                    }
                }
            } else {
                // H/Rx/Ry outside an open 1-qubit run.
                let m = one_q_matrix(g).expect("remaining gates are single-qubit");
                flush(&mut pending, &mut kernels);
                pending = Pending::OneQ(vec![(g.qubits()[0], m)], g.to_string());
            }
        }
        flush(&mut pending, &mut kernels);

        if let Some(reg) = rasengan_obs::metrics::try_global() {
            reg.counter_add("qsim.fuse.programs", 1);
            reg.counter_add("qsim.fuse.gates", circuit.len() as u64);
            reg.counter_add("qsim.fuse.kernels", kernels.len() as u64);
        }

        Program {
            n_qubits: circuit.n_qubits(),
            kernels,
            traj,
            fuse_info,
            qubit_buf,
            gate_count: circuit.len(),
        }
    }

    /// Builds a trajectory plan specialized to which noise channels are
    /// active: gates with active channels stay gate-by-gate steps (their
    /// noise barrier follows each one), maximal runs of inactive-channel
    /// gates re-fuse through the same classification the kernel compiler
    /// uses. With every channel active this degenerates to one
    /// [`PlanStep::Gate`] per gate — exactly today's unfused sequence.
    pub(crate) fn build_traj_plan(&self, act1: bool, act2: bool) -> Vec<PlanStep> {
        self.build_traj_plan_stats(act1, act2).0
    }

    /// [`build_traj_plan`](Self::build_traj_plan) plus fusion counters,
    /// tallied during the same walk so the stats can never drift from
    /// the plan that actually executes.
    fn build_traj_plan_stats(&self, act1: bool, act2: bool) -> (Vec<PlanStep>, FusionStats) {
        let mut stats = FusionStats {
            gate_count: self.gate_count,
            ..FusionStats::default()
        };
        let mut steps = Vec::new();
        let mut pending = Pending::None;

        let n_qubits = self.n_qubits;
        let flush = |pending: &mut Pending, steps: &mut Vec<PlanStep>| match std::mem::replace(
            pending,
            Pending::None,
        ) {
            Pending::None => {}
            Pending::OneQ(matrices, _) => steps.push(PlanStep::OneQ(matrices)),
            Pending::Diag(terms) => steps.push(PlanStep::Diagonal(terms)),
            Pending::Perm(run) => steps.push(PlanStep::Permutation(PermRun::new(run, n_qubits))),
        };

        for (i, (tg, fi)) in self.traj.iter().zip(&self.fuse_info).enumerate() {
            let active = if tg.multi { act2 } else { act1 };
            if active {
                flush(&mut pending, &mut steps);
                steps.push(PlanStep::Gate(i as u32));
                stats.barriers += 1;
                continue;
            }
            if let Pending::OneQ(matrices, _) = &mut pending {
                if let Some((q, m)) = fi.one_q {
                    match matrices.iter_mut().find(|(mq, _)| *mq == q) {
                        Some((_, acc)) => *acc = matmul(m, *acc),
                        None => matrices.push((q, m)),
                    }
                    stats.one_q_gates += 1;
                    continue;
                }
            }
            if let Some(term) = fi.diag {
                stats.diagonal_gates += 1;
                match &mut pending {
                    Pending::Diag(terms) => {
                        terms.push(term);
                        stats.diagonal_run_len_max = stats.diagonal_run_len_max.max(terms.len());
                    }
                    _ => {
                        flush(&mut pending, &mut steps);
                        pending = Pending::Diag(vec![term]);
                        stats.diagonal_runs += 1;
                        stats.diagonal_run_len_max = stats.diagonal_run_len_max.max(1);
                    }
                }
            } else if let Some(step) = fi.perm {
                stats.permutation_gates += 1;
                match &mut pending {
                    Pending::Perm(run) => {
                        run.push(step);
                        stats.permutation_run_len_max =
                            stats.permutation_run_len_max.max(run.len());
                    }
                    _ => {
                        flush(&mut pending, &mut steps);
                        pending = Pending::Perm(vec![step]);
                        stats.permutation_runs += 1;
                        stats.permutation_run_len_max = stats.permutation_run_len_max.max(1);
                    }
                }
            } else {
                let (q, m) = fi.one_q.expect("remaining gates are single-qubit");
                flush(&mut pending, &mut steps);
                pending = Pending::OneQ(vec![(q, m)], String::new());
                stats.one_q_runs += 1;
                stats.one_q_gates += 1;
            }
        }
        flush(&mut pending, &mut steps);
        stats.gates_fused = stats.one_q_gates + stats.diagonal_gates + stats.permutation_gates;
        (steps, stats)
    }

    /// Fusion counters for the trajectory plan this program would run
    /// under `noise`: how many gates execute gate-by-gate (noise
    /// barriers), how many fuse into which kind of run, and the longest
    /// diagonal/permutation runs. The invariant
    /// `gates_fused + barriers == gate_count` holds for every program
    /// and noise model (property-tested in `tests/properties.rs`).
    pub fn fusion_stats(&self, noise: &NoiseModel) -> FusionStats {
        let (act1, act2) = channel_activity(noise);
        self.build_traj_plan_stats(act1, act2).1
    }

    /// Number of steps in the trajectory plan [`DenseTrajectoryRunner`]
    /// would execute under `noise` (equals [`Self::gate_count`] when
    /// every channel is active; shrinks toward [`Self::kernel_count`] as
    /// channels deactivate).
    pub fn traj_plan_len(&self, noise: &NoiseModel) -> usize {
        let (act1, act2) = channel_activity(noise);
        self.build_traj_plan(act1, act2).len()
    }

    /// Number of qubits the compiled circuit acts on.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of gates in the source circuit.
    pub fn gate_count(&self) -> usize {
        self.gate_count
    }

    /// Number of fused kernels (≤ gate count; the fusion ratio).
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Whether every kernel is executable on the sparse backend (no
    /// fused 1-qubit matrix runs).
    pub fn is_sparse_safe(&self) -> bool {
        !self
            .kernels
            .iter()
            .any(|k| matches!(k, Kernel::OneQ { .. }))
    }

    /// Executes the fused kernels on a dense state (noise-free path).
    ///
    /// # Panics
    ///
    /// Panics if the state width does not match the program.
    pub fn run_dense(&self, state: &mut DenseState) {
        assert_eq!(state.n_qubits(), self.n_qubits, "state width mismatch");
        let mut scratch: Vec<Complex> = Vec::new();
        for kernel in &self.kernels {
            match kernel {
                Kernel::OneQ { matrices, .. } => apply_one_q_dense(state, matrices),
                Kernel::Diagonal { terms } => apply_diagonal_dense(state, terms),
                Kernel::Permutation { steps } => {
                    apply_permutation_dense(state, steps, &mut scratch)
                }
            }
        }
    }

    /// Executes the fused kernels on a sparse state.
    ///
    /// Diagonal runs multiply each amplitude by the per-gate factors in
    /// gate order and permutation runs rebuild the label map once — both
    /// bit-identical to gate-by-gate application.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedGate`] (naming the run's first gate) if the
    /// program contains a fused 1-qubit matrix kernel; the state is left
    /// as of the preceding kernel.
    pub fn run_sparse(&self, state: &mut SparseState) -> Result<(), UnsupportedGate> {
        for kernel in &self.kernels {
            match kernel {
                Kernel::OneQ { first, .. } => {
                    return Err(UnsupportedGate {
                        gate: first.clone(),
                    })
                }
                Kernel::Diagonal { terms } => {
                    for (l, a) in state.amps.iter_mut() {
                        for t in terms {
                            t.apply(*l, a);
                        }
                    }
                }
                Kernel::Permutation { steps } => {
                    state.scratch.clear();
                    state.scratch.reserve(state.amps.len());
                    for (&l, &a) in &state.amps {
                        let (l2, amp) = apply_perm_steps(steps, l, a);
                        *state.scratch.entry(l2).or_insert(Complex::ZERO) += amp;
                    }
                    std::mem::swap(&mut state.amps, &mut state.scratch);
                    state.scratch.clear();
                }
            }
        }
        Ok(())
    }

    /// Runs one noisy trajectory into a fresh state (convenience for
    /// single runs; batch callers should reuse a
    /// [`DenseTrajectoryRunner`]).
    pub fn dense_trajectory(&self, noise: &NoiseModel, rng: &mut impl Rng) -> DenseState {
        let mut runner = DenseTrajectoryRunner::new(self);
        runner.run(noise, rng);
        runner.into_state()
    }
}

/// Applies a fused 1-qubit kernel: one matrix pass per touched qubit.
fn apply_one_q_dense(state: &mut DenseState, matrices: &[(usize, [Complex; 4])]) {
    for &(q, m) in matrices {
        state.apply_1q(q, m);
    }
}

/// Applies a fused diagonal kernel: one pass, factors in gate order.
fn apply_diagonal_dense(state: &mut DenseState, terms: &[DiagTerm]) {
    let amps = state.amps_vec_mut();
    par_chunks_aligned(amps, 1, PAR_MIN_AMPS, |base, chunk| {
        for (i, a) in chunk.iter_mut().enumerate() {
            let label = (base + i) as Label;
            for t in terms {
                t.apply(label, a);
            }
        }
    });
}

/// Applies a fused permutation kernel: one label rebuild via `scratch`.
fn apply_permutation_dense(state: &mut DenseState, steps: &[PermStep], scratch: &mut Vec<Complex>) {
    let amps = state.amps_vec_mut();
    scratch.clear();
    scratch.resize(amps.len(), Complex::ZERO);
    for (i, &a) in amps.iter().enumerate() {
        let (l, amp) = apply_perm_steps(steps, i as Label, a);
        scratch[l as usize] = amp;
    }
    std::mem::swap(amps, scratch);
}

/// Applies a plan permutation run: a single scatter through the
/// precomputed table when one exists (the permutation is a bijection,
/// so every `scratch` slot is written and no zero-fill is needed),
/// otherwise the per-amplitude step chain.
fn apply_perm_run_dense(state: &mut DenseState, run: &PermRun, scratch: &mut Vec<Complex>) {
    if run.index.is_empty() {
        return apply_permutation_dense(state, &run.steps, scratch);
    }
    let amps = state.amps_vec_mut();
    scratch.resize(amps.len(), Complex::ZERO);
    if run.factors.is_empty() {
        for (i, &a) in amps.iter().enumerate() {
            scratch[run.index[i] as usize] = a;
        }
    } else {
        for (i, &a) in amps.iter().enumerate() {
            scratch[run.index[i] as usize] = run.factors[i] * a;
        }
    }
    std::mem::swap(amps, scratch);
}

/// Which gate-noise channels can touch the state or the RNG:
/// `(1-qubit active, multi-qubit active)`. Damping applies after every
/// gate regardless of arity, so either damping rate activates both.
/// Readout error attaches at measurement, not at gates, so it never
/// creates a barrier.
pub(crate) fn channel_activity(noise: &NoiseModel) -> (bool, bool) {
    let damping = noise.amplitude_damping > 0.0 || noise.phase_damping > 0.0;
    (noise.p1 > 0.0 || damping, noise.p2 > 0.0 || damping)
}

/// Executes a compiled program's trajectory steps repeatedly, reusing
/// one state buffer across trajectories (no per-shot allocation).
///
/// The runner lazily builds (and caches) a plan specialized to the
/// noise model's channel activity. An inactive channel — zero
/// depolarizing rate and zero damping — neither touches the state nor
/// draws from the RNG in [`noise::run_dense_trajectory`], so gates
/// under inactive channels re-fuse into kernels while every active
/// channel still attaches at exactly the gate-by-gate points. For a
/// given RNG state, [`run`](Self::run) therefore consumes RNG draws
/// identically to [`noise::run_dense_trajectory`]; states are
/// bit-identical when every channel is active (no fusion engages) and
/// within the documented 1e-9 fused-matrix rounding otherwise.
pub struct DenseTrajectoryRunner<'p> {
    program: &'p Program,
    state: DenseState,
    plan: Vec<PlanStep>,
    plan_activity: Option<(bool, bool)>,
    scratch: Vec<Complex>,
}

impl<'p> DenseTrajectoryRunner<'p> {
    /// Creates a runner with a zeroed reusable state buffer.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds [`DenseState::MAX_QUBITS`].
    pub fn new(program: &'p Program) -> Self {
        DenseTrajectoryRunner {
            state: DenseState::zero_state(program.n_qubits),
            program,
            plan: Vec::new(),
            plan_activity: None,
            scratch: Vec::new(),
        }
    }

    /// Runs one trajectory from `|0…0⟩`, returning the final state.
    pub fn run(&mut self, noise: &NoiseModel, rng: &mut impl Rng) -> &DenseState {
        let activity = channel_activity(noise);
        if self.plan_activity != Some(activity) {
            self.plan = self.program.build_traj_plan(activity.0, activity.1);
            self.plan_activity = Some(activity);
            if let Some(reg) = rasengan_obs::metrics::try_global() {
                reg.counter_add("qsim.traj_plan.miss", 1);
            }
        } else if let Some(reg) = rasengan_obs::metrics::try_global() {
            reg.counter_add("qsim.traj_plan.hit", 1);
        }
        self.state.reset_zero();
        for step in &self.plan {
            match step {
                PlanStep::Gate(i) => {
                    let tg = &self.program.traj[*i as usize];
                    tg.op.apply_dense(&mut self.state);
                    let p = if tg.multi { noise.p2 } else { noise.p1 };
                    let qs = &self.program.qubit_buf[tg.qubits.0 as usize..tg.qubits.1 as usize];
                    noise::apply_gate_noise_dense(&mut self.state, qs, p, noise, rng);
                }
                PlanStep::OneQ(matrices) => apply_one_q_dense(&mut self.state, matrices),
                PlanStep::Diagonal(terms) => apply_diagonal_dense(&mut self.state, terms),
                PlanStep::Permutation(run) => {
                    apply_perm_run_dense(&mut self.state, run, &mut self.scratch)
                }
            }
        }
        &self.state
    }

    /// The state left by the last [`run`](Self::run).
    pub fn state(&self) -> &DenseState {
        &self.state
    }

    /// Consumes the runner, returning the state buffer.
    pub fn into_state(self) -> DenseState {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dense_distance(a: &DenseState, b: &DenseState) -> f64 {
        a.amplitudes()
            .iter()
            .zip(b.amplitudes())
            .map(|(x, y)| (*x - *y).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// A HEA-shaped circuit: Ry/Rz columns with CX entangler rings.
    fn hea_circuit(n: usize, layers: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for l in 0..layers {
            for q in 0..n {
                c.ry(q, 0.3 + 0.1 * (l * n + q) as f64)
                    .rz(q, -0.2 + 0.05 * q as f64);
            }
            for q in 0..n - 1 {
                c.cx(q, q + 1);
            }
        }
        c
    }

    /// A sparse-safe circuit mixing permutation and diagonal runs.
    fn sparse_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.x(0)
            .cx(0, 1)
            .push(Gate::Swap(1, 2))
            .push(Gate::Y(2))
            .rz(0, 0.7)
            .phase(1, -0.4)
            .push(Gate::Z(2))
            .rzz(0, 2, 0.9)
            .cp(1, 2, 0.3)
            .mcp(vec![0, 1], 2, -0.8)
            .mcx(vec![0, 2], 1)
            .x(2);
        c
    }

    #[test]
    fn fusion_shrinks_hea_circuit() {
        let c = hea_circuit(4, 3);
        let p = Program::compile(&c);
        assert_eq!(p.gate_count(), c.len());
        // Each layer fuses into one OneQ kernel + one Permutation run.
        assert_eq!(p.kernel_count(), 6);
        assert!(!p.is_sparse_safe());
    }

    #[test]
    fn fused_dense_matches_gate_by_gate_hea() {
        let c = hea_circuit(5, 2);
        let p = Program::compile(&c);
        let reference = DenseState::from_circuit(&c);
        let mut fused = DenseState::zero_state(5);
        p.run_dense(&mut fused);
        assert!(dense_distance(&fused, &reference) < 1e-12);
    }

    #[test]
    fn fused_dense_matches_gate_by_gate_mixed() {
        let c = sparse_circuit(3);
        let p = Program::compile(&c);
        let reference = DenseState::from_circuit(&c);
        let mut fused = DenseState::zero_state(3);
        p.run_dense(&mut fused);
        assert!(dense_distance(&fused, &reference) < 1e-12);
    }

    #[test]
    fn fused_sparse_matches_gate_by_gate() {
        let c = sparse_circuit(3);
        let p = Program::compile(&c);
        assert!(p.is_sparse_safe());
        // Far fewer kernels than gates: one perm run, one diag run, ...
        assert!(p.kernel_count() <= 4, "got {}", p.kernel_count());
        let mut fused = SparseState::basis_state(3, 0b101);
        let mut reference = SparseState::basis_state(3, 0b101);
        p.run_sparse(&mut fused).unwrap();
        for g in c.gates() {
            reference.apply(g).unwrap();
        }
        for (l, pr) in reference.distribution() {
            assert!(fused.amplitude(l).approx_eq(reference.amplitude(l), 1e-12));
            assert!((fused.probability(l) - pr).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_rejects_one_q_kernels() {
        let mut c = Circuit::new(2);
        c.x(0).h(1);
        let p = Program::compile(&c);
        let mut s = SparseState::basis_state(2, 0);
        let err = p.run_sparse(&mut s).unwrap_err();
        assert!(err.to_string().contains("h q1"));
    }

    #[test]
    fn trajectory_runner_matches_unfused_bitwise() {
        let mut c = hea_circuit(4, 2);
        c.rzz(0, 3, 0.4).mcp(vec![0, 1], 2, 0.6);
        let noise = NoiseModel::ibm_like(0.02, 0.08, 0.01).with_amplitude_damping(0.01);
        let p = Program::compile(&c);
        let mut runner = DenseTrajectoryRunner::new(&p);
        for seed in 0..30 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let reference = noise::run_dense_trajectory(&c, &noise, &mut rng_a);
            let fused = runner.run(&noise, &mut rng_b);
            assert_eq!(
                fused.amplitudes(),
                reference.amplitudes(),
                "trajectory diverged at seed {seed}"
            );
            // Identical RNG consumption: the next draw must agree.
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
        }
    }

    #[test]
    fn plan_collapses_to_gate_by_gate_when_all_channels_active() {
        let c = hea_circuit(4, 2);
        let p = Program::compile(&c);
        let full = NoiseModel::ibm_like(4e-4, 1.2e-2, 1.3e-2)
            .with_amplitude_damping(3e-4)
            .with_phase_damping(3e-4);
        assert_eq!(p.traj_plan_len(&full), p.gate_count());
        // Damping alone activates both channel classes.
        let damp = NoiseModel::noise_free().with_phase_damping(1e-3);
        assert_eq!(p.traj_plan_len(&damp), p.gate_count());
    }

    #[test]
    fn plan_fuses_fully_under_readout_only_noise() {
        let c = hea_circuit(4, 3);
        let p = Program::compile(&c);
        // Readout error attaches at measurement, so no gate is a
        // barrier: the plan matches the noise-free kernel sequence.
        let readout = NoiseModel::ibm_like(0.0, 0.0, 0.02);
        assert_eq!(p.traj_plan_len(&readout), p.kernel_count());
        let mut runner = DenseTrajectoryRunner::new(&p);
        for seed in 0..10 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let reference = noise::run_dense_trajectory(&c, &readout, &mut rng_a);
            let fused = runner.run(&readout, &mut rng_b);
            assert!(dense_distance(fused, &reference) < 1e-9);
            // Neither path draws during state evolution.
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
        }
    }

    #[test]
    fn plan_keeps_active_barriers_and_fuses_quiet_runs() {
        // 2Q-error-dominated model: CX gates stay barriers, the 1-qubit
        // columns between them re-fuse.
        let c = hea_circuit(4, 2);
        let p = Program::compile(&c);
        let noise = NoiseModel::ibm_like(0.0, 0.01, 0.02);
        let len = p.traj_plan_len(&noise);
        assert!(len < p.gate_count(), "no fusion happened ({len})");
        assert!(len > p.kernel_count(), "CX barriers vanished ({len})");
        let mut runner = DenseTrajectoryRunner::new(&p);
        for seed in 0..20 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let reference = noise::run_dense_trajectory(&c, &noise, &mut rng_a);
            let fused = runner.run(&noise, &mut rng_b);
            assert!(dense_distance(fused, &reference) < 1e-9);
            assert_eq!(
                rng_a.gen::<u64>(),
                rng_b.gen::<u64>(),
                "RNG streams diverged at seed {seed}"
            );
        }
    }

    #[test]
    fn diagonal_fusion_is_bit_identical_on_dense() {
        // Pure diagonal circuit: the fused kernel multiplies the same
        // factor sequence per amplitude, so equality is exact. (`Z` is
        // excluded: dense gate-by-gate uses the exact −1 while the fused
        // term uses `cis(π)` to stay bit-identical with the sparse
        // backend — that one gate is covered by the 1e-9 differential
        // property tests instead.)
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // spread amplitude first
        let prep = DenseState::from_circuit(&c);
        let mut d = Circuit::new(3);
        d.rz(0, 0.3)
            .rzz(0, 1, -0.7)
            .cp(1, 2, 0.25)
            .phase(2, 1.1)
            .push(Gate::Cz(0, 2));
        let p = Program::compile(&d);
        assert_eq!(p.kernel_count(), 1);
        let mut fused = prep.clone();
        p.run_dense(&mut fused);
        let mut reference = prep;
        reference.run(&d);
        assert_eq!(fused.amplitudes(), reference.amplitudes());
    }
}
