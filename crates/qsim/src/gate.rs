//! Gate set and circuit intermediate representation.
//!
//! The IR covers everything the four algorithms need:
//!
//! * Rasengan circuits: `X`, `CX`, multi-controlled phase ([`Gate::Mcp`])
//!   and the synthesized transition operators (paper Fig. 4).
//! * Choco-Q: the same plus diagonal phase rotations.
//! * P-QAOA: `H`, `Rx`, `Rz`, `Rzz`.
//! * HEA: `Ry`, `Rz`, `CX` entanglers.

use std::fmt;

/// A single quantum gate acting on named qubit indices.
///
/// Qubit indices are `usize` positions into the circuit's register; bit
/// `i` of a basis-state label corresponds to qubit `i` (qubit 0 is the
/// least-significant bit).
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    /// Pauli-X (bit flip).
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z.
    Z(usize),
    /// Hadamard.
    H(usize),
    /// Rotation about X: `exp(-i θ X / 2)`.
    Rx(usize, f64),
    /// Rotation about Y: `exp(-i θ Y / 2)`.
    Ry(usize, f64),
    /// Rotation about Z: `exp(-i θ Z / 2)`.
    Rz(usize, f64),
    /// Phase gate `diag(1, e^{iθ})`.
    Phase(usize, f64),
    /// Controlled-X (control, target).
    Cx(usize, usize),
    /// Controlled-Z.
    Cz(usize, usize),
    /// Swap two qubits.
    Swap(usize, usize),
    /// Two-qubit ZZ rotation `exp(-i θ Z⊗Z / 2)` (QAOA objective terms).
    Rzz(usize, usize, f64),
    /// Controlled phase (control, target, θ).
    Cp(usize, usize, f64),
    /// Multi-controlled phase: applies `e^{iθ}` when all `controls` and
    /// the `target` are `|1⟩`.
    Mcp {
        /// Control qubits (all must be `|1⟩`).
        controls: Vec<usize>,
        /// Target qubit.
        target: usize,
        /// Phase angle.
        theta: f64,
    },
    /// Multi-controlled X (Toffoli generalization).
    Mcx {
        /// Control qubits (all must be `|1⟩`).
        controls: Vec<usize>,
        /// Target qubit.
        target: usize,
    },
}

/// A gate's qubit list, stored inline for gates touching at most four
/// qubits (every gate except wide `Mcp`/`Mcx`). Dereferences to
/// `&[usize]`, so it drops into every place the old `Vec<usize>` went —
/// but the hot trajectory loops no longer allocate per gate.
#[derive(Clone, Debug)]
pub enum Qubits {
    /// Up to four qubit indices stored inline (`buf[..len]`).
    Inline([usize; 4], usize),
    /// Spill storage for multi-controlled gates with > 3 controls.
    Heap(Vec<usize>),
}

impl Qubits {
    /// The qubit indices as a slice.
    pub fn as_slice(&self) -> &[usize] {
        match self {
            Qubits::Inline(buf, len) => &buf[..*len],
            Qubits::Heap(v) => v,
        }
    }
}

impl std::ops::Deref for Qubits {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        self.as_slice()
    }
}

impl PartialEq for Qubits {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Vec<usize>> for Qubits {
    fn eq(&self, other: &Vec<usize>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl IntoIterator for Qubits {
    type Item = usize;
    type IntoIter = QubitsIter;

    fn into_iter(self) -> QubitsIter {
        QubitsIter { qs: self, next: 0 }
    }
}

impl<'a> IntoIterator for &'a Qubits {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Owning iterator over a gate's qubit indices.
pub struct QubitsIter {
    qs: Qubits,
    next: usize,
}

impl Iterator for QubitsIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let item = self.qs.as_slice().get(self.next).copied();
        self.next += 1;
        item
    }
}

impl Gate {
    /// The qubits this gate touches, in canonical order.
    pub fn qubits(&self) -> Qubits {
        match self {
            Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::H(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _)
            | Gate::Phase(q, _) => Qubits::Inline([*q, 0, 0, 0], 1),
            Gate::Cx(a, b) | Gate::Cz(a, b) | Gate::Swap(a, b) => Qubits::Inline([*a, *b, 0, 0], 2),
            Gate::Rzz(a, b, _) | Gate::Cp(a, b, _) => Qubits::Inline([*a, *b, 0, 0], 2),
            Gate::Mcp {
                controls, target, ..
            }
            | Gate::Mcx { controls, target } => {
                if controls.len() <= 3 {
                    let mut buf = [0usize; 4];
                    buf[..controls.len()].copy_from_slice(controls);
                    buf[controls.len()] = *target;
                    Qubits::Inline(buf, controls.len() + 1)
                } else {
                    let mut qs = controls.clone();
                    qs.push(*target);
                    Qubits::Heap(qs)
                }
            }
        }
    }

    /// Number of qubits the gate acts on.
    pub fn arity(&self) -> usize {
        match self {
            Gate::X(_)
            | Gate::Y(_)
            | Gate::Z(_)
            | Gate::H(_)
            | Gate::Rx(..)
            | Gate::Ry(..)
            | Gate::Rz(..)
            | Gate::Phase(..) => 1,
            Gate::Cx(..) | Gate::Cz(..) | Gate::Swap(..) | Gate::Rzz(..) | Gate::Cp(..) => 2,
            Gate::Mcp { controls, .. } | Gate::Mcx { controls, .. } => controls.len() + 1,
        }
    }

    /// Whether the gate entangles two or more qubits (the depth metric
    /// the paper reports counts these).
    pub fn is_multi_qubit(&self) -> bool {
        self.arity() >= 2
    }

    /// Whether the gate is diagonal in the computational basis.
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::Z(_)
                | Gate::Rz(..)
                | Gate::Phase(..)
                | Gate::Cz(..)
                | Gate::Rzz(..)
                | Gate::Cp(..)
                | Gate::Mcp { .. }
        )
    }

    /// Whether the gate maps computational basis states to computational
    /// basis states (possibly with a phase) — the class the sparse
    /// simulator handles natively.
    pub fn is_classical_action(&self) -> bool {
        self.is_diagonal()
            || matches!(
                self,
                Gate::X(_) | Gate::Y(_) | Gate::Cx(..) | Gate::Swap(..) | Gate::Mcx { .. }
            )
    }

    /// The inverse gate.
    pub fn inverse(&self) -> Gate {
        match self {
            Gate::Rx(q, t) => Gate::Rx(*q, -t),
            Gate::Ry(q, t) => Gate::Ry(*q, -t),
            Gate::Rz(q, t) => Gate::Rz(*q, -t),
            Gate::Phase(q, t) => Gate::Phase(*q, -t),
            Gate::Rzz(a, b, t) => Gate::Rzz(*a, *b, -t),
            Gate::Cp(a, b, t) => Gate::Cp(*a, *b, -t),
            Gate::Mcp {
                controls,
                target,
                theta,
            } => Gate::Mcp {
                controls: controls.clone(),
                target: *target,
                theta: -theta,
            },
            // Self-inverse gates.
            other => other.clone(),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::X(q) => write!(f, "x q{q}"),
            Gate::Y(q) => write!(f, "y q{q}"),
            Gate::Z(q) => write!(f, "z q{q}"),
            Gate::H(q) => write!(f, "h q{q}"),
            Gate::Rx(q, t) => write!(f, "rx({t:.4}) q{q}"),
            Gate::Ry(q, t) => write!(f, "ry({t:.4}) q{q}"),
            Gate::Rz(q, t) => write!(f, "rz({t:.4}) q{q}"),
            Gate::Phase(q, t) => write!(f, "p({t:.4}) q{q}"),
            Gate::Cx(c, t) => write!(f, "cx q{c}, q{t}"),
            Gate::Cz(a, b) => write!(f, "cz q{a}, q{b}"),
            Gate::Swap(a, b) => write!(f, "swap q{a}, q{b}"),
            Gate::Rzz(a, b, t) => write!(f, "rzz({t:.4}) q{a}, q{b}"),
            Gate::Cp(a, b, t) => write!(f, "cp({t:.4}) q{a}, q{b}"),
            Gate::Mcp {
                controls,
                target,
                theta,
            } => {
                write!(f, "mcp({theta:.4}) {controls:?} -> q{target}")
            }
            Gate::Mcx { controls, target } => write!(f, "mcx {controls:?} -> q{target}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubits_and_arity() {
        assert_eq!(Gate::X(3).qubits(), vec![3]);
        assert_eq!(Gate::Cx(0, 2).arity(), 2);
        let mcp = Gate::Mcp {
            controls: vec![0, 1],
            target: 4,
            theta: 0.5,
        };
        assert_eq!(mcp.qubits(), vec![0, 1, 4]);
        assert_eq!(mcp.arity(), 3);
        assert!(mcp.is_multi_qubit());
        assert!(!Gate::H(0).is_multi_qubit());
    }

    #[test]
    fn wide_mcx_spills_to_heap() {
        let mcx = Gate::Mcx {
            controls: vec![0, 1, 2, 3, 4],
            target: 5,
        };
        assert_eq!(mcx.qubits(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(mcx.arity(), 6);
        assert!(matches!(mcx.qubits(), Qubits::Heap(_)));
        // Owning iteration yields the same order as the slice view.
        let collected: Vec<usize> = mcx.qubits().into_iter().collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 4, 5]);
        assert!(matches!(Gate::Cx(0, 1).qubits(), Qubits::Inline(_, 2)));
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::Rz(0, 0.3).is_diagonal());
        assert!(Gate::Cp(0, 1, 0.3).is_diagonal());
        assert!(!Gate::Rx(0, 0.3).is_diagonal());
        assert!(!Gate::Cx(0, 1).is_diagonal());
    }

    #[test]
    fn classical_action_classification() {
        assert!(Gate::X(0).is_classical_action());
        assert!(Gate::Mcx {
            controls: vec![0],
            target: 1
        }
        .is_classical_action());
        assert!(Gate::Mcp {
            controls: vec![0],
            target: 1,
            theta: 1.0
        }
        .is_classical_action());
        assert!(!Gate::H(0).is_classical_action());
        assert!(!Gate::Ry(0, 0.1).is_classical_action());
    }

    #[test]
    fn inverse_negates_angles() {
        assert_eq!(Gate::Rx(1, 0.7).inverse(), Gate::Rx(1, -0.7));
        assert_eq!(Gate::Cx(0, 1).inverse(), Gate::Cx(0, 1));
        let mcp = Gate::Mcp {
            controls: vec![2],
            target: 0,
            theta: 0.9,
        };
        match mcp.inverse() {
            Gate::Mcp { theta, .. } => assert!((theta + 0.9).abs() < 1e-15),
            other => panic!("unexpected inverse {other:?}"),
        }
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(format!("{}", Gate::Cx(0, 1)), "cx q0, q1");
        assert!(format!("{}", Gate::Rz(2, 0.5)).starts_with("rz(0.5000)"));
    }
}
