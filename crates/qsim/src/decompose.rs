//! Gate decomposition to the `{1Q, CX}` native set and the paper's
//! CX-cost model.
//!
//! Two distinct tools live here:
//!
//! 1. **Exact decomposition** ([`decompose_gate`], [`decompose_circuit`])
//!    — textbook recursions that lower `MCP`/`MCX`/`Cp`/`Cz`/`Rzz`/`Swap`
//!    to CX + single-qubit gates. Exponential in control count (no
//!    ancillas), used to *verify* synthesized circuits on small widths.
//! 2. **Cost model** ([`tau_cx_cost`], [`mcp_cx_cost`]) — the linear
//!    `34k` CX count per transition operator the paper adopts from the
//!    neutral-atom native-gate construction [Graham et al., Nature'22],
//!    used for all reported depth metrics.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// CX-gate cost of one transition operator `τ(u, t)` whose basis vector
/// has `k` nonzero entries (paper §3.2: "this decomposition ensures the
/// linear complexity that contains 34k CX gates").
///
/// # Example
///
/// ```
/// use rasengan_qsim::decompose::tau_cx_cost;
/// assert_eq!(tau_cx_cost(3), 102);
/// assert_eq!(tau_cx_cost(0), 0);
/// ```
pub fn tau_cx_cost(k: usize) -> usize {
    34 * k
}

/// CX cost of a multi-controlled phase gate with `c` controls under the
/// same linear-cost native construction (interpolated from the τ model:
/// a τ on `k` qubits contains two MCPs on `k-1` controls plus `2(k-1)`
/// CX, so one MCP costs `16c` CX).
pub fn mcp_cx_cost(c: usize) -> usize {
    16 * c
}

/// Lowers one gate to the `{X, Y, Z, H, Rx, Ry, Rz, Phase, Cx}` set.
///
/// `MCX`/`MCP` recursions are ancilla-free and therefore exponential in
/// the number of controls; intended for verification at small widths
/// (the depth metrics use [`tau_cx_cost`] instead).
pub fn decompose_gate(gate: &Gate) -> Vec<Gate> {
    match gate {
        Gate::Cz(a, b) => vec![Gate::H(*b), Gate::Cx(*a, *b), Gate::H(*b)],
        Gate::Swap(a, b) => vec![Gate::Cx(*a, *b), Gate::Cx(*b, *a), Gate::Cx(*a, *b)],
        Gate::Rzz(a, b, t) => vec![Gate::Cx(*a, *b), Gate::Rz(*b, *t), Gate::Cx(*a, *b)],
        Gate::Cp(c, t, theta) => vec![
            Gate::Phase(*c, theta / 2.0),
            Gate::Cx(*c, *t),
            Gate::Phase(*t, -theta / 2.0),
            Gate::Cx(*c, *t),
            Gate::Phase(*t, theta / 2.0),
        ],
        Gate::Mcp {
            controls,
            target,
            theta,
        } => decompose_mcp(controls, *target, *theta),
        Gate::Mcx { controls, target } => decompose_mcx(controls, *target),
        simple => vec![simple.clone()],
    }
}

/// Recursive multi-controlled phase:
/// `MCP(C ∪ {c}, t, θ) = CP(c,t,θ/2) · MCX(C,c) · CP(c,t,−θ/2) ·
/// MCX(C,c) · MCP(C,t,θ/2)`.
fn decompose_mcp(controls: &[usize], target: usize, theta: f64) -> Vec<Gate> {
    match controls.len() {
        0 => vec![Gate::Phase(target, theta)],
        1 => decompose_gate(&Gate::Cp(controls[0], target, theta)),
        _ => {
            let (rest, last) = controls.split_at(controls.len() - 1);
            let c = last[0];
            let mut out = Vec::new();
            out.extend(decompose_gate(&Gate::Cp(c, target, theta / 2.0)));
            out.extend(decompose_mcx(rest, c));
            out.extend(decompose_gate(&Gate::Cp(c, target, -theta / 2.0)));
            out.extend(decompose_mcx(rest, c));
            out.extend(decompose_mcp(rest, target, theta / 2.0));
            out
        }
    }
}

/// Multi-controlled X via `MCX(C, t) = H(t) · MCP(C, t, π) · H(t)`,
/// with the 2-control case specialized to the standard 6-CX Toffoli.
fn decompose_mcx(controls: &[usize], target: usize) -> Vec<Gate> {
    match controls.len() {
        0 => vec![Gate::X(target)],
        1 => vec![Gate::Cx(controls[0], target)],
        2 => toffoli(controls[0], controls[1], target),
        _ => {
            let mut out = vec![Gate::H(target)];
            out.extend(decompose_mcp(controls, target, std::f64::consts::PI));
            out.push(Gate::H(target));
            out
        }
    }
}

/// The standard 6-CX Toffoli decomposition (T-depth 3).
fn toffoli(c1: usize, c2: usize, t: usize) -> Vec<Gate> {
    let pi4 = std::f64::consts::FRAC_PI_4;
    vec![
        Gate::H(t),
        Gate::Cx(c2, t),
        Gate::Phase(t, -pi4),
        Gate::Cx(c1, t),
        Gate::Phase(t, pi4),
        Gate::Cx(c2, t),
        Gate::Phase(t, -pi4),
        Gate::Cx(c1, t),
        Gate::Phase(c2, pi4),
        Gate::Phase(t, pi4),
        Gate::H(t),
        Gate::Cx(c1, c2),
        Gate::Phase(c1, pi4),
        Gate::Phase(c2, -pi4),
        Gate::Cx(c1, c2),
    ]
}

/// Lowers every gate of a circuit to the native set.
///
/// # Example
///
/// ```
/// use rasengan_qsim::{decompose::decompose_circuit, Circuit};
///
/// let mut c = Circuit::new(3);
/// c.mcp(vec![0, 1], 2, 0.7);
/// let native = decompose_circuit(&c);
/// assert!(native.gates().iter().all(|g| g.arity() <= 2));
/// ```
pub fn decompose_circuit(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.n_qubits());
    for g in circuit.gates() {
        for d in decompose_gate(g) {
            out.push(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseState;

    /// Compares two circuits as unitaries by probing all basis states
    /// (up to a shared global phase fixed on the first nonzero column).
    fn assert_same_unitary(a: &Circuit, b: &Circuit, n: usize) {
        for basis in 0..(1u64 << n) {
            let mut sa = DenseState::basis_state(n, basis);
            sa.run(a);
            let mut sb = DenseState::basis_state(n, basis);
            sb.run(b);
            for l in 0..(1u64 << n) {
                assert!(
                    sa.amplitude(l).approx_eq(sb.amplitude(l), 1e-9),
                    "mismatch at column {basis} row {l}: {:?} vs {:?}",
                    sa.amplitude(l),
                    sb.amplitude(l)
                );
            }
        }
    }

    #[test]
    fn cz_decomposition_exact() {
        let mut orig = Circuit::new(2);
        orig.push(Gate::Cz(0, 1));
        let dec = decompose_circuit(&orig);
        assert_same_unitary(&orig, &dec, 2);
    }

    #[test]
    fn swap_decomposition_exact() {
        let mut orig = Circuit::new(2);
        orig.push(Gate::Swap(0, 1));
        let dec = decompose_circuit(&orig);
        assert_same_unitary(&orig, &dec, 2);
    }

    #[test]
    fn rzz_decomposition_exact() {
        let mut orig = Circuit::new(2);
        orig.rzz(0, 1, 0.83);
        let dec = decompose_circuit(&orig);
        assert_same_unitary(&orig, &dec, 2);
    }

    #[test]
    fn cp_decomposition_exact() {
        let mut orig = Circuit::new(2);
        orig.cp(0, 1, 1.21);
        let dec = decompose_circuit(&orig);
        assert_same_unitary(&orig, &dec, 2);
    }

    #[test]
    fn toffoli_decomposition_exact() {
        let mut orig = Circuit::new(3);
        orig.mcx(vec![0, 1], 2);
        let dec = decompose_circuit(&orig);
        assert!(dec.gates().iter().all(|g| g.arity() <= 2));
        assert_same_unitary(&orig, &dec, 3);
    }

    #[test]
    fn three_control_mcp_exact() {
        let mut orig = Circuit::new(4);
        orig.mcp(vec![0, 1, 2], 3, 0.456);
        let dec = decompose_circuit(&orig);
        assert!(dec.gates().iter().all(|g| g.arity() <= 2));
        assert_same_unitary(&orig, &dec, 4);
    }

    #[test]
    fn three_control_mcx_exact() {
        let mut orig = Circuit::new(4);
        orig.mcx(vec![0, 1, 2], 3);
        let dec = decompose_circuit(&orig);
        assert_same_unitary(&orig, &dec, 4);
    }

    #[test]
    fn cost_model_is_linear() {
        assert_eq!(tau_cx_cost(1), 34);
        assert_eq!(tau_cx_cost(5), 170);
        assert_eq!(mcp_cx_cost(2), 32);
    }

    #[test]
    fn simple_gates_pass_through() {
        assert_eq!(decompose_gate(&Gate::H(0)), vec![Gate::H(0)]);
        assert_eq!(decompose_gate(&Gate::Cx(0, 1)), vec![Gate::Cx(0, 1)]);
    }
}
