//! Exact density-matrix simulation of noisy circuits.
//!
//! The workhorse noise engine of this crate is trajectory sampling
//! ([`crate::noise`]): cheap, sparse-friendly, but stochastic. This
//! module evolves the full density matrix `ρ` instead, applying each
//! channel's Kraus operators *exactly*: `ρ ← Σ_k K_k ρ K_k†`. It is
//! exponentially expensive (`4^n` entries) and therefore capped at
//! 7 qubits — exactly enough to cross-validate the trajectory sampler,
//! which the tests here and in `tests/` do.

use crate::circuit::Circuit;
use crate::complex::Complex;
use crate::gate::Gate;
use crate::noise::NoiseModel;

/// A dense density matrix on up to [`DensityMatrix::MAX_QUBITS`] qubits.
#[derive(Clone, Debug)]
pub struct DensityMatrix {
    n_qubits: usize,
    /// Row-major `2^n × 2^n` matrix.
    rho: Vec<Complex>,
}

impl DensityMatrix {
    /// Maximum width (the matrix is `4^n` complex numbers).
    pub const MAX_QUBITS: usize = 7;

    /// Creates the pure state `|label⟩⟨label|`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > MAX_QUBITS` or the label does not fit.
    pub fn basis_state(n_qubits: usize, label: u64) -> Self {
        assert!(
            n_qubits <= Self::MAX_QUBITS,
            "density simulation beyond {} qubits is not supported",
            Self::MAX_QUBITS
        );
        let dim = 1usize << n_qubits;
        assert!((label as usize) < dim, "label out of range");
        let mut rho = vec![Complex::ZERO; dim * dim];
        rho[label as usize * dim + label as usize] = Complex::ONE;
        DensityMatrix { n_qubits, rho }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The matrix entry `ρ[r][c]`.
    pub fn entry(&self, r: usize, c: usize) -> Complex {
        self.rho[r * self.dim() + c]
    }

    fn dim(&self) -> usize {
        1 << self.n_qubits
    }

    /// The trace (should be 1).
    pub fn trace(&self) -> Complex {
        let dim = self.dim();
        let mut t = Complex::ZERO;
        for i in 0..dim {
            t += self.rho[i * dim + i];
        }
        t
    }

    /// Measurement probabilities (the diagonal).
    pub fn probabilities(&self) -> Vec<f64> {
        let dim = self.dim();
        (0..dim).map(|i| self.rho[i * dim + i].re).collect()
    }

    /// Purity `Tr(ρ²)`: 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        let dim = self.dim();
        let mut p = 0.0;
        for r in 0..dim {
            for c in 0..dim {
                // Tr(ρ²) = Σ_rc ρ_rc ρ_cr; ρ is Hermitian so ρ_cr = ρ_rc*.
                p += (self.rho[r * dim + c] * self.rho[c * dim + r]).re;
            }
        }
        p
    }

    /// Applies a unitary gate: `ρ ← U ρ U†`.
    pub fn apply_gate(&mut self, gate: &Gate) {
        // Build the 2^n × 2^n unitary column by column through the
        // statevector backend (widths here are tiny).
        let dim = self.dim();
        let mut u = vec![Complex::ZERO; dim * dim];
        for col in 0..dim {
            let mut s = crate::dense::DenseState::basis_state(self.n_qubits, col as u64);
            s.apply(gate);
            for (row, amp) in s.amplitudes().iter().enumerate() {
                u[row * dim + col] = *amp;
            }
        }
        self.conjugate_by(&u);
    }

    /// Applies a single-qubit Kraus channel `{K_k}` on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the channel is not trace preserving
    /// (`Σ K†K = I` violated beyond tolerance).
    pub fn apply_kraus_1q(&mut self, q: usize, kraus: &[[Complex; 4]]) {
        #[cfg(debug_assertions)]
        {
            // Σ K†K = I check.
            let mut sum = [Complex::ZERO; 4];
            for k in kraus {
                // K†K for a 2x2 [a b; c d] is [(a*a+c*c) (a*b+c*d); ...].
                let (a, b, c, d) = (k[0], k[1], k[2], k[3]);
                sum[0] += a.conj() * a + c.conj() * c;
                sum[1] += a.conj() * b + c.conj() * d;
                sum[2] += b.conj() * a + d.conj() * c;
                sum[3] += b.conj() * b + d.conj() * d;
            }
            debug_assert!(
                sum[0].approx_eq(Complex::ONE, 1e-9)
                    && sum[3].approx_eq(Complex::ONE, 1e-9)
                    && sum[1].approx_eq(Complex::ZERO, 1e-9)
                    && sum[2].approx_eq(Complex::ZERO, 1e-9),
                "Kraus set is not trace preserving"
            );
        }
        let dim = self.dim();
        let mut next = vec![Complex::ZERO; dim * dim];
        for k in kraus {
            // Embed K on qubit q: K_full[r][c] over basis pairs that
            // agree off q.
            let apply = |rho: &[Complex], out: &mut [Complex]| {
                // out += (K ρ K†)
                // K ρ: rows transformed; then right-multiply by K†.
                let mask = 1usize << q;
                // tmp = K ρ
                let mut tmp = vec![Complex::ZERO; dim * dim];
                for r in 0..dim {
                    let bit = (r & mask != 0) as usize;
                    let r0 = r & !mask;
                    let r1 = r | mask;
                    for c in 0..dim {
                        // row r of K-full picks rows r0/r1 of ρ.
                        tmp[r * dim + c] =
                            k[bit * 2] * rho[r0 * dim + c] + k[bit * 2 + 1] * rho[r1 * dim + c];
                    }
                }
                // out += tmp K†
                for r in 0..dim {
                    for c in 0..dim {
                        let bit = (c & mask != 0) as usize;
                        let c0 = c & !mask;
                        let c1 = c | mask;
                        // (K†)[row][c] = conj(K[c][row])
                        out[r * dim + c] += tmp[r * dim + c0] * k[bit * 2].conj()
                            + tmp[r * dim + c1] * k[bit * 2 + 1].conj();
                    }
                }
            };
            apply(&self.rho, &mut next);
        }
        self.rho = next;
    }

    /// Applies a depolarizing channel of probability `p` on qubit `q`.
    pub fn apply_depolarizing(&mut self, q: usize, p: f64) {
        let s0 = (1.0 - p).sqrt();
        let sp = (p / 3.0).sqrt();
        let kraus = [
            [
                Complex::from(s0),
                Complex::ZERO,
                Complex::ZERO,
                Complex::from(s0),
            ],
            [
                Complex::ZERO,
                Complex::from(sp),
                Complex::from(sp),
                Complex::ZERO,
            ], // X
            [
                Complex::ZERO,
                Complex::new(0.0, -sp),
                Complex::new(0.0, sp),
                Complex::ZERO,
            ], // Y
            [
                Complex::from(sp),
                Complex::ZERO,
                Complex::ZERO,
                Complex::from(-sp),
            ], // Z
        ];
        self.apply_kraus_1q(q, &kraus);
    }

    /// Applies an amplitude-damping channel of strength `γ` on qubit `q`.
    pub fn apply_amplitude_damping(&mut self, q: usize, gamma: f64) {
        let kraus = [
            [
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::from((1.0 - gamma).sqrt()),
            ],
            [
                Complex::ZERO,
                Complex::from(gamma.sqrt()),
                Complex::ZERO,
                Complex::ZERO,
            ],
        ];
        self.apply_kraus_1q(q, &kraus);
    }

    /// Applies a phase-damping channel of strength `λ` on qubit `q`.
    pub fn apply_phase_damping(&mut self, q: usize, lambda: f64) {
        let kraus = [
            [
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::from((1.0 - lambda).sqrt()),
            ],
            [
                Complex::ZERO,
                Complex::ZERO,
                Complex::ZERO,
                Complex::from(lambda.sqrt()),
            ],
        ];
        self.apply_kraus_1q(q, &kraus);
    }

    /// Runs a circuit with gate-level noise applied exactly after each
    /// gate (depolarizing per touched qubit, then amplitude damping) —
    /// the exact counterpart of
    /// [`crate::noise::run_dense_trajectory`]'s sampled channels.
    pub fn run_noisy(&mut self, circuit: &Circuit, noise: &NoiseModel) {
        for g in circuit.gates() {
            self.apply_gate(g);
            let p = noise.gate_error(g);
            for q in g.qubits() {
                if p > 0.0 {
                    self.apply_depolarizing(q, p);
                }
                if noise.amplitude_damping > 0.0 {
                    self.apply_amplitude_damping(q, noise.amplitude_damping);
                }
                if noise.phase_damping > 0.0 {
                    self.apply_phase_damping(q, noise.phase_damping);
                }
            }
        }
    }

    /// `ρ ← U ρ U†` for a full-dimension matrix `u` (row-major).
    fn conjugate_by(&mut self, u: &[Complex]) {
        let dim = self.dim();
        // tmp = U ρ
        let mut tmp = vec![Complex::ZERO; dim * dim];
        for r in 0..dim {
            for k in 0..dim {
                let urk = u[r * dim + k];
                if urk.norm_sqr() < 1e-24 {
                    continue;
                }
                for c in 0..dim {
                    tmp[r * dim + c] += urk * self.rho[k * dim + c];
                }
            }
        }
        // ρ = tmp U†
        let mut out = vec![Complex::ZERO; dim * dim];
        for r in 0..dim {
            for k in 0..dim {
                let trk = tmp[r * dim + k];
                if trk.norm_sqr() < 1e-24 {
                    continue;
                }
                for c in 0..dim {
                    out[r * dim + c] += trk * u[c * dim + k].conj();
                }
            }
        }
        self.rho = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::run_dense_trajectory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pure_state_properties() {
        let rho = DensityMatrix::basis_state(2, 0b10);
        assert!(rho.trace().approx_eq(Complex::ONE, 1e-12));
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert_eq!(rho.probabilities()[0b10], 1.0);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(1, 0.4);
        let mut rho = DensityMatrix::basis_state(2, 0);
        for g in c.gates() {
            rho.apply_gate(g);
        }
        let sv = crate::dense::DenseState::from_circuit(&c);
        let probs = sv.probabilities();
        for (i, &p) in rho.probabilities().iter().enumerate() {
            assert!((p - probs[i]).abs() < 1e-10, "prob mismatch at {i}");
        }
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn depolarizing_decreases_purity() {
        let mut rho = DensityMatrix::basis_state(1, 0);
        rho.apply_gate(&Gate::H(0));
        let pure = rho.purity();
        rho.apply_depolarizing(0, 0.2);
        assert!(rho.purity() < pure);
        assert!(rho.trace().approx_eq(Complex::ONE, 1e-10));
    }

    #[test]
    fn full_depolarizing_is_maximally_mixed() {
        let mut rho = DensityMatrix::basis_state(1, 1);
        // Repeated strong depolarizing converges to I/2.
        for _ in 0..64 {
            rho.apply_depolarizing(0, 0.75);
        }
        let p = rho.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!((rho.purity() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn amplitude_damping_fixed_point_is_ground_state() {
        let mut rho = DensityMatrix::basis_state(1, 1);
        for _ in 0..256 {
            rho.apply_amplitude_damping(0, 0.1);
        }
        assert!((rho.probabilities()[0] - 1.0).abs() < 1e-6);
    }

    /// The decisive cross-check: trajectory-averaged populations must
    /// converge to the exact density-matrix diagonal.
    #[test]
    fn trajectories_converge_to_exact_channel() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rx(1, 0.7);
        let noise = NoiseModel::depolarizing(0.05).with_amplitude_damping(0.03);

        let mut exact = DensityMatrix::basis_state(2, 0);
        exact.run_noisy(&c, &noise);
        let exact_probs = exact.probabilities();

        let trials = 6000;
        let mut avg = [0.0f64; 4];
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = run_dense_trajectory(&c, &noise, &mut rng);
            for (i, p) in s.probabilities().iter().enumerate() {
                avg[i] += p / trials as f64;
            }
        }
        for i in 0..4 {
            assert!(
                (avg[i] - exact_probs[i]).abs() < 0.02,
                "population {i}: trajectories {:.4} vs exact {:.4}",
                avg[i],
                exact_probs[i]
            );
        }
    }

    #[test]
    fn phase_damping_kills_coherences_not_populations() {
        let mut rho = DensityMatrix::basis_state(1, 0);
        rho.apply_gate(&Gate::H(0));
        let before = rho.probabilities();
        let coh_before = rho.entry(0, 1).abs();
        for _ in 0..64 {
            rho.apply_phase_damping(0, 0.3);
        }
        let after = rho.probabilities();
        assert!((before[0] - after[0]).abs() < 1e-10, "population changed");
        assert!(
            rho.entry(0, 1).abs() < 1e-4 && coh_before > 0.4,
            "coherence survived"
        );
    }

    #[test]
    fn phase_damping_trajectories_match_exact() {
        use crate::noise::phase_damping_dense;
        let lambda = 0.2;
        let mut c = Circuit::new(1);
        c.h(0);
        let mut exact = DensityMatrix::basis_state(1, 0);
        exact.apply_gate(&Gate::H(0));
        exact.apply_phase_damping(0, lambda);
        // Coherence magnitude after one exact channel application.
        let exact_coh = exact.entry(0, 1).abs();

        // Trajectory average of the off-diagonal: reconstruct from the
        // pure states' ρ = |ψ⟩⟨ψ| averaged over trajectories.
        let trials = 20000;
        let mut avg_coh = 0.0;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = crate::dense::DenseState::from_circuit(&c);
            phase_damping_dense(&mut s, 0, lambda, &mut rng);
            let a0 = s.amplitude(0);
            let a1 = s.amplitude(1);
            avg_coh += (a0 * a1.conj()).re / trials as f64;
        }
        assert!(
            (avg_coh - exact_coh).abs() < 0.02,
            "trajectory coherence {avg_coh:.4} vs exact {exact_coh:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn width_cap_enforced() {
        DensityMatrix::basis_state(8, 0);
    }
}
