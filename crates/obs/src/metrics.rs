//! Lock-sharded metrics registry: counters, gauges, log-bucketed
//! mergeable histograms.
//!
//! Names are sharded by FNV hash across a fixed set of mutexes so
//! unrelated instruments never contend. Snapshots are deterministic:
//! instruments render sorted by name regardless of which shard holds
//! them or in which order they were touched.
//!
//! Histograms bucket by the position of the value's highest set bit
//! (bucket `i` holds values in `[2^(i-1), 2^i)`, bucket 0 holds zero),
//! so `merge` is a bucket-wise add — associative and commutative — and
//! worker-local histograms can be folded in any grouping without
//! changing the result. Percentiles come from the bucket upper bound
//! at the requested rank, which over-reports by at most 2× — the right
//! trade for a dependency-free latency summary.
//!
//! A process-global registry can be installed once per process for
//! engine-level hooks (`qsim` queue depth, batch counts, plan-cache
//! hits). When nothing is installed the hook sites cost a single
//! `OnceLock` load.

use crate::json::Json;
use crate::span::fnv64;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

const BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` samples (typically microseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Bucket-wise add. Associative and commutative, so per-worker
    /// histograms can be folded in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Upper bound of the bucket containing the sample at rank
    /// `ceil(q * count)`; clamped to the observed max. Returns 0 for
    /// an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u128 << i) - 1 };
                return (upper.min(u128::from(self.max))) as u64;
            }
        }
        self.max
    }

    /// Deterministic snapshot (non-empty buckets only, ascending).
    pub fn json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Json::Arr(vec![Json::Int(i as i128), Json::Int(i128::from(n))]))
            .collect();
        Json::obj(vec![
            ("count", Json::Int(i128::from(self.count))),
            ("sum", Json::Int(self.sum as i128)),
            (
                "min",
                Json::Int(if self.count == 0 {
                    0
                } else {
                    i128::from(self.min)
                }),
            ),
            ("max", Json::Int(i128::from(self.max))),
            ("p50", Json::Int(i128::from(self.percentile(0.50)))),
            ("p95", Json::Int(i128::from(self.percentile(0.95)))),
            ("p99", Json::Int(i128::from(self.percentile(0.99)))),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

#[derive(Default)]
struct Shard {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

const SHARDS: usize = 16;

/// A lock-sharded registry of named instruments.
pub struct Registry {
    shards: Vec<Mutex<Shard>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<Shard> {
        &self.shards[(fnv64(name) % SHARDS as u64) as usize]
    }

    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut shard = self.shard(name).lock().unwrap();
        match shard.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                shard.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Raises the counter to `max(current, value)` — for mirroring a
    /// monotone counter owned elsewhere (e.g. a per-node atomic) into
    /// the registry without tracking deltas. Mirrors taken from stale
    /// snapshots can never move the counter backwards.
    pub fn counter_max(&self, name: &str, value: u64) {
        let mut shard = self.shard(name).lock().unwrap();
        match shard.counters.get_mut(name) {
            Some(v) => *v = (*v).max(value),
            None => {
                shard.counters.insert(name.to_string(), value);
            }
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.shard(name)
            .lock()
            .unwrap()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    pub fn gauge_set(&self, name: &str, value: i64) {
        let mut shard = self.shard(name).lock().unwrap();
        shard.gauges.insert(name.to_string(), value);
    }

    /// Sets the gauge to `max(current, value)` — a high-water mark.
    pub fn gauge_max(&self, name: &str, value: i64) {
        let mut shard = self.shard(name).lock().unwrap();
        match shard.gauges.get_mut(name) {
            Some(v) => *v = (*v).max(value),
            None => {
                shard.gauges.insert(name.to_string(), value);
            }
        }
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.shard(name).lock().unwrap().gauges.get(name).copied()
    }

    pub fn histogram_record(&self, name: &str, value: u64) {
        let mut shard = self.shard(name).lock().unwrap();
        shard
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Clone of the named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.shard(name)
            .lock()
            .unwrap()
            .histograms
            .get(name)
            .cloned()
    }

    /// Deterministic snapshot of every instrument, sorted by name
    /// within each kind:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn snapshot_json(&self) -> Json {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, i64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            for (k, v) in &shard.counters {
                counters.insert(k.clone(), *v);
            }
            for (k, v) in &shard.gauges {
                gauges.insert(k.clone(), *v);
            }
            for (k, v) in &shard.histograms {
                histograms.insert(k.clone(), v.clone());
            }
        }
        Json::Obj(vec![
            (
                "counters".to_string(),
                Json::Obj(
                    counters
                        .into_iter()
                        .map(|(k, v)| (k, Json::Int(i128::from(v))))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Json::Obj(
                    gauges
                        .into_iter()
                        .map(|(k, v)| (k, Json::Int(i128::from(v))))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Json::Obj(histograms.into_iter().map(|(k, v)| (k, v.json())).collect()),
            ),
        ])
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Installs the process-global registry used by engine-level hooks.
/// Idempotent: the first call wins; later calls are ignored (the hooks
/// need a stable referent for the life of the process).
pub fn install_global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// The global registry, if one was installed. Engine hooks call this
/// on their fast path; when nothing is installed it is one atomic
/// load and the hook vanishes.
pub fn try_global() -> Option<&'static Registry> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_max_is_monotone() {
        let r = Registry::new();
        r.counter_max("fabric.forwards_out", 5);
        assert_eq!(r.counter("fabric.forwards_out"), 5);
        // A stale (smaller) mirror never rewinds the counter…
        r.counter_max("fabric.forwards_out", 3);
        assert_eq!(r.counter("fabric.forwards_out"), 5);
        // …and a fresher one advances it.
        r.counter_max("fabric.forwards_out", 9);
        assert_eq!(r.counter("fabric.forwards_out"), 9);
        // Mixing with counter_add keeps the max semantics.
        r.counter_add("fabric.forwards_out", 1);
        r.counter_max("fabric.forwards_out", 4);
        assert_eq!(r.counter("fabric.forwards_out"), 10);
    }

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn percentiles_bound_the_samples() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 10, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert!(h.percentile(0.5) >= 3);
        assert_eq!(h.percentile(1.0), 1000);
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let hist = |values: &[u64]| {
            let mut h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (hist(&[1, 5, 9]), hist(&[2, 1 << 40]), hist(&[0, 0, 7]));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut a_bc = b.clone();
        a_bc.merge(&c);
        let mut left = a.clone();
        left.merge(&a_bc);
        assert_eq!(ab_c, left);
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let r = Registry::new();
        r.counter_add("z.last", 3);
        r.counter_add("a.first", 1);
        r.gauge_set("depth", 4);
        r.gauge_max("depth", 2);
        r.histogram_record("lat_us", 250);
        let text = r.snapshot_json().render();
        assert!(text.find("a.first").unwrap() < text.find("z.last").unwrap());
        assert_eq!(r.gauge("depth"), Some(4));
        assert_eq!(r.counter("a.first"), 1);
        assert_eq!(text, r.snapshot_json().render());
    }

    #[test]
    fn global_install_is_idempotent() {
        let a = install_global() as *const Registry;
        let b = install_global() as *const Registry;
        assert_eq!(a, b);
        assert!(try_global().is_some());
    }
}
