//! Minimal JSON tree, writer, and parser — std only.
//!
//! The wire protocol carries one JSON document per response section
//! (`result`, `timing`, `service`, …). The writer is *canonical*:
//! object keys keep insertion order, floats render via Rust's shortest
//! round-trip `Display`, and there is no optional whitespace — so the
//! same value always serializes to the same bytes. The determinism
//! tests rely on that to compare a served `result` section against a
//! locally serialized `Outcome` byte-for-byte, and the trace exporter
//! relies on it for byte-identical span trees across thread counts.
//!
//! The parser is a small recursive-descent reader used by the client
//! and the tests; it accepts standard JSON (with whitespace) and is
//! not limited to the canonical form. Because it runs on
//! client-controlled bytes it never panics: malformed input comes back
//! as `Err`, and nesting depth is capped so a hostile document cannot
//! overflow the stack.

use std::fmt;

/// A JSON value. Objects preserve insertion order (a `Vec`, not a
/// map) so rendering is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers stay exact (JSON has no integer limit; `i128` covers
    /// every counter and label component this crate emits).
    Int(i128),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view (covers both `Int` and `Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Exact integer view.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value to its canonical single-line form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                use fmt::Write;
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                use fmt::Write;
                if x.is_finite() {
                    // Rust's `Display` for f64 is the shortest decimal
                    // that round-trips, never exponent notation: valid
                    // JSON and canonical.
                    let _ = write!(out, "{x}");
                } else {
                    // JSON has no NaN/inf; none of the serialized
                    // fields can produce them, but don't emit garbage
                    // if one ever does.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum nesting depth the parser accepts. Client-controlled input
/// must not be able to overflow the stack; nothing this workspace
/// serializes nests deeper than a dozen levels.
const MAX_DEPTH: usize = 128;

/// Parses a JSON document. Returns the value and fails on trailing
/// non-whitespace garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes
        .get(*pos..)
        .is_some_and(|rest| rest.starts_with(lit.as_bytes()))
    {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if float {
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}`"))
    } else {
        text.parse::<i128>()
            .map(Json::Int)
            .or_else(|_| text.parse::<f64>().map(Json::Num))
            .map_err(|_| format!("invalid number `{text}`"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Basic-plane only; the canonical writer never
                        // emits surrogate pairs.
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 character. Input is a `&str`
                // so this cannot fail mid-document, but the error path
                // stays structured rather than panicking.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| "unterminated string".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_rendering_round_trips() {
        let value = Json::obj(vec![
            ("a", Json::Int(3)),
            ("b", Json::Num(0.25)),
            ("c", Json::Str("x\n\"y\"".to_string())),
            ("d", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("e", Json::obj(vec![("nested", Json::Num(-1.5e-3))])),
        ]);
        let text = value.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, value);
        // Canonical: re-rendering the parsed tree is byte-identical.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn parser_accepts_whitespace_and_rejects_garbage() {
        let v = parse(" { \"k\" : [ 1 , 2.5 ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
        assert!(parse("{} trailing").is_err());
        assert!(parse("{\"k\":}").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn malformed_input_errors_instead_of_panicking() {
        // Truncated documents at every prefix of a valid one.
        let full = r#"{"k":[1,"two",{"n":3.5}],"b":true}"#;
        for cut in 1..full.len() {
            assert!(parse(&full[..cut]).is_err(), "prefix {cut} should fail");
        }
        // Truncated escapes and invalid literals.
        assert!(parse("\"\\u12").is_err());
        assert!(parse("\"\\x\"").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("nul").is_err());
        // Oversized / malformed numeric fields.
        assert!(parse("1e99999999999999999999").is_err() || parse("1e999").is_ok());
        assert!(parse("--5").is_err());
        assert!(parse("5..5").is_err());
    }

    #[test]
    fn hostile_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
        // Sane nesting still parses.
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn integers_stay_exact() {
        let big = (1i128 << 100) + 7;
        let v = parse(&Json::Int(big).render()).unwrap();
        assert_eq!(v.as_i128(), Some(big));
    }
}
