//! Hierarchical spans with deterministic IDs.
//!
//! A span identifies one timed region of the solve pipeline (a stage,
//! a segment execution, a retry attempt). Its ID is a pure function of
//! *structure*, not of wall-clock or scheduling:
//!
//! ```text
//! id(root)  = splitmix64(fnv64(label))
//! id(child) = splitmix64(splitmix64(parent_id ^ fnv64(label)) ^ ordinal)
//! ```
//!
//! where `ordinal` is the child's index among its siblings (in open
//! order on the control-plane thread). Because the solver's control
//! flow is bit-reproducible at any `RASENGAN_THREADS`, the span tree —
//! IDs, labels, attributes, nesting — is byte-identical too. Durations
//! (`elapsed_s`) are recorded alongside but excluded from the
//! deterministic rendering; the JSONL exporter includes them.
//!
//! The [`Tracer`] is an explicit open/close stack (no RAII guards, so
//! it can be threaded through `&mut` call chains without borrow
//! gymnastics). When disabled ([`Tracer::off`]) an open/close pair
//! costs two `Instant` reads and one `Vec` push/pop of a small frame —
//! the same order of cost as the ad-hoc `Instant` stage timing it
//! replaced — and no tree is built.

use crate::json::Json;
use std::time::Instant;

/// SplitMix64 finalizer — the canonical copy for the workspace.
///
/// `rasengan-qsim`'s `parallel` module re-exports this so seed
/// derivation and span-ID derivation share one definition.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the label bytes; the label half of a span ID.
#[must_use]
pub fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives a child span ID from its parent's ID, its label, and its
/// ordinal among siblings.
#[must_use]
pub fn span_id(parent: u64, label: &str, ordinal: u64) -> u64 {
    splitmix64(splitmix64(parent ^ fnv64(label)) ^ ordinal)
}

/// One node of a trace tree.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Deterministic ID (see module docs for the derivation).
    pub id: u64,
    /// Call-site label, e.g. `"segment"`.
    pub label: &'static str,
    /// Index among siblings, in open order.
    pub ordinal: u64,
    /// Deterministic attributes (counts, indices, flags — never
    /// wall-clock, never thread counts).
    pub attrs: Vec<(&'static str, Json)>,
    /// Wall-clock duration in seconds. Excluded from the deterministic
    /// rendering.
    pub elapsed_s: f64,
    pub children: Vec<Span>,
}

impl Span {
    fn json(&self, with_elapsed: bool) -> Json {
        let mut pairs = vec![
            ("id".to_string(), Json::Str(format!("{:#018x}", self.id))),
            ("label".to_string(), Json::Str(self.label.to_string())),
            ("ordinal".to_string(), Json::Int(i128::from(self.ordinal))),
        ];
        if !self.attrs.is_empty() {
            pairs.push((
                "attrs".to_string(),
                Json::Obj(
                    self.attrs
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), v.clone()))
                        .collect(),
                ),
            ));
        }
        if with_elapsed {
            pairs.push(("elapsed_s".to_string(), Json::Num(self.elapsed_s)));
        }
        if !self.children.is_empty() {
            pairs.push((
                "children".to_string(),
                Json::Arr(self.children.iter().map(|c| c.json(with_elapsed)).collect()),
            ));
        }
        Json::Obj(pairs)
    }

    /// Total number of spans in this subtree (including `self`).
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(Span::count).sum::<usize>()
    }

    fn jsonl_into(&self, parent: u64, out: &mut String) {
        let mut pairs = vec![
            ("id".to_string(), Json::Str(format!("{:#018x}", self.id))),
            ("parent".to_string(), Json::Str(format!("{parent:#018x}"))),
            ("label".to_string(), Json::Str(self.label.to_string())),
            ("ordinal".to_string(), Json::Int(i128::from(self.ordinal))),
            ("elapsed_s".to_string(), Json::Num(self.elapsed_s)),
        ];
        if !self.attrs.is_empty() {
            pairs.push((
                "attrs".to_string(),
                Json::Obj(
                    self.attrs
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), v.clone()))
                        .collect(),
                ),
            ));
        }
        out.push_str(&Json::Obj(pairs).render());
        out.push('\n');
        for child in &self.children {
            child.jsonl_into(self.id, out);
        }
    }
}

/// A completed span tree, as attached to an `Outcome` or exported.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceTree {
    pub root: Span,
}

impl TraceTree {
    /// Deterministic rendering: structure, IDs, labels, ordinals, and
    /// attributes — no durations. Byte-identical for a fixed-seed
    /// solve at any thread count; this is what golden tests compare
    /// and what the serve `trace` response section carries.
    pub fn deterministic_json(&self) -> Json {
        self.root.json(false)
    }

    /// Full rendering including wall-clock `elapsed_s` per span.
    pub fn full_json(&self) -> Json {
        self.root.json(true)
    }

    /// JSONL export: one span per line, depth-first, each line carrying
    /// `id`, `parent` (root's parent is `0x0`), `label`, `ordinal`,
    /// `elapsed_s`, and `attrs`. Reuses the canonical writer, so a
    /// given tree always exports to the same bytes up to durations.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        self.root.jsonl_into(0, &mut out);
        out
    }

    /// Total span count.
    pub fn count(&self) -> usize {
        self.root.count()
    }
}

/// Token returned by [`Tracer::open`]; pass it back to
/// [`Tracer::close`]. Closing a token also closes any spans opened
/// after it that are still open, keeping the tree well-nested across
/// early exits.
#[derive(Debug)]
#[must_use = "unclosed spans never reach the tree"]
pub struct SpanToken {
    depth: usize,
}

struct Frame {
    started: Instant,
    /// `None` in off mode: no tree is built, only elapsed time flows
    /// back through `close`.
    span: Option<Span>,
    next_ordinal: u64,
}

/// The span recorder. Either off (records nothing, `close` still
/// returns elapsed seconds so stage timings can be derived from the
/// same call sites) or recording into an in-memory tree.
pub struct Tracer {
    record: bool,
    frames: Vec<Frame>,
    retry_s: f64,
}

impl Tracer {
    /// A disabled tracer: `open`/`close` only time; no tree, no attrs.
    pub fn off() -> Tracer {
        Tracer {
            record: false,
            frames: vec![Frame {
                started: Instant::now(),
                span: None,
                next_ordinal: 0,
            }],
            retry_s: 0.0,
        }
    }

    /// A recording tracer with a root span labelled `label`.
    pub fn memory(label: &'static str) -> Tracer {
        Tracer {
            record: true,
            frames: vec![Frame {
                started: Instant::now(),
                span: Some(Span {
                    id: splitmix64(fnv64(label)),
                    label,
                    ordinal: 0,
                    attrs: Vec::new(),
                    elapsed_s: 0.0,
                    children: Vec::new(),
                }),
                next_ordinal: 0,
            }],
            retry_s: 0.0,
        }
    }

    /// Builds a tracer from a config flag.
    pub fn for_solve(trace: bool) -> Tracer {
        if trace {
            Tracer::memory("solve")
        } else {
            Tracer::off()
        }
    }

    /// Whether spans and attributes are being recorded. Callers may
    /// skip fine-grained detail spans when this is false.
    pub fn enabled(&self) -> bool {
        self.record
    }

    /// Opens a child span of the innermost open span.
    pub fn open(&mut self, label: &'static str) -> SpanToken {
        let span = if self.record {
            let parent = self.frames.last_mut().expect("tracer root frame");
            let ordinal = parent.next_ordinal;
            parent.next_ordinal += 1;
            let parent_id = parent.span.as_ref().expect("recording frame").id;
            Some(Span {
                id: span_id(parent_id, label, ordinal),
                label,
                ordinal,
                attrs: Vec::new(),
                elapsed_s: 0.0,
                children: Vec::new(),
            })
        } else {
            None
        };
        self.frames.push(Frame {
            started: Instant::now(),
            span,
            next_ordinal: 0,
        });
        SpanToken {
            depth: self.frames.len() - 1,
        }
    }

    /// Attaches a deterministic attribute to the innermost open span.
    /// No-op when disabled.
    pub fn attr(&mut self, key: &'static str, value: Json) {
        if !self.record {
            return;
        }
        if let Some(span) = self.frames.last_mut().and_then(|f| f.span.as_mut()) {
            span.attrs.push((key, value));
        }
    }

    /// Integer attribute convenience.
    pub fn attr_int(&mut self, key: &'static str, value: i128) {
        self.attr(key, Json::Int(value));
    }

    /// Closes the span opened by `token`, returning its wall-clock
    /// duration in seconds. Any spans opened after `token` that are
    /// still open (an early `break`/`return` skipped their close) are
    /// closed first, so the tree stays well-nested.
    pub fn close(&mut self, token: SpanToken) -> f64 {
        while self.frames.len() > token.depth + 1 {
            self.close_top();
        }
        self.close_top()
    }

    fn close_top(&mut self) -> f64 {
        let frame = self.frames.pop().expect("close without open");
        let elapsed = frame.started.elapsed().as_secs_f64();
        if let Some(mut span) = frame.span {
            span.elapsed_s = elapsed;
            if let Some(parent) = self.frames.last_mut().and_then(|f| f.span.as_mut()) {
                parent.children.push(span);
            }
        }
        elapsed
    }

    /// Accumulates retry wall-clock outside the span tree (retries
    /// happen inside both training and final execution; `StageTimes`
    /// reports their total).
    pub fn add_retry_seconds(&mut self, s: f64) {
        self.retry_s += s;
    }

    /// Total retry seconds accumulated so far.
    pub fn retry_seconds(&self) -> f64 {
        self.retry_s
    }

    /// Finishes the trace: closes the root span and returns the tree
    /// (`None` when the tracer was off).
    pub fn finish(mut self) -> Option<TraceTree> {
        while self.frames.len() > 1 {
            self.close_top();
        }
        let root_frame = self.frames.pop()?;
        let mut root = root_frame.span?;
        root.elapsed_s = root_frame.started.elapsed().as_secs_f64();
        Some(TraceTree { root })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_structure_deterministic() {
        let a = span_id(7, "segment", 0);
        assert_eq!(a, span_id(7, "segment", 0));
        assert_ne!(a, span_id(7, "segment", 1));
        assert_ne!(a, span_id(7, "attempt", 0));
        assert_ne!(a, span_id(8, "segment", 0));
    }

    #[test]
    fn tree_structure_is_reproducible_and_duration_free() {
        let build = || {
            let mut t = Tracer::memory("solve");
            let prep = t.open("prepare");
            t.attr_int("ops", 9);
            t.close(prep);
            let exec = t.open("execute");
            for i in 0..3 {
                let seg = t.open("segment");
                t.attr_int("index", i);
                t.close(seg);
            }
            t.close(exec);
            t.finish().unwrap()
        };
        let (a, b) = (build(), build());
        // Wall-clock differs between the two builds, but the
        // deterministic rendering is byte-identical.
        assert_eq!(
            a.deterministic_json().render(),
            b.deterministic_json().render()
        );
        assert_eq!(a.count(), 6);
        let text = a.deterministic_json().render();
        assert!(!text.contains("elapsed_s"));
        assert!(a.full_json().render().contains("elapsed_s"));
    }

    #[test]
    fn off_tracer_times_but_builds_nothing() {
        let mut t = Tracer::off();
        assert!(!t.enabled());
        let tok = t.open("prepare");
        t.attr_int("ignored", 1);
        let elapsed = t.close(tok);
        assert!(elapsed >= 0.0);
        assert!(t.finish().is_none());
    }

    #[test]
    fn jsonl_has_one_line_per_span_with_parent_links() {
        let mut t = Tracer::memory("solve");
        let a = t.open("prepare");
        t.close(a);
        let tree = t.finish().unwrap();
        let jsonl = tree.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let root = crate::json::parse(lines[0]).unwrap();
        let child = crate::json::parse(lines[1]).unwrap();
        assert_eq!(
            root.get("parent").unwrap().as_str(),
            Some("0x0000000000000000")
        );
        assert_eq!(
            child.get("parent").unwrap().as_str(),
            root.get("id").unwrap().as_str()
        );
    }

    #[test]
    fn unclosed_spans_are_closed_by_finish() {
        let mut t = Tracer::memory("solve");
        let _leak = t.open("execute");
        let tree = t.finish().unwrap();
        assert_eq!(tree.count(), 2);
    }
}
