//! Observability for the Rasengan reproduction — std only, no deps.
//!
//! Three pieces, deliberately small:
//!
//! * [`json`] — the canonical JSON tree/writer/parser (moved here from
//!   `rasengan-serve` so both the wire protocol and the trace exporter
//!   share one byte-stable serializer).
//! * [`span`] — hierarchical spans with *deterministic* IDs. A span's
//!   ID is derived from its parent's ID, its call-site label, and its
//!   ordinal among siblings via the SplitMix64 finalizer, so the span
//!   tree of a fixed-seed solve is byte-identical at any
//!   `RASENGAN_THREADS`. Wall-clock durations are carried alongside
//!   but excluded from the deterministic rendering.
//! * [`metrics`] — a lock-sharded registry of counters, gauges, and
//!   log-bucketed mergeable histograms, with a deterministic JSON
//!   snapshot. A process-global registry can be installed once
//!   (`metrics::install_global`) for engine-level hooks; when it is
//!   not installed the hooks cost one relaxed atomic load.
//!
//! The tracer is a no-op when disabled: [`span::Tracer::off`] records
//! stage boundaries (a handful of `Instant` reads per solve, exactly
//! what the old ad-hoc `StageTimes` plumbing cost) and builds nothing.

pub mod json;
pub mod metrics;
pub mod span;

pub use json::Json;
pub use metrics::{Histogram, Registry};
pub use span::{fnv64, span_id, splitmix64, Span, SpanToken, TraceTree, Tracer};
