//! Simultaneous-perturbation stochastic approximation (SPSA).
//!
//! SPSA estimates the gradient from two evaluations at a random
//! symmetric perturbation, making it robust to the sampling noise of
//! shot-based quantum objective estimates — the usual alternative to
//! COBYLA in VQA training loops.

use crate::{OptimizeResult, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SPSA minimizer with the standard gain schedules
/// `a_k = a / (k + 1 + A)^α`, `c_k = c / (k + 1)^γ`.
///
/// # Example
///
/// ```
/// use rasengan_optim::{Optimizer, Spsa};
///
/// let mut f = |x: &[f64]| (x[0] - 2.0).powi(2);
/// let res = Spsa::new(400, 13).minimize(&mut f, &[0.0]);
/// assert!((res.best_params[0] - 2.0).abs() < 0.2);
/// ```
#[derive(Clone, Debug)]
pub struct Spsa {
    max_iterations: usize,
    seed: u64,
    a: f64,
    c: f64,
    alpha: f64,
    gamma: f64,
    stability: f64,
}

impl Spsa {
    /// Creates an SPSA optimizer with an iteration budget and RNG seed.
    pub fn new(max_iterations: usize, seed: u64) -> Self {
        Spsa {
            max_iterations,
            seed,
            a: 0.2,
            c: 0.1,
            alpha: 0.602,
            gamma: 0.101,
            stability: 10.0,
        }
    }

    /// Sets the step-size numerator `a` (default 0.2).
    pub fn with_a(mut self, a: f64) -> Self {
        self.a = a;
        self
    }

    /// Sets the perturbation size `c` (default 0.1).
    pub fn with_c(mut self, c: f64) -> Self {
        self.c = c;
        self
    }
}

impl Optimizer for Spsa {
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimizeResult {
        let n = x0.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut x = x0.to_vec();
        let mut evals = 0usize;
        let mut eval = |x: &[f64], evals: &mut usize| {
            *evals += 1;
            f(x)
        };

        let mut best = x.clone();
        let mut best_val = eval(&x, &mut evals);
        let mut history = Vec::with_capacity(self.max_iterations);

        for k in 0..self.max_iterations {
            let ak = self.a / (k as f64 + 1.0 + self.stability).powf(self.alpha);
            let ck = self.c / (k as f64 + 1.0).powf(self.gamma);

            // Rademacher perturbation.
            let delta: Vec<f64> = (0..n)
                .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
                .collect();
            let xp: Vec<f64> = x.iter().zip(&delta).map(|(v, d)| v + ck * d).collect();
            let xm: Vec<f64> = x.iter().zip(&delta).map(|(v, d)| v - ck * d).collect();
            let fp = eval(&xp, &mut evals);
            let fm = eval(&xm, &mut evals);

            for i in 0..n {
                let ghat = (fp - fm) / (2.0 * ck * delta[i]);
                x[i] -= ak * ghat;
            }

            let fx = eval(&x, &mut evals);
            if fx < best_val {
                best_val = fx;
                best = x.clone();
            }
            history.push(best_val);
        }

        OptimizeResult {
            best_params: best,
            best_value: best_val,
            evaluations: evals,
            iterations: self.max_iterations,
            history,
        }
    }

    fn name(&self) -> &'static str {
        "spsa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces() {
        let mut f1 = |x: &[f64]| x[0].powi(2) + x[1].powi(2);
        let mut f2 = |x: &[f64]| x[0].powi(2) + x[1].powi(2);
        let a = Spsa::new(100, 5).minimize(&mut f1, &[1.0, -1.0]);
        let b = Spsa::new(100, 5).minimize(&mut f2, &[1.0, -1.0]);
        assert_eq!(a.best_params, b.best_params);
        assert_eq!(a.best_value, b.best_value);
    }

    #[test]
    fn different_seeds_differ() {
        // Needs ≥ 2 dimensions: in 1-D the Rademacher sign cancels out
        // of the gradient estimate, making SPSA seed-independent.
        let mut f1 = |x: &[f64]| x[0].powi(2) + 2.0 * x[1].powi(2);
        let mut f2 = |x: &[f64]| x[0].powi(2) + 2.0 * x[1].powi(2);
        let a = Spsa::new(50, 1).minimize(&mut f1, &[1.0, 1.0]);
        let b = Spsa::new(50, 2).minimize(&mut f2, &[1.0, 1.0]);
        assert_ne!(a.best_params, b.best_params);
    }

    #[test]
    fn survives_noisy_objective() {
        // Deterministic pseudo-noise keyed off the point: SPSA should
        // still find the basin.
        let mut f = |x: &[f64]| {
            let noise = (x[0] * 1e4).sin() * 0.01;
            (x[0] - 1.0).powi(2) + noise
        };
        let res = Spsa::new(800, 3).minimize(&mut f, &[-1.0]);
        assert!(
            (res.best_params[0] - 1.0).abs() < 0.3,
            "{:?}",
            res.best_params
        );
    }

    #[test]
    fn evaluation_count_is_three_per_iteration_plus_one() {
        let mut f = |x: &[f64]| x[0].powi(2);
        let res = Spsa::new(10, 0).minimize(&mut f, &[1.0]);
        assert_eq!(res.evaluations, 1 + 3 * 10);
    }
}
