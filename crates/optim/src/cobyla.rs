//! A COBYLA-style linear-approximation trust-region optimizer.
//!
//! Powell's COBYLA builds a linear model of the objective by
//! interpolation on an `n+1`-point simplex and minimizes it inside a
//! shrinking trust region. This implementation keeps that core loop
//! (interpolated linear model, trust-region step, radius management) and
//! drops the general nonlinear-constraint machinery — the variational
//! parameter spaces here are unconstrained (angles), which is also how
//! the paper uses COBYLA.

use crate::{OptimizeResult, Optimizer};

/// Linear-approximation trust-region minimizer (COBYLA-style).
///
/// # Example
///
/// ```
/// use rasengan_optim::{Cobyla, Optimizer};
///
/// let mut f = |x: &[f64]| (x[0] - 0.5).powi(2) + (x[1] - 0.25).powi(2);
/// let res = Cobyla::new(200).minimize(&mut f, &[0.0, 0.0]);
/// assert!(res.best_value < 1e-3);
/// ```
#[derive(Clone, Debug)]
pub struct Cobyla {
    max_iterations: usize,
    rho_begin: f64,
    rho_end: f64,
}

impl Cobyla {
    /// Creates an optimizer with an iteration budget and default trust
    /// radii (0.5 → 1e-6).
    pub fn new(max_iterations: usize) -> Self {
        Cobyla {
            max_iterations,
            rho_begin: 0.5,
            rho_end: 1e-6,
        }
    }

    /// Sets the initial trust-region radius.
    pub fn with_rho_begin(mut self, rho: f64) -> Self {
        self.rho_begin = rho;
        self
    }

    /// Sets the final trust-region radius (convergence threshold).
    pub fn with_rho_end(mut self, rho: f64) -> Self {
        self.rho_end = rho;
        self
    }
}

/// Solves the `n×n` linear system `A g = y` by Gaussian elimination with
/// partial pivoting; returns `None` when singular.
#[allow(clippy::needless_range_loop)] // textbook index form
fn solve_linear(mut a: Vec<Vec<f64>>, mut y: Vec<f64>) -> Option<Vec<f64>> {
    let n = y.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        y.swap(col, pivot);
        for r in (col + 1)..n {
            let factor = a[r][col] / a[col][col];
            for c in col..n {
                a[r][c] -= factor * a[col][c];
            }
            y[r] -= factor * y[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = y[row];
        for c in (row + 1)..n {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

impl Optimizer for Cobyla {
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimizeResult {
        let n = x0.len();
        let mut evals = 0usize;
        // Non-finite objective values (±∞, NaN) are clamped: a single
        // infinity in the interpolation set would propagate NaN into the
        // model gradient and from there into the iterates.
        let mut eval = |x: &[f64], evals: &mut usize| {
            *evals += 1;
            let v = f(x);
            if v.is_finite() {
                v
            } else {
                f64::MAX / 4.0
            }
        };

        let mut rho = self.rho_begin;
        // Simplex of n+1 interpolation points: x0 and axis steps of rho.
        let mut points: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        let mut values: Vec<f64> = Vec::with_capacity(n + 1);
        points.push(x0.to_vec());
        values.push(eval(x0, &mut evals));
        for i in 0..n {
            let mut x = x0.to_vec();
            x[i] += rho;
            values.push(eval(&x, &mut evals));
            points.push(x);
        }

        let best_index = |values: &[f64]| {
            values
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty simplex")
        };

        let mut history = Vec::new();
        let mut iterations = 0usize;

        while iterations < self.max_iterations && rho > self.rho_end {
            iterations += 1;
            let bi = best_index(&values);
            history.push(values[bi]);
            let base = points[bi].clone();
            let fbase = values[bi];

            // Interpolated gradient g: rows are (point − base), y is
            // (value − fbase), skipping the base point itself.
            let mut rows = Vec::with_capacity(n);
            let mut y = Vec::with_capacity(n);
            for (i, p) in points.iter().enumerate() {
                if i == bi {
                    continue;
                }
                rows.push(p.iter().zip(&base).map(|(a, b)| a - b).collect::<Vec<_>>());
                y.push(values[i] - fbase);
            }

            let grad = match solve_linear(rows, y) {
                Some(g) => g,
                None => {
                    // Degenerate simplex: rebuild around the best point.
                    rebuild_simplex(
                        &base,
                        fbase,
                        rho,
                        &mut points,
                        &mut values,
                        &mut eval,
                        &mut evals,
                    );
                    continue;
                }
            };
            let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            if gnorm < 1e-14 {
                rho *= 0.5;
                rebuild_simplex(
                    &base,
                    fbase,
                    rho,
                    &mut points,
                    &mut values,
                    &mut eval,
                    &mut evals,
                );
                continue;
            }

            // Trust-region step: full rho against the model gradient.
            let cand: Vec<f64> = base
                .iter()
                .zip(&grad)
                .map(|(x, g)| x - rho * g / gnorm)
                .collect();
            let fcand = eval(&cand, &mut evals);

            let wi = values
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty simplex");
            if fcand < fbase {
                // Accept: replace the worst interpolation point.
                points[wi] = cand;
                values[wi] = fcand;
            } else {
                // Reject: shrink the trust region. Refresh the simplex
                // geometry with a single evaluation — pull the worst
                // point halfway toward the incumbent — rather than
                // rebuilding all n+1 points (which would cost O(n)
                // evaluations per rejected step and dominates runtime on
                // wide parameter vectors).
                rho *= 0.5;
                if wi != bi {
                    let x: Vec<f64> = points[wi]
                        .iter()
                        .zip(&base)
                        .map(|(w, b)| 0.5 * (w + b))
                        .collect();
                    values[wi] = eval(&x, &mut evals);
                    points[wi] = x;
                }
            }
        }

        let bi = best_index(&values);
        history.push(values[bi]);
        for i in 1..history.len() {
            if history[i] > history[i - 1] {
                history[i] = history[i - 1];
            }
        }
        OptimizeResult {
            best_params: points[bi].clone(),
            best_value: values[bi],
            evaluations: evals,
            iterations,
            history,
        }
    }

    fn name(&self) -> &'static str {
        "cobyla"
    }
}

/// Replaces the simplex with axis steps of size `rho` around `base`.
fn rebuild_simplex(
    base: &[f64],
    fbase: f64,
    rho: f64,
    points: &mut Vec<Vec<f64>>,
    values: &mut Vec<f64>,
    eval: &mut impl FnMut(&[f64], &mut usize) -> f64,
    evals: &mut usize,
) {
    let n = base.len();
    points.clear();
    values.clear();
    points.push(base.to_vec());
    values.push(fbase);
    for i in 0..n {
        let mut x = base.to_vec();
        x[i] += rho;
        values.push(eval(&x, evals));
        points.push(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_shifted_quadratic() {
        let mut f = |x: &[f64]| (x[0] + 1.5).powi(2) + (x[1] - 2.0).powi(2) + 3.0;
        let res = Cobyla::new(400).minimize(&mut f, &[0.0, 0.0]);
        assert!(
            (res.best_value - 3.0).abs() < 1e-2,
            "value {}",
            res.best_value
        );
        assert!((res.best_params[0] + 1.5).abs() < 0.1);
        assert!((res.best_params[1] - 2.0).abs() < 0.1);
    }

    #[test]
    fn handles_one_dimension() {
        let mut f = |x: &[f64]| (x[0] - 10.0).powi(2);
        let res = Cobyla::new(400).minimize(&mut f, &[0.0]);
        assert!((res.best_params[0] - 10.0).abs() < 0.1);
    }

    #[test]
    fn linear_solver_roundtrip() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve_linear(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn linear_solver_rejects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn stops_at_rho_end() {
        let mut f = |x: &[f64]| x[0].powi(2);
        let res = Cobyla::new(10_000)
            .with_rho_begin(0.1)
            .with_rho_end(1e-3)
            .minimize(&mut f, &[1.0]);
        assert!(res.iterations < 10_000, "rho_end never reached");
    }

    #[test]
    fn periodic_objective_finds_a_minimum() {
        // VQA-like landscape: sum of cosines.
        let mut f = |x: &[f64]| x.iter().map(|t| t.cos()).sum::<f64>();
        let res = Cobyla::new(500).minimize(&mut f, &[1.0, 2.5]);
        assert!(res.best_value < -1.9, "stalled at {}", res.best_value);
    }
}
