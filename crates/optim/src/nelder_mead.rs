//! The Nelder–Mead simplex method.

use crate::{OptimizeResult, Optimizer};

/// Classic Nelder–Mead with standard coefficients (reflection 1,
/// expansion 2, contraction ½, shrink ½).
///
/// # Example
///
/// ```
/// use rasengan_optim::{NelderMead, Optimizer};
///
/// let mut sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
/// let res = NelderMead::new(200).minimize(&mut sphere, &[1.0, 1.0, 1.0]);
/// assert!(res.best_value < 1e-6);
/// ```
#[derive(Clone, Debug)]
pub struct NelderMead {
    max_iterations: usize,
    initial_step: f64,
    tolerance: f64,
}

impl NelderMead {
    /// Creates a Nelder–Mead optimizer with an iteration budget.
    pub fn new(max_iterations: usize) -> Self {
        NelderMead {
            max_iterations,
            initial_step: 0.5,
            tolerance: 1e-10,
        }
    }

    /// Sets the initial simplex edge length (default 0.5).
    pub fn with_initial_step(mut self, step: f64) -> Self {
        self.initial_step = step;
        self
    }

    /// Sets the convergence tolerance on the simplex value spread.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }
}

impl Optimizer for NelderMead {
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimizeResult {
        let n = x0.len();
        let mut evals = 0usize;
        let mut eval = |x: &[f64], evals: &mut usize| {
            *evals += 1;
            f(x)
        };

        // Initial simplex: x0 plus a step along each axis.
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
        let v0 = eval(x0, &mut evals);
        simplex.push((x0.to_vec(), v0));
        for i in 0..n {
            let mut x = x0.to_vec();
            x[i] += self.initial_step;
            let v = eval(&x, &mut evals);
            simplex.push((x, v));
        }

        let mut history = Vec::with_capacity(self.max_iterations);
        let mut iterations = 0usize;

        for _ in 0..self.max_iterations {
            iterations += 1;
            simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
            history.push(simplex[0].1);

            let spread = simplex[n].1 - simplex[0].1;
            if spread.abs() < self.tolerance {
                break;
            }

            // Centroid of all but the worst.
            let centroid: Vec<f64> = (0..n)
                .map(|j| simplex[..n].iter().map(|(x, _)| x[j]).sum::<f64>() / n as f64)
                .collect();
            let worst = simplex[n].clone();

            let reflect: Vec<f64> = (0..n)
                .map(|j| centroid[j] + (centroid[j] - worst.0[j]))
                .collect();
            let fr = eval(&reflect, &mut evals);

            if fr < simplex[0].1 {
                // Try expansion.
                let expand: Vec<f64> = (0..n)
                    .map(|j| centroid[j] + 2.0 * (centroid[j] - worst.0[j]))
                    .collect();
                let fe = eval(&expand, &mut evals);
                simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
            } else if fr < simplex[n - 1].1 {
                simplex[n] = (reflect, fr);
            } else {
                // Contraction (inside or outside).
                let (base, fb) = if fr < worst.1 {
                    (&reflect, fr)
                } else {
                    (&worst.0, worst.1)
                };
                let contract: Vec<f64> = (0..n)
                    .map(|j| centroid[j] + 0.5 * (base[j] - centroid[j]))
                    .collect();
                let fc = eval(&contract, &mut evals);
                if fc < fb {
                    simplex[n] = (contract, fc);
                } else {
                    // Shrink toward the best vertex.
                    let best = simplex[0].0.clone();
                    for item in simplex.iter_mut().skip(1) {
                        let x: Vec<f64> = (0..n)
                            .map(|j| best[j] + 0.5 * (item.0[j] - best[j]))
                            .collect();
                        let v = eval(&x, &mut evals);
                        *item = (x, v);
                    }
                }
            }
        }

        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        // Best-so-far monotonicity for the history trace.
        for i in 1..history.len() {
            if history[i] > history[i - 1] {
                history[i] = history[i - 1];
            }
        }
        OptimizeResult {
            best_params: simplex[0].0.clone(),
            best_value: simplex[0].1,
            evaluations: evals,
            iterations,
            history,
        }
    }

    fn name(&self) -> &'static str {
        "nelder-mead"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_rosenbrock_ish() {
        let mut rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let res = NelderMead::new(2000).minimize(&mut rosen, &[-1.0, 1.0]);
        assert!(res.best_value < 1e-4, "stalled at {}", res.best_value);
        assert!((res.best_params[0] - 1.0).abs() < 0.05);
    }

    #[test]
    fn respects_iteration_budget() {
        let mut f = |x: &[f64]| x[0] * x[0];
        let res = NelderMead::new(5).minimize(&mut f, &[10.0]);
        assert!(res.iterations <= 5);
    }

    #[test]
    fn one_dimensional_problem() {
        let mut f = |x: &[f64]| (x[0] - 3.0).powi(2) + 1.0;
        let res = NelderMead::new(200).minimize(&mut f, &[0.0]);
        assert!((res.best_params[0] - 3.0).abs() < 1e-4);
        assert!((res.best_value - 1.0).abs() < 1e-6);
    }

    #[test]
    fn early_stop_on_converged_simplex() {
        let mut f = |_: &[f64]| 42.0; // flat function converges instantly
        let res = NelderMead::new(1000).minimize(&mut f, &[0.0, 0.0]);
        assert!(res.iterations < 10);
        assert_eq!(res.best_value, 42.0);
    }
}
