//! Derivative-free classical optimizers for variational parameter
//! training.
//!
//! The paper uses COBYLA (constrained optimization by linear
//! approximation, Powell \[33\]) for every method's parameter updates. The
//! parameter landscapes here are all low-dimensional, bounded, and
//! noisy-ish, so this crate implements three derivative-free local
//! optimizers behind one [`Optimizer`] trait:
//!
//! * [`Cobyla`] — a linear-approximation trust-region method in the
//!   spirit of Powell's COBYLA (the substitution is documented in
//!   DESIGN.md; our parameter problems are unconstrained boxes).
//! * [`NelderMead`] — the classic simplex method.
//! * [`Spsa`] — simultaneous-perturbation stochastic approximation,
//!   robust under sampling noise.
//!
//! All optimizers **minimize**; callers maximizing an objective negate
//! it.

pub mod cobyla;
pub mod nelder_mead;
pub mod spsa;

pub use cobyla::Cobyla;
pub use nelder_mead::NelderMead;
pub use spsa::Spsa;

/// Outcome of an optimization run.
#[derive(Clone, Debug)]
pub struct OptimizeResult {
    /// Best parameter vector found.
    pub best_params: Vec<f64>,
    /// Objective value at `best_params`.
    pub best_value: f64,
    /// Total number of objective evaluations.
    pub evaluations: usize,
    /// Number of optimizer iterations performed.
    pub iterations: usize,
    /// Best-so-far objective value after each iteration (convergence
    /// trace; used by the latency/convergence figures).
    pub history: Vec<f64>,
}

/// A derivative-free minimizer.
///
/// Implementations must be deterministic for a fixed configuration
/// (stochastic methods carry their own seed).
pub trait Optimizer {
    /// Minimizes `f` starting from `x0`.
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimizeResult;

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shifted quadratic bowl: minimum at (1, -2), value 0.
    pub(crate) fn bowl(x: &[f64]) -> f64 {
        (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2)
    }

    fn check_converges(opt: &dyn Optimizer, tol: f64) {
        let mut f = |x: &[f64]| bowl(x);
        let res = opt.minimize(&mut f, &[0.0, 0.0]);
        assert!(
            res.best_value < tol,
            "{} stalled at {} (params {:?})",
            opt.name(),
            res.best_value,
            res.best_params
        );
        assert!(res.evaluations > 0);
        assert!(!res.history.is_empty());
        // History must be monotone non-increasing (best-so-far).
        for w in res.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn all_optimizers_minimize_a_bowl() {
        check_converges(&Cobyla::new(300), 1e-3);
        check_converges(&NelderMead::new(300), 1e-6);
        check_converges(&Spsa::new(500, 7), 1e-2);
    }
}
