//! Reduced row-echelon form and exact nullspace computation.

use crate::matrix::{IntMatrix, RatMatrix};
use crate::rational::Rational;

/// Result of a row reduction: pivot columns and the (implied) free columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RrefSummary {
    /// Columns holding a leading 1, in row order.
    pub pivot_cols: Vec<usize>,
    /// Columns without a pivot (parameters of the general solution).
    pub free_cols: Vec<usize>,
}

impl RrefSummary {
    /// The matrix rank (number of pivots).
    pub fn rank(&self) -> usize {
        self.pivot_cols.len()
    }
}

/// Reduces `m` to reduced row-echelon form in place and reports the pivot
/// structure.
///
/// Uses exact rational Gauss–Jordan elimination with partial pivoting on
/// the first nonzero entry (magnitude does not matter for exact
/// arithmetic; we pick the entry with the smallest denominator to keep
/// intermediates small).
///
/// # Example
///
/// ```
/// use rasengan_math::{IntMatrix, rref_in_place};
///
/// let mut m = IntMatrix::from_rows(&[vec![1, 1, -1], vec![2, 2, -2]]).to_rational();
/// let summary = rref_in_place(&mut m);
/// assert_eq!(summary.rank(), 1); // the second row is dependent
/// ```
pub fn rref_in_place(m: &mut RatMatrix) -> RrefSummary {
    let rows = m.rows();
    let cols = m.cols();
    let mut pivot_cols = Vec::new();
    let mut lead_row = 0usize;

    for col in 0..cols {
        if lead_row >= rows {
            break;
        }
        // Find a pivot row for this column: prefer small denominators, then
        // small numerators, to keep the arithmetic cheap.
        let pivot = (lead_row..rows)
            .filter(|&r| !m[(r, col)].is_zero())
            .min_by_key(|&r| (m[(r, col)].denom(), m[(r, col)].numer().abs()));
        let Some(pivot) = pivot else { continue };

        m.swap_rows(lead_row, pivot);
        let inv = m[(lead_row, col)].recip();
        m.scale_row(lead_row, inv);
        for r in 0..rows {
            if r != lead_row && !m[(r, col)].is_zero() {
                let factor = -m[(r, col)];
                m.add_scaled_row(r, lead_row, factor);
            }
        }
        pivot_cols.push(col);
        lead_row += 1;
    }

    let free_cols = (0..cols).filter(|c| !pivot_cols.contains(c)).collect();
    RrefSummary {
        pivot_cols,
        free_cols,
    }
}

/// The rank of an integer matrix, computed exactly.
///
/// # Example
///
/// ```
/// use rasengan_math::{IntMatrix, rank};
///
/// let c = IntMatrix::from_rows(&[vec![1, 0], vec![0, 1], vec![1, 1]]);
/// assert_eq!(rank(&c), 2);
/// ```
pub fn rank(m: &IntMatrix) -> usize {
    let mut rm = m.to_rational();
    rref_in_place(&mut rm).rank()
}

/// Computes an exact basis for the nullspace of `m` (vectors `u` with
/// `m u = 0`), as integer vectors scaled to smallest terms.
///
/// For each free column `j`, the standard RREF construction yields a
/// rational vector with `1` at position `j` and `-m[pivot_row, j]` at each
/// pivot column. Each vector is scaled by the LCM of its denominators and
/// divided by the GCD of its entries, giving a primitive integer vector.
///
/// The returned vectors are linearly independent and span the nullspace.
/// Entries are *not* guaranteed to lie in `{-1,0,1}` — see
/// [`crate::basis::ternary_nullspace_basis`] for that refinement.
///
/// # Example
///
/// ```
/// use rasengan_math::{IntMatrix, nullspace};
///
/// let c = IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]]);
/// let ns = nullspace(&c);
/// assert_eq!(ns.len(), 3);
/// for u in &ns {
///     assert!(c.mul_vec(u).iter().all(|&v| v == 0));
/// }
/// ```
pub fn nullspace(m: &IntMatrix) -> Vec<Vec<i64>> {
    let mut rm = m.to_rational();
    let summary = rref_in_place(&mut rm);
    let cols = m.cols();

    summary
        .free_cols
        .iter()
        .map(|&free| {
            let mut v = vec![Rational::ZERO; cols];
            v[free] = Rational::ONE;
            for (row, &pc) in summary.pivot_cols.iter().enumerate() {
                v[pc] = -rm[(row, free)];
            }
            primitive_integer_vector(&v)
        })
        .collect()
}

/// Scales a rational vector to a primitive integer vector (integer
/// entries with overall GCD 1, first nonzero entry's sign preserved).
fn primitive_integer_vector(v: &[Rational]) -> Vec<i64> {
    let mut lcm: i128 = 1;
    for r in v {
        let d = r.denom();
        lcm = lcm / gcd_i128(lcm, d) * d;
    }
    let ints: Vec<i128> = v.iter().map(|r| r.numer() * (lcm / r.denom())).collect();
    let mut g: i128 = 0;
    for &x in &ints {
        g = gcd_i128(g, x.abs());
    }
    let g = g.max(1);
    ints.iter()
        .map(|&x| i64::try_from(x / g).expect("nullspace entry exceeds i64"))
        .collect()
}

fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_constraints() -> IntMatrix {
        IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]])
    }

    #[test]
    fn rref_of_identity_is_identity() {
        let mut m = IntMatrix::identity(3).to_rational();
        let s = rref_in_place(&mut m);
        assert_eq!(s.rank(), 3);
        assert!(s.free_cols.is_empty());
        for i in 0..3 {
            assert_eq!(m[(i, i)], Rational::ONE);
        }
    }

    #[test]
    fn rank_of_paper_constraints_is_two() {
        assert_eq!(rank(&paper_constraints()), 2);
    }

    #[test]
    fn nullspace_dimension_matches_rank_nullity() {
        let c = paper_constraints();
        let ns = nullspace(&c);
        assert_eq!(ns.len(), c.cols() - rank(&c));
    }

    #[test]
    fn nullspace_vectors_annihilate() {
        let c = paper_constraints();
        for u in nullspace(&c) {
            assert_eq!(c.mul_vec(&u), vec![0, 0], "C u must be zero for {u:?}");
        }
    }

    #[test]
    fn nullspace_of_full_rank_square_is_empty() {
        let c = IntMatrix::from_rows(&[vec![1, 1], vec![0, 1]]);
        assert!(nullspace(&c).is_empty());
    }

    #[test]
    fn nullspace_vectors_are_primitive() {
        // Constraint 2x + 2y = 0 should give primitive [1, -1] not [2, -2].
        let c = IntMatrix::from_rows(&[vec![2, 2]]);
        let ns = nullspace(&c);
        assert_eq!(ns, vec![vec![-1, 1]]);
    }

    #[test]
    fn rank_deficient_duplicated_rows() {
        let c = IntMatrix::from_rows(&[vec![1, -1, 0], vec![1, -1, 0], vec![0, 0, 0]]);
        assert_eq!(rank(&c), 1);
        assert_eq!(nullspace(&c).len(), 2);
    }

    #[test]
    fn rational_coefficients_scale_to_integers() {
        // Row reduction of [1 2 3] gives free-column vectors with fractions;
        // the output must still be integral.
        let c = IntMatrix::from_rows(&[vec![3, 2, 1]]);
        for u in nullspace(&c) {
            assert_eq!(
                c.mul_vec(&u),
                vec![0],
                "integral nullspace vector must annihilate"
            );
        }
    }
}
