//! Ternary homogeneous bases.
//!
//! The transition Hamiltonian (paper Definition 1) is only defined for
//! homogeneous basis vectors `u ∈ {-1,0,1}^n`: entry `+1` maps to a
//! raising operator `σ⁺`, `-1` to a lowering operator `σ⁻`, and `0` to
//! identity. This module turns the raw integer nullspace of a constraint
//! matrix into such a *ternary* basis, or reports that none could be
//! found.

use crate::matrix::IntMatrix;
use crate::rref::nullspace;
use std::fmt;

/// Failure to produce a `{-1,0,1}` homogeneous basis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TernaryBasisError {
    /// A nullspace vector had an entry outside `{-1,0,1}` and no
    /// combination with other basis vectors fixed it.
    NonTernaryVector {
        /// Index of the offending vector in the raw nullspace.
        index: usize,
        /// The offending vector.
        vector: Vec<i64>,
    },
}

impl fmt::Display for TernaryBasisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TernaryBasisError::NonTernaryVector { index, vector } => write!(
                f,
                "nullspace vector #{index} {vector:?} could not be reduced to {{-1,0,1}} entries"
            ),
        }
    }
}

impl std::error::Error for TernaryBasisError {}

/// Whether every entry of `u` lies in `{-1, 0, 1}`.
///
/// # Example
///
/// ```
/// use rasengan_math::basis::is_ternary;
/// assert!(is_ternary(&[-1, 0, 1]));
/// assert!(!is_ternary(&[2, 0, 0]));
/// ```
pub fn is_ternary(u: &[i64]) -> bool {
    u.iter().all(|&v| (-1..=1).contains(&v))
}

/// Number of nonzero entries of a basis vector — the `k` in the paper's
/// `34k` CX-gate cost model for one transition operator.
///
/// # Example
///
/// ```
/// use rasengan_math::nonzero_count;
/// assert_eq!(nonzero_count(&[-1, 0, -1, 1, 0]), 3);
/// ```
pub fn nonzero_count(u: &[i64]) -> usize {
    u.iter().filter(|&&v| v != 0).count()
}

/// Total nonzero count of a whole basis (the quantity Algorithm 1
/// greedily minimizes).
pub fn basis_cost(basis: &[Vec<i64>]) -> usize {
    basis.iter().map(|u| nonzero_count(u)).sum()
}

/// Computes a homogeneous basis of `C`'s nullspace with all entries in
/// `{-1, 0, 1}`.
///
/// The raw integer nullspace from [`nullspace`] may contain entries with
/// magnitude ≥ 2 (for non-totally-unimodular systems). This routine
/// repairs such vectors by adding/subtracting other basis vectors —
/// the same move Algorithm 1 uses to *shrink* vectors — searching
/// breadth-first over small combinations.
///
/// # Errors
///
/// Returns [`TernaryBasisError::NonTernaryVector`] if some vector cannot
/// be brought into `{-1,0,1}` by combinations of up to two other basis
/// vectors. The constraint systems of all five benchmark domains
/// (assignment/covering-style constraints) always succeed.
///
/// # Example
///
/// ```
/// use rasengan_math::{IntMatrix, ternary_nullspace_basis};
///
/// let c = IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]]);
/// let basis = ternary_nullspace_basis(&c).unwrap();
/// assert_eq!(basis.len(), 3);
/// assert!(basis.iter().all(|u| u.iter().all(|&v| v.abs() <= 1)));
/// ```
pub fn ternary_nullspace_basis(c: &IntMatrix) -> Result<Vec<Vec<i64>>, TernaryBasisError> {
    if let Ok(basis) = ternarize(nullspace(c)) {
        return Ok(basis);
    }
    // Second chance: the HNF lattice basis is a different generating set
    // of the same integer lattice and often ternarizes when the
    // RREF-derived one does not.
    ternarize(crate::hnf::integer_nullspace(c))
}

/// Repairs every non-ternary vector of a basis in place, or reports the
/// first irreparable one.
fn ternarize(mut basis: Vec<Vec<i64>>) -> Result<Vec<Vec<i64>>, TernaryBasisError> {
    let m = basis.len();
    for i in 0..m {
        if is_ternary(&basis[i]) {
            continue;
        }
        if let Some(fixed) = repair_vector(&basis, i) {
            basis[i] = fixed;
            continue;
        }
        if let Some(fixed) = lattice_reduce(&basis, i) {
            basis[i] = fixed;
            continue;
        }
        return Err(TernaryBasisError::NonTernaryVector {
            index: i,
            vector: basis[i].clone(),
        });
    }
    Ok(basis)
}

/// Greedy size reduction of `basis[i]` against the other basis vectors:
/// repeatedly add `±basis[j]` whenever it strictly decreases
/// `(max |entry|, ‖·‖₁)`, until the vector is ternary or no move helps.
/// Every step is an elementary (unimodular) operation, so the span is
/// preserved.
fn lattice_reduce(basis: &[Vec<i64>], i: usize) -> Option<Vec<i64>> {
    let measure = |v: &[i64]| {
        (
            v.iter().map(|x| x.abs()).max().unwrap_or(0),
            v.iter().map(|x| x.abs()).sum::<i64>(),
        )
    };
    let mut current = basis[i].clone();
    for _ in 0..64 {
        if is_ternary(&current) {
            return Some(current);
        }
        let mut best: Option<(Vec<i64>, (i64, i64))> = None;
        let cur_m = measure(&current);
        for (j, w) in basis.iter().enumerate() {
            if j == i {
                continue;
            }
            for s in [-1i64, 1] {
                let cand = add_scaled(&current, w, s);
                if cand.iter().all(|&v| v == 0) {
                    continue;
                }
                let m = measure(&cand);
                if m < cur_m && best.as_ref().is_none_or(|(_, bm)| m < *bm) {
                    best = Some((cand, m));
                }
            }
        }
        match best {
            Some((cand, _)) => current = cand,
            None => return None,
        }
    }
    is_ternary(&current).then_some(current)
}

/// Tries to replace `basis[i]` by `basis[i] + Σ s_j basis[j]` with
/// `s_j ∈ {-1, 0, 1}` over at most two other vectors, so that the result
/// is ternary and nonzero. Returns the repaired vector.
#[allow(clippy::needless_range_loop)] // index j is also compared against i
fn repair_vector(basis: &[Vec<i64>], i: usize) -> Option<Vec<i64>> {
    let m = basis.len();
    let target = &basis[i];

    // One helper vector.
    for j in 0..m {
        if j == i {
            continue;
        }
        for s in [-1i64, 1] {
            let cand = add_scaled(target, &basis[j], s);
            if is_ternary(&cand) && nonzero_count(&cand) > 0 {
                return Some(cand);
            }
        }
    }
    // Two helper vectors.
    for j in 0..m {
        if j == i {
            continue;
        }
        for k in (j + 1)..m {
            if k == i {
                continue;
            }
            for sj in [-1i64, 1] {
                for sk in [-1i64, 1] {
                    let cand = add_scaled(&add_scaled(target, &basis[j], sj), &basis[k], sk);
                    if is_ternary(&cand) && nonzero_count(&cand) > 0 {
                        return Some(cand);
                    }
                }
            }
        }
    }
    None
}

fn add_scaled(a: &[i64], b: &[i64], s: i64) -> Vec<i64> {
    a.iter().zip(b).map(|(&x, &y)| x + s * y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_basis_is_ternary() {
        let c = IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]]);
        let basis = ternary_nullspace_basis(&c).unwrap();
        assert_eq!(basis.len(), 3);
        for u in &basis {
            assert!(is_ternary(u), "basis vector {u:?} not ternary");
            assert_eq!(c.mul_vec(u), vec![0, 0]);
        }
    }

    #[test]
    fn one_hot_constraints_give_ternary_basis() {
        // x1 + x2 + x3 = 1 — classic one-hot constraint from FLP/GCP.
        let c = IntMatrix::from_rows(&[vec![1, 1, 1]]);
        let basis = ternary_nullspace_basis(&c).unwrap();
        assert_eq!(basis.len(), 2);
        for u in &basis {
            assert!(is_ternary(u));
            assert_eq!(c.mul_vec(u), vec![0]);
        }
    }

    #[test]
    fn nonzero_count_counts() {
        assert_eq!(nonzero_count(&[0, 0, 0]), 0);
        assert_eq!(nonzero_count(&[1, -1, 1]), 3);
    }

    #[test]
    fn basis_cost_sums_nonzeros() {
        assert_eq!(basis_cost(&[vec![1, 0], vec![-1, 1]]), 3);
    }

    #[test]
    fn repair_brings_coefficient_two_into_range() {
        // Nullspace of [1, -2, 1]: raw vectors can have entries of
        // magnitude 2; with repair the basis may still fail, in which
        // case the error is reported cleanly. Either outcome must be
        // consistent: Ok => all ternary and annihilating.
        let c = IntMatrix::from_rows(&[vec![1, -2, 1]]);
        match ternary_nullspace_basis(&c) {
            Ok(basis) => {
                for u in &basis {
                    assert!(is_ternary(u));
                    assert_eq!(c.mul_vec(u), vec![0]);
                }
            }
            Err(TernaryBasisError::NonTernaryVector { vector, .. }) => {
                assert!(!is_ternary(&vector));
            }
        }
    }

    #[test]
    fn scp_style_system_needs_lattice_reduction() {
        // Regression: a random set-cover system whose RREF nullspace
        // contains a vector with a 2 that pairwise repair cannot fix —
        // the greedy lattice reduction (or the HNF fallback) must.
        use crate::rref::rank;
        let c = IntMatrix::from_rows(&[
            vec![1, 1, 0, 1, 0, 0, -1, -1, 0, 0],
            vec![0, 1, 1, 0, 1, 0, 0, 0, -1, -1],
            vec![1, 0, 1, 1, 0, 1, 0, 0, 0, 0],
        ]);
        let basis = ternary_nullspace_basis(&c).expect("lattice reduction handles this");
        assert_eq!(basis.len(), c.cols() - rank(&c));
        for u in &basis {
            assert!(is_ternary(u), "non-ternary survivor {u:?}");
            assert!(c.mul_vec(u).iter().all(|&v| v == 0));
        }
        // Independence preserved.
        assert_eq!(rank(&IntMatrix::from_rows(&basis)), basis.len());
    }

    #[test]
    fn error_display_mentions_vector() {
        let e = TernaryBasisError::NonTernaryVector {
            index: 1,
            vector: vec![2, 0],
        };
        let msg = format!("{e}");
        assert!(msg.contains("#1"));
        assert!(msg.contains("[2, 0]"));
    }
}
