//! Exact integer and rational linear algebra for the Rasengan reproduction.
//!
//! The transition-Hamiltonian construction (paper §3) is built on the
//! general-solution theory of linear systems: every feasible solution of
//! `C x = b` is a particular solution plus an integer combination of
//! homogeneous basis vectors `u` with `C u = 0` and `u ∈ {-1,0,1}^n`.
//! Floating-point nullspaces cannot certify membership in `{-1,0,1}`, so
//! this crate implements the required linear algebra *exactly*:
//!
//! * [`Rational`] — arbitrary-precision-free exact rationals over `i128`
//!   with checked arithmetic (panics on overflow rather than corrupting a
//!   basis).
//! * [`IntMatrix`] / [`RatMatrix`] — dense integer and rational matrices.
//! * [`rref`] — reduced row-echelon form, rank, and exact nullspace bases.
//! * [`basis`] — extraction and validation of ternary (`{-1,0,1}`)
//!   homogeneous bases, plus the basis-quality measures used by the
//!   Hamiltonian simplification pass.
//! * [`solve`] — binary particular-solution search (backtracking with
//!   propagation) and exact linear-system solving.
//! * [`tu`] — total-unimodularity checks backing Theorem 1's `m²` vs `m³`
//!   coverage bound.
//!
//! # Example
//!
//! ```
//! use rasengan_math::{IntMatrix, basis::ternary_nullspace_basis};
//!
//! // The constraint system from the paper's Figure 1(a).
//! let c = IntMatrix::from_rows(&[
//!     vec![1, 1, -1, 0, 0],
//!     vec![0, 0, 1, 1, -1],
//! ]);
//! let basis = ternary_nullspace_basis(&c).expect("ternary basis exists");
//! assert_eq!(basis.len(), 3); // three homogeneous basis vectors
//! for u in &basis {
//!     assert!(c.mul_vec(u).iter().all(|&v| v == 0)); // C u = 0 exactly
//! }
//! ```

pub mod basis;
pub mod hnf;
pub mod matrix;
pub mod rational;
pub mod rref;
pub mod solve;
pub mod tu;

pub use basis::{nonzero_count, ternary_nullspace_basis, TernaryBasisError};
pub use hnf::{hermite_normal_form, integer_nullspace, Hnf};
pub use matrix::{IntMatrix, RatMatrix};
pub use rational::Rational;
pub use rref::{nullspace, rank, rref_in_place, RrefSummary};
pub use solve::{find_binary_solution, solve_exact, SolveError};
pub use tu::{is_totally_unimodular, GhouilaHouri};
