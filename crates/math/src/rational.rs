//! Exact rational arithmetic over `i128`.
//!
//! A small, dependency-free rational type sufficient for the row
//! reductions this crate performs. All arithmetic is *checked*: an
//! overflow panics instead of silently wrapping, because a wrapped
//! coefficient would corrupt a homogeneous basis and ultimately let the
//! solver explore infeasible states.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(num, den) == 1`.
///
/// # Example
///
/// ```
/// use rasengan_math::Rational;
///
/// let a = Rational::new(2, 4);
/// assert_eq!(a, Rational::new(1, 2));
/// assert_eq!(a + Rational::from(1i64), Rational::new(3, 2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor of two non-negative integers.
fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a rational `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use rasengan_math::Rational;
    /// assert_eq!(Rational::new(-6, -4), Rational::new(3, 2));
    /// ```
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num.unsigned_abs() as i128, den.unsigned_abs() as i128).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The numerator (after reduction to lowest terms).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Whether this value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether this value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Returns the integer value if this rational is an integer.
    pub fn to_integer(self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// The absolute value.
    pub fn abs(self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Approximate `f64` value (for reporting only — never used in the
    /// algebra itself).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    fn checked_new(num: Option<i128>, den: Option<i128>) -> Self {
        let num = num.expect("rational arithmetic overflow");
        let den = den.expect("rational arithmetic overflow");
        Rational::new(num, den)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<i128> for Rational {
    fn from(v: i128) -> Self {
        Rational { num: v, den: 1 }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // a/b + c/d = (ad + cb) / bd, reduced by new().
        let ad = self.num.checked_mul(rhs.den);
        let cb = rhs.num.checked_mul(self.den);
        let num = ad.and_then(|x| cb.and_then(|y| x.checked_add(y)));
        let den = self.den.checked_mul(rhs.den);
        Rational::checked_new(num, den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.num.abs(), rhs.den).max(1);
        let g2 = gcd(rhs.num.abs(), self.den).max(1);
        let num = (self.num / g1).checked_mul(rhs.num / g2);
        let den = (self.den / g2).checked_mul(rhs.den / g1);
        Rational::checked_new(num, den)
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a·b⁻¹ by definition
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}
impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}
impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}
impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Compare a/b vs c/d via ad vs cb (b, d > 0).
        let left = self
            .num
            .checked_mul(other.den)
            .expect("rational comparison overflow");
        let right = other
            .num
            .checked_mul(self.den)
            .expect("rational comparison overflow");
        left.cmp(&right)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let r = Rational::new(6, 8);
        assert_eq!(r.numer(), 3);
        assert_eq!(r.denom(), 4);
    }

    #[test]
    fn sign_normalizes_to_denominator_positive() {
        let r = Rational::new(1, -2);
        assert_eq!(r.numer(), -1);
        assert_eq!(r.denom(), 2);
        let r = Rational::new(-1, -2);
        assert_eq!(r.numer(), 1);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Rational::new(3, 7);
        let b = Rational::new(-2, 5);
        assert_eq!(a + b, Rational::new(1, 35));
        assert_eq!(a - b, Rational::new(29, 35));
        assert_eq!(a * b, Rational::new(-6, 35));
        assert_eq!(a / b, Rational::new(-15, 14));
        assert_eq!(-(-a), a);
    }

    #[test]
    fn ordering_is_exact() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert_eq!(
            Rational::new(2, 4).cmp(&Rational::new(1, 2)),
            Ordering::Equal
        );
    }

    #[test]
    fn integer_detection() {
        assert!(Rational::new(4, 2).is_integer());
        assert_eq!(Rational::new(4, 2).to_integer(), Some(2));
        assert_eq!(Rational::new(1, 2).to_integer(), None);
    }

    #[test]
    fn recip_and_zero() {
        assert_eq!(Rational::new(2, 3).recip(), Rational::new(3, 2));
        assert!(Rational::ZERO.is_zero());
        assert!(!Rational::ONE.is_zero());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_of_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Rational::new(3, 4)), "3/4");
        assert_eq!(format!("{}", Rational::from(5i64)), "5");
        assert_eq!(format!("{:?}", Rational::new(-1, 2)), "-1/2");
    }

    #[test]
    fn assign_ops() {
        let mut r = Rational::ONE;
        r += Rational::ONE;
        r *= Rational::new(1, 4);
        r -= Rational::new(1, 4);
        r /= Rational::new(1, 2);
        assert_eq!(r, Rational::new(1, 2));
    }
}
