//! Dense integer and rational matrices.
//!
//! Matrices here are small (constraint systems have at most a few hundred
//! rows/columns), so a flat row-major `Vec` is the right representation.

use crate::rational::Rational;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `i64` entries.
///
/// Used for constraint systems `C x = b` where all coefficients are
/// integers (paper Eq. 1).
///
/// # Example
///
/// ```
/// use rasengan_math::IntMatrix;
///
/// let c = IntMatrix::from_rows(&[vec![1, 1, -1], vec![0, 1, 1]]);
/// assert_eq!(c.rows(), 2);
/// assert_eq!(c.cols(), 3);
/// assert_eq!(c.mul_vec(&[1, 0, 1]), vec![0, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IntMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IntMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        IntMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = IntMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[Vec<i64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in IntMatrix::from_rows");
            data.extend_from_slice(row);
        }
        IntMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<i64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer has wrong length");
        IntMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[i64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[i64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Matrix-vector product `C x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[i64]) -> Vec<i64> {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        self.iter_rows()
            .map(|row| row.iter().zip(x).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> IntMatrix {
        let mut t = IntMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Converts to a rational matrix.
    pub fn to_rational(&self) -> RatMatrix {
        RatMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| Rational::from(v)).collect(),
        }
    }

    /// Number of nonzero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0).count()
    }
}

impl Index<(usize, usize)> for IntMatrix {
    type Output = i64;
    fn index(&self, (r, c): (usize, usize)) -> &i64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for IntMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut i64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for IntMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IntMatrix {}x{} [", self.rows, self.cols)?;
        for row in self.iter_rows() {
            writeln!(f, "  {row:?}")?;
        }
        write!(f, "]")
    }
}

/// A dense row-major matrix of exact [`Rational`] entries.
///
/// Produced by converting an [`IntMatrix`] before row reduction.
#[derive(Clone, PartialEq, Eq)]
pub struct RatMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl RatMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RatMatrix {
            rows,
            cols,
            data: vec![Rational::ZERO; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[Rational] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Scales row `r` by `factor`.
    pub fn scale_row(&mut self, r: usize, factor: Rational) {
        for j in 0..self.cols {
            let v = self[(r, j)] * factor;
            self[(r, j)] = v;
        }
    }

    /// Adds `factor * row src` to row `dst`.
    pub fn add_scaled_row(&mut self, dst: usize, src: usize, factor: Rational) {
        for j in 0..self.cols {
            let v = self[(dst, j)] + self[(src, j)] * factor;
            self[(dst, j)] = v;
        }
    }
}

impl Index<(usize, usize)> for RatMatrix {
    type Output = Rational;
    fn index(&self, (r, c): (usize, usize)) -> &Rational {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for RatMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Rational {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for RatMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RatMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mul_is_identity() {
        let id = IntMatrix::identity(4);
        let x = vec![3, -1, 0, 7];
        assert_eq!(id.mul_vec(&x), x);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = IntMatrix::from_rows(&[vec![1, 2], vec![3, 4], vec![5, 6]]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(2, 1)], 6);
        assert_eq!(m.row(1), &[3, 4]);
    }

    #[test]
    fn transpose_involution() {
        let m = IntMatrix::from_rows(&[vec![1, 2, 3], vec![4, 5, 6]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(0, 1)], 4);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn mul_vec_matches_hand_computation() {
        let c = IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]]);
        // The paper's particular solution x_p = [0,0,0,1,0]: C x_p = [0,1].
        assert_eq!(c.mul_vec(&[0, 0, 0, 1, 0]), vec![0, 1]);
    }

    #[test]
    fn nnz_counts_nonzeros() {
        let m = IntMatrix::from_rows(&[vec![0, 2], vec![-1, 0]]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panic() {
        let _ = IntMatrix::from_rows(&[vec![1], vec![1, 2]]);
    }

    #[test]
    fn rational_row_ops() {
        let mut m = IntMatrix::from_rows(&[vec![2, 4], vec![1, 3]]).to_rational();
        m.scale_row(0, Rational::new(1, 2));
        assert_eq!(m[(0, 0)], Rational::ONE);
        m.add_scaled_row(1, 0, Rational::from(-1i64));
        assert_eq!(m[(1, 0)], Rational::ZERO);
        assert_eq!(m[(1, 1)], Rational::ONE);
        m.swap_rows(0, 1);
        assert_eq!(m[(0, 1)], Rational::ONE);
    }
}
