//! Exact linear-system solving and binary particular-solution search.
//!
//! Rasengan needs one arbitrary feasible solution `x_p` with
//! `C x_p = b`, `x_p ∈ {0,1}^n` as the seed of the feasible-space
//! expansion (paper §3, §5.1). The benchmark domains all admit a
//! linear-time constructive solution; this module additionally provides a
//! general backtracking search with unit propagation used for arbitrary
//! systems and as a cross-check in tests.

use crate::matrix::IntMatrix;
use crate::rational::Rational;
use crate::rref::rref_in_place;
use std::fmt;

/// Failure to solve a linear system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The system `C x = b` is inconsistent over the rationals.
    Inconsistent,
    /// The system is consistent over ℚ but no binary solution exists.
    NoBinarySolution,
    /// `b` has the wrong length for `C`.
    ShapeMismatch {
        /// Number of constraint rows.
        rows: usize,
        /// Length of the right-hand side.
        rhs_len: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Inconsistent => write!(f, "constraint system is inconsistent"),
            SolveError::NoBinarySolution => {
                write!(f, "constraint system has no solution in {{0,1}}^n")
            }
            SolveError::ShapeMismatch { rows, rhs_len } => write!(
                f,
                "right-hand side length {rhs_len} does not match {rows} constraint rows"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves `C x = b` exactly over the rationals, returning one solution
/// (free variables set to zero).
///
/// # Errors
///
/// * [`SolveError::ShapeMismatch`] if `b.len() != c.rows()`.
/// * [`SolveError::Inconsistent`] if no rational solution exists.
///
/// # Example
///
/// ```
/// use rasengan_math::{IntMatrix, solve_exact, Rational};
///
/// let c = IntMatrix::from_rows(&[vec![1, 1], vec![1, -1]]);
/// let x = solve_exact(&c, &[2, 0]).unwrap();
/// assert_eq!(x, vec![Rational::from(1i64), Rational::from(1i64)]);
/// ```
pub fn solve_exact(c: &IntMatrix, b: &[i64]) -> Result<Vec<Rational>, SolveError> {
    if b.len() != c.rows() {
        return Err(SolveError::ShapeMismatch {
            rows: c.rows(),
            rhs_len: b.len(),
        });
    }
    // Augmented matrix [C | b].
    let mut aug = crate::matrix::RatMatrix::zeros(c.rows(), c.cols() + 1);
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            aug[(i, j)] = Rational::from(c[(i, j)]);
        }
        aug[(i, c.cols())] = Rational::from(b[i]);
    }
    let summary = rref_in_place(&mut aug);

    // Inconsistent iff a pivot landed in the augmented column.
    if summary.pivot_cols.contains(&c.cols()) {
        return Err(SolveError::Inconsistent);
    }

    let mut x = vec![Rational::ZERO; c.cols()];
    for (row, &pc) in summary.pivot_cols.iter().enumerate() {
        x[pc] = aug[(row, c.cols())];
    }
    Ok(x)
}

/// Finds one binary solution of `C x = b` via depth-first search with
/// unit propagation, or `None` within the error if none exists.
///
/// Variables are branched in order of descending constraint participation
/// (most-constrained first). At every node each constraint row is checked
/// for bound consistency: the row's remaining slack must stay between the
/// minimum and maximum achievable by the unassigned variables.
///
/// This is exponential in the worst case but instant on all benchmark
/// systems; the problem generators also provide O(n) constructive
/// feasible solutions, which are preferred in the solver pipeline.
///
/// # Errors
///
/// * [`SolveError::ShapeMismatch`] if `b.len() != c.rows()`.
/// * [`SolveError::NoBinarySolution`] if the search space is exhausted.
///
/// # Example
///
/// ```
/// use rasengan_math::{IntMatrix, find_binary_solution};
///
/// let c = IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]]);
/// let x = find_binary_solution(&c, &[0, 1]).unwrap();
/// assert_eq!(c.mul_vec(&x), vec![0, 1]);
/// assert!(x.iter().all(|&v| v == 0 || v == 1));
/// ```
pub fn find_binary_solution(c: &IntMatrix, b: &[i64]) -> Result<Vec<i64>, SolveError> {
    if b.len() != c.rows() {
        return Err(SolveError::ShapeMismatch {
            rows: c.rows(),
            rhs_len: b.len(),
        });
    }
    let n = c.cols();

    // Branch order: most-constrained variables first.
    let mut order: Vec<usize> = (0..n).collect();
    let participation = |j: usize| (0..c.rows()).filter(|&i| c[(i, j)] != 0).count();
    order.sort_by_key(|&j| std::cmp::Reverse(participation(j)));

    // Per-row bookkeeping: residual = b_i - Σ_assigned c_ij x_j, and the
    // min/max contribution still achievable from unassigned variables.
    let mut assign = vec![-1i64; n]; // -1 = unassigned
    let mut residual: Vec<i64> = b.to_vec();
    let mut lo: Vec<i64> = vec![0; c.rows()];
    let mut hi: Vec<i64> = vec![0; c.rows()];
    for i in 0..c.rows() {
        for j in 0..n {
            let a = c[(i, j)];
            if a > 0 {
                hi[i] += a;
            } else {
                lo[i] += a;
            }
        }
    }

    fn feasible(residual: &[i64], lo: &[i64], hi: &[i64]) -> bool {
        residual
            .iter()
            .zip(lo.iter().zip(hi))
            .all(|(&r, (&l, &h))| l <= r && r <= h)
    }

    fn dfs(
        depth: usize,
        order: &[usize],
        c: &IntMatrix,
        assign: &mut Vec<i64>,
        residual: &mut Vec<i64>,
        lo: &mut Vec<i64>,
        hi: &mut Vec<i64>,
    ) -> bool {
        if !feasible(residual, lo, hi) {
            return false;
        }
        if depth == order.len() {
            return residual.iter().all(|&r| r == 0);
        }
        let j = order[depth];
        for v in [0i64, 1] {
            assign[j] = v;
            // Remove j from the unassigned bounds and charge its value.
            let mut saved = Vec::with_capacity(c.rows());
            for i in 0..c.rows() {
                let a = c[(i, j)];
                saved.push((residual[i], lo[i], hi[i]));
                if a > 0 {
                    hi[i] -= a;
                } else {
                    lo[i] -= a;
                }
                residual[i] -= a * v;
            }
            if dfs(depth + 1, order, c, assign, residual, lo, hi) {
                return true;
            }
            for i in (0..c.rows()).rev() {
                let (r, l, h) = saved[i];
                residual[i] = r;
                lo[i] = l;
                hi[i] = h;
            }
            assign[j] = -1;
        }
        false
    }

    if dfs(0, &order, c, &mut assign, &mut residual, &mut lo, &mut hi) {
        Ok(assign)
    } else {
        Err(SolveError::NoBinarySolution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_exact_unique_system() {
        let c = IntMatrix::from_rows(&[vec![2, 1], vec![1, -1]]);
        let x = solve_exact(&c, &[5, 1]).unwrap();
        assert_eq!(x, vec![Rational::from(2i64), Rational::from(1i64)]);
    }

    #[test]
    fn solve_exact_detects_inconsistency() {
        let c = IntMatrix::from_rows(&[vec![1, 1], vec![1, 1]]);
        assert_eq!(solve_exact(&c, &[1, 2]), Err(SolveError::Inconsistent));
    }

    #[test]
    fn solve_exact_shape_mismatch() {
        let c = IntMatrix::from_rows(&[vec![1, 1]]);
        assert!(matches!(
            solve_exact(&c, &[1, 2]),
            Err(SolveError::ShapeMismatch {
                rows: 1,
                rhs_len: 2
            })
        ));
    }

    #[test]
    fn binary_solution_of_paper_system() {
        let c = IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]]);
        let x = find_binary_solution(&c, &[0, 1]).unwrap();
        assert_eq!(c.mul_vec(&x), vec![0, 1]);
    }

    #[test]
    fn binary_solution_respects_one_hot() {
        let c = IntMatrix::from_rows(&[vec![1, 1, 1, 0], vec![0, 0, 1, 1]]);
        let x = find_binary_solution(&c, &[1, 1]).unwrap();
        assert_eq!(c.mul_vec(&x), vec![1, 1]);
    }

    #[test]
    fn binary_infeasible_detected() {
        // x1 + x2 = 3 cannot hold for binaries.
        let c = IntMatrix::from_rows(&[vec![1, 1]]);
        assert_eq!(
            find_binary_solution(&c, &[3]),
            Err(SolveError::NoBinarySolution)
        );
    }

    #[test]
    fn binary_solution_with_negative_coefficients() {
        // x1 - x2 = -1 forces x1=0, x2=1.
        let c = IntMatrix::from_rows(&[vec![1, -1]]);
        let x = find_binary_solution(&c, &[-1]).unwrap();
        assert_eq!(x, vec![0, 1]);
    }

    #[test]
    fn empty_constraint_system_returns_all_zero() {
        let c = IntMatrix::zeros(0, 4);
        let x = find_binary_solution(&c, &[]).unwrap();
        assert_eq!(x, vec![0, 0, 0, 0]);
    }
}
