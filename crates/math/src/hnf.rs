//! Hermite normal form (HNF) over the integers.
//!
//! The rational RREF nullspace ([`crate::rref::nullspace`]) scales each
//! vector to integers after the fact; the HNF route stays integral the
//! whole way: column-reduce `[Cᵀ | I]` with unimodular row operations,
//! and the identity block's rows opposite the zero rows of the reduced
//! `Cᵀ` form a lattice basis of the integer nullspace. Both paths are
//! exposed and cross-validated in tests; the solver uses whichever
//! basis turns out ternary.

use crate::matrix::IntMatrix;

/// Result of a Hermite normal form computation on `A` (row-style HNF:
/// `H = U·A` with `U` unimodular).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hnf {
    /// The HNF matrix `H` (row echelon, pivots positive, entries above
    /// a pivot reduced modulo it).
    pub h: IntMatrix,
    /// The unimodular transform `U` with `U·A = H`.
    pub u: IntMatrix,
    /// Rank of `A` (number of nonzero rows of `H`).
    pub rank: usize,
}

/// Computes the row-style Hermite normal form of `a` by integer
/// elimination (Euclidean reduction on rows), tracking the unimodular
/// transform.
///
/// # Example
///
/// ```
/// use rasengan_math::{hnf::hermite_normal_form, IntMatrix};
///
/// let a = IntMatrix::from_rows(&[vec![2, 4], vec![1, 3]]);
/// let hnf = hermite_normal_form(&a);
/// assert_eq!(hnf.rank, 2);
/// // U·A = H exactly.
/// for i in 0..2 {
///     for j in 0..2 {
///         let mut acc = 0;
///         for k in 0..2 {
///             acc += hnf.u[(i, k)] * a[(k, j)];
///         }
///         assert_eq!(acc, hnf.h[(i, j)]);
///     }
/// }
/// ```
pub fn hermite_normal_form(a: &IntMatrix) -> Hnf {
    let rows = a.rows();
    let cols = a.cols();
    let mut h = a.clone();
    let mut u = IntMatrix::identity(rows);
    let mut pivot_row = 0usize;

    for col in 0..cols {
        if pivot_row >= rows {
            break;
        }
        // Euclidean elimination below the pivot: repeatedly reduce the
        // column entries by each other until a single nonzero remains.
        loop {
            // Find the row (≥ pivot_row) with the smallest nonzero |entry|.
            let best = (pivot_row..rows)
                .filter(|&r| h[(r, col)] != 0)
                .min_by_key(|&r| h[(r, col)].abs());
            let Some(best) = best else { break };
            swap_rows(&mut h, &mut u, pivot_row, best);
            let p = h[(pivot_row, col)];
            let mut finished = true;
            for r in (pivot_row + 1)..rows {
                let v = h[(r, col)];
                if v != 0 {
                    let q = v.div_euclid(p);
                    add_scaled_row(&mut h, &mut u, r, pivot_row, -q);
                    if h[(r, col)] != 0 {
                        finished = false;
                    }
                }
            }
            if finished {
                break;
            }
        }
        if h[(pivot_row, col)] == 0 {
            continue;
        }
        // Normalize the pivot sign to positive.
        if h[(pivot_row, col)] < 0 {
            negate_row(&mut h, &mut u, pivot_row);
        }
        // Reduce entries above the pivot into [0, pivot).
        let p = h[(pivot_row, col)];
        for r in 0..pivot_row {
            let q = h[(r, col)].div_euclid(p);
            if q != 0 {
                add_scaled_row(&mut h, &mut u, r, pivot_row, -q);
            }
        }
        pivot_row += 1;
    }

    Hnf {
        h,
        u,
        rank: pivot_row,
    }
}

/// Computes an integer lattice basis of the nullspace of `c`
/// (`{u : C u = 0, u ∈ ℤ^n}`) via the HNF of `Cᵀ`.
///
/// Unlike [`crate::rref::nullspace`]'s scaled-rational vectors, these
/// generate the *full integer lattice* of solutions, which for
/// non-totally-unimodular systems can be a strictly finer basis.
///
/// # Example
///
/// ```
/// use rasengan_math::{hnf::integer_nullspace, IntMatrix};
///
/// let c = IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]]);
/// let basis = integer_nullspace(&c);
/// assert_eq!(basis.len(), 3);
/// for u in &basis {
///     assert!(c.mul_vec(u).iter().all(|&v| v == 0));
/// }
/// ```
pub fn integer_nullspace(c: &IntMatrix) -> Vec<Vec<i64>> {
    // Row-reduce Cᵀ while tracking U: U·Cᵀ = H. Rows of U opposite
    // zero rows of H satisfy u·Cᵀ = 0, i.e. C uᵀ = 0.
    let ct = c.transpose();
    let hnf = hermite_normal_form(&ct);
    let mut out = Vec::new();
    for r in hnf.rank..ct.rows() {
        let u_row: Vec<i64> = (0..ct.rows()).map(|j| hnf.u[(r, j)]).collect();
        // Normalize sign: first nonzero positive.
        let flip = u_row.iter().find(|&&v| v != 0).is_some_and(|&v| v < 0);
        out.push(if flip {
            u_row.into_iter().map(|v| -v).collect()
        } else {
            u_row
        });
    }
    out
}

fn swap_rows(h: &mut IntMatrix, u: &mut IntMatrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    for j in 0..h.cols() {
        let t = h[(a, j)];
        h[(a, j)] = h[(b, j)];
        h[(b, j)] = t;
    }
    for j in 0..u.cols() {
        let t = u[(a, j)];
        u[(a, j)] = u[(b, j)];
        u[(b, j)] = t;
    }
}

fn add_scaled_row(h: &mut IntMatrix, u: &mut IntMatrix, dst: usize, src: usize, factor: i64) {
    for j in 0..h.cols() {
        h[(dst, j)] += factor * h[(src, j)];
    }
    for j in 0..u.cols() {
        u[(dst, j)] += factor * u[(src, j)];
    }
}

fn negate_row(h: &mut IntMatrix, u: &mut IntMatrix, r: usize) {
    for j in 0..h.cols() {
        h[(r, j)] = -h[(r, j)];
    }
    for j in 0..u.cols() {
        u[(r, j)] = -u[(r, j)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rref::{nullspace, rank};

    fn check_u_times_a(a: &IntMatrix, hnf: &Hnf) {
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                let mut acc = 0i64;
                for k in 0..a.rows() {
                    acc += hnf.u[(i, k)] * a[(k, j)];
                }
                assert_eq!(acc, hnf.h[(i, j)], "U·A ≠ H at ({i},{j})");
            }
        }
    }

    #[test]
    fn hnf_of_identity() {
        let a = IntMatrix::identity(3);
        let hnf = hermite_normal_form(&a);
        assert_eq!(hnf.h, a);
        assert_eq!(hnf.rank, 3);
    }

    #[test]
    fn hnf_transform_is_consistent() {
        let a = IntMatrix::from_rows(&[vec![4, 6, 2], vec![2, 8, 4], vec![6, 14, 6]]);
        let hnf = hermite_normal_form(&a);
        check_u_times_a(&a, &hnf);
        // Pivots positive.
        for r in 0..hnf.rank {
            let pivot = (0..a.cols()).find(|&c| hnf.h[(r, c)] != 0).unwrap();
            assert!(hnf.h[(r, pivot)] > 0);
        }
    }

    #[test]
    fn hnf_rank_matches_rational_rank() {
        for rows in [
            vec![vec![1i64, 2, 3], vec![2, 4, 6]],
            vec![vec![1, 0, -1], vec![0, 1, 1], vec![1, 1, 0]],
            vec![vec![3, 1], vec![1, 2], vec![4, 3]],
        ] {
            let a = IntMatrix::from_rows(&rows);
            assert_eq!(
                hermite_normal_form(&a).rank,
                rank(&a),
                "rank mismatch on {a:?}"
            );
        }
    }

    #[test]
    fn integer_nullspace_annihilates_and_matches_dimension() {
        let c = IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]]);
        let basis = integer_nullspace(&c);
        assert_eq!(basis.len(), nullspace(&c).len());
        for u in &basis {
            assert_eq!(c.mul_vec(u), vec![0, 0]);
        }
    }

    #[test]
    fn lattice_basis_catches_non_primitive_directions() {
        // C = [1, -2]: rational nullspace gives [2, 1] (primitive), and
        // the integer lattice {k·(2,1)} matches — both paths agree here.
        let c = IntMatrix::from_rows(&[vec![1, -2]]);
        let lattice = integer_nullspace(&c);
        assert_eq!(lattice.len(), 1);
        assert_eq!(c.mul_vec(&lattice[0]), vec![0]);
        assert_eq!(lattice[0], vec![2, 1]);
    }

    #[test]
    fn zero_matrix_nullspace_is_identity_lattice() {
        let c = IntMatrix::zeros(1, 3);
        let basis = integer_nullspace(&c);
        assert_eq!(basis.len(), 3);
        // The three vectors are unimodular — they span ℤ³.
        let m = IntMatrix::from_rows(&basis);
        assert_eq!(rank(&m), 3);
    }

    #[test]
    fn one_hot_constraint_lattice() {
        let c = IntMatrix::from_rows(&[vec![1, 1, 1]]);
        let basis = integer_nullspace(&c);
        assert_eq!(basis.len(), 2);
        for u in &basis {
            assert_eq!(c.mul_vec(u), vec![0]);
            assert!(
                u.iter().all(|&v| v.abs() <= 1),
                "expected ternary basis, got {u:?}"
            );
        }
    }
}
