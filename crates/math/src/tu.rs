//! Total-unimodularity checks.
//!
//! Theorem 1 in the paper distinguishes totally unimodular (TU)
//! constraint matrices — where `m` rounds of `m` transition Hamiltonians
//! suffice to cover the feasible space — from general matrices, where the
//! bound rises to `m³`. The solver uses these checks to pick the
//! transition-chain length.

use crate::matrix::IntMatrix;
use crate::rational::Rational;

/// Result of the Ghouila–Houri certificate search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GhouilaHouri {
    /// Every tested row subset admits a ±1 partition; the matrix is TU
    /// if all subsets were tested (`exhaustive == true`).
    Satisfied {
        /// Whether all `2^rows` subsets were enumerated (vs a sampled
        /// subset for large matrices).
        exhaustive: bool,
    },
    /// A row subset with no valid ±1 signing — a witness that the matrix
    /// is *not* totally unimodular.
    Violated {
        /// Indices of the violating row subset.
        rows: Vec<usize>,
    },
}

/// Exact total-unimodularity test via minor enumeration.
///
/// A matrix is TU iff every square submatrix has determinant in
/// `{-1, 0, 1}`. This enumerates all square minors and is exponential —
/// use only for matrices with at most ~16 rows/columns (sufficient for
/// unit-scale benchmarks). Entries must already be in `{-1,0,1}`
/// (a necessary condition checked first: every 1×1 minor).
///
/// # Example
///
/// ```
/// use rasengan_math::{IntMatrix, is_totally_unimodular};
///
/// // Interval matrix (consecutive ones) — a classic TU family.
/// let c = IntMatrix::from_rows(&[vec![1, 1, 0], vec![0, 1, 1]]);
/// assert!(is_totally_unimodular(&c));
///
/// // Odd cycle incidence-like matrix — not TU.
/// let k = IntMatrix::from_rows(&[vec![1, 1, 0], vec![0, 1, 1], vec![1, 0, 1]]);
/// assert!(!is_totally_unimodular(&k));
/// ```
pub fn is_totally_unimodular(c: &IntMatrix) -> bool {
    if c.iter_rows().flatten().any(|&v| v.abs() > 1) {
        return false;
    }
    let max_k = c.rows().min(c.cols());
    for k in 2..=max_k {
        let row_sets = combinations(c.rows(), k);
        let col_sets = combinations(c.cols(), k);
        for rs in &row_sets {
            for cs in &col_sets {
                let d = minor_determinant(c, rs, cs);
                if d.abs() > 1 {
                    return false;
                }
            }
        }
    }
    true
}

/// Ghouila–Houri criterion: `C` is TU iff every subset `R` of rows can be
/// partitioned into `R⁺, R⁻` such that for every column `j`,
/// `Σ_{i∈R⁺} c_ij − Σ_{i∈R⁻} c_ij ∈ {-1, 0, 1}`.
///
/// For up to `max_rows_exhaustive` rows, all subsets are enumerated and
/// the answer is exact. Beyond that, subsets up to the limit's size are
/// sampled deterministically, making `Satisfied { exhaustive: false }` a
/// strong heuristic rather than a proof.
pub fn ghouila_houri(c: &IntMatrix, max_rows_exhaustive: usize) -> GhouilaHouri {
    let rows = c.rows();
    let exhaustive = rows <= max_rows_exhaustive;
    let limit = rows.min(max_rows_exhaustive);

    // Enumerate subsets of up to `limit` rows (all of them when
    // exhaustive; smaller subsets otherwise).
    for k in 1..=limit {
        for subset in combinations(rows, k) {
            if !has_pm_signing(c, &subset) {
                return GhouilaHouri::Violated { rows: subset };
            }
        }
    }
    GhouilaHouri::Satisfied { exhaustive }
}

/// Whether the row subset admits a ±1 signing per Ghouila–Houri.
fn has_pm_signing(c: &IntMatrix, subset: &[usize]) -> bool {
    let k = subset.len();
    // Try all 2^k signings (first row fixed to + by symmetry).
    let trials = 1usize << k.saturating_sub(1);
    for mask in 0..trials {
        let mut ok = true;
        for j in 0..c.cols() {
            let mut sum = 0i64;
            for (idx, &r) in subset.iter().enumerate() {
                let sign = if idx == 0 || mask >> (idx - 1) & 1 == 0 {
                    1
                } else {
                    -1
                };
                sum += sign * c[(r, j)];
            }
            if sum.abs() > 1 {
                ok = false;
                break;
            }
        }
        if ok {
            return true;
        }
    }
    false
}

/// Determinant of the minor selected by `rs × cs`, computed exactly.
fn minor_determinant(c: &IntMatrix, rs: &[usize], cs: &[usize]) -> i64 {
    let k = rs.len();
    let mut m = crate::matrix::RatMatrix::zeros(k, k);
    for (i, &r) in rs.iter().enumerate() {
        for (j, &col) in cs.iter().enumerate() {
            m[(i, j)] = Rational::from(c[(r, col)]);
        }
    }
    // Gaussian elimination tracking the determinant.
    let mut det = Rational::ONE;
    for col in 0..k {
        let pivot = (col..k).find(|&r| !m[(r, col)].is_zero());
        let Some(pivot) = pivot else { return 0 };
        if pivot != col {
            m.swap_rows(col, pivot);
            det = -det;
        }
        det *= m[(col, col)];
        let inv = m[(col, col)].recip();
        m.scale_row(col, inv);
        for r in (col + 1)..k {
            if !m[(r, col)].is_zero() {
                let f = -m[(r, col)];
                m.add_scaled_row(r, col, f);
            }
        }
    }
    det.to_integer()
        .expect("determinant of integer matrix is integer") as i64
}

/// All `k`-subsets of `0..n` in lexicographic order.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            if n - i < k - cur.len() {
                break;
            }
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(0, n, k, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_tu() {
        assert!(is_totally_unimodular(&IntMatrix::identity(4)));
    }

    #[test]
    fn paper_example_is_tu() {
        let c = IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]]);
        assert!(is_totally_unimodular(&c));
    }

    #[test]
    fn entry_of_two_is_not_tu() {
        let c = IntMatrix::from_rows(&[vec![2, 0], vec![0, 1]]);
        assert!(!is_totally_unimodular(&c));
    }

    #[test]
    fn odd_cycle_is_not_tu() {
        // Vertex-edge incidence of a triangle has a 3x3 minor of det ±2.
        let c = IntMatrix::from_rows(&[vec![1, 1, 0], vec![0, 1, 1], vec![1, 0, 1]]);
        assert!(!is_totally_unimodular(&c));
        match ghouila_houri(&c, 8) {
            GhouilaHouri::Violated { rows } => assert!(!rows.is_empty()),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn interval_matrix_is_tu_by_both_tests() {
        let c = IntMatrix::from_rows(&[vec![1, 1, 0, 0], vec![0, 1, 1, 0], vec![0, 0, 1, 1]]);
        assert!(is_totally_unimodular(&c));
        assert_eq!(
            ghouila_houri(&c, 8),
            GhouilaHouri::Satisfied { exhaustive: true }
        );
    }

    #[test]
    fn ghouila_houri_non_exhaustive_flag() {
        let c = IntMatrix::identity(6);
        assert_eq!(
            ghouila_houri(&c, 3),
            GhouilaHouri::Satisfied { exhaustive: false }
        );
    }

    #[test]
    fn minor_determinant_matches_known_values() {
        let c = IntMatrix::from_rows(&[vec![1, 1], vec![0, 1]]);
        assert_eq!(minor_determinant(&c, &[0, 1], &[0, 1]), 1);
        let c = IntMatrix::from_rows(&[vec![1, 1], vec![1, -1]]);
        assert_eq!(minor_determinant(&c, &[0, 1], &[0, 1]), -2);
    }

    #[test]
    fn combinations_counts() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(5, 0), vec![Vec::<usize>::new()]);
        assert_eq!(combinations(3, 3).len(), 1);
    }
}
