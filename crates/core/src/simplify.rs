//! Hamiltonian simplification (paper Algorithm 1).
//!
//! The CX cost of a transition simulation is linear in the nonzero count
//! of its basis vector, so replacing basis vectors with sparser linear
//! combinations directly shrinks the circuit. Algorithm 1 greedily scans
//! all ordered pairs `(uᵢ, uⱼ)`, replacing `uᵢ` by `uᵢ ± uⱼ` whenever
//! the result stays ternary and strictly reduces the nonzero count.
//! The span is preserved (each step is an elementary basis operation),
//! so the reconstructed basis still generates the full feasible space.

use rasengan_math::basis::{basis_cost, is_ternary, nonzero_count};

/// Runs Algorithm 1: reconstructs the homogeneous basis with fewer
/// nonzero elements.
///
/// Returns the new basis together with the total nonzero count before
/// and after (the quantities Fig. 15's opt-1 bar reports).
///
/// # Example
///
/// ```
/// use rasengan_core::simplify::simplify_basis;
///
/// // The paper's Fig. 5 example: u₂ = [-1,0,-1,1,0] + u₃ = [1,0,1,0,1]
/// // gives [0,0,0,1,1] with two nonzeros instead of three.
/// let basis = vec![
///     vec![-1, 1, 0, 0, 0],
///     vec![-1, 0, -1, 1, 0],
///     vec![1, 0, 1, 0, 1],
/// ];
/// let result = simplify_basis(&basis);
/// assert!(result.cost_after < result.cost_before);
/// assert!(result.basis.contains(&vec![0, 0, 0, 1, 1]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimplifyResult {
    /// The reconstructed basis `U'`.
    pub basis: Vec<Vec<i64>>,
    /// Total nonzeros before simplification.
    pub cost_before: usize,
    /// Total nonzeros after simplification.
    pub cost_after: usize,
    /// Number of replacement steps performed.
    pub replacements: usize,
}

/// See [`SimplifyResult`]. This is a faithful transcription of
/// Algorithm 1, iterated to a fixed point (the paper's single pass is
/// order-dependent; a fixed point dominates it and is still `O(m²n)`
/// per sweep).
pub fn simplify_basis(basis: &[Vec<i64>]) -> SimplifyResult {
    let mut out: Vec<Vec<i64>> = basis.to_vec();
    let cost_before = basis_cost(&out);
    let m = out.len();
    let mut replacements = 0usize;

    loop {
        let mut improved = false;
        for i in 0..m {
            for j in 0..m {
                if i == j {
                    continue;
                }
                let add: Vec<i64> = out[i].iter().zip(&out[j]).map(|(a, b)| a + b).collect();
                let sub: Vec<i64> = out[i].iter().zip(&out[j]).map(|(a, b)| a - b).collect();
                let current = nonzero_count(&out[i]);
                let mut best: Option<Vec<i64>> = None;
                let mut best_nnz = current;
                for cand in [add, sub] {
                    let nnz = nonzero_count(&cand);
                    if is_ternary(&cand) && nnz > 0 && nnz < best_nnz {
                        best_nnz = nnz;
                        best = Some(cand);
                    }
                }
                if let Some(cand) = best {
                    out[i] = cand;
                    replacements += 1;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    let cost_after = basis_cost(&out);
    SimplifyResult {
        basis: out,
        cost_before,
        cost_after,
        replacements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasengan_math::IntMatrix;

    /// The running example of the paper (Fig. 4/Fig. 5).
    fn paper_basis() -> Vec<Vec<i64>> {
        vec![
            vec![-1, 1, 0, 0, 0],
            vec![-1, 0, -1, 1, 0],
            vec![1, 0, 1, 0, 1],
        ]
    }

    #[test]
    fn paper_figure5_replacement_found() {
        let result = simplify_basis(&paper_basis());
        // u₂ + u₃ = [0,0,0,1,1]: two nonzeros replacing three.
        assert!(result.basis.contains(&vec![0, 0, 0, 1, 1]));
        assert_eq!(result.cost_before, 2 + 3 + 3);
        assert!(result.cost_after <= 7);
        assert!(result.replacements >= 1);
    }

    #[test]
    fn simplified_basis_stays_in_nullspace() {
        let c = IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]]);
        let result = simplify_basis(&paper_basis());
        for u in &result.basis {
            assert_eq!(
                c.mul_vec(u),
                vec![0, 0],
                "simplified vector left nullspace: {u:?}"
            );
        }
    }

    #[test]
    fn simplified_basis_preserves_rank() {
        let result = simplify_basis(&paper_basis());
        let m = IntMatrix::from_rows(&result.basis);
        assert_eq!(
            rasengan_math::rank(&m),
            3,
            "simplification lost independence"
        );
    }

    #[test]
    fn sparse_basis_is_fixed_point() {
        // Disjoint-support vectors cannot be improved (the paper's F1/K1/G1
        // cases where opt 1 is ineffective).
        let basis = vec![vec![1, -1, 0, 0], vec![0, 0, 1, -1]];
        let result = simplify_basis(&basis);
        assert_eq!(result.basis, basis);
        assert_eq!(result.replacements, 0);
        assert_eq!(result.cost_before, result.cost_after);
    }

    #[test]
    fn never_produces_zero_vectors() {
        // u and -u style pairs must not cancel a vector to zero.
        let basis = vec![vec![1, -1, 0], vec![0, 1, -1]];
        let result = simplify_basis(&basis);
        for u in &result.basis {
            assert!(u.iter().any(|&v| v != 0), "zero vector produced");
        }
    }

    #[test]
    fn cost_never_increases() {
        for seed_basis in [
            vec![vec![1, 1, 0, -1], vec![0, 1, 1, -1], vec![1, 0, -1, 0]],
            vec![vec![1, -1, 1, -1], vec![1, -1, 0, 0]],
        ] {
            let r = simplify_basis(&seed_basis);
            assert!(r.cost_after <= r.cost_before);
        }
    }
}
