//! The Rasengan algorithm — transition-Hamiltonian-based approximation
//! for constrained binary optimization (Jiang et al., MICRO 2025).
//!
//! Rasengan inverts the usual VQA strategy: instead of shrinking a
//! global superposition toward the feasible set, it *expands* the search
//! space outward from one feasible solution using transition
//! Hamiltonians built from the constraint system's homogeneous basis
//! (§3). Three hardware co-design optimizations make the circuits
//! NISQ-deployable (§4): Hamiltonian simplification and pruning,
//! segmented execution, and purification-based error mitigation.
//!
//! | Module | Paper section |
//! |---|---|
//! | [`hamiltonian`] | Definition 1, Eq. 5–7 |
//! | [`simplify`] | Algorithm 1 (§4.1) |
//! | [`prune`] | Hamiltonian pruning + early stop (§4.1, Fig. 6) |
//! | [`segment`] | Segmented execution (§4.2, Fig. 7) |
//! | [`purify`] | Error mitigation by purification (§4.3, Fig. 8) |
//! | [`solver`] | The end-to-end variational loop |
//! | [`metrics`] | ARG (Eq. 9), in-constraints rate |
//! | [`latency`] | Training-latency model (Fig. 12/13) |
//! | [`resilience`] | Retry / degradation / budget policies (robustness extension) |
//!
//! # Example
//!
//! ```
//! use rasengan_core::{Rasengan, RasenganConfig};
//! use rasengan_problems::registry::{benchmark, BenchmarkId};
//!
//! let problem = benchmark(BenchmarkId::parse("F1").unwrap());
//! let solver = Rasengan::new(RasenganConfig::default().with_max_iterations(100));
//! let outcome = solver.solve(&problem).unwrap();
//!
//! // Rasengan's output always satisfies the constraints…
//! assert_eq!(outcome.in_constraints_rate, 1.0);
//! // …and the compiled circuit is NISQ-shallow.
//! assert!(outcome.stats.max_segment_cx_depth <= 200);
//! ```

pub mod analysis;
pub mod encode;
pub mod hamiltonian;
pub mod latency;
pub mod metrics;
pub mod prune;
pub mod purify;
pub mod resilience;
pub mod segment;
pub mod simplify;
pub mod solver;
pub mod zne;

pub use encode::{
    decode_outcome, decode_prepared, encode_outcome, encode_prepared, OUTCOME_FORMAT,
    PREPARED_FORMAT,
};
pub use hamiltonian::{problem_basis, TransitionHamiltonian};
pub use latency::{Latency, StageTimes};
pub use metrics::{arg, best_solution, distribution_arg, penalty_lambda, Solution};
pub use prune::{build_chain, coverage_curve, Chain, ChainConfig, CoveragePoint};
pub use resilience::{
    BudgetKind, DegradeFallback, ResilienceConfig, ResilienceEvent, ResilienceReport, Stage,
};
pub use segment::{apportion_shots, plan_segments, SegmentPlan};
pub use simplify::{simplify_basis, SimplifyResult};
pub use solver::{
    ChainStats, OptimizerKind, Outcome, Prepared, Rasengan, RasenganConfig, RasenganError,
};
// The observability types an `Outcome` embeds, so downstream crates can
// consume `Outcome::trace` without naming `rasengan-obs` directly.
pub use rasengan_obs::span::{Span, TraceTree};
pub use zne::{solve_with_zne, ZneResult};

#[cfg(test)]
mod tests {
    //! Re-export smoke test: every name the crate root promises must
    //! resolve and refer to the same item as its module path. Catches
    //! accidental removals when module internals get reshuffled.

    #[test]
    fn crate_root_reexports_resolve() {
        // Type re-exports: aliasing the crate-root name to the module
        // path compiles only if they are the same item.
        let _: Option<crate::Outcome> = None::<crate::solver::Outcome>;
        let _: Option<crate::RasenganConfig> = None::<crate::solver::RasenganConfig>;
        let _: Option<crate::Latency> = None::<crate::latency::Latency>;
        let _: Option<crate::StageTimes> = None::<crate::latency::StageTimes>;
        let _: Option<crate::TraceTree> = None::<rasengan_obs::span::TraceTree>;
        let _: Option<crate::ResilienceConfig> = None::<crate::resilience::ResilienceConfig>;
        let _: Option<crate::SegmentPlan> = None::<crate::segment::SegmentPlan>;

        // Function re-exports.
        let _: fn(f64, f64) -> f64 = crate::arg;
        let _ = crate::apportion_shots as fn(&[f64], usize) -> Vec<usize>;

        // Config defaults stay consistent with the documented behavior:
        // tracing off, fusion on.
        let cfg = crate::RasenganConfig::default();
        assert!(!cfg.trace);
        assert!(cfg.fuse);
        assert!(crate::RasenganConfig::default().with_trace(true).trace);
    }
}
