//! Transition Hamiltonians (paper Definition 1).
//!
//! A transition Hamiltonian `H^τ(u) = ⊗σ(uᵢ) + ⊗σ(−uᵢ)` is built from a
//! ternary homogeneous basis vector `u` of the constraint system. Its
//! time evolution `τ(u, t) = exp(−i H^τ(u) t)` moves probability between
//! each feasible basis state and its `±u` partner (Eq. 6), keeping the
//! state inside the feasible space.

use rasengan_math::basis::{nonzero_count, ternary_nullspace_basis, TernaryBasisError};
use rasengan_problems::Problem;
use rasengan_qsim::decompose::tau_cx_cost;
use rasengan_qsim::synth::tau_circuit;
use rasengan_qsim::{Circuit, Label, SparseState, Transition};
use std::collections::HashSet;

/// One transition Hamiltonian `H^τ(u)` with its precomputed mask form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransitionHamiltonian {
    u: Vec<i64>,
    transition: Transition,
}

impl TransitionHamiltonian {
    /// Builds a transition Hamiltonian from a ternary basis vector.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a nonzero `{-1,0,1}` vector (the invariant
    /// guaranteed by [`problem_basis`]).
    pub fn new(u: Vec<i64>) -> Self {
        let transition = Transition::from_u(&u);
        TransitionHamiltonian { u, transition }
    }

    /// The homogeneous basis vector.
    pub fn u(&self) -> &[i64] {
        &self.u
    }

    /// The mask-form transition used by the sparse simulator.
    pub fn transition(&self) -> &Transition {
        &self.transition
    }

    /// Number of nonzero entries (`k` in the `34k` CX-cost model).
    pub fn weight(&self) -> usize {
        nonzero_count(&self.u)
    }

    /// CX-gate cost of one simulation of this Hamiltonian (paper §3.2).
    pub fn cx_cost(&self) -> usize {
        tau_cx_cost(self.weight())
    }

    /// The qubits this Hamiltonian touches.
    pub fn support(&self) -> Vec<usize> {
        (0..self.u.len()).filter(|&i| self.u[i] != 0).collect()
    }

    /// Synthesizes the gate-level circuit of `τ(u, t)` (paper Fig. 4).
    pub fn circuit(&self, t: f64, n_qubits: usize) -> Circuit {
        tau_circuit(&self.u, t, n_qubits)
    }

    /// Applies `τ(u, t)` analytically to a sparse state (Eq. 6).
    pub fn apply(&self, state: &mut SparseState, t: f64) {
        state.apply_transition(&self.transition, t);
    }

    /// The partner basis state of `x` under this Hamiltonian, if the
    /// move stays binary (`H|x⟩ = |x ± u⟩`, else `H|x⟩ = 0`).
    pub fn partner(&self, x: Label) -> Option<Label> {
        self.transition.partner(x)
    }

    /// The basis states this Hamiltonian would add to `reached` — the
    /// feasible-space expansion test behind Hamiltonian pruning
    /// (paper §4.1, Fig. 6).
    pub fn expansion(&self, reached: &HashSet<Label>) -> Vec<Label> {
        let mut new: Vec<Label> = reached
            .iter()
            .filter_map(|&x| self.partner(x))
            .filter(|p| !reached.contains(p))
            .collect();
        new.sort_unstable();
        new.dedup();
        new
    }
}

/// Computes the problem's ternary homogeneous basis — the `m` vectors
/// that generate the transition Hamiltonians.
///
/// # Errors
///
/// Propagates [`TernaryBasisError`] when the constraint system admits no
/// `{-1,0,1}` nullspace basis (never the case for the five benchmark
/// domains).
pub fn problem_basis(problem: &Problem) -> Result<Vec<Vec<i64>>, TernaryBasisError> {
    ternary_nullspace_basis(problem.constraints())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasengan_qsim::sparse::label_from_bits;

    fn paper_u2() -> TransitionHamiltonian {
        TransitionHamiltonian::new(vec![-1, 0, -1, 1, 0])
    }

    #[test]
    fn weight_and_cost() {
        let h = paper_u2();
        assert_eq!(h.weight(), 3);
        assert_eq!(h.cx_cost(), 102);
        assert_eq!(h.support(), vec![0, 2, 3]);
    }

    #[test]
    fn partner_mirrors_linear_algebra() {
        let h = paper_u2();
        let xp = label_from_bits(&[0, 0, 0, 1, 0]);
        let xg = label_from_bits(&[1, 0, 1, 0, 0]);
        assert_eq!(h.partner(xp), Some(xg));
        assert_eq!(h.partner(xg), Some(xp));
    }

    #[test]
    fn expansion_reports_only_new_states() {
        let h = paper_u2();
        let xp = label_from_bits(&[0, 0, 0, 1, 0]);
        let xg = label_from_bits(&[1, 0, 1, 0, 0]);
        let mut reached = HashSet::from([xp]);
        assert_eq!(h.expansion(&reached), vec![xg]);
        reached.insert(xg);
        assert!(h.expansion(&reached).is_empty());
    }

    #[test]
    fn apply_expands_sparse_state() {
        let h = paper_u2();
        let mut s = SparseState::from_bits(&[0, 0, 0, 1, 0]);
        h.apply(&mut s, std::f64::consts::FRAC_PI_4);
        assert_eq!(s.support_size(), 2);
    }

    #[test]
    fn circuit_matches_analytic_application() {
        use rasengan_qsim::DenseState;
        let h = TransitionHamiltonian::new(vec![1, -1, 0]);
        let c = h.circuit(0.4, 3);
        let mut dense = DenseState::basis_state(3, 0b010);
        dense.run(&c);
        let mut sparse = SparseState::basis_state(3, 0b010);
        h.apply(&mut sparse, 0.4);
        for l in 0..8u64 {
            assert!(dense
                .amplitude(l)
                .approx_eq(sparse.amplitude(l as u128), 1e-9));
        }
    }

    #[test]
    fn problem_basis_of_paper_example() {
        use rasengan_math::IntMatrix;
        use rasengan_problems::{Objective, Sense};
        let p = Problem::new(
            "paper",
            IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]]),
            vec![0, 1],
            Objective::linear(vec![0.0; 5]),
            Sense::Minimize,
        )
        .unwrap();
        let basis = problem_basis(&p).unwrap();
        assert_eq!(basis.len(), 3);
    }
}
