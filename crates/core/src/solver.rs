//! The end-to-end Rasengan solver.
//!
//! Pipeline (paper §3–§4):
//!
//! 1. Ternary homogeneous basis of the constraints ([`crate::hamiltonian`]).
//! 2. Hamiltonian simplification — Algorithm 1 ([`crate::simplify`]).
//! 3. Chain construction with pruning and early stop ([`crate::prune`]).
//! 4. Segmentation under a depth budget ([`crate::segment`]).
//! 5. Variational training of the evolution times with a classical
//!    optimizer, executing segments with probability-preserving shot
//!    hand-off and purification ([`crate::purify`]).

use crate::hamiltonian::problem_basis;
use crate::latency::{segment_execution_seconds, Latency, StageTimes};
use crate::metrics::{
    arg, best_solution, expectation, in_constraints_rate, penalty_lambda, Solution,
};
use crate::prune::{build_chain, Chain, ChainConfig};
use crate::purify::purify_distribution;
use crate::resilience::{
    BudgetKind, DegradeFallback, ResilienceConfig, ResilienceEvent, ResilienceReport, Stage,
};
use crate::segment::{apportion_shots, plan_segments, single_segment, SegmentPlan, SegmentProgram};
use crate::simplify::simplify_basis;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasengan_math::basis::TernaryBasisError;
use rasengan_obs::span::{TraceTree, Tracer};
use rasengan_optim::{Cobyla, NelderMead, Optimizer, Spsa};
use rasengan_problems::{optimum, Problem};
use rasengan_qsim::fault::{FaultKind, FaultPlan};
use rasengan_qsim::mitigation::{mitigate_readout, ReadoutModel};
use rasengan_qsim::noise::{
    apply_gate_noise_sparse, apply_gate_noise_sparse_fused, apply_readout_error,
    run_noise_slots_sparse,
};
use rasengan_qsim::parallel::{derive_seed, par_map, resolve_threads};
use rasengan_qsim::sparse::label_from_bits;
use rasengan_qsim::{Complex, Device, Label, NoiseModel, SparseState};
use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Which classical optimizer trains the evolution times.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptimizerKind {
    /// COBYLA-style linear-approximation trust region (paper default).
    Cobyla,
    /// Nelder–Mead simplex.
    NelderMead,
    /// SPSA (robust under shot noise).
    Spsa,
}

/// Configuration of a [`Rasengan`] solver.
#[derive(Clone, Debug)]
pub struct RasenganConfig {
    /// RNG seed for sampling and noise trajectories.
    pub seed: u64,
    /// Shots per segment execution; `None` propagates exact
    /// distributions (noise-free analysis mode).
    pub shots: Option<usize>,
    /// Gate-level noise model (forces shot-based execution).
    pub noise: NoiseModel,
    /// Device timing model for the latency accounting.
    pub device: Device,
    /// Opt 1: Hamiltonian simplification (Algorithm 1).
    pub simplify: bool,
    /// Opt 2: Hamiltonian pruning.
    pub prune: bool,
    /// Opt 2 (cont.): early stop after `m` dry operators.
    pub early_stop: bool,
    /// Opt 3: segmented execution.
    pub segmented: bool,
    /// Opt 3 (cont.): purification between segments.
    pub purify: bool,
    /// Per-segment CX-depth budget when segmented.
    pub segment_depth_budget: usize,
    /// Rounds of the basis to schedule (`None` = Theorem 1's default).
    pub max_rounds: Option<usize>,
    /// Optimizer iteration budget (paper: 300 noise-free, 100 on
    /// hardware).
    pub max_iterations: usize,
    /// Which classical optimizer to use.
    pub optimizer: OptimizerKind,
    /// Reachable-set cap for pruning bookkeeping.
    pub support_cap: usize,
    /// Apply M3-style readout-error mitigation to each segment's
    /// measured distribution before purification (only meaningful when
    /// the noise model has a nonzero readout rate).
    pub readout_mitigation: bool,
    /// Warm-start evolution times (e.g. transferred from a previously
    /// solved case of the same shape). Must match the compiled chain's
    /// parameter count; `None` starts every time at π/4.
    pub initial_times: Option<Vec<f64>>,
    /// Shot multiplier for the final segment (paper Fig. 7: "the number
    /// of shots for each segment can be dynamically configured" — its
    /// example gives the last segment 10× to sharpen the output
    /// distribution).
    pub final_segment_shot_boost: usize,
    /// Worker threads for the execution engine. `None` defers to the
    /// `RASENGAN_THREADS` environment variable and then to the
    /// machine's available parallelism. Results are bit-identical for a
    /// fixed seed at *any* thread count: every shot draws from its own
    /// RNG stream derived from the seed and its global shot index.
    pub threads: Option<usize>,
    /// Lockstep batch width for the dense trajectory engine
    /// (`qsim::batch`): how many Monte-Carlo trajectories one kernel
    /// sweep updates. `None` defers to the `RASENGAN_BATCH` environment
    /// variable and then to auto (`min(8, shots)`). Like `threads`,
    /// this is a throughput knob only: every shot draws from its own
    /// seed-derived RNG stream, so results are bit-identical at any
    /// batch width — including on the solve path itself, which runs
    /// sparse segment states and never batches.
    pub batch: Option<usize>,
    /// Recovery ladder: segment retry budget with shot escalation,
    /// graceful chain degradation, stage budgets, and (for testing) a
    /// deterministic fault-injection plan. All defaults are off, which
    /// reproduces the pre-resilience solver byte-for-byte.
    pub resilience: ResilienceConfig,
    /// Execute compiled segment programs (precomputed transitions,
    /// supports, mixing constants) instead of re-deriving them per shot.
    /// The fused path is bit-identical to the gate-by-gate path; `false`
    /// (CLI `--no-fuse`) keeps the legacy path alive for differential
    /// testing.
    pub fuse: bool,
    /// Record a structured span tree for the solve (one span per
    /// stage, segment, and retry attempt) into [`Outcome::trace`].
    /// Span IDs are derived from structure alone, so the tree is
    /// byte-identical at any thread count for a fixed seed, and
    /// enabling tracing never changes any result field. Off by
    /// default; when off the tracer is a no-op (stage timing costs the
    /// same handful of `Instant` reads the solver always paid).
    pub trace: bool,
}

impl Default for RasenganConfig {
    fn default() -> Self {
        RasenganConfig {
            seed: 0,
            shots: None,
            noise: NoiseModel::noise_free(),
            device: Device::ibm_quebec(),
            simplify: true,
            prune: true,
            early_stop: true,
            segmented: true,
            purify: true,
            segment_depth_budget: 102,
            max_rounds: None,
            max_iterations: 300,
            optimizer: OptimizerKind::Cobyla,
            support_cap: 1 << 16,
            readout_mitigation: false,
            initial_times: None,
            final_segment_shot_boost: 1,
            threads: None,
            batch: None,
            resilience: ResilienceConfig::default(),
            fuse: true,
            trace: false,
        }
    }
}

impl RasenganConfig {
    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets shot-based execution with the given budget per segment.
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.shots = Some(shots);
        self
    }

    /// Sets the noise model (implies shot-based execution).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the device timing model (and adopts its noise model).
    pub fn on_device(mut self, device: Device) -> Self {
        self.noise = device.noise;
        self.device = device;
        self
    }

    /// Sets the optimizer iteration budget.
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Derives the per-segment CX-depth budget from the device's
    /// two-qubit error rate so that one segment retains at least
    /// `target_fidelity` probability of executing error-free:
    /// `d = ln(target) / ln(1 − p₂)`. With IBM-Kyiv's 1.2% this lands
    /// near the paper's ~50-deep segments.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < target_fidelity < 1`.
    pub fn with_fidelity_budget(mut self, device: &Device, target_fidelity: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&target_fidelity) && target_fidelity > 0.0,
            "target fidelity must be in (0, 1)"
        );
        let p2 = device.noise.p2;
        self.segment_depth_budget = if p2 <= 0.0 {
            usize::MAX / 2
        } else {
            let d = target_fidelity.ln() / (1.0 - p2).ln();
            (d.floor() as usize).max(34)
        };
        self
    }

    /// Enables M3-style readout mitigation (builder style).
    pub fn with_readout_mitigation(mut self) -> Self {
        self.readout_mitigation = true;
        self
    }

    /// Warm-starts the optimizer from previously trained evolution
    /// times (parameter transfer across cases of the same shape).
    pub fn with_initial_times(mut self, times: Vec<f64>) -> Self {
        self.initial_times = Some(times);
        self
    }

    /// Gives the final segment `boost×` the configured shot budget
    /// (Fig. 7's precision knob for the output distribution).
    ///
    /// # Panics
    ///
    /// Panics if `boost == 0`.
    pub fn with_final_segment_shot_boost(mut self, boost: usize) -> Self {
        assert!(boost > 0, "shot boost must be positive");
        self.final_segment_shot_boost = boost;
        self
    }

    /// Pins the execution engine to `threads` worker threads (builder
    /// style). The default (`None`) uses `RASENGAN_THREADS` or the
    /// machine's available parallelism; either way the results are
    /// identical — only the wall-clock changes.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = Some(threads);
        self
    }

    /// Pins the dense trajectory engine's lockstep batch width (builder
    /// style). The default (`None`) uses `RASENGAN_BATCH` or auto;
    /// like [`with_threads`](Self::with_threads), any width yields
    /// bit-identical results — only the wall-clock changes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn with_batch(mut self, lanes: usize) -> Self {
        assert!(lanes > 0, "batch width must be positive");
        self.batch = Some(lanes);
        self
    }

    /// Replaces the whole resilience configuration (builder style).
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Allows up to `retries` re-executions of a segment that produced
    /// no feasible outcome, escalating the shot budget each attempt
    /// (builder style).
    pub fn with_retry_budget(mut self, retries: usize) -> Self {
        self.resilience.retry_budget = retries;
        self
    }

    /// Enables graceful degradation: when a segment's retries are
    /// exhausted, the chain continues from the previous segment's
    /// feasible state instead of aborting (builder style).
    pub fn with_degradation(mut self) -> Self {
        self.resilience.degrade = true;
        self
    }

    /// Arms a deterministic fault-injection plan (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.resilience.fault_plan = Some(plan);
        self
    }

    /// Disables compiled-program execution, running the legacy
    /// gate-by-gate/per-shot-recompute path (builder style). Results are
    /// bit-identical either way; this exists for differential testing
    /// and perf comparison.
    pub fn without_fusion(mut self) -> Self {
        self.fuse = false;
        self
    }

    /// Enables structured tracing: the solve records a deterministic
    /// span tree into [`Outcome::trace`] (builder style).
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Disables all three optimizations (baseline ablation point).
    pub fn without_optimizations(mut self) -> Self {
        self.simplify = false;
        self.prune = false;
        self.early_stop = false;
        self.segmented = false;
        self.purify = false;
        self
    }
}

/// Error from [`Rasengan::solve`].
#[derive(Clone, Debug, PartialEq)]
pub enum RasenganError {
    /// The constraint system admits no ternary homogeneous basis.
    Basis(TernaryBasisError),
    /// The problem carries no initial feasible solution and none was
    /// found.
    NoFeasibleSeed,
    /// Noise destroyed feasibility: a segment produced no feasible
    /// outcome, so the next segment cannot be initialized (the Fig. 10d
    /// / Fig. 14b failure mode). Only reachable when the configured
    /// retry budget is exhausted and degradation is disabled.
    NoFeasibleOutput {
        /// Index of the failing segment.
        segment: usize,
    },
    /// The constraints fully determine the solution (nothing to search).
    FullyDetermined,
    /// A configured stage budget (wall-clock or total shots) tripped
    /// before a full outcome existed and degradation was disabled.
    /// Carries the best partial outcome assembled so far, if any
    /// training evaluation completed.
    BudgetExceeded {
        /// Stage in which the ceiling tripped.
        stage: Stage,
        /// Which budget tripped.
        kind: BudgetKind,
        /// Best partial outcome available when the budget tripped.
        partial: Option<Box<Outcome>>,
    },
    /// Every start of a [`Rasengan::solve_multistart`] failed. Reports
    /// how many starts were attempted and each start's error, instead
    /// of surfacing only the last one.
    AllStartsFailed {
        /// Number of starts attempted.
        n_starts: usize,
        /// `(start index, error)` for every failed start.
        failures: Vec<(usize, RasenganError)>,
    },
}

impl fmt::Display for RasenganError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RasenganError::Basis(e) => write!(f, "basis construction failed: {e}"),
            RasenganError::NoFeasibleSeed => write!(f, "no feasible seed solution available"),
            RasenganError::NoFeasibleOutput { segment } => {
                write!(
                    f,
                    "segment {segment} produced no feasible outcome under noise"
                )
            }
            RasenganError::FullyDetermined => {
                write!(
                    f,
                    "constraints admit exactly one solution; nothing to optimize"
                )
            }
            RasenganError::BudgetExceeded {
                stage,
                kind,
                partial,
            } => {
                write!(
                    f,
                    "{stage} stage exceeded its {kind}; partial outcome {}",
                    if partial.is_some() {
                        "available"
                    } else {
                        "unavailable"
                    }
                )
            }
            RasenganError::AllStartsFailed { n_starts, failures } => {
                write!(f, "all {n_starts} starts failed")?;
                for (start, err) in failures.iter().take(3) {
                    write!(f, "; start {start}: {err}")?;
                }
                if failures.len() > 3 {
                    write!(f, "; … and {} more", failures.len() - 3)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RasenganError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RasenganError::Basis(e) => Some(e),
            RasenganError::AllStartsFailed { failures, .. } => failures
                .first()
                .map(|(_, e)| e as &(dyn std::error::Error + 'static)),
            _ => None,
        }
    }
}

/// Per-run structural statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainStats {
    /// Number of homogeneous basis vectors `m`.
    pub m_basis: usize,
    /// Scheduled operators before pruning.
    pub raw_ops: usize,
    /// Operators kept after pruning/early stop.
    pub kept_ops: usize,
    /// Number of execution segments.
    pub n_segments: usize,
    /// CX depth of the deepest segment (the paper's reported "circuit
    /// depth" for Rasengan).
    pub max_segment_cx_depth: usize,
    /// CX depth of the whole chain if run unsegmented.
    pub total_cx_depth: usize,
    /// Number of tunable parameters.
    pub n_params: usize,
    /// Nonzero-count of the basis before/after simplification.
    pub simplify_cost: (usize, usize),
}

/// Result of a successful solve.
#[derive(Clone, Debug, PartialEq)]
pub struct Outcome {
    /// Best measured solution.
    pub best: Solution,
    /// Expectation of the objective over the final distribution.
    pub expectation: f64,
    /// Approximation ratio gap vs the exact optimum (Eq. 9).
    pub arg: f64,
    /// Feasible fraction of the final *raw* output (before
    /// purification) — 1.0 in noise-free runs.
    pub raw_in_constraints_rate: f64,
    /// Feasible fraction of the returned distribution (1.0 whenever
    /// purification is on).
    pub in_constraints_rate: f64,
    /// Final output distribution over basis-state labels.
    pub distribution: BTreeMap<Label, f64>,
    /// Structural statistics of the compiled chain.
    pub stats: ChainStats,
    /// Modeled quantum + measured classical latency.
    pub latency: Latency,
    /// Best-so-far objective after each optimizer iteration.
    pub history: Vec<f64>,
    /// Total objective evaluations (circuit batches) executed.
    pub evaluations: usize,
    /// Total shots consumed across all segments and iterations.
    pub total_shots: usize,
    /// The trained evolution times (reusable as a warm start for
    /// sibling cases via [`RasenganConfig::with_initial_times`]).
    pub trained_times: Vec<f64>,
    /// Audit trail of the recovery ladder: every injected fault, retry,
    /// degradation, budget stop, and parameter sanitization that
    /// occurred. Empty for runs that never needed recovery.
    pub resilience: ResilienceReport,
    /// Structured span tree of this solve, present when
    /// [`RasenganConfig::trace`] was enabled. Span IDs derive from
    /// structure (parent ID × label × ordinal through the SplitMix64
    /// finalizer), so the deterministic rendering is byte-identical at
    /// any thread count. Never serialized into the wire `result`
    /// section — the service layer carries it in a separate `trace`
    /// section.
    pub trace: Option<TraceTree>,
}

/// A compiled-but-not-yet-trained Rasengan instance; exposes the
/// depth/parameter metrics the ablation figures need without paying for
/// optimization.
#[derive(Clone, Debug)]
pub struct Prepared {
    /// The (possibly simplified) homogeneous basis.
    pub basis: Vec<Vec<i64>>,
    /// The pruned transition chain.
    pub chain: Chain,
    /// The segmentation plan.
    pub plan: SegmentPlan,
    /// One compiled program per plan segment (precomputed transitions,
    /// supports, CX costs), reused across every shot, evaluation, and —
    /// through the serve layer's compile cache — every request sharing
    /// this compile. Empty only for hand-built `Prepared` values; the
    /// executor falls back to the gate-by-gate path in that case.
    pub programs: Vec<SegmentProgram>,
    /// Seed feasible basis state.
    pub seed_label: Label,
    /// Structural statistics.
    pub stats: ChainStats,
}

/// The Rasengan solver.
///
/// # Example
///
/// ```
/// use rasengan_core::{Rasengan, RasenganConfig};
/// use rasengan_problems::registry::{benchmark, BenchmarkId};
///
/// let problem = benchmark(BenchmarkId::parse("J1").unwrap());
/// let outcome = Rasengan::new(RasenganConfig::default().with_max_iterations(60))
///     .solve(&problem)
///     .unwrap();
/// assert!(outcome.best.feasible);
/// assert_eq!(outcome.in_constraints_rate, 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Rasengan {
    config: RasenganConfig,
}

impl Rasengan {
    /// Creates a solver with the given configuration.
    pub fn new(config: RasenganConfig) -> Self {
        Rasengan { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RasenganConfig {
        &self.config
    }

    /// Compiles the problem into a transition chain and segmentation
    /// plan without training.
    ///
    /// # Errors
    ///
    /// See [`RasenganError`].
    pub fn prepare(&self, problem: &Problem) -> Result<Prepared, RasenganError> {
        let cfg = &self.config;
        let raw_basis = problem_basis(problem).map_err(RasenganError::Basis)?;
        if raw_basis.is_empty() {
            return Err(RasenganError::FullyDetermined);
        }

        let seed_bits = problem
            .initial_feasible()
            .map(<[i64]>::to_vec)
            .or_else(|| {
                rasengan_math::find_binary_solution(problem.constraints(), problem.rhs()).ok()
            })
            .ok_or(RasenganError::NoFeasibleSeed)?;
        let seed_label = label_from_bits(&seed_bits);

        let simplify_result = simplify_basis(&raw_basis);
        let (basis, simplify_cost) = if cfg.simplify {
            // Guard: a sparser basis spans the same lattice, but the
            // *single-step* transition graph over binary states can lose
            // connectivity (intermediate sums leave {0,1}^n). Keep the
            // simplified basis only if it reaches at least as much of
            // the feasible space from the seed.
            let raw_reach = reachable_count(&raw_basis, seed_label, cfg.support_cap);
            let simp_reach = reachable_count(&simplify_result.basis, seed_label, cfg.support_cap);
            if simp_reach >= raw_reach {
                (
                    simplify_result.basis,
                    (simplify_result.cost_before, simplify_result.cost_after),
                )
            } else {
                let cost = simplify_result.cost_before;
                (raw_basis, (cost, cost))
            }
        } else {
            let cost = simplify_result.cost_before;
            (raw_basis, (cost, cost))
        };

        let chain = build_chain(
            &basis,
            seed_label,
            &ChainConfig {
                max_rounds: cfg.max_rounds,
                prune: cfg.prune,
                early_stop: cfg.early_stop,
                support_cap: cfg.support_cap,
            },
        );
        let plan = if cfg.segmented {
            plan_segments(&chain.ops, cfg.segment_depth_budget)
        } else {
            single_segment(&chain.ops)
        };

        let max_segment_cx_depth = plan
            .segments
            .iter()
            .map(|r| chain.ops[r.clone()].iter().map(|o| o.cx_cost()).sum())
            .max()
            .unwrap_or(0);
        let stats = ChainStats {
            m_basis: basis.len(),
            raw_ops: chain.raw_len,
            kept_ops: chain.ops.len(),
            n_segments: plan.len(),
            max_segment_cx_depth,
            total_cx_depth: chain.total_cx_cost(),
            n_params: chain.n_params(),
            simplify_cost,
        };
        let programs = plan
            .segments
            .iter()
            .map(|r| SegmentProgram::compile(&chain.ops[r.clone()]))
            .collect();
        Ok(Prepared {
            basis,
            chain,
            plan,
            programs,
            seed_label,
            stats,
        })
    }

    /// Runs `n_starts` independent solves from different seeds and
    /// initial times, returning the best outcome (lowest ARG). A cheap
    /// defense against the local minima COBYLA occasionally lands in on
    /// wide parameter vectors; each restart perturbs the seed and the
    /// starting angles.
    ///
    /// Starts run in parallel across the configured thread count. The
    /// result is independent of parallelism: every start's seed is a
    /// pure function of the base seed and the start index, and the
    /// winner is folded in start order with a strict `<`, so ties
    /// resolve to the earliest start.
    ///
    /// # Errors
    ///
    /// Returns [`RasenganError::AllStartsFailed`] — aggregating every
    /// start's error — if *every* start fails.
    ///
    /// # Panics
    ///
    /// Panics if `n_starts == 0`.
    pub fn solve_multistart(
        &self,
        problem: &Problem,
        n_starts: usize,
    ) -> Result<Outcome, RasenganError> {
        assert!(n_starts > 0, "need at least one start");
        let n_params = self.prepare(problem)?.stats.n_params;
        let starts: Vec<usize> = (0..n_starts).collect();
        let threads = resolve_threads(self.config.threads).min(n_starts);
        let results = par_map(&starts, threads, |_, &start| {
            let mut cfg = self.config.clone();
            if start > 0 {
                // Independent seed per restart through the SplitMix64
                // finalizer; start 0 keeps the base seed so a one-start
                // multistart is exactly `solve`. (The previous
                // `wrapping_add(start * 0x9E37)` offsets left the seeds
                // correlated in the low bits.)
                cfg.seed = derive_seed(cfg.seed, start as u64);
                // Spread the starting angles across (0, π/2).
                let t =
                    std::f64::consts::FRAC_PI_2 * (start as f64 + 0.5) / (n_starts as f64 + 1.0);
                cfg.initial_times = Some(vec![t; n_params]);
            }
            Rasengan::new(cfg).solve(problem)
        });
        let mut best: Option<Outcome> = None;
        let mut failures: Vec<(usize, RasenganError)> = Vec::new();
        for (start, result) in results.into_iter().enumerate() {
            match result {
                Ok(outcome) => {
                    let better = best
                        .as_ref()
                        .is_none_or(|incumbent| outcome.arg < incumbent.arg);
                    if better {
                        best = Some(outcome);
                    }
                }
                Err(e) => failures.push((start, e)),
            }
        }
        best.ok_or(RasenganError::AllStartsFailed { n_starts, failures })
    }

    /// Runs the full variational solve.
    ///
    /// # Errors
    ///
    /// See [`RasenganError`]. Under heavy noise the final execution may
    /// fail with [`RasenganError::NoFeasibleOutput`] — unless the
    /// [`ResilienceConfig`] arms retries or degradation, in which case
    /// the recovery ladder runs first and every action is recorded in
    /// [`Outcome::resilience`].
    pub fn solve(&self, problem: &Problem) -> Result<Outcome, RasenganError> {
        let wall = Instant::now();
        let mut tracer = Tracer::for_solve(self.config.trace);
        let prep_span = tracer.open("prepare");
        let prepared = self.prepare(problem)?;
        tracer.attr_int("m_basis", prepared.stats.m_basis as i128);
        tracer.attr_int("kept_ops", prepared.stats.kept_ops as i128);
        tracer.attr_int("n_segments", prepared.stats.n_segments as i128);
        tracer.attr_int("n_params", prepared.stats.n_params as i128);
        let prepare_s = tracer.close(prep_span);
        self.run_prepared(problem, &prepared, wall, prepare_s, tracer)
    }

    /// Runs training and execution against an already-compiled
    /// [`Prepared`] (from [`Rasengan::prepare`]), skipping the basis /
    /// simplification / chain / segmentation work entirely.
    ///
    /// This is the compile-cache entry point of the service layer: the
    /// expensive artifacts (reduced ternary basis, pruned chain,
    /// segmentation plan) are reused across requests that share a
    /// problem fingerprint. The caller must pass a `Prepared` compiled
    /// from the *same problem* under the *same compile-relevant config*
    /// (`simplify`/`prune`/`early_stop`/`segmented`/depth budget/
    /// `max_rounds`/`support_cap`); training-side knobs (seed, shots,
    /// iterations, resilience) may differ freely. For a fixed seed the
    /// result is byte-identical to [`Rasengan::solve`].
    ///
    /// # Errors
    ///
    /// See [`RasenganError`].
    pub fn solve_prepared(
        &self,
        problem: &Problem,
        prepared: &Prepared,
    ) -> Result<Outcome, RasenganError> {
        // No `prepare` span: compilation happened elsewhere (or came
        // from a cache), and `prepare_s` stays 0.0 as documented.
        self.run_prepared(
            problem,
            prepared,
            Instant::now(),
            0.0,
            Tracer::for_solve(self.config.trace),
        )
    }

    fn run_prepared(
        &self,
        problem: &Problem,
        prepared: &Prepared,
        wall: Instant,
        prepare_s: f64,
        mut tracer: Tracer,
    ) -> Result<Outcome, RasenganError> {
        let cfg = &self.config;
        let resil = &cfg.resilience;
        let n_params = prepared.stats.n_params;
        let sense = problem.sense();
        let lambda = penalty_lambda(problem);

        // Shared accounting across objective evaluations.
        let mut quantum_s = 0.0f64;
        let mut retry_s = 0.0f64;
        let mut total_shots = 0usize;
        let mut eval_counter = 0u64;
        let mut events: Vec<ResilienceEvent> = Vec::new();
        // Cheapest usable fallback if a budget kills the final
        // execution: the latest successful training execution.
        let mut last_good: Option<(BTreeMap<Label, f64>, f64)> = None;
        let mut train_budget_reported = false;

        // The training stage's wall-clock ceiling starts now; the final
        // execution gets its own fresh ceiling below.
        let train_deadline = resil
            .max_stage_seconds
            .map(|s| Instant::now() + Duration::from_secs_f64(s));
        let plan = resil.fault_plan.as_ref().filter(|p| p.is_active());

        // Training loop: minimize the sense-adjusted expectation. Each
        // evaluation executes under its own RNG stream derived from the
        // seed and the evaluation index.
        let mut objective = |params: &[f64]| -> f64 {
            eval_counter += 1;
            let stream_seed = derive_seed(cfg.seed, eval_counter);

            // Budget gate: once a ceiling trips, the remaining
            // optimizer iterations drain without spending quantum time.
            if let Some(kind) = budget_tripped(train_deadline, resil, total_shots) {
                if !train_budget_reported {
                    train_budget_reported = true;
                    events.push(ResilienceEvent::BudgetExhausted {
                        stage: Stage::Train,
                        kind,
                    });
                }
                return FAILURE_OBJECTIVE;
            }

            // Fault injection: corrupt optimizer parameters before
            // execution; the executor sanitizes rather than crashes.
            // (For `ParamCorruption` events the `segment` field carries
            // the corrupted parameter index.)
            let corrupted;
            let exec_params: &[f64] = match plan {
                Some(p) if p.param_corruption > 0.0 => {
                    let mut buf = params.to_vec();
                    if let Some(idx) = p.corrupt_params(eval_counter, &mut buf) {
                        events.push(ResilienceEvent::FaultInjected {
                            segment: idx,
                            attempt: 0,
                            kind: FaultKind::ParamCorruption,
                        });
                        corrupted = buf;
                        &corrupted
                    } else {
                        params
                    }
                }
                _ => params,
            };

            let budget = ExecBudget {
                stage: Stage::Train,
                deadline: train_deadline,
                shots_before: total_shots,
            };
            match execute(
                problem,
                prepared,
                exec_params,
                cfg,
                lambda,
                stream_seed,
                &budget,
                &mut events,
                None,
            ) {
                Ok(exec) => {
                    quantum_s += exec.quantum_s;
                    retry_s += exec.retry_s;
                    total_shots += exec.shots;
                    last_good = Some((exec.distribution.clone(), exec.raw_in_constraints_rate));
                    let e = expectation(problem, &exec.distribution, lambda);
                    match sense {
                        rasengan_problems::Sense::Minimize => e,
                        rasengan_problems::Sense::Maximize => -e,
                    }
                }
                // A failed evaluation (noise destroyed feasibility) is
                // charged a large *finite* penalty: infinities would
                // poison the optimizer's linear interpolation into NaN
                // parameter steps.
                Err(_) => FAILURE_OBJECTIVE,
            }
        };

        let x0 = match &cfg.initial_times {
            Some(times) if times.len() == n_params => times.clone(),
            // A transferred vector from a different shape is truncated /
            // padded rather than rejected: chains of sibling cases often
            // differ by a few pruned operators.
            Some(times) => {
                let mut x = times.clone();
                x.resize(n_params, std::f64::consts::FRAC_PI_4);
                x
            }
            None => vec![std::f64::consts::FRAC_PI_4; n_params],
        };
        // The `train` span derives `StageTimes::train_s`; per-evaluation
        // spans are deliberately not recorded (hundreds of optimizer
        // evaluations would dwarf the rest of the tree) — the span
        // carries the evaluation count instead.
        let train_span = tracer.open("train");
        let result = match cfg.optimizer {
            OptimizerKind::Cobyla => Cobyla::new(cfg.max_iterations).minimize(&mut objective, &x0),
            OptimizerKind::NelderMead => {
                NelderMead::new(cfg.max_iterations).minimize(&mut objective, &x0)
            }
            OptimizerKind::Spsa => {
                Spsa::new(cfg.max_iterations, cfg.seed).minimize(&mut objective, &x0)
            }
        };
        tracer.attr_int("n_params", n_params as i128);
        tracer.attr_int("evaluations", result.evaluations as i128);
        let train_s = tracer.close(train_span);

        // Final execution at the trained parameters, on a stream no
        // training evaluation can collide with, under a fresh stage
        // ceiling of its own. Only this execution records per-segment
        // and per-attempt detail spans: training executions stay
        // span-free (see the `train` span note above).
        let exec_span = tracer.open("execute");
        let exec_deadline = resil
            .max_stage_seconds
            .map(|s| Instant::now() + Duration::from_secs_f64(s));
        let budget = ExecBudget {
            stage: Stage::Execute,
            deadline: exec_deadline,
            shots_before: total_shots,
        };
        let exec = match execute(
            problem,
            prepared,
            &result.best_params,
            cfg,
            lambda,
            derive_seed(cfg.seed, u64::MAX),
            &budget,
            &mut events,
            Some(&mut tracer),
        ) {
            Ok(exec) => exec,
            Err(RasenganError::BudgetExceeded { stage, kind, .. }) => {
                // A budget killed the final execution. Package the best
                // partial result — the latest successful training
                // execution — so callers still get a usable answer.
                let execute_s = tracer.close(exec_span);
                let trace = tracer.finish();
                let partial = last_good.map(|(distribution, raw_rate)| {
                    let e_real = expectation(problem, &distribution, lambda);
                    let (_, e_opt) = optimum(problem);
                    Box::new(Outcome {
                        best: best_solution(problem, &distribution),
                        expectation: e_real,
                        arg: arg(e_opt, e_real),
                        raw_in_constraints_rate: raw_rate,
                        in_constraints_rate: in_constraints_rate(problem, &distribution),
                        distribution,
                        stats: prepared.stats.clone(),
                        latency: Latency {
                            quantum_s,
                            classical_s: wall.elapsed().as_secs_f64(),
                            stages: StageTimes {
                                prepare_s,
                                train_s,
                                execute_s,
                                retry_s,
                                ..StageTimes::default()
                            },
                        },
                        history: result.history.clone(),
                        evaluations: result.evaluations,
                        total_shots,
                        resilience: ResilienceReport {
                            events: events.clone(),
                        },
                        trained_times: result.best_params.clone(),
                        trace,
                    })
                });
                return Err(RasenganError::BudgetExceeded {
                    stage,
                    kind,
                    partial,
                });
            }
            Err(e) => return Err(e),
        };
        let execute_s = tracer.close(exec_span);
        quantum_s += exec.quantum_s;
        retry_s += exec.retry_s;
        total_shots += exec.shots;

        let e_real = expectation(problem, &exec.distribution, lambda);
        let (_, e_opt) = optimum(problem);
        let best = best_solution(problem, &exec.distribution);
        let rate = in_constraints_rate(problem, &exec.distribution);

        Ok(Outcome {
            best,
            expectation: e_real,
            arg: arg(e_opt, e_real),
            raw_in_constraints_rate: exec.raw_in_constraints_rate,
            in_constraints_rate: rate,
            distribution: exec.distribution,
            stats: prepared.stats.clone(),
            latency: Latency {
                quantum_s,
                classical_s: wall.elapsed().as_secs_f64(),
                stages: StageTimes {
                    prepare_s,
                    train_s,
                    execute_s,
                    retry_s,
                    ..StageTimes::default()
                },
            },
            history: result.history,
            evaluations: result.evaluations,
            total_shots,
            resilience: ResilienceReport { events },
            trained_times: result.best_params,
            trace: tracer.finish(),
        })
    }
}

use crate::prune::reachable_count;

/// Objective value charged when an evaluation fails under noise; large
/// enough to steer any optimizer away, finite so interpolation stays
/// well-conditioned.
const FAILURE_OBJECTIVE: f64 = 1e12;

/// Result of executing the full segmented chain once at fixed
/// parameters.
struct Execution {
    distribution: BTreeMap<Label, f64>,
    raw_in_constraints_rate: f64,
    quantum_s: f64,
    retry_s: f64,
    shots: usize,
}

/// Budget context of one [`execute`] call: which stage it runs in, the
/// stage's wall-clock deadline, and how many shots the solve had
/// already spent when the call started.
struct ExecBudget {
    stage: Stage,
    deadline: Option<Instant>,
    shots_before: usize,
}

/// Returns the budget that has tripped, if any.
fn budget_tripped(
    deadline: Option<Instant>,
    resil: &ResilienceConfig,
    shots_so_far: usize,
) -> Option<BudgetKind> {
    if let (Some(d), Some(limit_s)) = (deadline, resil.max_stage_seconds) {
        if Instant::now() >= d {
            return Some(BudgetKind::WallClock { limit_s });
        }
    }
    if let Some(limit) = resil.max_total_shots {
        if shots_so_far >= limit {
            return Some(BudgetKind::Shots { limit });
        }
    }
    None
}

/// Largest |evolution time| the executor accepts before clamping; far
/// beyond anything an optimizer legitimately proposes, so clamping
/// never perturbs a healthy run.
const PARAM_LIMIT: f64 = 1e6;

fn param_ok(t: f64) -> bool {
    t.is_finite() && t.abs() <= PARAM_LIMIT
}

fn sanitize_param(t: f64) -> f64 {
    if t.is_finite() {
        t.clamp(-PARAM_LIMIT, PARAM_LIMIT)
    } else {
        std::f64::consts::FRAC_PI_4
    }
}

/// Executes the chain segment-by-segment from the seed state.
///
/// All sampling draws from RNG streams derived from `stream_seed`
/// through the SplitMix64 finalizer: noisy trajectories get one stream
/// per *global shot index*, exact sampling one stream per input label.
/// Work is split over the configured threads by index, and results are
/// folded in input order — the output is bit-identical for a fixed seed
/// at any thread count.
///
/// When [`ResilienceConfig`] arms retries, a segment whose output loses
/// feasibility is re-executed (escalated shots, fresh RNG substream per
/// attempt) up to the retry budget; when degradation is armed, an
/// exhausted segment is skipped and the chain continues from its input
/// distribution, which is always feasible. With the default (disarmed)
/// config and no fault plan, the control flow and every RNG stream
/// match the legacy single-attempt executor bit for bit.
///
/// When a recording `tracer` is supplied (the final execution of a
/// traced solve), one `segment` span is opened per chain segment and
/// one `attempt` span per sampled execution attempt. Spans live on the
/// control-plane thread only and carry deterministic attributes, so
/// they never perturb RNG streams or result bytes.
#[allow(clippy::too_many_arguments)]
fn execute(
    problem: &Problem,
    prepared: &Prepared,
    params: &[f64],
    cfg: &RasenganConfig,
    _lambda: f64,
    stream_seed: u64,
    budget: &ExecBudget,
    events: &mut Vec<ResilienceEvent>,
    tracer: Option<&mut Tracer>,
) -> Result<Execution, RasenganError> {
    // Detail spans only exist for a recording tracer; a `None` (or
    // disabled) tracer keeps this function on its legacy cost profile.
    let mut tracer = tracer.filter(|t| t.enabled());
    let resil = &cfg.resilience;
    let plan = resil.fault_plan.as_ref().filter(|p| p.is_active());

    // Sanitize rather than crash on non-finite or absurd evolution
    // times (injected faults, or an optimizer gone wrong).
    let sanitized;
    let params: &[f64] = if params.iter().all(|t| param_ok(*t)) {
        params
    } else {
        let repaired = params.iter().filter(|t| !param_ok(**t)).count();
        events.push(ResilienceEvent::ParamsSanitized { repaired });
        sanitized = params
            .iter()
            .map(|&t| sanitize_param(t))
            .collect::<Vec<_>>();
        &sanitized
    };

    let noisy = cfg.noise.is_noisy();
    let threads = resolve_threads(cfg.threads);
    let shots = match (cfg.shots, noisy) {
        (Some(s), _) => Some(s),
        (None, true) => Some(1024), // noise forces sampling
        (None, false) => None,
    };

    let mut dist: BTreeMap<Label, f64> = BTreeMap::from([(prepared.seed_label, 1.0)]);
    let mut quantum_s = 0.0;
    let mut retry_s = 0.0;
    let mut shots_used = 0usize;
    let mut raw_rate = 1.0;
    // Next unused RNG stream; monotone across segments so no two shots
    // (or sampling batches) ever share a stream. Retry attempts use a
    // derived sub-seed with their own local counter, so this legacy
    // counter advances exactly as it did pre-resilience.
    let mut next_stream = 0u64;

    let n_segments = prepared.plan.segments.len();
    'segments: for (seg_idx, range) in prepared.plan.segments.iter().enumerate() {
        // Budget gate between segments. Degradation truncates the
        // chain: every segment's input is a feasible distribution, so
        // stopping early costs quality, never validity.
        if let Some(kind) = budget_tripped(budget.deadline, resil, budget.shots_before + shots_used)
        {
            events.push(ResilienceEvent::BudgetExhausted {
                stage: budget.stage,
                kind,
            });
            if resil.degrade {
                break 'segments;
            }
            return Err(RasenganError::BudgetExceeded {
                stage: budget.stage,
                kind,
                partial: None,
            });
        }

        let ops = &prepared.chain.ops[range.clone()];
        let times = &params[range.clone()];
        let seg_span = tracer.as_mut().map(|t| {
            let tok = t.open("segment");
            t.attr_int("index", seg_idx as i128);
            t.attr_int("ops", ops.len() as i128);
            tok
        });
        // Compiled program for this segment, when fusion is on and the
        // `Prepared` carries one per segment (always true for values
        // from `prepare()`; hand-built ones may omit them).
        let program = (cfg.fuse && prepared.programs.len() == n_segments)
            .then(|| &prepared.programs[seg_idx]);
        let cx_depth: usize = ops.iter().map(|o| o.cx_cost()).sum();
        let shots = shots.map(|s| {
            if seg_idx + 1 == n_segments {
                s * cfg.final_segment_shot_boost
            } else {
                s
            }
        });
        if let Some(t) = tracer.as_mut() {
            t.attr_int("cx_depth", cx_depth as i128);
            if let Some(s) = shots {
                t.attr_int("shots", s as i128);
            }
        }

        match shots {
            None => {
                // Exact mixture propagation (noise-free analysis mode).
                // Quantum latency is still charged at the notional 1024
                // shots a hardware run would use, so latency reports stay
                // comparable with the shot-based baselines.
                quantum_s += segment_execution_seconds(&cfg.device, cx_depth, 4 * ops.len(), 1024);
                // Each input label propagates independently; the merge
                // runs sequentially in input order so the floating-point
                // accumulation order is fixed.
                let inputs: Vec<(Label, f64)> = dist.iter().map(|(&l, &p)| (l, p)).collect();
                // With a compiled program the mixing constants are
                // evaluated once per segment instead of once per input
                // label per operator; the products are bit-identical.
                let consts = program.map(|prog| mixing_constants(prog, times));
                let locals = par_map(&inputs, threads, |_, &(label, _)| {
                    let mut state = SparseState::basis_state(problem.n_vars(), label);
                    match (program, &consts) {
                        (Some(prog), Some(consts)) => {
                            for (ct, &(cos, misin)) in prog.ops.iter().zip(consts) {
                                state.apply_transition_with(&ct.transition, cos, misin);
                            }
                        }
                        _ => {
                            for (op, &t) in ops.iter().zip(times) {
                                op.apply(&mut state, t);
                            }
                        }
                    }
                    state.distribution()
                });
                let mut next: BTreeMap<Label, f64> = BTreeMap::new();
                for ((_, p), local) in inputs.iter().zip(locals) {
                    for (l, q) in local {
                        *next.entry(l).or_insert(0.0) += p * q;
                    }
                }
                dist = next;
            }
            Some(seg_shots) => {
                let inputs: Vec<Label> = dist.keys().copied().collect();
                let probs: Vec<f64> = dist.values().copied().collect();
                let mut attempt = 0usize;
                loop {
                    if attempt > 0 {
                        // Retries re-check the budgets: escalated shots
                        // must not blow through a hard ceiling.
                        if let Some(kind) =
                            budget_tripped(budget.deadline, resil, budget.shots_before + shots_used)
                        {
                            events.push(ResilienceEvent::BudgetExhausted {
                                stage: budget.stage,
                                kind,
                            });
                            if resil.degrade {
                                break 'segments;
                            }
                            return Err(RasenganError::BudgetExceeded {
                                stage: budget.stage,
                                kind,
                                partial: None,
                            });
                        }
                    }
                    let attempt_shots = resil.escalated_shots(seg_shots, attempt);
                    let attempt_start = (attempt > 0).then(Instant::now);
                    // Attempt 0 draws from the legacy stream counter;
                    // retries draw from a sub-seed derived from the
                    // segment and attempt, with a fresh local counter,
                    // so they can never collide with legacy streams.
                    let (seed, start_stream) = if attempt == 0 {
                        (stream_seed, next_stream)
                    } else {
                        (retry_stream_seed(stream_seed, seg_idx, attempt), 0)
                    };
                    let shares = apportion_shots(&probs, attempt_shots);
                    let attempt_span = tracer.as_mut().map(|t| {
                        let tok = t.open("attempt");
                        t.attr_int("attempt", attempt as i128);
                        t.attr_int("shots", attempt_shots as i128);
                        t.attr_int("inputs", inputs.len() as i128);
                        tok
                    });
                    let run = run_segment_shots(
                        problem,
                        ops,
                        times,
                        program,
                        cfg,
                        threads,
                        plan,
                        &inputs,
                        &shares,
                        cx_depth,
                        seed,
                        start_stream,
                        seg_idx,
                        attempt,
                        noisy,
                        &mut quantum_s,
                        &mut shots_used,
                        events,
                    );
                    if attempt == 0 {
                        next_stream = run.next_stream;
                    }
                    if let (Some(t), Some(tok)) = (tracer.as_mut(), attempt_span) {
                        t.close(tok);
                    }
                    if let Some(t0) = attempt_start {
                        retry_s += t0.elapsed().as_secs_f64();
                    }

                    let killed = plan.is_some_and(|p| p.kills_segment(seg_idx, attempt));
                    if killed {
                        events.push(ResilienceEvent::FaultInjected {
                            segment: seg_idx,
                            attempt,
                            kind: FaultKind::FeasibilityKill,
                        });
                    }
                    let total: usize = run.counts.values().sum();
                    let outcome = if killed || total == 0 {
                        // A kill fault, or every batch lost: nothing to
                        // post-process.
                        None
                    } else {
                        let mut raw: BTreeMap<Label, f64> = run
                            .counts
                            .into_iter()
                            .map(|(l, c)| (l, c as f64 / total as f64))
                            .collect();
                        if cfg.readout_mitigation && cfg.noise.readout > 0.0 {
                            raw = mitigate_readout(
                                &raw,
                                problem.n_vars(),
                                ReadoutModel::new(cfg.noise.readout),
                            );
                        }
                        if cfg.purify {
                            purify_distribution(problem, &raw)
                        } else {
                            let rate = crate::metrics::in_constraints_rate(problem, &raw);
                            Some((raw, rate))
                        }
                    };

                    match outcome {
                        Some((next_dist, rate)) => {
                            if attempt > 0 {
                                events.push(ResilienceEvent::Retry {
                                    segment: seg_idx,
                                    attempt,
                                    shots: attempt_shots,
                                    recovered: true,
                                });
                            }
                            raw_rate = rate;
                            dist = next_dist;
                            break;
                        }
                        None => {
                            if attempt > 0 {
                                events.push(ResilienceEvent::Retry {
                                    segment: seg_idx,
                                    attempt,
                                    shots: attempt_shots,
                                    recovered: false,
                                });
                            }
                            if attempt >= resil.retry_budget {
                                if resil.degrade {
                                    events.push(ResilienceEvent::Degraded {
                                        segment: seg_idx,
                                        attempts: attempt + 1,
                                        fallback: if seg_idx == 0 {
                                            DegradeFallback::Seed
                                        } else {
                                            DegradeFallback::PreviousSegment
                                        },
                                    });
                                    // Keep `dist` — the previous
                                    // segment's feasible output (or the
                                    // feasible seed) — and move on.
                                    break;
                                }
                                return Err(RasenganError::NoFeasibleOutput { segment: seg_idx });
                            }
                            attempt += 1;
                        }
                    }
                }
            }
        }
        if let (Some(t), Some(tok)) = (tracer.as_mut(), seg_span) {
            t.close(tok);
        }
    }

    Ok(Execution {
        distribution: dist,
        raw_in_constraints_rate: raw_rate,
        quantum_s,
        retry_s,
        shots: shots_used,
    })
}

/// Domain tag separating retry RNG sub-seeds from every other stream
/// family derived from the solve seed.
const RETRY_STREAM_TAG: u64 = 0x5E11_1E57_0000_0001;

/// Derives the RNG seed for retry `attempt` of segment `seg_idx`: a
/// sub-seed of the evaluation's `stream_seed` that no legacy stream
/// (plain counter values) can collide with.
fn retry_stream_seed(stream_seed: u64, seg_idx: usize, attempt: usize) -> u64 {
    derive_seed(
        derive_seed(stream_seed, RETRY_STREAM_TAG),
        ((seg_idx as u64) << 32) | attempt as u64,
    )
}

/// Counts from one sampled pass over a segment, plus the advanced
/// legacy stream counter (meaningful only for attempt 0).
struct SegmentRun {
    counts: BTreeMap<Label, usize>,
    next_stream: u64,
}

/// Runs one sampled attempt of a segment: apportions nothing (shares
/// are precomputed), charges latency and shots per batch, applies the
/// fault plan (calibration drift, batch loss, readout bursts), and
/// folds counts in input order so results are thread-count invariant.
#[allow(clippy::too_many_arguments)]
fn run_segment_shots(
    problem: &Problem,
    ops: &[crate::hamiltonian::TransitionHamiltonian],
    times: &[f64],
    program: Option<&SegmentProgram>,
    cfg: &RasenganConfig,
    threads: usize,
    plan: Option<&FaultPlan>,
    inputs: &[Label],
    shares: &[usize],
    cx_depth: usize,
    seed: u64,
    mut next_stream: u64,
    seg_idx: usize,
    attempt: usize,
    noisy: bool,
    quantum_s: &mut f64,
    shots_used: &mut usize,
    events: &mut Vec<ResilienceEvent>,
) -> SegmentRun {
    let n_vars = problem.n_vars();
    // Per-(segment, attempt) fault rolls, decided up front: a drifted
    // calibration applies to every trajectory of the attempt, a readout
    // burst to every measured label.
    let noise = match plan {
        Some(p) if p.calibration_drift > 0.0 => {
            let drifted = p.drifted(&cfg.noise, seed, seg_idx, attempt);
            if drifted != cfg.noise {
                events.push(ResilienceEvent::FaultInjected {
                    segment: seg_idx,
                    attempt,
                    kind: FaultKind::CalibrationDrift,
                });
            }
            drifted
        }
        _ => cfg.noise,
    };
    let burst = plan.and_then(|p| p.burst_flip_rate(seed, seg_idx, attempt));
    if burst.is_some() {
        events.push(ResilienceEvent::FaultInjected {
            segment: seg_idx,
            attempt,
            kind: FaultKind::ReadoutBurst,
        });
    }

    let mut counts: BTreeMap<Label, usize> = BTreeMap::new();
    if noisy {
        // One job per shot, tagged with its RNG stream; the per-shot
        // labels depend only on (input, stream), so any thread count
        // yields the same counts.
        let mut jobs: Vec<(Label, u64)> = Vec::new();
        for (batch, (&input, &share)) in inputs.iter().zip(shares).enumerate() {
            if share == 0 {
                continue;
            }
            *shots_used += share;
            *quantum_s += segment_execution_seconds(
                &cfg.device,
                cx_depth,
                // 1Q layers: X-preparation plus the H/X shells of each
                // τ (≈ 4 per operator).
                input.count_ones() as usize + 4 * ops.len(),
                share,
            );
            if plan.is_some_and(|p| p.batch_lost(seed, seg_idx, attempt, batch as u64)) {
                // The batch executed — shots and latency are charged —
                // but its results never came back. Its streams stay
                // reserved so surviving batches keep their streams.
                events.push(ResilienceEvent::FaultInjected {
                    segment: seg_idx,
                    attempt,
                    kind: FaultKind::ShotBatchLoss,
                });
                next_stream += share as u64;
                continue;
            }
            for _ in 0..share {
                jobs.push((input, next_stream));
                next_stream += 1;
            }
        }
        // Mixing constants shared by every trajectory of the attempt
        // (the unfused path recomputes them per shot per operator).
        let consts = program.map(|prog| mixing_constants(prog, times));
        let labels = par_map(&jobs, threads, |_, &(input, stream)| {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, stream));
            let label = match (program, &consts) {
                (Some(prog), Some(consts)) => {
                    run_noisy_trajectory_fused(n_vars, input, prog, consts, &noise, &mut rng)
                }
                _ => run_noisy_trajectory(n_vars, input, ops, times, &noise, &mut rng),
            };
            match burst {
                Some(rate) => apply_readout_error(label, n_vars, rate, &mut rng),
                None => label,
            }
        });
        for label in labels {
            *counts.entry(label).or_insert(0) += 1;
        }
    } else {
        // Noise-free sampling: one job per input label; each propagates
        // its state and samples its share from a dedicated stream.
        let mut jobs: Vec<(Label, usize, u64)> = Vec::new();
        for (batch, (&input, &share)) in inputs.iter().zip(shares).enumerate() {
            if share == 0 {
                continue;
            }
            *shots_used += share;
            *quantum_s += segment_execution_seconds(
                &cfg.device,
                cx_depth,
                input.count_ones() as usize + 4 * ops.len(),
                share,
            );
            if plan.is_some_and(|p| p.batch_lost(seed, seg_idx, attempt, batch as u64)) {
                events.push(ResilienceEvent::FaultInjected {
                    segment: seg_idx,
                    attempt,
                    kind: FaultKind::ShotBatchLoss,
                });
                next_stream += 1;
                continue;
            }
            jobs.push((input, share, next_stream));
            next_stream += 1;
        }
        let consts = program.map(|prog| mixing_constants(prog, times));
        let sampled = par_map(&jobs, threads, |_, &(input, share, stream)| {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, stream));
            let mut state = SparseState::basis_state(n_vars, input);
            match (program, &consts) {
                (Some(prog), Some(consts)) => {
                    for (ct, &(cos, misin)) in prog.ops.iter().zip(consts) {
                        state.apply_transition_with(&ct.transition, cos, misin);
                    }
                }
                _ => {
                    for (op, &t) in ops.iter().zip(times) {
                        op.apply(&mut state, t);
                    }
                }
            }
            let batch = state.sample(share, &mut rng);
            match burst {
                Some(rate) => {
                    // Re-measure every sampled shot through the burst
                    // channel on the batch's own stream.
                    let mut corrupted: BTreeMap<Label, usize> = BTreeMap::new();
                    for (label, c) in batch {
                        for _ in 0..c {
                            *corrupted
                                .entry(apply_readout_error(label, n_vars, rate, &mut rng))
                                .or_insert(0) += 1;
                        }
                    }
                    corrupted
                }
                None => batch,
            }
        });
        for batch in sampled {
            for (label, c) in batch {
                *counts.entry(label).or_insert(0) += c;
            }
        }
    }

    SegmentRun {
        counts,
        next_stream,
    }
}

/// One noisy shot: prepares `input` with X gates, applies the segment's
/// transition operators with per-CX Pauli trajectories and damping, then
/// measures with readout error.
fn run_noisy_trajectory(
    n: usize,
    input: Label,
    ops: &[crate::hamiltonian::TransitionHamiltonian],
    times: &[f64],
    noise: &NoiseModel,
    rng: &mut StdRng,
) -> Label {
    let mut state = SparseState::basis_state(n, input);
    // State-preparation X column.
    let prep_qubits: Vec<usize> = (0..n).filter(|&q| input >> q & 1 == 1).collect();
    apply_gate_noise_sparse(&mut state, &prep_qubits, noise.p1, noise, rng);

    let damping_only = NoiseModel {
        p1: 0.0,
        p2: 0.0,
        readout: 0.0,
        ..*noise
    };
    for (op, &t) in ops.iter().zip(times) {
        op.apply(&mut state, t);
        // Each τ compiles to 34k CX gates; every CX slot is an error
        // opportunity: a depolarizing event with probability p₂ on a
        // random support qubit, plus amplitude/phase damping on the
        // slot's two operands (damping accrues with *circuit duration*,
        // which is why deep unsegmented chains collapse — Fig. 14b).
        let support = op.support();
        for _ in 0..op.cx_cost() {
            if noise.p2 > 0.0 && rng.gen::<f64>() < noise.p2 {
                let q = support[rng.gen_range(0..support.len())];
                apply_gate_noise_sparse(&mut state, &[q], 1.0, &NoiseModel::noise_free(), rng);
            }
            if damping_only.is_noisy() {
                let a = support[rng.gen_range(0..support.len())];
                let b = support[rng.gen_range(0..support.len())];
                let slot = if a == b { vec![a] } else { vec![a, b] };
                apply_gate_noise_sparse(&mut state, &slot, 0.0, &damping_only, rng);
            }
        }
    }

    let label = state.sample_one(rng);
    apply_readout_error(label, n, noise.readout, rng)
}

/// Evaluates each operator's Eq. 6 mixing constants `(cos t, −i·sin t)`
/// once per segment attempt; the unfused path re-evaluates them inside
/// every shot. Same inputs, same operations — bit-identical values.
fn mixing_constants(prog: &SegmentProgram, times: &[f64]) -> Vec<(Complex, Complex)> {
    prog.ops
        .iter()
        .zip(times)
        .map(|(_, &t)| (Complex::from(t.cos()), Complex::new(0.0, -t.sin())))
        .collect()
}

/// [`run_noisy_trajectory`] over a compiled [`SegmentProgram`]: the
/// transition masks, supports, and CX costs are precomputed at prepare
/// time and the mixing constants come in from the caller, so the
/// per-shot loop allocates almost nothing. Every RNG draw happens at
/// the same point with the same distribution as the unfused path,
/// `apply_transition_with` receives identical constants, and each
/// operator's noise-slot loop runs over a flat support snapshot with
/// folded damping ([`run_noise_slots_sparse`]: two contiguous passes
/// per slot instead of four hash-map passes per channel) — equal to the
/// unfused channels up to the same last-ulp reassociation the two
/// paths' distinct hash maps already exhibit, which the bitwise
/// fused-vs-unfused solve tests bound at the measured-counts level.
fn run_noisy_trajectory_fused(
    n: usize,
    input: Label,
    prog: &SegmentProgram,
    consts: &[(Complex, Complex)],
    noise: &NoiseModel,
    rng: &mut StdRng,
) -> Label {
    let mut state = SparseState::basis_state(n, input);
    // State-preparation X column. The per-qubit noise channel treats
    // each qubit independently, so feeding set bits one at a time
    // consumes the RNG exactly like the old collected-Vec call.
    for q in 0..n {
        if input >> q & 1 == 1 {
            apply_gate_noise_sparse_fused(&mut state, &[q], noise.p1, noise, rng);
        }
    }

    for (ct, &(cos, misin)) in prog.ops.iter().zip(consts) {
        state.apply_transition_with(&ct.transition, cos, misin);
        run_noise_slots_sparse(&mut state, &ct.support, ct.cx_cost, noise.p2, noise, rng);
    }

    let label = state.sample_one(rng);
    apply_readout_error(label, n, noise.readout, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasengan_problems::registry::{benchmark, BenchmarkId};
    use rasengan_problems::{enumerate_feasible, optimum};

    fn j1() -> Problem {
        benchmark(BenchmarkId::parse("J1").unwrap())
    }

    #[test]
    fn prepare_reports_consistent_stats() {
        let prepared = Rasengan::new(RasenganConfig::default())
            .prepare(&j1())
            .unwrap();
        assert_eq!(prepared.stats.kept_ops, prepared.chain.ops.len());
        assert_eq!(prepared.stats.n_params, prepared.chain.ops.len());
        assert!(prepared.stats.n_segments >= 1);
        assert!(prepared.stats.max_segment_cx_depth <= prepared.stats.total_cx_depth);
    }

    #[test]
    fn noise_free_exact_solve_reaches_low_arg() {
        let outcome = Rasengan::new(RasenganConfig::default().with_max_iterations(150))
            .solve(&j1())
            .unwrap();
        assert!(outcome.best.feasible);
        assert_eq!(outcome.in_constraints_rate, 1.0);
        assert_eq!(outcome.raw_in_constraints_rate, 1.0);
        assert!(outcome.arg < 0.5, "arg {}", outcome.arg);
        // The best measured solution should be the true optimum here.
        let (_, e_opt) = optimum(&j1());
        assert!(
            (outcome.best.value - e_opt).abs() < 1e-9,
            "best {}",
            outcome.best.value
        );
    }

    #[test]
    fn output_support_is_subset_of_feasible_set() {
        let p = j1();
        let outcome = Rasengan::new(RasenganConfig::default().with_max_iterations(40))
            .solve(&p)
            .unwrap();
        let feasible = enumerate_feasible(&p);
        for &label in outcome.distribution.keys() {
            let bits = rasengan_qsim::sparse::bits_from_label(label, p.n_vars());
            assert!(
                feasible.contains(&bits),
                "infeasible state in output: {bits:?}"
            );
        }
    }

    #[test]
    fn shot_based_noise_free_solve_works() {
        let cfg = RasenganConfig::default()
            .with_shots(512)
            .with_max_iterations(60)
            .with_seed(3);
        let outcome = Rasengan::new(cfg).solve(&j1()).unwrap();
        assert!(outcome.best.feasible);
        assert!(outcome.total_shots > 0);
        assert!(outcome.latency.quantum_s > 0.0);
    }

    #[test]
    fn noisy_solve_purifies_to_full_constraint_satisfaction() {
        let cfg = RasenganConfig::default()
            .with_noise(NoiseModel::depolarizing(2e-3))
            .with_shots(256)
            .with_max_iterations(25)
            .with_seed(11);
        let outcome = Rasengan::new(cfg).solve(&j1()).unwrap();
        assert_eq!(
            outcome.in_constraints_rate, 1.0,
            "purification must clean the output"
        );
        assert!(outcome.raw_in_constraints_rate <= 1.0);
        assert!(outcome.best.feasible);
    }

    #[test]
    fn seeds_reproduce() {
        let cfg = RasenganConfig::default()
            .with_shots(128)
            .with_max_iterations(20)
            .with_seed(5);
        let a = Rasengan::new(cfg.clone()).solve(&j1()).unwrap();
        let b = Rasengan::new(cfg).solve(&j1()).unwrap();
        assert_eq!(a.expectation, b.expectation);
        assert_eq!(a.distribution, b.distribution);
    }

    #[test]
    fn unsegmented_mode_single_segment() {
        let cfg = RasenganConfig {
            segmented: false,
            ..RasenganConfig::default()
        };
        let prepared = Rasengan::new(cfg).prepare(&j1()).unwrap();
        assert_eq!(prepared.stats.n_segments, 1);
        assert_eq!(
            prepared.stats.max_segment_cx_depth,
            prepared.stats.total_cx_depth
        );
    }

    #[test]
    fn pruning_reduces_parameters() {
        let with = Rasengan::new(RasenganConfig::default())
            .prepare(&j1())
            .unwrap();
        let without = {
            let cfg = RasenganConfig {
                prune: false,
                early_stop: false,
                ..RasenganConfig::default()
            };
            Rasengan::new(cfg).prepare(&j1()).unwrap()
        };
        assert!(with.stats.kept_ops <= without.stats.kept_ops);
    }

    #[test]
    fn fidelity_budget_matches_paper_scale() {
        let cfg = RasenganConfig::default().with_fidelity_budget(&Device::ibm_kyiv(), 0.5);
        // ln(0.5)/ln(1−0.012) ≈ 57 — the paper's ~50-deep segments.
        assert!(
            (40..=80).contains(&cfg.segment_depth_budget),
            "budget {}",
            cfg.segment_depth_budget
        );
        let noise_free =
            RasenganConfig::default().with_fidelity_budget(&Device::noise_free(10), 0.5);
        assert!(noise_free.segment_depth_budget > 1_000_000);
    }

    #[test]
    fn readout_mitigation_improves_noisy_rate() {
        // Pure readout noise: every measurement error is a classical
        // bit flip, which mitigation + purification should clean up.
        let noise = NoiseModel::ibm_like(0.0, 0.0, 0.05);
        let base = RasenganConfig::default()
            .with_seed(17)
            .with_noise(noise)
            .with_shots(1024)
            .with_max_iterations(20);
        let plain = Rasengan::new(base.clone()).solve(&j1()).unwrap();
        let mitigated = Rasengan::new(base.with_readout_mitigation())
            .solve(&j1())
            .unwrap();
        // Both purify to 100%; the mitigated run should not be worse on
        // the raw feasible fraction (mitigation reassigns flipped mass).
        assert!(mitigated.raw_in_constraints_rate >= plain.raw_in_constraints_rate - 0.05);
        assert!(mitigated.best.feasible);
    }

    #[test]
    fn multistart_beats_or_matches_single_start() {
        let p = benchmark(BenchmarkId::parse("S2").unwrap());
        let solver = Rasengan::new(
            RasenganConfig::default()
                .with_seed(2)
                .with_max_iterations(40),
        );
        let single = solver.solve(&p).unwrap();
        let multi = solver.solve_multistart(&p, 4).unwrap();
        assert!(
            multi.arg <= single.arg + 1e-12,
            "multi {} vs single {}",
            multi.arg,
            single.arg
        );
        assert!(multi.best.feasible);
    }

    #[test]
    fn final_segment_shot_boost_multiplies_budget() {
        let cfg = RasenganConfig::default()
            .with_seed(1)
            .with_shots(100)
            .with_max_iterations(5)
            .with_final_segment_shot_boost(10);
        let boosted = Rasengan::new(cfg.clone()).solve(&j1()).unwrap();
        let mut plain_cfg = cfg;
        plain_cfg.final_segment_shot_boost = 1;
        let plain = Rasengan::new(plain_cfg).solve(&j1()).unwrap();
        assert!(
            boosted.total_shots > plain.total_shots,
            "boost had no effect: {} vs {}",
            boosted.total_shots,
            plain.total_shots
        );
    }

    #[test]
    fn alternative_optimizers_also_converge() {
        for kind in [OptimizerKind::NelderMead, OptimizerKind::Spsa] {
            let mut cfg = RasenganConfig::default()
                .with_seed(7)
                .with_max_iterations(150);
            cfg.optimizer = kind;
            let outcome = Rasengan::new(cfg).solve(&j1()).unwrap();
            assert!(outcome.best.feasible, "{kind:?} produced infeasible best");
            assert!(outcome.arg < 1.0, "{kind:?} stalled at ARG {}", outcome.arg);
        }
    }

    #[test]
    fn warm_start_transfers_parameters() {
        use rasengan_problems::registry::cases;
        // Train on one F2 case, warm-start a sibling case of the same
        // shape; the transferred run must converge at least as well
        // within a small budget.
        let siblings = cases(BenchmarkId::parse("F2").unwrap(), 2, 99);
        let teacher = Rasengan::new(
            RasenganConfig::default()
                .with_seed(1)
                .with_max_iterations(120),
        )
        .solve(&siblings[0])
        .unwrap();
        let cold = Rasengan::new(
            RasenganConfig::default()
                .with_seed(1)
                .with_max_iterations(15),
        )
        .solve(&siblings[1])
        .unwrap();
        let warm = Rasengan::new(
            RasenganConfig::default()
                .with_seed(1)
                .with_max_iterations(15)
                .with_initial_times(teacher.trained_times.clone()),
        )
        .solve(&siblings[1])
        .unwrap();
        assert!(warm.best.feasible);
        // Not strictly guaranteed per-instance, but the transferred
        // start must at least produce a valid competitive run.
        assert!(
            warm.arg <= cold.arg + 0.5,
            "warm {} vs cold {}",
            warm.arg,
            cold.arg
        );
    }

    #[test]
    fn maximization_problems_solve() {
        use rasengan_problems::portfolio::Portfolio;
        let p = Portfolio::generate(2, 3, 1, 4).into_problem();
        let outcome = Rasengan::new(
            RasenganConfig::default()
                .with_seed(8)
                .with_max_iterations(120),
        )
        .solve(&p)
        .unwrap();
        let (_, e_opt) = rasengan_problems::optimum(&p);
        assert!(outcome.best.feasible);
        assert!(
            (outcome.best.value - e_opt).abs() < 1e-9,
            "max-sense best {} vs optimum {e_opt}",
            outcome.best.value
        );
    }

    #[test]
    fn solve_prepared_matches_solve_bitwise() {
        // The compile-cache entry point must not perturb a single RNG
        // stream: training from a reused Prepared is byte-identical to
        // the all-in-one solve for the same seed.
        let cfg = RasenganConfig::default()
            .with_seed(5)
            .with_shots(128)
            .with_max_iterations(10);
        let solver = Rasengan::new(cfg);
        let p = j1();
        let prepared = solver.prepare(&p).unwrap();
        let a = solver.solve(&p).unwrap();
        let b = solver.solve_prepared(&p, &prepared).unwrap();
        assert_eq!(a.distribution, b.distribution);
        assert_eq!(a.expectation, b.expectation);
        assert_eq!(a.trained_times, b.trained_times);
        assert_eq!(a.total_shots, b.total_shots);
        // The reused compile pays no prepare time on this run.
        assert_eq!(b.latency.stages.prepare_s, 0.0);
    }

    #[test]
    fn fused_solve_matches_unfused_bitwise() {
        // The compiled-program executor must leave every RNG stream and
        // every floating-point operation sequence untouched: a noisy
        // solve with fusion on is byte-identical to `--no-fuse`.
        let base = RasenganConfig::default()
            .with_seed(9)
            .with_noise(NoiseModel::ibm_like(1e-3, 5e-3, 0.01).with_amplitude_damping(2e-3))
            .with_shots(96)
            .with_max_iterations(8);
        let fused = Rasengan::new(base.clone()).solve(&j1()).unwrap();
        let unfused = Rasengan::new(base.without_fusion()).solve(&j1()).unwrap();
        assert_eq!(fused.distribution, unfused.distribution);
        assert_eq!(fused.expectation, unfused.expectation);
        assert_eq!(fused.trained_times, unfused.trained_times);
        assert_eq!(fused.total_shots, unfused.total_shots);
    }

    #[test]
    fn prepare_compiles_one_program_per_segment() {
        let prepared = Rasengan::new(RasenganConfig::default())
            .prepare(&j1())
            .unwrap();
        assert_eq!(prepared.programs.len(), prepared.plan.len());
        for (prog, range) in prepared.programs.iter().zip(&prepared.plan.segments) {
            assert_eq!(prog.ops.len(), range.len());
            for (ct, op) in prog.ops.iter().zip(&prepared.chain.ops[range.clone()]) {
                assert_eq!(&ct.transition, op.transition());
                assert_eq!(ct.support, op.support());
                assert_eq!(ct.cx_cost, op.cx_cost());
            }
        }
    }

    #[test]
    fn simplification_never_increases_depth() {
        let p = benchmark(BenchmarkId::parse("S2").unwrap());
        let with = Rasengan::new(RasenganConfig::default())
            .prepare(&p)
            .unwrap();
        let without = {
            let cfg = RasenganConfig {
                simplify: false,
                ..RasenganConfig::default()
            };
            Rasengan::new(cfg).prepare(&p).unwrap()
        };
        assert!(with.stats.simplify_cost.1 <= without.stats.simplify_cost.0);
    }
}
