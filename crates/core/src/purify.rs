//! Error mitigation by purification (paper §4.3, Fig. 8).
//!
//! Noise can carry measured samples outside the feasible space. The
//! purification layer between segments validates every measured basis
//! state against `C x = b`, removes the violating ones, and renormalizes
//! the surviving distribution before it seeds the next segment. The
//! check is one integer matrix-vector product per distinct outcome —
//! negligible against circuit execution (the paper measures 0.05 ms vs
//! ~700 ms per training iteration).

use rasengan_problems::Problem;
use rasengan_qsim::sparse::bits_from_label;
use rasengan_qsim::Label;
use std::collections::BTreeMap;

/// Result of purifying a measured distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct PurifyResult {
    /// The surviving (feasible) outcomes with their raw counts.
    pub feasible: BTreeMap<Label, usize>,
    /// Counts removed as constraint-violating.
    pub removed: usize,
    /// Fraction of the raw counts that was feasible — the
    /// in-constraints rate of this segment's raw output.
    pub in_constraints_rate: f64,
}

/// Validates measured counts against the problem constraints (Fig. 8).
///
/// # Example
///
/// ```
/// use rasengan_core::purify::purify_counts;
/// use rasengan_problems::{Objective, Problem, Sense};
/// use rasengan_math::IntMatrix;
/// use std::collections::BTreeMap;
///
/// let p = Problem::new(
///     "one-hot",
///     IntMatrix::from_rows(&[vec![1, 1]]),
///     vec![1],
///     Objective::linear(vec![0.0, 0.0]),
///     Sense::Minimize,
/// ).unwrap();
/// let counts = BTreeMap::from([(0b01u128, 60), (0b10, 20), (0b11, 20)]);
/// let purified = purify_counts(&p, &counts);
/// assert_eq!(purified.removed, 20);
/// assert!((purified.in_constraints_rate - 0.8).abs() < 1e-12);
/// ```
pub fn purify_counts(problem: &Problem, counts: &BTreeMap<Label, usize>) -> PurifyResult {
    let n = problem.n_vars();
    let mut feasible = BTreeMap::new();
    let mut kept = 0usize;
    let mut removed = 0usize;
    for (&label, &count) in counts {
        let bits = bits_from_label(label, n);
        if problem.is_feasible(&bits) {
            feasible.insert(label, count);
            kept += count;
        } else {
            removed += count;
        }
    }
    let total = kept + removed;
    PurifyResult {
        feasible,
        removed,
        in_constraints_rate: if total == 0 {
            0.0
        } else {
            kept as f64 / total as f64
        },
    }
}

/// Purifies a probability distribution (rather than integer counts):
/// drops infeasible mass, returning the renormalized feasible
/// distribution and the feasible fraction, or `None` if nothing
/// survives.
pub fn purify_distribution(
    problem: &Problem,
    dist: &BTreeMap<Label, f64>,
) -> Option<(BTreeMap<Label, f64>, f64)> {
    let n = problem.n_vars();
    let total: f64 = dist.values().sum();
    if total <= 0.0 {
        return None;
    }
    let feasible: BTreeMap<Label, f64> = dist
        .iter()
        .filter(|(&l, _)| problem.is_feasible(&bits_from_label(l, n)))
        .map(|(&l, &p)| (l, p))
        .collect();
    let kept: f64 = feasible.values().sum();
    if kept <= 0.0 {
        return None;
    }
    let rate = kept / total;
    Some((
        feasible.into_iter().map(|(l, p)| (l, p / kept)).collect(),
        rate,
    ))
}

/// Normalizes surviving counts into a probability distribution.
///
/// Returns `None` when nothing survived (the paper's failure mode under
/// heavy damping, Fig. 14b: "no valid state is available for
/// initializing the next segment").
pub fn normalized_distribution(counts: &BTreeMap<Label, usize>) -> Option<BTreeMap<Label, f64>> {
    let total: usize = counts.values().sum();
    if total == 0 {
        return None;
    }
    Some(
        counts
            .iter()
            .map(|(&l, &c)| (l, c as f64 / total as f64))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasengan_math::IntMatrix;
    use rasengan_problems::{Objective, Sense};

    fn one_hot(n: usize) -> Problem {
        Problem::new(
            "one-hot",
            IntMatrix::from_rows(&[vec![1; n]]),
            vec![1],
            Objective::linear(vec![0.0; n]),
            Sense::Minimize,
        )
        .unwrap()
    }

    #[test]
    fn figure8_worked_example() {
        // Fig. 8: 100 shots, 20 infeasible removed; |x₁⟩ with 60 counts
        // gets 60/(100−20) × 200 = 150 shots of the next 200-shot
        // segment.
        let p = one_hot(2);
        let counts = BTreeMap::from([(0b01u128, 60), (0b10, 20), (0b11, 15), (0b00, 5)]);
        let purified = purify_counts(&p, &counts);
        assert_eq!(purified.removed, 20);
        let dist = normalized_distribution(&purified.feasible).unwrap();
        let probs: Vec<f64> = dist.values().copied().collect();
        let shares = crate::segment::apportion_shots(&probs, 200);
        // Order: label 0b01 (count 60) then 0b10 (count 20).
        assert_eq!(shares, vec![150, 50]);
    }

    #[test]
    fn fully_feasible_input_passes_through() {
        let p = one_hot(3);
        let counts = BTreeMap::from([(0b001u128, 10), (0b010, 20), (0b100, 30)]);
        let purified = purify_counts(&p, &counts);
        assert_eq!(purified.removed, 0);
        assert_eq!(purified.in_constraints_rate, 1.0);
        assert_eq!(purified.feasible, counts);
    }

    #[test]
    fn fully_infeasible_input_yields_none() {
        let p = one_hot(2);
        let counts = BTreeMap::from([(0b00u128, 50), (0b11, 50)]);
        let purified = purify_counts(&p, &counts);
        assert_eq!(purified.in_constraints_rate, 0.0);
        assert!(normalized_distribution(&purified.feasible).is_none());
    }

    #[test]
    fn empty_counts_rate_is_zero() {
        let p = one_hot(2);
        let purified = purify_counts(&p, &BTreeMap::new());
        assert_eq!(purified.in_constraints_rate, 0.0);
        assert_eq!(purified.removed, 0);
    }

    #[test]
    fn distribution_sums_to_one() {
        let counts = BTreeMap::from([(1u128, 3), (2, 7)]);
        let dist = normalized_distribution(&counts).unwrap();
        let total: f64 = dist.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((dist[&2u128] - 0.7).abs() < 1e-12);
    }
}
