//! Transition-chain construction, Hamiltonian pruning, and early stop
//! (paper §4.1, Fig. 6).
//!
//! Theorem 1 bounds the chain at `m` rounds of the `m` transition
//! Hamiltonians (totally unimodular constraints; `m²` operators), or
//! `m²` rounds in the general case. Many of those operators expand
//! nothing: pruning simulates the reachable feasible set classically and
//! drops any operator that adds no new basis state, stopping the whole
//! chain once `m` consecutive operators are dry (Fig. 6b's early stop).

use crate::hamiltonian::TransitionHamiltonian;
use rasengan_qsim::Label;
use std::collections::HashSet;

/// Configuration of the chain builder.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainConfig {
    /// Rounds of the basis to schedule. `None` = Theorem 1 default
    /// (`m` rounds, the TU bound; all benchmark domains are TU).
    pub max_rounds: Option<usize>,
    /// Drop operators that expand nothing (opt 2 of the ablation).
    pub prune: bool,
    /// Stop after `m` consecutive dry operators (Fig. 6b).
    pub early_stop: bool,
    /// Cap on the tracked reachable set, mirroring the finite shot
    /// budget used to detect redundancy on hardware. Scheduling stops
    /// when the cap is hit (see [`Chain::support_capped`]).
    pub support_cap: usize,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            max_rounds: None,
            prune: true,
            early_stop: true,
            support_cap: 1 << 16,
        }
    }
}

/// A scheduled sequence of transition Hamiltonians.
#[derive(Clone, Debug)]
pub struct Chain {
    /// The kept operators in execution order.
    pub ops: Vec<TransitionHamiltonian>,
    /// Chain length before pruning (`rounds × m`).
    pub raw_len: usize,
    /// Number of operators dropped by pruning.
    pub pruned: usize,
    /// Whether early stop fired before the scheduled end.
    pub early_stopped: bool,
    /// Whether the reachable-set tracker hit `support_cap` (chain
    /// scheduling stops there: redundancy can no longer be detected and
    /// the measured distribution is bounded by the shot budget anyway).
    pub support_capped: bool,
    /// Number of reachable basis states discovered while building
    /// (equals the feasible-set size when under `support_cap`).
    pub reached_states: usize,
}

impl Chain {
    /// Total CX cost of the whole chain under the `34k` model.
    pub fn total_cx_cost(&self) -> usize {
        self.ops.iter().map(|op| op.cx_cost()).sum()
    }

    /// Number of tunable evolution-time parameters (one per operator).
    pub fn n_params(&self) -> usize {
        self.ops.len()
    }
}

/// Builds the transition chain from a (possibly simplified) basis and
/// the seed feasible state.
///
/// # Panics
///
/// Panics if `basis` is empty (a fully-determined system has exactly one
/// feasible solution and needs no quantum search).
pub fn build_chain(basis: &[Vec<i64>], seed: Label, cfg: &ChainConfig) -> Chain {
    assert!(!basis.is_empty(), "empty homogeneous basis");
    let m = basis.len();
    let rounds = cfg.max_rounds.unwrap_or(m);
    let hams: Vec<TransitionHamiltonian> = basis
        .iter()
        .map(|u| TransitionHamiltonian::new(u.clone()))
        .collect();

    let mut reached: HashSet<Label> = HashSet::from([seed]);
    let mut ops = Vec::new();
    let mut pruned = 0usize;
    let mut dry = 0usize;
    let mut early_stopped = false;
    let mut support_capped = false;
    let mut raw_len = 0usize;

    'rounds: for _ in 0..rounds {
        for h in &hams {
            if reached.len() >= cfg.support_cap {
                // Redundancy detection saturated: keeping further
                // operators would blow up the parameter count with no
                // way to tell useful ones apart (a ~2000-parameter
                // chain is untrainable anyway). Stop scheduling; the
                // shot-bounded execution explores what it can.
                support_capped = true;
                raw_len = rounds * m;
                break 'rounds;
            }
            raw_len += 1;
            let expansion = h.expansion(&reached);
            if !expansion.is_empty() {
                reached.extend(expansion);
                ops.push(h.clone());
                dry = 0;
            } else {
                dry += 1;
                if cfg.prune {
                    pruned += 1;
                } else {
                    ops.push(h.clone());
                }
                if cfg.early_stop && dry >= m {
                    early_stopped = true;
                    // The raw schedule still counts the remaining slots.
                    raw_len = rounds * m;
                    break 'rounds;
                }
            }
        }
    }

    Chain {
        ops,
        raw_len,
        pruned,
        early_stopped,
        support_capped,
        reached_states: reached.len(),
    }
}

/// Number of basis states reachable from `seed` by ±basis moves with
/// binary intermediates (capped BFS). Used to verify that a simplified
/// basis has not disconnected the single-step transition graph.
pub fn reachable_count(basis: &[Vec<i64>], seed: Label, cap: usize) -> usize {
    let hams: Vec<TransitionHamiltonian> = basis
        .iter()
        .map(|u| TransitionHamiltonian::new(u.clone()))
        .collect();
    let mut reached: HashSet<Label> = HashSet::from([seed]);
    let mut frontier = vec![seed];
    while let Some(x) = frontier.pop() {
        if reached.len() >= cap {
            break;
        }
        for h in &hams {
            if let Some(p) = h.partner(x) {
                if reached.insert(p) {
                    frontier.push(p);
                }
            }
        }
    }
    reached.len()
}

/// One point of the Fig. 17 coverage analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoveragePoint {
    /// Position in the chain, as a fraction of the total chain length.
    pub chain_fraction: f64,
    /// Fraction of the feasible space covered after this operator.
    pub covered_fraction: f64,
}

/// Computes the feasible-space coverage curve of a chain: how much of
/// the `total_feasible`-sized space the reachable set spans after each
/// operator (paper Fig. 17, pruned vs unpruned).
pub fn coverage_curve(
    basis: &[Vec<i64>],
    seed: Label,
    total_feasible: usize,
    cfg: &ChainConfig,
) -> Vec<CoveragePoint> {
    let chain = build_chain(basis, seed, cfg);
    let mut reached: HashSet<Label> = HashSet::from([seed]);
    let n_ops = chain.ops.len().max(1);
    let mut out = Vec::with_capacity(chain.ops.len());
    for (idx, op) in chain.ops.iter().enumerate() {
        let expansion = op.expansion(&reached);
        reached.extend(expansion);
        out.push(CoveragePoint {
            chain_fraction: (idx + 1) as f64 / n_ops as f64,
            covered_fraction: reached.len() as f64 / total_feasible as f64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasengan_qsim::sparse::label_from_bits;

    /// The paper's running example: 3 basis vectors, 5 feasible states.
    fn paper_basis() -> Vec<Vec<i64>> {
        vec![
            vec![-1, 1, 0, 0, 0],
            vec![-1, 0, -1, 1, 0],
            vec![1, 0, 1, 0, 1],
        ]
    }

    fn seed() -> Label {
        label_from_bits(&[0, 0, 0, 1, 0])
    }

    #[test]
    fn chain_covers_all_five_feasible_states() {
        let chain = build_chain(&paper_basis(), seed(), &ChainConfig::default());
        assert_eq!(
            chain.reached_states, 5,
            "chain must reach the full feasible set"
        );
    }

    #[test]
    fn pruning_shortens_the_chain() {
        let pruned = build_chain(&paper_basis(), seed(), &ChainConfig::default());
        let unpruned = build_chain(
            &paper_basis(),
            seed(),
            &ChainConfig {
                prune: false,
                early_stop: false,
                ..ChainConfig::default()
            },
        );
        assert!(pruned.ops.len() < unpruned.ops.len());
        assert_eq!(unpruned.ops.len(), 9, "m² = 9 operators without pruning");
        assert_eq!(pruned.reached_states, unpruned.reached_states);
    }

    #[test]
    fn figure6_first_operator_is_redundant() {
        // u₁ = [-1,1,0,0,0] cannot act on x_p = [0,0,0,1,0] (needs bit 0
        // or bit 1 set) — the τ₁ redundancy shown in Fig. 6a.
        let chain = build_chain(&paper_basis(), seed(), &ChainConfig::default());
        assert!(chain.pruned >= 1);
        assert_ne!(chain.ops[0].u(), &[-1, 1, 0, 0, 0][..]);
    }

    #[test]
    fn early_stop_fires_after_m_dry_operators() {
        // Schedule extra rounds: once coverage is complete, the first m
        // consecutive dry operators trigger the Fig. 6b early stop.
        let cfg = ChainConfig {
            max_rounds: Some(6),
            ..ChainConfig::default()
        };
        let chain = build_chain(&paper_basis(), seed(), &cfg);
        assert!(
            chain.early_stopped,
            "extra rounds past full coverage must go dry"
        );
        // One operator can expand several states at once (u₁ pairs both
        // x₂↔x₄ and x₃↔x₅), so three kept operators cover all five states.
        assert!(chain.ops.len() >= 3);
        assert_eq!(chain.reached_states, 5);
    }

    #[test]
    fn early_stop_disabled_runs_all_rounds() {
        let cfg = ChainConfig {
            early_stop: false,
            prune: false,
            ..ChainConfig::default()
        };
        let chain = build_chain(&paper_basis(), seed(), &cfg);
        assert_eq!(chain.raw_len, 9);
        assert!(!chain.early_stopped);
    }

    #[test]
    fn max_rounds_override() {
        let cfg = ChainConfig {
            max_rounds: Some(1),
            prune: false,
            early_stop: false,
            ..ChainConfig::default()
        };
        let chain = build_chain(&paper_basis(), seed(), &cfg);
        assert_eq!(chain.raw_len, 3);
    }

    #[test]
    fn cost_and_params_track_ops() {
        let chain = build_chain(&paper_basis(), seed(), &ChainConfig::default());
        assert_eq!(chain.n_params(), chain.ops.len());
        let expect: usize = chain.ops.iter().map(|o| 34 * o.weight()).sum();
        assert_eq!(chain.total_cx_cost(), expect);
    }

    #[test]
    fn coverage_curve_reaches_one() {
        let curve = coverage_curve(&paper_basis(), seed(), 5, &ChainConfig::default());
        let last = curve.last().unwrap();
        assert!((last.covered_fraction - 1.0).abs() < 1e-12);
        assert!((last.chain_fraction - 1.0).abs() < 1e-12);
        // Monotone coverage.
        for w in curve.windows(2) {
            assert!(w[1].covered_fraction >= w[0].covered_fraction);
        }
    }

    #[test]
    fn pruned_curve_rises_faster_than_unpruned() {
        let pruned = coverage_curve(&paper_basis(), seed(), 5, &ChainConfig::default());
        let unpruned = coverage_curve(
            &paper_basis(),
            seed(),
            5,
            &ChainConfig {
                prune: false,
                early_stop: false,
                ..ChainConfig::default()
            },
        );
        // Position (in ops) where full coverage is first reached.
        let full_at = |curve: &[CoveragePoint]| {
            curve
                .iter()
                .position(|p| p.covered_fraction >= 1.0)
                .map(|i| i + 1)
                .unwrap_or(usize::MAX)
        };
        assert!(full_at(&pruned) <= full_at(&unpruned));
    }

    #[test]
    fn support_cap_stops_scheduling() {
        let cfg = ChainConfig {
            support_cap: 2,
            ..ChainConfig::default()
        };
        let chain = build_chain(&paper_basis(), seed(), &cfg);
        assert!(chain.support_capped, "cap must be reported");
        // Scheduling stops at the cap: the chain stays short rather
        // than ballooning with undetectable-redundancy operators.
        assert!(!chain.ops.is_empty());
        assert!(chain.ops.len() < 9);
        assert!(chain.reached_states >= 2);
    }
}
