//! Segmented execution (paper §4.2, Fig. 7).
//!
//! The transition chain is partitioned into segments small enough for
//! NISQ depth budgets. Each segment is executed as its own circuit: the
//! previous segment's output distribution decides how the next segment's
//! shot budget is split across input basis states (probability-
//! preserving hand-off), and a column of X gates re-prepares each input
//! state.

use crate::hamiltonian::TransitionHamiltonian;
use rasengan_qsim::{SparseState, Transition};
use std::ops::Range;

/// One transition operator compiled for repeated execution: the mask
/// form plus the per-shot metadata (`support`, CX cost) that the noisy
/// trajectory loop previously recomputed — and re-allocated — on every
/// shot.
#[derive(Clone, Debug)]
pub struct CompiledTransition {
    /// Mask-form transition applied to the sparse state.
    pub transition: Transition,
    /// Sorted qubits the operator touches (noise attachment points).
    pub support: Vec<usize>,
    /// CX cost of one hardware execution (`34k` model) — the number of
    /// depolarizing noise rolls attached after the operator.
    pub cx_cost: usize,
}

/// A segment compiled once per [`SegmentPlan`] entry and executed across
/// all shots and trajectories: the solver's analogue of
/// `rasengan_qsim::exec::Program` for transition chains. Evolution
/// angles stay per-call parameters (they change across segments'
/// repeated applications), but masks, supports, and costs are fixed.
#[derive(Clone, Debug)]
pub struct SegmentProgram {
    /// Compiled operators, in chain order.
    pub ops: Vec<CompiledTransition>,
}

impl SegmentProgram {
    /// Compiles the operators of one segment.
    pub fn compile(ops: &[TransitionHamiltonian]) -> Self {
        SegmentProgram {
            ops: ops
                .iter()
                .map(|h| CompiledTransition {
                    transition: h.transition().clone(),
                    support: h.support(),
                    cx_cost: h.cx_cost(),
                })
                .collect(),
        }
    }

    /// Applies the whole segment noise-free with a shared angle `t`,
    /// precomputing the mixing constants once for all operators.
    pub fn apply_all(&self, state: &mut SparseState, t: f64) {
        let cos = rasengan_qsim::Complex::from(t.cos());
        let misin = rasengan_qsim::Complex::new(0.0, -t.sin());
        for op in &self.ops {
            state.apply_transition_with(&op.transition, cos, misin);
        }
    }
}

/// How the chain is split into segments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentPlan {
    /// Operator index ranges, in execution order, covering the chain.
    pub segments: Vec<Range<usize>>,
}

impl SegmentPlan {
    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

/// Splits a chain into segments whose per-segment CX cost stays within
/// `depth_budget_cx` (at least one operator per segment; a single
/// operator above budget gets its own segment — the paper's "minimal
/// execution circuit depth corresponds to a single transition
/// Hamiltonian").
///
/// # Example
///
/// ```
/// use rasengan_core::hamiltonian::TransitionHamiltonian;
/// use rasengan_core::segment::plan_segments;
///
/// let ops: Vec<_> = [vec![1, -1, 0], vec![0, 1, -1], vec![1, 0, -1]]
///     .into_iter()
///     .map(TransitionHamiltonian::new)
///     .collect();
/// // Each op costs 68 CX; budget 70 → one op per segment.
/// let plan = plan_segments(&ops, 70);
/// assert_eq!(plan.len(), 3);
/// ```
pub fn plan_segments(ops: &[TransitionHamiltonian], depth_budget_cx: usize) -> SegmentPlan {
    let mut segments = Vec::new();
    let mut start = 0usize;
    let mut cost = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let c = op.cx_cost();
        if i > start && cost + c > depth_budget_cx {
            segments.push(start..i);
            start = i;
            cost = 0;
        }
        cost += c;
    }
    if start < ops.len() {
        segments.push(start..ops.len());
    }
    SegmentPlan { segments }
}

/// A whole-chain plan (segmentation disabled; opt-3 ablation).
#[allow(clippy::single_range_in_vec_init)] // a one-range plan is the point
pub fn single_segment(ops: &[TransitionHamiltonian]) -> SegmentPlan {
    SegmentPlan {
        segments: if ops.is_empty() {
            Vec::new()
        } else {
            vec![0..ops.len()]
        },
    }
}

/// Splits `total` shots across `probs` proportionally using
/// largest-remainder apportionment, so the shares always sum to `total`
/// and every state with nonzero probability that rounds to zero still
/// competes for remainder shots (Fig. 7's 70/30 example).
///
/// # Panics
///
/// Panics if `probs` is empty or sums to zero while `total > 0`.
///
/// # Example
///
/// ```
/// use rasengan_core::segment::apportion_shots;
///
/// assert_eq!(apportion_shots(&[0.7, 0.3], 100), vec![70, 30]);
/// assert_eq!(apportion_shots(&[0.6, 0.25, 0.15], 200), vec![120, 50, 30]);
/// ```
pub fn apportion_shots(probs: &[f64], total: usize) -> Vec<usize> {
    assert!(!probs.is_empty(), "cannot apportion to zero states");
    let sum: f64 = probs.iter().sum();
    if total == 0 {
        return vec![0; probs.len()];
    }
    assert!(sum > 0.0, "probabilities sum to zero");

    let quotas: Vec<f64> = probs.iter().map(|p| p / sum * total as f64).collect();
    let mut shares: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = shares.iter().sum();
    let mut remainder: Vec<(usize, f64)> = quotas
        .iter()
        .enumerate()
        .map(|(i, q)| (i, q - q.floor()))
        .collect();
    remainder.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for (i, _) in remainder.into_iter().take(total - assigned) {
        shares[i] += 1;
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(weights: &[usize]) -> Vec<TransitionHamiltonian> {
        weights
            .iter()
            .map(|&k| {
                let mut u = vec![0i64; 8];
                for slot in u.iter_mut().take(k) {
                    *slot = 1;
                }
                TransitionHamiltonian::new(u)
            })
            .collect()
    }

    #[test]
    fn budget_groups_ops() {
        // Costs: 34, 34, 34 → budget 70 fits two per segment.
        let plan = plan_segments(&ops(&[1, 1, 1]), 70);
        assert_eq!(plan.segments, vec![0..2, 2..3]);
    }

    #[test]
    fn oversized_op_gets_own_segment() {
        // Cost 170 over budget 100: still scheduled alone.
        let plan = plan_segments(&ops(&[5, 1]), 100);
        assert_eq!(plan.segments, vec![0..1, 1..2]);
    }

    #[test]
    fn single_segment_covers_everything() {
        let plan = single_segment(&ops(&[1, 2, 3]));
        assert_eq!(plan.segments, vec![0..3]);
        assert!(single_segment(&[]).is_empty());
    }

    #[test]
    fn minimal_budget_gives_one_op_per_segment() {
        let plan = plan_segments(&ops(&[2, 2, 2, 2]), 1);
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn apportionment_sums_to_total() {
        for total in [1usize, 7, 100, 1024] {
            let shares = apportion_shots(&[0.5, 0.3, 0.2], total);
            assert_eq!(shares.iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn apportionment_matches_figure7() {
        // 70% |x₁⟩, 30% |x₂⟩, 100 shots → 70 and 30.
        assert_eq!(apportion_shots(&[0.7, 0.3], 100), vec![70, 30]);
    }

    #[test]
    fn apportionment_handles_tiny_probabilities() {
        let shares = apportion_shots(&[0.999, 0.001], 10);
        assert_eq!(shares.iter().sum::<usize>(), 10);
        assert_eq!(shares[0], 10);
    }

    #[test]
    fn apportionment_unnormalized_input() {
        // Raw counts work as weights too.
        assert_eq!(apportion_shots(&[60.0, 20.0], 200), vec![150, 50]);
    }

    #[test]
    fn zero_total_is_all_zero() {
        assert_eq!(apportion_shots(&[0.5, 0.5], 0), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "zero states")]
    fn empty_probs_panic() {
        apportion_shots(&[], 10);
    }
}
