//! Compact versioned binary codecs for [`Prepared`] and [`Outcome`] —
//! the payloads of the on-disk warm-state tier (`rasengan-serve`'s
//! `persist` module).
//!
//! # Format discipline
//!
//! * **Versioned.** Each codec has its own format number
//!   ([`PREPARED_FORMAT`], [`OUTCOME_FORMAT`]), carried in the storage
//!   record header, bumped on any byte-layout change. Readers accept
//!   exactly their own version; anything else is quarantined and
//!   recomputed — there is no migration path, because every record is
//!   just a cache of deterministic computation.
//! * **Canonical.** One value, one byte sequence. `f64`s are stored by
//!   bit pattern, so `encode(decode(bytes)) == bytes` and a decoded
//!   [`Outcome`] re-serializes to the *byte-identical* wire `result`
//!   section the original solve produced.
//! * **Validated.** Decoders are total: corrupt input yields
//!   [`WireError`], never a panic and never an out-of-bounds read. On
//!   top of the structural checks, [`decode_prepared`] re-validates the
//!   semantic invariants [`TransitionHamiltonian::new`] would otherwise
//!   assert (ternary, nonzero, ≤128 entries) and checks every segment
//!   range against the chain, so a record that passes its checksum but
//!   carries nonsense still degrades to a structured error.
//! * **Compact.** A `Prepared` record stores only the *sources* of the
//!   compiled artifacts — basis vectors, kept-operator vectors, plan
//!   ranges — and recompiles the per-segment programs on decode.
//!   Compilation from those sources is deterministic and cheap (mask
//!   extraction, no search); the expensive part of `prepare` is the
//!   reachability analysis that *chose* the operators, which the record
//!   skips entirely.
//!
//! A solve's span tree (`Outcome::trace`) is deliberately **not**
//! persisted: traces are observability data, cheap to regenerate and
//! already excluded from the result cache key's untraced entries.
//! [`encode_outcome`] ignores the field; [`decode_outcome`] restores
//! `trace: None`.

use crate::hamiltonian::TransitionHamiltonian;
use crate::latency::{Latency, StageTimes};
use crate::metrics::Solution;
use crate::prune::Chain;
use crate::resilience::{BudgetKind, DegradeFallback, ResilienceEvent, ResilienceReport, Stage};
use crate::segment::{SegmentPlan, SegmentProgram};
use crate::solver::{ChainStats, Outcome, Prepared};
use rasengan_qsim::fault::FaultKind;
use rasengan_qsim::wire::{WireError, WireReader, WireWriter};
use std::collections::BTreeMap;

/// Format version of [`encode_prepared`] payloads.
pub const PREPARED_FORMAT: u16 = 1;

/// Format version of [`encode_outcome`] payloads.
pub const OUTCOME_FORMAT: u16 = 1;

fn encode_i64_vec(w: &mut WireWriter, v: &[i64]) {
    w.usize(v.len());
    for &x in v {
        w.i64(x);
    }
}

fn decode_i64_vec(r: &mut WireReader) -> Result<Vec<i64>, WireError> {
    let n = r.len(8)?;
    (0..n).map(|_| r.i64()).collect()
}

fn encode_f64_vec(w: &mut WireWriter, v: &[f64]) {
    w.usize(v.len());
    for &x in v {
        w.f64(x);
    }
}

fn decode_f64_vec(r: &mut WireReader) -> Result<Vec<f64>, WireError> {
    let n = r.len(8)?;
    (0..n).map(|_| r.f64()).collect()
}

/// A basis/operator vector must satisfy what
/// [`TransitionHamiltonian::new`] asserts — checked here so corrupt
/// records error instead of panicking the recovery scan.
fn validate_ternary(u: &[i64]) -> Result<(), WireError> {
    if u.len() > 128 {
        return Err(WireError::Invalid("vector longer than 128"));
    }
    if !u.iter().all(|&x| (-1..=1).contains(&x)) {
        return Err(WireError::Invalid("non-ternary vector entry"));
    }
    if u.iter().all(|&x| x == 0) {
        return Err(WireError::Invalid("all-zero transition vector"));
    }
    Ok(())
}

fn encode_chain_stats(w: &mut WireWriter, s: &ChainStats) {
    w.usize(s.m_basis);
    w.usize(s.raw_ops);
    w.usize(s.kept_ops);
    w.usize(s.n_segments);
    w.usize(s.max_segment_cx_depth);
    w.usize(s.total_cx_depth);
    w.usize(s.n_params);
    w.usize(s.simplify_cost.0);
    w.usize(s.simplify_cost.1);
}

fn decode_chain_stats(r: &mut WireReader) -> Result<ChainStats, WireError> {
    Ok(ChainStats {
        m_basis: r.usize()?,
        raw_ops: r.usize()?,
        kept_ops: r.usize()?,
        n_segments: r.usize()?,
        max_segment_cx_depth: r.usize()?,
        total_cx_depth: r.usize()?,
        n_params: r.usize()?,
        simplify_cost: (r.usize()?, r.usize()?),
    })
}

/// Encodes a [`Prepared`] compile artifact. The compiled
/// [`SegmentProgram`]s are *not* stored: they are a pure function of
/// the kept operators and the plan, rebuilt on decode.
pub fn encode_prepared(p: &Prepared) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.usize(p.basis.len());
    for u in &p.basis {
        encode_i64_vec(&mut w, u);
    }
    w.usize(p.chain.ops.len());
    for op in &p.chain.ops {
        encode_i64_vec(&mut w, op.u());
    }
    w.usize(p.chain.raw_len);
    w.usize(p.chain.pruned);
    w.bool(p.chain.early_stopped);
    w.bool(p.chain.support_capped);
    w.usize(p.chain.reached_states);
    w.usize(p.plan.segments.len());
    for range in &p.plan.segments {
        w.usize(range.start);
        w.usize(range.end);
    }
    w.u128(p.seed_label);
    encode_chain_stats(&mut w, &p.stats);
    w.into_bytes()
}

/// Decodes a [`Prepared`] record, validating every invariant the
/// in-process pipeline would otherwise assert, and deterministically
/// recompiling the per-segment programs exactly as
/// [`Rasengan::prepare`](crate::solver::Rasengan::prepare) does — so a
/// `solve_prepared` from a decoded artifact is bit-identical to one
/// from the original.
pub fn decode_prepared(bytes: &[u8]) -> Result<Prepared, WireError> {
    let mut r = WireReader::new(bytes);
    let n_basis = r.len(8)?;
    let mut basis = Vec::with_capacity(n_basis);
    for _ in 0..n_basis {
        let u = decode_i64_vec(&mut r)?;
        validate_ternary(&u)?;
        basis.push(u);
    }
    let n_ops = r.len(8)?;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let u = decode_i64_vec(&mut r)?;
        validate_ternary(&u)?;
        ops.push(TransitionHamiltonian::new(u));
    }
    let chain = Chain {
        raw_len: r.usize()?,
        pruned: r.usize()?,
        early_stopped: r.bool()?,
        support_capped: r.bool()?,
        reached_states: r.usize()?,
        ops,
    };
    let n_segments = r.len(16)?;
    let mut segments = Vec::with_capacity(n_segments);
    let mut covered = 0usize;
    for _ in 0..n_segments {
        let start = r.usize()?;
        let end = r.usize()?;
        // Segments must tile the chain in order — the executor's
        // hand-off protocol depends on it.
        if start != covered || end <= start || end > chain.ops.len() {
            return Err(WireError::Invalid("segment range out of order"));
        }
        covered = end;
        segments.push(start..end);
    }
    if covered != chain.ops.len() {
        return Err(WireError::Invalid("segments do not cover the chain"));
    }
    let plan = SegmentPlan { segments };
    let seed_label = r.u128()?;
    let stats = decode_chain_stats(&mut r)?;
    r.finish()?;
    let programs = plan
        .segments
        .iter()
        .map(|range| SegmentProgram::compile(&chain.ops[range.clone()]))
        .collect();
    Ok(Prepared {
        basis,
        chain,
        plan,
        programs,
        seed_label,
        stats,
    })
}

mod event_tag {
    pub const FAULT_INJECTED: u8 = 0;
    pub const RETRY: u8 = 1;
    pub const DEGRADED: u8 = 2;
    pub const BUDGET_EXHAUSTED: u8 = 3;
    pub const PARAMS_SANITIZED: u8 = 4;
}

fn fault_kind_tag(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::ShotBatchLoss => 0,
        FaultKind::ReadoutBurst => 1,
        FaultKind::CalibrationDrift => 2,
        FaultKind::FeasibilityKill => 3,
        FaultKind::ParamCorruption => 4,
    }
}

fn fault_kind_from(tag: u8) -> Result<FaultKind, WireError> {
    Ok(match tag {
        0 => FaultKind::ShotBatchLoss,
        1 => FaultKind::ReadoutBurst,
        2 => FaultKind::CalibrationDrift,
        3 => FaultKind::FeasibilityKill,
        4 => FaultKind::ParamCorruption,
        _ => return Err(WireError::Invalid("unknown fault kind")),
    })
}

fn stage_tag(stage: Stage) -> u8 {
    match stage {
        Stage::Prepare => 0,
        Stage::Train => 1,
        Stage::Execute => 2,
    }
}

fn stage_from(tag: u8) -> Result<Stage, WireError> {
    Ok(match tag {
        0 => Stage::Prepare,
        1 => Stage::Train,
        2 => Stage::Execute,
        _ => return Err(WireError::Invalid("unknown stage")),
    })
}

fn encode_event(w: &mut WireWriter, event: &ResilienceEvent) {
    match event {
        ResilienceEvent::FaultInjected {
            segment,
            attempt,
            kind,
        } => {
            w.u8(event_tag::FAULT_INJECTED);
            w.usize(*segment);
            w.usize(*attempt);
            w.u8(fault_kind_tag(*kind));
        }
        ResilienceEvent::Retry {
            segment,
            attempt,
            shots,
            recovered,
        } => {
            w.u8(event_tag::RETRY);
            w.usize(*segment);
            w.usize(*attempt);
            w.usize(*shots);
            w.bool(*recovered);
        }
        ResilienceEvent::Degraded {
            segment,
            attempts,
            fallback,
        } => {
            w.u8(event_tag::DEGRADED);
            w.usize(*segment);
            w.usize(*attempts);
            w.u8(match fallback {
                DegradeFallback::PreviousSegment => 0,
                DegradeFallback::Seed => 1,
            });
        }
        ResilienceEvent::BudgetExhausted { stage, kind } => {
            w.u8(event_tag::BUDGET_EXHAUSTED);
            w.u8(stage_tag(*stage));
            match kind {
                BudgetKind::WallClock { limit_s } => {
                    w.u8(0);
                    w.f64(*limit_s);
                }
                BudgetKind::Shots { limit } => {
                    w.u8(1);
                    w.usize(*limit);
                }
            }
        }
        ResilienceEvent::ParamsSanitized { repaired } => {
            w.u8(event_tag::PARAMS_SANITIZED);
            w.usize(*repaired);
        }
    }
}

fn decode_event(r: &mut WireReader) -> Result<ResilienceEvent, WireError> {
    Ok(match r.u8()? {
        event_tag::FAULT_INJECTED => ResilienceEvent::FaultInjected {
            segment: r.usize()?,
            attempt: r.usize()?,
            kind: fault_kind_from(r.u8()?)?,
        },
        event_tag::RETRY => ResilienceEvent::Retry {
            segment: r.usize()?,
            attempt: r.usize()?,
            shots: r.usize()?,
            recovered: r.bool()?,
        },
        event_tag::DEGRADED => ResilienceEvent::Degraded {
            segment: r.usize()?,
            attempts: r.usize()?,
            fallback: match r.u8()? {
                0 => DegradeFallback::PreviousSegment,
                1 => DegradeFallback::Seed,
                _ => return Err(WireError::Invalid("unknown degrade fallback")),
            },
        },
        event_tag::BUDGET_EXHAUSTED => ResilienceEvent::BudgetExhausted {
            stage: stage_from(r.u8()?)?,
            kind: match r.u8()? {
                0 => BudgetKind::WallClock { limit_s: r.f64()? },
                1 => BudgetKind::Shots { limit: r.usize()? },
                _ => return Err(WireError::Invalid("unknown budget kind")),
            },
        },
        event_tag::PARAMS_SANITIZED => ResilienceEvent::ParamsSanitized {
            repaired: r.usize()?,
        },
        _ => return Err(WireError::Invalid("unknown resilience event")),
    })
}

/// Encodes a finished [`Outcome`]. The span tree (`trace`) is not
/// persisted — see the module docs.
pub fn encode_outcome(o: &Outcome) -> Vec<u8> {
    let mut w = WireWriter::new();
    encode_i64_vec(&mut w, &o.best.bits);
    w.f64(o.best.value);
    w.bool(o.best.feasible);
    w.f64(o.expectation);
    w.f64(o.arg);
    w.f64(o.raw_in_constraints_rate);
    w.f64(o.in_constraints_rate);
    w.usize(o.distribution.len());
    for (&label, &p) in &o.distribution {
        w.u128(label);
        w.f64(p);
    }
    encode_chain_stats(&mut w, &o.stats);
    w.f64(o.latency.quantum_s);
    w.f64(o.latency.classical_s);
    w.f64(o.latency.stages.prepare_s);
    w.f64(o.latency.stages.train_s);
    w.f64(o.latency.stages.execute_s);
    w.f64(o.latency.stages.retry_s);
    w.f64(o.latency.stages.queue_s);
    w.bool(o.latency.stages.cache_hit);
    encode_f64_vec(&mut w, &o.history);
    w.usize(o.evaluations);
    w.usize(o.total_shots);
    encode_f64_vec(&mut w, &o.trained_times);
    w.usize(o.resilience.events.len());
    for event in &o.resilience.events {
        encode_event(&mut w, event);
    }
    w.into_bytes()
}

/// Decodes an [`Outcome`] record (`trace` restored as `None`). A
/// decoded outcome serializes to the byte-identical wire `result`
/// section the original produced — that is the disk tier's correctness
/// contract, asserted end-to-end by the corruption-matrix tests.
pub fn decode_outcome(bytes: &[u8]) -> Result<Outcome, WireError> {
    let mut r = WireReader::new(bytes);
    let bits = decode_i64_vec(&mut r)?;
    let best = Solution {
        bits,
        value: r.f64()?,
        feasible: r.bool()?,
    };
    let expectation = r.f64()?;
    let arg = r.f64()?;
    let raw_in_constraints_rate = r.f64()?;
    let in_constraints_rate = r.f64()?;
    let n_dist = r.len(24)?;
    let mut distribution = BTreeMap::new();
    for _ in 0..n_dist {
        let label = r.u128()?;
        let p = r.f64()?;
        // BTreeMap iteration is the canonical order; duplicates would
        // make re-encoding diverge from the original bytes.
        if distribution.insert(label, p).is_some() {
            return Err(WireError::Invalid("duplicate distribution label"));
        }
    }
    let stats = decode_chain_stats(&mut r)?;
    let latency = Latency {
        quantum_s: r.f64()?,
        classical_s: r.f64()?,
        stages: StageTimes {
            prepare_s: r.f64()?,
            train_s: r.f64()?,
            execute_s: r.f64()?,
            retry_s: r.f64()?,
            queue_s: r.f64()?,
            cache_hit: r.bool()?,
        },
    };
    let history = decode_f64_vec(&mut r)?;
    let evaluations = r.usize()?;
    let total_shots = r.usize()?;
    let trained_times = decode_f64_vec(&mut r)?;
    let n_events = r.len(2)?;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        events.push(decode_event(&mut r)?);
    }
    r.finish()?;
    Ok(Outcome {
        best,
        expectation,
        arg,
        raw_in_constraints_rate,
        in_constraints_rate,
        distribution,
        stats,
        latency,
        history,
        evaluations,
        total_shots,
        trained_times,
        resilience: ResilienceReport { events },
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Rasengan, RasenganConfig};
    use rasengan_problems::registry::{benchmark, BenchmarkId};

    fn solved() -> (Outcome, Prepared) {
        let problem = benchmark(BenchmarkId::parse("F1").unwrap());
        let solver = Rasengan::new(
            RasenganConfig::default()
                .with_seed(11)
                .with_shots(128)
                .with_max_iterations(8),
        );
        let prepared = solver.prepare(&problem).unwrap();
        let outcome = solver.solve_prepared(&problem, &prepared).unwrap();
        (outcome, prepared)
    }

    #[test]
    fn outcome_round_trips_exactly() {
        let (outcome, _) = solved();
        let bytes = encode_outcome(&outcome);
        let decoded = decode_outcome(&bytes).unwrap();
        assert_eq!(decoded, outcome);
        // Canonical: re-encoding reproduces the bytes.
        assert_eq!(encode_outcome(&decoded), bytes);
    }

    #[test]
    fn outcome_with_resilience_events_round_trips() {
        let (mut outcome, _) = solved();
        outcome.resilience.events = vec![
            ResilienceEvent::FaultInjected {
                segment: 2,
                attempt: 0,
                kind: FaultKind::ReadoutBurst,
            },
            ResilienceEvent::Retry {
                segment: 2,
                attempt: 1,
                shots: 2048,
                recovered: true,
            },
            ResilienceEvent::Degraded {
                segment: 3,
                attempts: 3,
                fallback: DegradeFallback::Seed,
            },
            ResilienceEvent::BudgetExhausted {
                stage: Stage::Train,
                kind: BudgetKind::WallClock { limit_s: 2.5 },
            },
            ResilienceEvent::BudgetExhausted {
                stage: Stage::Execute,
                kind: BudgetKind::Shots { limit: 10_000 },
            },
            ResilienceEvent::ParamsSanitized { repaired: 4 },
        ];
        let decoded = decode_outcome(&encode_outcome(&outcome)).unwrap();
        assert_eq!(decoded.resilience, outcome.resilience);
    }

    #[test]
    fn trace_is_dropped_not_persisted() {
        let problem = benchmark(BenchmarkId::parse("F1").unwrap());
        let outcome = Rasengan::new(
            RasenganConfig::default()
                .with_shots(64)
                .with_max_iterations(3)
                .with_trace(true),
        )
        .solve(&problem)
        .unwrap();
        assert!(outcome.trace.is_some());
        let decoded = decode_outcome(&encode_outcome(&outcome)).unwrap();
        assert!(decoded.trace.is_none());
        // Everything except the trace survives.
        let mut untraced = outcome.clone();
        untraced.trace = None;
        assert_eq!(decoded, untraced);
    }

    #[test]
    fn prepared_round_trips_and_recompiles_programs() {
        let (_, prepared) = solved();
        let bytes = encode_prepared(&prepared);
        let decoded = decode_prepared(&bytes).unwrap();
        assert_eq!(decoded.basis, prepared.basis);
        assert_eq!(decoded.chain.ops, prepared.chain.ops);
        assert_eq!(decoded.chain.raw_len, prepared.chain.raw_len);
        assert_eq!(decoded.chain.pruned, prepared.chain.pruned);
        assert_eq!(decoded.plan, prepared.plan);
        assert_eq!(decoded.seed_label, prepared.seed_label);
        assert_eq!(decoded.stats, prepared.stats);
        assert_eq!(decoded.programs.len(), prepared.programs.len());
        for (a, b) in decoded.programs.iter().zip(&prepared.programs) {
            assert_eq!(a.ops.len(), b.ops.len());
            for (x, y) in a.ops.iter().zip(&b.ops) {
                assert_eq!(x.transition, y.transition);
                assert_eq!(x.support, y.support);
                assert_eq!(x.cx_cost, y.cx_cost);
            }
        }
        assert_eq!(encode_prepared(&decoded), bytes);
    }

    #[test]
    fn solve_from_decoded_prepared_is_bit_identical() {
        let problem = benchmark(BenchmarkId::parse("J1").unwrap());
        let solver = Rasengan::new(
            RasenganConfig::default()
                .with_seed(3)
                .with_shots(256)
                .with_max_iterations(10),
        );
        let prepared = solver.prepare(&problem).unwrap();
        let reloaded = decode_prepared(&encode_prepared(&prepared)).unwrap();
        let a = solver.solve_prepared(&problem, &prepared).unwrap();
        let b = solver.solve_prepared(&problem, &reloaded).unwrap();
        // Full structural equality covers every deterministic field;
        // wall-clock fields differ, so compare the deterministic parts.
        assert_eq!(a.best, b.best);
        assert_eq!(a.distribution, b.distribution);
        assert_eq!(a.history, b.history);
        assert_eq!(a.trained_times, b.trained_times);
        assert_eq!(a.expectation.to_bits(), b.expectation.to_bits());
        assert_eq!(a.arg.to_bits(), b.arg.to_bits());
        assert_eq!(a.total_shots, b.total_shots);
    }

    #[test]
    fn corrupt_prepared_records_error_instead_of_panicking() {
        let (_, prepared) = solved();
        let bytes = encode_prepared(&prepared);
        // Every truncation point decodes to an error, not a panic.
        for cut in 0..bytes.len() {
            assert!(
                decode_prepared(&bytes[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
        // A non-ternary basis entry would panic TransitionHamiltonian;
        // the decode gate must catch it first. Craft a minimal payload:
        // one basis vector [7], no ops.
        let mut w = WireWriter::new();
        w.usize(1); // basis len
        w.usize(1); // vector len
        w.i64(7); // non-ternary
        let err = decode_prepared(&w.into_bytes()).unwrap_err();
        assert_eq!(err, WireError::Invalid("non-ternary vector entry"));
        // Segments that fail to tile the chain are rejected.
        let mut tampered = prepared.clone();
        tampered.plan.segments[0].start += 0; // keep plan, tamper bytes instead
        let mut raw = encode_prepared(&tampered);
        // Flip a byte somewhere in the middle; decode must not panic
        // (it may or may not error — a flipped f64 bit can decode — but
        // the checksum layer above catches those).
        let mid = raw.len() / 2;
        raw[mid] ^= 0xff;
        let _ = decode_prepared(&raw);
    }

    #[test]
    fn corrupt_outcome_records_error_instead_of_panicking() {
        let (outcome, _) = solved();
        let bytes = encode_outcome(&outcome);
        for cut in 0..bytes.len() {
            assert!(
                decode_outcome(&bytes[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(decode_outcome(&trailing), Err(WireError::Trailing));
    }
}
