//! Training-latency model (paper Table 1, Fig. 12, Fig. 13).
//!
//! Quantum time is modeled from the device's gate/readout/reset
//! durations and the executed circuit depths; classical time is the
//! measured wall-clock of the optimizer and bookkeeping. The paper's
//! latency numbers exclude data-communication time, as do these.

use rasengan_qsim::Device;

/// Accumulated latency of a full training run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Latency {
    /// Modeled quantum execution time in seconds (circuits × shots).
    pub quantum_s: f64,
    /// Measured classical time in seconds (optimizer, purification,
    /// bookkeeping).
    pub classical_s: f64,
    /// Measured wall-clock per pipeline stage (a breakdown of
    /// `classical_s`; baselines that don't stage their work leave it
    /// zeroed).
    pub stages: StageTimes,
}

impl Latency {
    /// Total latency.
    pub fn total_s(&self) -> f64 {
        self.quantum_s + self.classical_s
    }
}

/// Per-stage wall-clock of the execution engine.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTimes {
    /// Compilation: basis, simplification, chain, segmentation.
    pub prepare_s: f64,
    /// Variational training loop (all objective evaluations).
    pub train_s: f64,
    /// Final execution at the trained parameters.
    pub execute_s: f64,
    /// Wall-clock spent inside resilience retry attempts (a subset of
    /// `train_s`/`execute_s`, not an additional stage); zero unless the
    /// solver's retry budget was actually drawn on.
    pub retry_s: f64,
    /// Time a served request waited in the admission queue before a
    /// worker picked it up. Zero outside the service layer — the
    /// in-process solver never queues.
    pub queue_s: f64,
    /// Whether the service answered this request from its result cache
    /// (in which case `prepare_s`/`train_s`/`execute_s` describe the
    /// original solve that populated the cache, not this request).
    pub cache_hit: bool,
}

impl StageTimes {
    /// Sum of the disjoint stages: `prepare_s + train_s + execute_s +
    /// queue_s`. `retry_s` is deliberately excluded — it is wall-clock
    /// spent *inside* retried training/execution attempts and is
    /// already counted there; adding it would double-count every
    /// recovered segment. Use this (not a hand-rolled field sum) when
    /// comparing the stage breakdown against `Latency::classical_s`.
    pub fn stage_sum(&self) -> f64 {
        self.prepare_s + self.train_s + self.execute_s + self.queue_s
    }
}

/// Models the duration of one shot of a segment circuit given its CX
/// depth and single-qubit layer count: reset + gates + readout.
pub fn segment_shot_seconds(device: &Device, cx_depth: usize, layers_1q: usize) -> f64 {
    device.reset_time
        + cx_depth as f64 * device.gate_time_2q
        + layers_1q as f64 * device.gate_time_1q
        + device.readout_time
}

/// Models the total quantum time of executing a segment `shots` times.
pub fn segment_execution_seconds(
    device: &Device,
    cx_depth: usize,
    layers_1q: usize,
    shots: usize,
) -> f64 {
    segment_shot_seconds(device, cx_depth, layers_1q) * shots as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_totals() {
        let l = Latency {
            quantum_s: 0.3,
            classical_s: 0.2,
            ..Latency::default()
        };
        assert!((l.total_s() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn stage_sum_excludes_retry_overlap() {
        let s = StageTimes {
            prepare_s: 0.1,
            train_s: 0.4,
            execute_s: 0.2,
            retry_s: 0.15, // subset of train_s/execute_s
            queue_s: 0.05,
            cache_hit: false,
        };
        assert!((s.stage_sum() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn shot_seconds_scale_with_depth() {
        let dev = Device::ibm_quebec();
        let shallow = segment_shot_seconds(&dev, 34, 4);
        let deep = segment_shot_seconds(&dev, 340, 4);
        assert!(deep > shallow);
        assert!((deep - shallow - 306.0 * dev.gate_time_2q).abs() < 1e-12);
    }

    #[test]
    fn execution_linear_in_shots() {
        let dev = Device::ibm_quebec();
        let one = segment_execution_seconds(&dev, 34, 2, 1);
        let many = segment_execution_seconds(&dev, 34, 2, 1024);
        assert!((many / one - 1024.0).abs() < 1e-9);
    }
}
