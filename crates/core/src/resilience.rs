//! Resilient segment execution: retry ladders, graceful degradation,
//! and execution budgets.
//!
//! Rasengan's segmented chain is brittle by construction: when noise
//! wipes out every feasible sample in one segment, the next segment has
//! no state to start from and the whole multi-segment run used to abort
//! (the paper's Fig. 10d / Fig. 14b failure mode). This module holds
//! the knobs and the audit trail for the recovery ladder the solver
//! climbs instead:
//!
//! 1. **Retry with escalation** — re-execute the failed segment up to
//!    [`ResilienceConfig::retry_budget`] times, multiplying the shot
//!    budget by [`ResilienceConfig::shot_escalation`] per attempt, each
//!    attempt on a fresh RNG substream.
//! 2. **Graceful degradation** — if retries are exhausted and
//!    [`ResilienceConfig::degrade`] is set, fall back to the previous
//!    segment's (feasible) output distribution and continue the chain,
//!    recording the event instead of aborting.
//! 3. **Budgets** — optional per-stage wall-clock and total-shot
//!    ceilings. Once tripped, the solver stops spending and returns the
//!    best outcome it can still assemble (degrading the remaining
//!    chain), or a structured
//!    [`RasenganError::BudgetExceeded`](crate::RasenganError) when no
//!    outcome exists yet.
//!
//! Every recovery action lands in the [`ResilienceReport`] attached to
//! the [`Outcome`](crate::Outcome), so a run that survived faults is
//! distinguishable from one that never saw any.
//!
//! All defaults are off (zero retries, no degradation, no budgets, no
//! fault plan): a default-config solve is byte-identical to the
//! pre-resilience solver for the same seed.

use rasengan_qsim::fault::{FaultKind, FaultPlan};

/// Knobs of the recovery ladder. Carried by
/// [`RasenganConfig::resilience`](crate::RasenganConfig).
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceConfig {
    /// Extra execution attempts per segment after the first fails to
    /// produce a feasible outcome (default 0: fail like the paper).
    pub retry_budget: usize,
    /// Shot-budget multiplier per retry attempt: attempt `a` runs with
    /// `shots × shot_escalation^a` (default 2.0). Builds on
    /// [`RasenganConfig::final_segment_shot_boost`](crate::RasenganConfig),
    /// which still applies to the last segment.
    pub shot_escalation: f64,
    /// When retries are exhausted, keep the previous segment's feasible
    /// distribution (or the feasible seed, for segment 0) and continue
    /// the chain instead of aborting (default false).
    pub degrade: bool,
    /// Wall-clock ceiling in seconds applied independently to the
    /// training stage and the final execution stage. `None` = no limit.
    ///
    /// Wall-clock budgets trade bit-reproducibility for bounded
    /// runtime: whether the ceiling trips depends on machine speed.
    /// Leave unset (the default) for deterministic runs.
    pub max_stage_seconds: Option<f64>,
    /// Ceiling on total shots consumed across the whole solve
    /// (training plus final execution). `None` = no limit. Shot budgets
    /// are deterministic: the same seed trips at the same point.
    pub max_total_shots: Option<usize>,
    /// Deterministic fault schedule to inject (testing / chaos drills).
    /// `None` = no faults.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry_budget: 0,
            shot_escalation: 2.0,
            degrade: false,
            max_stage_seconds: None,
            max_total_shots: None,
            fault_plan: None,
        }
    }
}

impl ResilienceConfig {
    /// The production posture: 2 retries with 2× shot escalation, then
    /// graceful degradation. No budgets, no faults.
    pub fn recommended() -> Self {
        ResilienceConfig {
            retry_budget: 2,
            shot_escalation: 2.0,
            degrade: true,
            ..ResilienceConfig::default()
        }
    }

    /// Sets the retry budget (builder style).
    #[must_use]
    pub fn with_retry_budget(mut self, retries: usize) -> Self {
        self.retry_budget = retries;
        self
    }

    /// Sets the per-retry shot escalation factor (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `factor ≥ 1` and finite.
    #[must_use]
    pub fn with_shot_escalation(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "shot escalation must be a finite factor ≥ 1"
        );
        self.shot_escalation = factor;
        self
    }

    /// Enables graceful degradation (builder style).
    #[must_use]
    pub fn with_degradation(mut self) -> Self {
        self.degrade = true;
        self
    }

    /// Sets the per-stage wall-clock budget in seconds (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `seconds > 0` and finite.
    #[must_use]
    pub fn with_stage_seconds(mut self, seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds > 0.0,
            "stage budget must be positive seconds"
        );
        self.max_stage_seconds = Some(seconds);
        self
    }

    /// Sets the total-shot budget (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    #[must_use]
    pub fn with_total_shots(mut self, shots: usize) -> Self {
        assert!(shots > 0, "shot budget must be positive");
        self.max_total_shots = Some(shots);
        self
    }

    /// Arms a deterministic fault plan (builder style).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Whether any recovery / injection machinery is armed.
    pub fn is_armed(&self) -> bool {
        self.retry_budget > 0
            || self.degrade
            || self.max_stage_seconds.is_some()
            || self.max_total_shots.is_some()
            || self.fault_plan.as_ref().is_some_and(FaultPlan::is_active)
    }

    /// The shot budget for retry attempt `attempt` (0-based) given the
    /// segment's base budget. Attempt 0 is always exactly `base`.
    pub fn escalated_shots(&self, base: usize, attempt: usize) -> usize {
        if attempt == 0 {
            return base;
        }
        let scaled = base as f64 * self.shot_escalation.powi(attempt as i32);
        // Saturate rather than overflow on absurd escalation ladders.
        if scaled >= usize::MAX as f64 / 2.0 {
            usize::MAX / 2
        } else {
            (scaled.round() as usize).max(base)
        }
    }
}

/// A pipeline stage, for budget accounting and error reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Compilation: basis, simplification, chain, segmentation.
    Prepare,
    /// The variational training loop.
    Train,
    /// The final execution at the trained parameters.
    Execute,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Stage::Prepare => "prepare",
            Stage::Train => "train",
            Stage::Execute => "execute",
        })
    }
}

/// Which budget tripped.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BudgetKind {
    /// The per-stage wall-clock ceiling.
    WallClock {
        /// The configured limit in seconds.
        limit_s: f64,
    },
    /// The total-shot ceiling.
    Shots {
        /// The configured limit.
        limit: usize,
    },
}

impl std::fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetKind::WallClock { limit_s } => write!(f, "wall-clock budget ({limit_s} s)"),
            BudgetKind::Shots { limit } => write!(f, "shot budget ({limit} shots)"),
        }
    }
}

/// What the chain fell back to when a segment degraded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeFallback {
    /// The previous segment's feasible output distribution.
    PreviousSegment,
    /// The feasible seed state (segment 0 failed, or nothing upstream).
    Seed,
}

/// One recovery / injection event, in occurrence order.
#[derive(Clone, Debug, PartialEq)]
pub enum ResilienceEvent {
    /// A fault from the armed [`FaultPlan`] fired.
    FaultInjected {
        /// Segment index the fault struck.
        segment: usize,
        /// Execution attempt (0 = first try).
        attempt: usize,
        /// Which fault kind fired.
        kind: FaultKind,
    },
    /// A segment was re-executed after yielding no feasible outcome.
    Retry {
        /// Segment index.
        segment: usize,
        /// The retry attempt number (1 = first retry).
        attempt: usize,
        /// Escalated shot budget of this attempt.
        shots: usize,
        /// Whether this attempt produced a feasible outcome.
        recovered: bool,
    },
    /// Retries exhausted; the chain continued from a fallback state.
    Degraded {
        /// Segment index that was abandoned.
        segment: usize,
        /// Total attempts executed (including the first).
        attempts: usize,
        /// What the chain continued from.
        fallback: DegradeFallback,
    },
    /// A budget ceiling tripped; spending stopped.
    BudgetExhausted {
        /// Stage in which the ceiling tripped.
        stage: Stage,
        /// Which budget.
        kind: BudgetKind,
    },
    /// Non-finite / absurd optimizer parameters were sanitized before
    /// execution instead of crashing the executor.
    ParamsSanitized {
        /// How many parameters were repaired.
        repaired: usize,
    },
}

/// The audit trail of one solve's recovery ladder, attached to
/// [`Outcome::resilience`](crate::Outcome).
///
/// Empty (`is_clean`) for runs that never needed recovery — which is
/// also the byte-identical-to-legacy case.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResilienceReport {
    /// Every event, in occurrence order (training evaluations first,
    /// then the final execution).
    pub events: Vec<ResilienceEvent>,
}

impl ResilienceReport {
    /// Whether no recovery machinery ever fired.
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of retry attempts executed.
    pub fn retries(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ResilienceEvent::Retry { .. }))
            .count()
    }

    /// Number of retry attempts that recovered a feasible outcome.
    pub fn recoveries(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    ResilienceEvent::Retry {
                        recovered: true,
                        ..
                    }
                )
            })
            .count()
    }

    /// Number of segments abandoned to degradation.
    pub fn degradations(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ResilienceEvent::Degraded { .. }))
            .count()
    }

    /// Number of budget ceilings tripped.
    pub fn budget_exhaustions(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ResilienceEvent::BudgetExhausted { .. }))
            .count()
    }

    /// Number of injected faults that fired.
    pub fn faults_injected(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ResilienceEvent::FaultInjected { .. }))
            .count()
    }

    /// One-line human summary, e.g. for CLI / bench output.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return "clean (no recovery events)".to_string();
        }
        format!(
            "{} faults injected, {} retries ({} recovered), {} degradations, {} budget stops",
            self.faults_injected(),
            self.retries(),
            self.recoveries(),
            self.degradations(),
            self.budget_exhaustions(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_fully_disarmed() {
        let cfg = ResilienceConfig::default();
        assert!(!cfg.is_armed());
        assert_eq!(cfg.retry_budget, 0);
        assert!(!cfg.degrade);
        assert!(cfg.fault_plan.is_none());
        assert!(cfg.max_stage_seconds.is_none());
        assert!(cfg.max_total_shots.is_none());
    }

    #[test]
    fn recommended_posture_retries_then_degrades() {
        let cfg = ResilienceConfig::recommended();
        assert!(cfg.is_armed());
        assert_eq!(cfg.retry_budget, 2);
        assert!(cfg.degrade);
        assert!(cfg.fault_plan.is_none());
    }

    #[test]
    fn inert_fault_plan_does_not_arm() {
        let cfg = ResilienceConfig::default().with_fault_plan(FaultPlan::new(1));
        assert!(!cfg.is_armed(), "a no-fault plan must not arm resilience");
        let armed =
            ResilienceConfig::default().with_fault_plan(FaultPlan::new(1).kill_segment(0, 1));
        assert!(armed.is_armed());
    }

    #[test]
    fn escalation_ladder_doubles_and_saturates() {
        let cfg = ResilienceConfig::recommended();
        assert_eq!(cfg.escalated_shots(256, 0), 256);
        assert_eq!(cfg.escalated_shots(256, 1), 512);
        assert_eq!(cfg.escalated_shots(256, 2), 1024);
        // Saturation instead of overflow.
        let silly = ResilienceConfig::default().with_shot_escalation(1e6);
        assert_eq!(silly.escalated_shots(usize::MAX / 4, 5), usize::MAX / 2);
        // Escalation never shrinks the budget.
        let unit = ResilienceConfig::default().with_shot_escalation(1.0);
        assert_eq!(unit.escalated_shots(100, 3), 100);
    }

    #[test]
    fn report_counts_by_kind() {
        let report = ResilienceReport {
            events: vec![
                ResilienceEvent::FaultInjected {
                    segment: 1,
                    attempt: 0,
                    kind: FaultKind::FeasibilityKill,
                },
                ResilienceEvent::Retry {
                    segment: 1,
                    attempt: 1,
                    shots: 512,
                    recovered: false,
                },
                ResilienceEvent::Retry {
                    segment: 1,
                    attempt: 2,
                    shots: 1024,
                    recovered: true,
                },
                ResilienceEvent::Degraded {
                    segment: 2,
                    attempts: 3,
                    fallback: DegradeFallback::PreviousSegment,
                },
                ResilienceEvent::BudgetExhausted {
                    stage: Stage::Train,
                    kind: BudgetKind::Shots { limit: 4096 },
                },
            ],
        };
        assert!(!report.is_clean());
        assert_eq!(report.faults_injected(), 1);
        assert_eq!(report.retries(), 2);
        assert_eq!(report.recoveries(), 1);
        assert_eq!(report.degradations(), 1);
        assert_eq!(report.budget_exhaustions(), 1);
        let s = report.summary();
        assert!(s.contains("2 retries"), "{s}");
        assert!(ResilienceReport::default().summary().contains("clean"));
    }

    #[test]
    fn stage_and_budget_display() {
        assert_eq!(Stage::Train.to_string(), "train");
        assert!(BudgetKind::Shots { limit: 10 }.to_string().contains("10"));
        assert!(BudgetKind::WallClock { limit_s: 1.5 }
            .to_string()
            .contains("1.5"));
    }
}
