//! Zero-noise extrapolation (ZNE) — an additional error-mitigation
//! layer orthogonal to purification.
//!
//! ZNE runs the same computation at artificially amplified noise levels
//! (scaling every error rate by `λ ∈ {1, 2, 3, …}`) and extrapolates
//! the expectation value back to `λ = 0` with a polynomial fit.
//! Purification guarantees *feasibility*; ZNE additionally corrects the
//! *distribution over feasible states* that depolarizing noise skews.
//! The paper lists error mitigation as an orthogonal optimization axis
//! (§4.3); this module explores the obvious next step on that axis.

use crate::solver::{Rasengan, RasenganConfig, RasenganError};
use rasengan_problems::Problem;
use rasengan_qsim::NoiseModel;

/// Result of a zero-noise extrapolation run.
#[derive(Clone, Debug)]
pub struct ZneResult {
    /// Noise scale factors used.
    pub scales: Vec<f64>,
    /// Measured expectation at each scale.
    pub expectations: Vec<f64>,
    /// The extrapolated zero-noise expectation.
    pub extrapolated: f64,
    /// ARG computed from the extrapolated expectation.
    pub arg: f64,
}

/// Scales every stochastic error channel of a noise model by `factor`
/// (clamping probabilities below 1).
pub fn scale_noise(noise: &NoiseModel, factor: f64) -> NoiseModel {
    let clamp = |p: f64| (p * factor).min(0.999);
    NoiseModel {
        p1: clamp(noise.p1),
        p2: clamp(noise.p2),
        readout: (noise.readout * factor).min(0.49),
        amplitude_damping: clamp(noise.amplitude_damping),
        phase_damping: clamp(noise.phase_damping),
    }
}

/// Fits `y = a + b·x` by least squares and evaluates at `x = 0`
/// (Richardson extrapolation with a linear model; adequate for the
/// small scale sets used here).
pub fn linear_extrapolate(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "scale/value length mismatch");
    assert!(xs.len() >= 2, "need at least two points to extrapolate");
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return sy / n;
    }
    let b = (n * sxy - sx * sy) / denom;

    (sy - b * sx) / n
}

/// Runs Rasengan at each noise scale and extrapolates the expectation
/// to zero noise.
///
/// The configuration's own noise model is the `λ = 1` point; it must be
/// noisy (otherwise there is nothing to extrapolate).
///
/// # Errors
///
/// Propagates the first [`RasenganError`] from any scale's run.
///
/// # Panics
///
/// Panics if `cfg.noise` is noise-free or `scales` has fewer than two
/// entries.
pub fn solve_with_zne(
    problem: &Problem,
    cfg: &RasenganConfig,
    scales: &[f64],
) -> Result<ZneResult, RasenganError> {
    assert!(cfg.noise.is_noisy(), "ZNE requires a noisy base model");
    assert!(scales.len() >= 2, "need at least two noise scales");

    let mut expectations = Vec::with_capacity(scales.len());
    for (i, &scale) in scales.iter().enumerate() {
        let mut scaled = cfg.clone();
        scaled.noise = scale_noise(&cfg.noise, scale);
        scaled.seed = cfg.seed.wrapping_add(i as u64);
        let outcome = Rasengan::new(scaled).solve(problem)?;
        expectations.push(outcome.expectation);
    }
    let extrapolated = linear_extrapolate(scales, &expectations);
    let (_, e_opt) = rasengan_problems::optimum(problem);
    Ok(ZneResult {
        scales: scales.to_vec(),
        expectations,
        extrapolated,
        arg: crate::metrics::arg(e_opt, extrapolated),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasengan_problems::registry::{benchmark, BenchmarkId};

    #[test]
    fn noise_scaling_clamps() {
        let base = NoiseModel::depolarizing(0.4).with_amplitude_damping(0.6);
        let scaled = scale_noise(&base, 3.0);
        assert!(scaled.p1 <= 0.999);
        assert!(scaled.amplitude_damping <= 0.999);
        let gentle = scale_noise(&NoiseModel::depolarizing(1e-3), 2.0);
        assert!((gentle.p2 - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn linear_extrapolation_recovers_intercept() {
        // y = 5 + 2x sampled at x = 1, 2, 3 → intercept 5.
        let xs = [1.0, 2.0, 3.0];
        let ys = [7.0, 9.0, 11.0];
        assert!((linear_extrapolate(&xs, &ys) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_points_fall_back_to_mean() {
        let xs = [2.0, 2.0];
        let ys = [4.0, 6.0];
        assert!((linear_extrapolate(&xs, &ys) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zne_runs_and_improves_or_matches_single_scale() {
        let p = benchmark(BenchmarkId::parse("F1").unwrap());
        let cfg = RasenganConfig::default()
            .with_seed(6)
            .with_noise(NoiseModel::depolarizing(3e-3))
            .with_shots(768)
            .with_max_iterations(20);
        let zne = solve_with_zne(&p, &cfg, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(zne.expectations.len(), 3);
        assert!(zne.arg.is_finite());
        // The extrapolated expectation should not be further from the
        // optimum than the *noisiest* measured point.
        let (_, e_opt) = rasengan_problems::optimum(&p);
        let worst = zne
            .expectations
            .iter()
            .map(|e| (e - e_opt).abs())
            .fold(0.0f64, f64::max);
        assert!(
            (zne.extrapolated - e_opt).abs() <= worst + 1e-9,
            "extrapolation {} worse than worst point (opt {e_opt}, worst off {worst})",
            zne.extrapolated
        );
    }

    #[test]
    #[should_panic(expected = "noisy base model")]
    fn zne_rejects_noise_free_config() {
        let p = benchmark(BenchmarkId::parse("F1").unwrap());
        let _ = solve_with_zne(&p, &RasenganConfig::default(), &[1.0, 2.0]);
    }
}
