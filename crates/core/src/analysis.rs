//! Convergence analysis of training histories.
//!
//! The paper argues convergence behaviour throughout (Table 2's "300
//! iterations suffice", Fig. 9's layer sweeps, §5.4's "100 iterations
//! is sufficient to ensure convergence"). This module turns the
//! best-so-far histories every solver records into comparable
//! statistics.

/// Summary statistics of a best-so-far objective history.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvergenceSummary {
    /// Number of recorded iterations.
    pub iterations: usize,
    /// First and final best-so-far values.
    pub initial: f64,
    /// Final best-so-far value.
    pub final_value: f64,
    /// Total improvement `initial − final` (≥ 0 for minimization
    /// histories).
    pub improvement: f64,
    /// Iteration index (1-based) at which 95% of the total improvement
    /// had been achieved; `None` if the history never improved.
    pub iterations_to_95pct: Option<usize>,
    /// Fraction of iterations that strictly improved the incumbent.
    pub improving_fraction: f64,
}

/// Summarizes a best-so-far (monotone non-increasing) history.
///
/// # Panics
///
/// Panics if the history is empty.
///
/// # Example
///
/// ```
/// use rasengan_core::analysis::summarize_history;
///
/// let hist = [10.0, 6.0, 6.0, 5.0, 5.0, 5.0];
/// let s = summarize_history(&hist);
/// assert_eq!(s.improvement, 5.0);
/// assert_eq!(s.iterations_to_95pct, Some(4));
/// ```
pub fn summarize_history(history: &[f64]) -> ConvergenceSummary {
    assert!(!history.is_empty(), "empty history");
    let initial = history[0];
    let final_value = *history.last().expect("non-empty");
    let improvement = initial - final_value;

    let iterations_to_95pct = if improvement > 0.0 {
        let target = initial - 0.95 * improvement;
        history.iter().position(|&v| v <= target).map(|i| i + 1)
    } else {
        None
    };

    let improving = history.windows(2).filter(|w| w[1] < w[0] - 1e-15).count();
    ConvergenceSummary {
        iterations: history.len(),
        initial,
        final_value,
        improvement,
        iterations_to_95pct,
        improving_fraction: if history.len() > 1 {
            improving as f64 / (history.len() - 1) as f64
        } else {
            0.0
        },
    }
}

/// Compares two histories: how many fewer iterations the `candidate`
/// needed to reach the `reference`'s final value (positive = candidate
/// faster). `None` if the candidate never got there.
pub fn iterations_saved(reference: &[f64], candidate: &[f64]) -> Option<isize> {
    let target = *reference.last()?;
    let cand_at = candidate.iter().position(|&v| v <= target + 1e-12)? + 1;
    Some(reference.len() as isize - cand_at as isize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_flat_history() {
        let s = summarize_history(&[3.0, 3.0, 3.0]);
        assert_eq!(s.improvement, 0.0);
        assert_eq!(s.iterations_to_95pct, None);
        assert_eq!(s.improving_fraction, 0.0);
    }

    #[test]
    fn summary_of_single_point() {
        let s = summarize_history(&[1.5]);
        assert_eq!(s.iterations, 1);
        assert_eq!(s.final_value, 1.5);
    }

    #[test]
    fn ninety_five_percent_point() {
        // Improvement 10 → target 10 − 9.5 = 0.5.
        let hist = [10.0, 5.0, 1.0, 0.4, 0.0];
        let s = summarize_history(&hist);
        assert_eq!(s.iterations_to_95pct, Some(4));
        assert!((s.improving_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iterations_saved_comparison() {
        let reference = [10.0, 8.0, 6.0, 4.0, 2.0];
        let fast = [10.0, 2.0, 2.0];
        assert_eq!(iterations_saved(&reference, &fast), Some(3));
        let never = [10.0, 9.0];
        assert_eq!(iterations_saved(&reference, &never), None);
    }

    #[test]
    #[should_panic(expected = "empty history")]
    fn empty_history_panics() {
        summarize_history(&[]);
    }

    #[test]
    fn real_solver_history_summarizes() {
        use crate::{Rasengan, RasenganConfig};
        use rasengan_problems::registry::{benchmark, BenchmarkId};
        let p = benchmark(BenchmarkId::parse("F1").unwrap());
        let out = Rasengan::new(
            RasenganConfig::default()
                .with_seed(2)
                .with_max_iterations(60),
        )
        .solve(&p)
        .unwrap();
        let s = summarize_history(&out.history);
        assert!(s.iterations > 0);
        assert!(s.improvement >= 0.0);
    }
}
