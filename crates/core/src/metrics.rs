//! Solution-quality metrics: ARG (paper Eq. 9), expectations over
//! measured distributions, and in-constraints rates.

use rasengan_problems::{optimum, Problem};
use rasengan_qsim::sparse::bits_from_label;
use rasengan_qsim::Label;
use std::collections::BTreeMap;

/// The approximation ratio gap: `ARG = |(E_opt − E_real) / E_opt|`
/// (Eq. 9). Lower is better; 0 means the algorithm's output matches the
/// optimum.
///
/// # Panics
///
/// Panics if `e_opt == 0` (benchmark generators keep optima nonzero).
///
/// # Example
///
/// ```
/// use rasengan_core::metrics::arg;
/// assert_eq!(arg(4.0, 4.0), 0.0);
/// assert_eq!(arg(4.0, 6.0), 0.5);
/// ```
pub fn arg(e_opt: f64, e_real: f64) -> f64 {
    assert!(e_opt != 0.0, "ARG undefined for zero optimum");
    ((e_opt - e_real) / e_opt).abs()
}

/// A penalty coefficient scaled to dominate the objective: twice the
/// total magnitude of all objective terms, floored at 1. Used both by
/// the penalty-term baselines and by [`expectation`]'s accounting for
/// infeasible outcomes.
pub fn penalty_lambda(problem: &Problem) -> f64 {
    let obj = problem.objective();
    let total: f64 = obj.constant.abs()
        + obj.linear.iter().map(|c| c.abs()).sum::<f64>()
        + obj.quadratic.iter().map(|(_, _, w)| w.abs()).sum::<f64>();
    (2.0 * total).max(1.0)
}

/// Expectation of the objective over a measured distribution, charging
/// infeasible outcomes the penalized objective (how the paper's ARG ends
/// up in the hundreds for penalty methods whose output is mostly
/// infeasible).
pub fn expectation(problem: &Problem, dist: &BTreeMap<Label, f64>, lambda: f64) -> f64 {
    let n = problem.n_vars();
    dist.iter()
        .map(|(&label, &p)| {
            let bits = bits_from_label(label, n);
            let v = if problem.is_feasible(&bits) {
                problem.evaluate(&bits)
            } else {
                problem.evaluate_penalized(&bits, lambda)
            };
            p * v
        })
        .sum()
}

/// Fraction of probability mass on feasible outcomes.
pub fn in_constraints_rate(problem: &Problem, dist: &BTreeMap<Label, f64>) -> f64 {
    let n = problem.n_vars();
    let total: f64 = dist.values().sum();
    if total == 0.0 {
        return 0.0;
    }
    let feasible: f64 = dist
        .iter()
        .filter(|(&l, _)| problem.is_feasible(&bits_from_label(l, n)))
        .map(|(_, &p)| p)
        .sum();
    feasible / total
}

/// A concrete measured solution.
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    /// The binary assignment.
    pub bits: Vec<i64>,
    /// Its objective value (unpenalized).
    pub value: f64,
    /// Whether it satisfies the constraints.
    pub feasible: bool,
}

/// The best outcome in a distribution: the best *feasible* outcome if
/// any exists, otherwise the least-penalized infeasible one.
///
/// # Panics
///
/// Panics if the distribution is empty.
pub fn best_solution(problem: &Problem, dist: &BTreeMap<Label, f64>) -> Solution {
    assert!(!dist.is_empty(), "empty distribution");
    let n = problem.n_vars();
    let sense = problem.sense();
    let lambda = penalty_lambda(problem);
    let mut best: Option<(Solution, f64)> = None;
    for &label in dist.keys() {
        let bits = bits_from_label(label, n);
        let feasible = problem.is_feasible(&bits);
        let rank_value = if feasible {
            problem.evaluate(&bits)
        } else {
            problem.evaluate_penalized(&bits, lambda)
        };
        let candidate = Solution {
            value: problem.evaluate(&bits),
            bits,
            feasible,
        };
        let replace = match &best {
            None => true,
            Some((incumbent, inc_rank)) => {
                // Feasible always beats infeasible; ties broken by value.
                (candidate.feasible && !incumbent.feasible)
                    || (candidate.feasible == incumbent.feasible
                        && sense.is_better(rank_value, *inc_rank))
            }
        };
        if replace {
            best = Some((candidate, rank_value));
        }
    }
    best.expect("non-empty distribution").0
}

/// ARG of a distribution against the problem's exact optimum.
pub fn distribution_arg(problem: &Problem, dist: &BTreeMap<Label, f64>) -> f64 {
    let (_, e_opt) = optimum(problem);
    let e_real = expectation(problem, dist, penalty_lambda(problem));
    arg(e_opt, e_real)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasengan_math::IntMatrix;
    use rasengan_problems::{Objective, Sense};

    fn toy() -> Problem {
        // min 1·x1 + 2·x2 + 3·x3  s.t.  x1+x2+x3 = 1 → optimum 1.
        Problem::new(
            "toy",
            IntMatrix::from_rows(&[vec![1, 1, 1]]),
            vec![1],
            Objective::linear(vec![1.0, 2.0, 3.0]),
            Sense::Minimize,
        )
        .unwrap()
    }

    #[test]
    fn arg_basic_values() {
        assert_eq!(arg(2.0, 2.0), 0.0);
        assert_eq!(arg(2.0, 3.0), 0.5);
        assert_eq!(arg(-2.0, -3.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn arg_zero_opt_panics() {
        arg(0.0, 1.0);
    }

    #[test]
    fn expectation_mixes_values() {
        let p = toy();
        let dist = BTreeMap::from([(0b001u128, 0.5), (0b010, 0.5)]);
        // 0.5·1 + 0.5·2 = 1.5
        assert!((expectation(&p, &dist, penalty_lambda(&p)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn expectation_penalizes_infeasible() {
        let p = toy();
        let lambda = penalty_lambda(&p);
        let dist = BTreeMap::from([(0b000u128, 1.0)]); // violates by 1
        assert!((expectation(&p, &dist, lambda) - lambda).abs() < 1e-12);
    }

    #[test]
    fn in_constraints_rate_counts_mass() {
        let p = toy();
        let dist = BTreeMap::from([(0b001u128, 0.6), (0b011, 0.4)]);
        assert!((in_constraints_rate(&p, &dist) - 0.6).abs() < 1e-12);
        assert_eq!(in_constraints_rate(&p, &BTreeMap::new()), 0.0);
    }

    #[test]
    fn best_solution_prefers_feasible() {
        let p = toy();
        // Infeasible 0b000 has value 0 (better raw) but feasible 0b010 wins.
        let dist = BTreeMap::from([(0b000u128, 0.9), (0b010, 0.1)]);
        let best = best_solution(&p, &dist);
        assert!(best.feasible);
        assert_eq!(best.bits, vec![0, 1, 0]);
    }

    #[test]
    fn best_solution_picks_cheapest_feasible() {
        let p = toy();
        let dist = BTreeMap::from([(0b001u128, 0.1), (0b100, 0.9)]);
        let best = best_solution(&p, &dist);
        assert_eq!(best.bits, vec![1, 0, 0]);
        assert_eq!(best.value, 1.0);
    }

    #[test]
    fn distribution_arg_zero_on_optimum() {
        let p = toy();
        let dist = BTreeMap::from([(0b001u128, 1.0)]);
        assert_eq!(distribution_arg(&p, &dist), 0.0);
    }

    #[test]
    fn penalty_lambda_dominates_objective() {
        let p = toy();
        let lambda = penalty_lambda(&p);
        // One unit of violation must cost more than any feasible value.
        assert!(lambda > 3.0);
    }
}
