//! Deterministic workload replay: a seeded synthetic request stream
//! over the full benchmark corpus.
//!
//! A replay is fully described by a [`Manifest`]: seeded Poisson
//! arrivals (exponential inter-arrival gaps), a seeded mixture over
//! every registry id, per-draw solver knobs (seed, shots, iterations)
//! and a per-draw *wire format* (`native|qubo|qubo-recover|lp`), all
//! fixed at manifest-build time. Every random quantity is drawn from
//! SplitMix64 streams derived from the manifest seed via
//! [`case_seed`](rasengan_problems::registry::case_seed), so the same
//! seed reproduces the same request sequence on any machine — and
//! because the solver itself is bit-deterministic, replaying a manifest
//! twice must produce byte-identical per-request `result` sections.
//! The loadgen binary's `--replay` arm checks exactly that.
//!
//! Formats are drawn uniformly and then *resolved* against the drawn
//! problem: a format the problem cannot round-trip through (e.g. a
//! quadratic objective has no LP form) falls back to native,
//! deterministically, so the manifest always records the format that
//! actually goes on the wire.

use rasengan_problems::ingest::{parse_as, write_as, Format};
use rasengan_problems::registry::{all_ids, benchmark, case_seed, BenchmarkId};

/// Knobs of a replay run.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Manifest seed: everything derives from this.
    pub seed: u64,
    /// Number of requests to draw.
    pub requests: usize,
    /// Mean arrival rate, requests per second.
    pub rate_per_s: f64,
    /// Optimizer iteration budget per request (fixed; the varied knobs
    /// are seed and shots).
    pub iterations: usize,
}

impl ReplayConfig {
    /// The loadgen defaults: fast mode keeps the arm to a few seconds.
    pub fn new(seed: u64, full: bool) -> Self {
        ReplayConfig {
            seed,
            requests: if full { 48 } else { 12 },
            rate_per_s: 25.0,
            iterations: if full { 40 } else { 12 },
        }
    }
}

/// One drawn request.
#[derive(Clone, Debug, PartialEq)]
pub struct Draw {
    /// Position in the stream.
    pub index: usize,
    /// Registry benchmark id (e.g. `"F2"`).
    pub id: String,
    /// Absolute arrival time since replay start, milliseconds.
    pub arrival_ms: f64,
    /// Solver RNG seed for this request.
    pub solver_seed: u64,
    /// Shots per objective evaluation.
    pub shots: usize,
    /// Optimizer iteration cap.
    pub iterations: usize,
    /// Wire format the problem body travels in (already resolved: the
    /// problem is guaranteed to round-trip through it).
    pub format: Format,
}

/// A fully-materialized replay: the mixture weights and every draw.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// The seed the manifest was built from.
    pub seed: u64,
    /// Mean arrival rate, requests per second.
    pub rate_per_s: f64,
    /// Normalized mixture weight per registry id, in registry order.
    pub weights: Vec<(String, f64)>,
    /// The request stream, in arrival order.
    pub draws: Vec<Draw>,
}

/// Uniform in `[0, 1)` from a SplitMix64 output (53-bit mantissa).
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Resolves a drawn format against a problem: keep it when the problem
/// round-trips through that format (export then re-parse both
/// succeed), otherwise fall back to native. Pure, so manifest
/// regeneration resolves identically.
fn resolve_format(problem: &rasengan_problems::problem::Problem, desired: Format) -> Format {
    if desired == Format::Native {
        return Format::Native;
    }
    let ok = write_as(desired, problem)
        .ok()
        .and_then(|text| parse_as(desired, &text).ok())
        .is_some();
    if ok {
        desired
    } else {
        Format::Native
    }
}

/// Renders a problem's wire body in a draw's resolved format.
/// Resolution guaranteed the export succeeds.
pub fn wire_body(id: &str, format: Format) -> String {
    let problem = benchmark(BenchmarkId::parse(id).expect("manifest id"));
    write_as(format, &problem).expect("resolved format must export")
}

/// Builds the manifest for a config. Pure and deterministic: the same
/// config always yields the same manifest, byte for byte.
pub fn manifest(cfg: &ReplayConfig) -> Manifest {
    let ids: Vec<String> = all_ids().iter().map(|id| id.to_string()).collect();
    // Stream 0: mixture weights — one positive draw per id, normalized.
    let raw: Vec<f64> = (0..ids.len())
        .map(|i| 0.25 + unit(case_seed(cfg.seed, i as u64)))
        .collect();
    let total: f64 = raw.iter().sum();
    let weights: Vec<(String, f64)> = ids
        .iter()
        .cloned()
        .zip(raw.iter().map(|w| w / total))
        .collect();

    // Streams 1..: per-draw quantities, one derived seed per (draw,
    // slot) pair so inserting a new slot never shifts the others.
    let slot = |draw: usize, k: u64| case_seed(cfg.seed, 0x1000 + (draw as u64) * 8 + k);
    let mut arrival_ms = 0.0;
    let draws = (0..cfg.requests)
        .map(|i| {
            // Exponential inter-arrival gap (Poisson process).
            let u = unit(slot(i, 0));
            arrival_ms += -(1.0 - u).ln() / cfg.rate_per_s * 1000.0;
            // Weighted mixture pick.
            let mut pick = unit(slot(i, 1));
            let mut id = weights[weights.len() - 1].0.clone();
            for (candidate, w) in &weights {
                if pick < *w {
                    id = candidate.clone();
                    break;
                }
                pick -= w;
            }
            // Uniform format pick, resolved against the drawn problem
            // (unsupported exports fall back to native).
            let all = Format::all();
            let desired = all[(slot(i, 4) % all.len() as u64) as usize];
            let format = resolve_format(
                &benchmark(BenchmarkId::parse(&id).expect("registry id")),
                desired,
            );
            Draw {
                index: i,
                id,
                arrival_ms,
                solver_seed: slot(i, 2),
                shots: 128 << (slot(i, 3) % 2), // 128 or 256
                iterations: cfg.iterations,
                format,
            }
        })
        .collect();
    Manifest {
        seed: cfg.seed,
        rate_per_s: cfg.rate_per_s,
        weights,
        draws,
    }
}

impl Manifest {
    /// Renders the manifest as a canonical JSON document — the
    /// replayable artifact. Two manifests from the same seed render to
    /// identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"seed\":{},\"rate_per_s\":{},\"weights\":{{",
            self.seed, self.rate_per_s
        ));
        for (i, (id, w)) in self.weights.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{id}\":{w:.6}"));
        }
        out.push_str("},\"draws\":[");
        for (i, d) in self.draws.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"id\":\"{}\",\"arrival_ms\":{:.3},\
                 \"seed\":{},\"shots\":{},\"iterations\":{},\"format\":\"{}\"}}",
                d.index,
                d.id,
                d.arrival_ms,
                d.solver_seed,
                d.shots,
                d.iterations,
                d.format.token()
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_manifest_bytes() {
        let cfg = ReplayConfig::new(2025, false);
        let a = manifest(&cfg);
        let b = manifest(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = manifest(&ReplayConfig::new(1, false));
        let b = manifest(&ReplayConfig::new(2, false));
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn weights_cover_the_corpus_and_normalize() {
        let m = manifest(&ReplayConfig::new(7, false));
        assert_eq!(m.weights.len(), all_ids().len());
        let total: f64 = m.weights.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
        assert!(m.weights.iter().all(|(_, w)| *w > 0.0));
    }

    #[test]
    fn arrivals_increase_and_draws_hit_registry_ids() {
        let m = manifest(&ReplayConfig::new(11, true));
        let ids: Vec<String> = all_ids().iter().map(|id| id.to_string()).collect();
        let mut last = 0.0;
        for d in &m.draws {
            assert!(d.arrival_ms > last, "arrivals must strictly increase");
            last = d.arrival_ms;
            assert!(ids.contains(&d.id), "unknown id {}", d.id);
            assert!(d.shots == 128 || d.shots == 256);
        }
        // A 48-draw stream over 32 ids should touch more than a couple.
        let distinct: std::collections::HashSet<&str> =
            m.draws.iter().map(|d| d.id.as_str()).collect();
        assert!(distinct.len() >= 8, "mixture collapsed: {distinct:?}");
    }

    #[test]
    fn formats_mix_and_resolved_formats_export() {
        let m = manifest(&ReplayConfig::new(2025, false));
        let distinct: std::collections::HashSet<Format> =
            m.draws.iter().map(|d| d.format).collect();
        assert!(
            distinct.len() >= 2,
            "the mixture must exercise several wire formats, got {distinct:?}"
        );
        // Every resolved format must actually render a wire body, and
        // the manifest records it.
        for d in &m.draws {
            let body = wire_body(&d.id, d.format);
            assert!(!body.is_empty());
            assert!(m.to_json().contains(&format!("\"{}\"", d.format.token())));
        }
    }

    #[test]
    fn format_resolution_is_deterministic_across_regeneration() {
        let cfg = ReplayConfig::new(99, false);
        let a: Vec<Format> = manifest(&cfg).draws.iter().map(|d| d.format).collect();
        let b: Vec<Format> = manifest(&cfg).draws.iter().map(|d| d.format).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn unit_interval_is_half_open() {
        assert_eq!(unit(0), 0.0);
        assert!(unit(u64::MAX) < 1.0);
    }
}
