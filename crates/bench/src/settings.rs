//! Fast/full run settings.
//!
//! The paper's artifact scales its reproduce scripts down (≈10 cases per
//! benchmark instead of 100) to finish in reasonable time; this harness
//! does the same. The default is *fast* mode; pass `--full` for the
//! paper's iteration budgets.

/// Runtime knobs shared by all experiment binaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSettings {
    /// Whether `--full` was requested.
    pub full: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for the execution engine (`--threads N`, falling
    /// back to the `RASENGAN_THREADS` environment variable; `None` lets
    /// the engine use the machine's available parallelism). Thread count
    /// never changes results, only wall-clock.
    pub threads: Option<usize>,
}

impl RunSettings {
    /// Parses the process arguments (`--full`, `--seed N`,
    /// `--threads N`) and the `RASENGAN_THREADS` environment variable.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let full = args.iter().any(|a| a == "--full");
        let seed = args
            .iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(2025);
        let threads = args
            .iter()
            .position(|a| a == "--threads")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .filter(|&t: &usize| t > 0)
            .or_else(|| {
                std::env::var("RASENGAN_THREADS")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .filter(|&t: &usize| t > 0)
            });
        RunSettings {
            full,
            seed,
            threads,
        }
    }

    /// Fast-mode settings for tests.
    pub fn fast() -> Self {
        RunSettings {
            full: false,
            seed: 2025,
            threads: None,
        }
    }

    /// Optimizer budget for Rasengan (paper: 300).
    pub fn rasengan_iterations(&self) -> usize {
        if self.full {
            300
        } else {
            80
        }
    }

    /// Optimizer budget for baselines, derated for large dense
    /// simulations in fast mode.
    pub fn baseline_iterations(&self, n_vars: usize) -> usize {
        match (self.full, n_vars) {
            (true, _) => 300,
            (false, n) if n > 16 => 12,
            (false, n) if n > 12 => 25,
            (false, _) => 50,
        }
    }

    /// Number of randomized cases per benchmark (paper: 100).
    pub fn cases_per_benchmark(&self) -> usize {
        if self.full {
            10
        } else {
            1
        }
    }

    /// Shots per circuit execution in hardware-style experiments
    /// (paper: 1024; fast mode trims to keep trajectory counts low).
    pub fn shots(&self) -> usize {
        if self.full {
            1024
        } else {
            256
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_derates_large_problems() {
        let s = RunSettings::fast();
        assert!(s.baseline_iterations(20) < s.baseline_iterations(10));
        assert_eq!(s.rasengan_iterations(), 80);
        assert_eq!(s.cases_per_benchmark(), 1);
    }

    #[test]
    fn full_mode_uses_paper_budgets() {
        let s = RunSettings {
            full: true,
            seed: 1,
            threads: None,
        };
        assert_eq!(s.rasengan_iterations(), 300);
        assert_eq!(s.baseline_iterations(20), 300);
    }
}
