//! Uniform adapters running any of the four algorithms on a problem.

use rasengan_baselines::{BaselineConfig, BaselineOptimizer, ChocoQ, Hea, PQaoa};
use rasengan_core::{Rasengan, RasenganConfig};
use rasengan_problems::Problem;
use rasengan_qsim::{Device, NoiseModel};

/// The four algorithms of the comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Hardware-efficient ansatz.
    Hea,
    /// Penalty-term QAOA (with FrozenQubits + Red-QAOA enhancements).
    PQaoa,
    /// Commute-Hamiltonian QAOA.
    ChocoQ,
    /// This paper.
    Rasengan,
}

impl Algorithm {
    /// All four, in the paper's table order.
    pub fn all() -> [Algorithm; 4] {
        [
            Algorithm::Hea,
            Algorithm::PQaoa,
            Algorithm::ChocoQ,
            Algorithm::Rasengan,
        ]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Hea => "HEA",
            Algorithm::PQaoa => "P-QAOA",
            Algorithm::ChocoQ => "Choco-Q",
            Algorithm::Rasengan => "Rasengan",
        }
    }
}

/// One comparable result row.
#[derive(Clone, Debug)]
pub struct AlgoResult {
    /// Which algorithm produced it.
    pub algorithm: Algorithm,
    /// Approximation ratio gap (Eq. 9).
    pub arg: f64,
    /// Reported circuit depth (CX/two-qubit metric; for Rasengan the
    /// deepest *segment*, matching the paper's convention).
    pub depth: usize,
    /// Number of variational parameters.
    pub n_params: usize,
    /// Feasible fraction of the output distribution.
    pub in_constraints_rate: f64,
    /// Modeled quantum seconds.
    pub quantum_s: f64,
    /// Measured classical seconds.
    pub classical_s: f64,
    /// Best measured objective value.
    pub best_value: f64,
    /// Whether the run failed (noise destroyed all feasible outcomes).
    pub failed: bool,
}

/// Execution environment for one run.
#[derive(Clone, Debug)]
pub struct RunEnv {
    /// Random seed.
    pub seed: u64,
    /// Optimizer iteration budget.
    pub iterations: usize,
    /// QAOA/HEA layer count (paper: 5).
    pub layers: usize,
    /// Shots (None = exact where supported).
    pub shots: Option<usize>,
    /// Noise model.
    pub noise: NoiseModel,
    /// Device timing model.
    pub device: Device,
    /// Worker threads for Rasengan's execution engine (`None` = all
    /// available; results are thread-count independent).
    pub threads: Option<usize>,
}

impl Default for RunEnv {
    fn default() -> Self {
        RunEnv {
            seed: 0,
            iterations: 100,
            layers: 5,
            shots: None,
            noise: NoiseModel::noise_free(),
            device: Device::ibm_quebec(),
            threads: None,
        }
    }
}

/// Runs one algorithm on one problem under the given environment.
pub fn run_algorithm(alg: Algorithm, problem: &Problem, env: &RunEnv) -> AlgoResult {
    match alg {
        Algorithm::Rasengan => {
            let mut cfg = RasenganConfig::default()
                .with_seed(env.seed)
                .with_noise(env.noise)
                .with_max_iterations(env.iterations);
            cfg.device = env.device.clone();
            cfg.shots = env.shots;
            cfg.threads = env.threads;
            match Rasengan::new(cfg).solve(problem) {
                Ok(out) => AlgoResult {
                    algorithm: alg,
                    arg: out.arg,
                    depth: out.stats.max_segment_cx_depth,
                    n_params: out.stats.n_params,
                    in_constraints_rate: out.in_constraints_rate,
                    quantum_s: out.latency.quantum_s,
                    classical_s: out.latency.classical_s,
                    best_value: out.best.value,
                    failed: false,
                },
                Err(_) => failed(alg),
            }
        }
        Algorithm::ChocoQ => {
            let cfg = baseline_cfg(env);
            match ChocoQ::new(cfg).solve(problem) {
                Ok(out) => from_baseline(alg, out),
                Err(_) => failed(alg),
            }
        }
        Algorithm::PQaoa => {
            let cfg = baseline_cfg(env);
            let out = PQaoa::new(cfg)
                .with_frozen_qubits(1)
                .with_red_init()
                .solve(problem);
            from_baseline(alg, out)
        }
        Algorithm::Hea => {
            let mut cfg = baseline_cfg(env);
            // HEA's 2n(L+1) parameters make COBYLA's initial simplex the
            // dominant cost on wide registers; SPSA's dimension-free
            // 3-evaluation iterations keep fast mode fast.
            if Hea::n_params(problem.n_vars(), env.layers) > 60 && env.iterations < 300 {
                cfg = cfg.with_optimizer(BaselineOptimizer::Spsa);
            }
            let out = Hea::new(cfg).solve(problem);
            from_baseline(alg, out)
        }
    }
}

fn baseline_cfg(env: &RunEnv) -> BaselineConfig {
    let mut cfg = BaselineConfig::default()
        .with_seed(env.seed)
        .with_layers(env.layers)
        .with_max_iterations(env.iterations)
        .with_noise(env.noise);
    cfg.device = env.device.clone();
    cfg.shots = env.shots;
    cfg
}

fn from_baseline(alg: Algorithm, out: rasengan_baselines::BaselineOutcome) -> AlgoResult {
    AlgoResult {
        algorithm: alg,
        arg: out.arg,
        depth: out.circuit_depth,
        n_params: out.n_params,
        in_constraints_rate: out.in_constraints_rate,
        quantum_s: out.latency.quantum_s,
        classical_s: out.latency.classical_s,
        best_value: out.best.value,
        failed: false,
    }
}

fn failed(alg: Algorithm) -> AlgoResult {
    AlgoResult {
        algorithm: alg,
        arg: f64::INFINITY,
        depth: 0,
        n_params: 0,
        in_constraints_rate: 0.0,
        quantum_s: 0.0,
        classical_s: 0.0,
        best_value: f64::NAN,
        failed: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasengan_problems::registry::{benchmark, BenchmarkId};

    #[test]
    fn all_four_algorithms_run_on_j1() {
        let p = benchmark(BenchmarkId::parse("J1").unwrap());
        let env = RunEnv {
            iterations: 15,
            layers: 2,
            ..RunEnv::default()
        };
        for alg in Algorithm::all() {
            let r = run_algorithm(alg, &p, &env);
            assert!(!r.failed, "{} failed", alg.name());
            assert!(r.arg.is_finite(), "{} arg not finite", alg.name());
        }
    }

    #[test]
    fn rasengan_depth_is_smallest() {
        let p = benchmark(BenchmarkId::parse("F1").unwrap());
        let env = RunEnv {
            iterations: 10,
            layers: 5,
            ..RunEnv::default()
        };
        let ras = run_algorithm(Algorithm::Rasengan, &p, &env);
        let choco = run_algorithm(Algorithm::ChocoQ, &p, &env);
        assert!(
            ras.depth < choco.depth,
            "Rasengan segment depth {} must undercut Choco-Q {}",
            ras.depth,
            choco.depth
        );
    }
}
