//! **Figure 13** — shots and latency as the segment count varies.
//!
//! Forces different segmentation granularities on one benchmark (F2)
//! and reports total shots (expected: linear in #segments at 1024
//! shots/segment) and total latency (expected: sub-linear, since
//! per-segment circuits shrink as segments multiply).

use rasengan_bench::report::fmt;
use rasengan_bench::{RunSettings, Table};
use rasengan_core::{Rasengan, RasenganConfig};
use rasengan_problems::registry::{benchmark, BenchmarkId};

fn main() {
    let settings = RunSettings::from_args();
    let problem = benchmark(BenchmarkId::parse("F3").unwrap());

    // Budgets spanning "everything in one segment" → "one op per
    // segment".
    let budgets = [100_000usize, 400, 200, 136, 102, 68, 34, 1];
    let mut table = Table::new(
        "Figure 13: shots and latency vs segment count (F3, 1024 shots/segment)",
        vec![
            "segments",
            "total_shots",
            "quantum_ms",
            "classical_ms",
            "arg",
        ],
    );

    let mut seen = std::collections::BTreeSet::new();
    for &budget in &budgets {
        let mut cfg = RasenganConfig::default()
            .with_seed(settings.seed)
            .with_shots(1024)
            .with_max_iterations(if settings.full { 100 } else { 25 });
        cfg.segment_depth_budget = budget;
        let solver = Rasengan::new(cfg);
        let prepared = solver.prepare(&problem).expect("F3 prepares");
        let n_segments = prepared.stats.n_segments;
        if !seen.insert(n_segments) {
            continue; // duplicate segment count from a different budget
        }
        let outcome = solver.solve(&problem).expect("F3 solves");
        table.row(vec![
            n_segments.to_string(),
            outcome.total_shots.to_string(),
            fmt(outcome.latency.quantum_s * 1e3),
            fmt(outcome.latency.classical_s * 1e3),
            fmt(outcome.arg),
        ]);
        eprintln!(
            "segments={n_segments}: shots={} q={:.2}ms",
            outcome.total_shots,
            outcome.latency.quantum_s * 1e3
        );
    }

    table.print();
    if let Ok(p) = table.save_csv("fig13_segments") {
        println!("saved: {}", p.display());
    }
}
