//! Statistical suite: case-averaged ARG per benchmark.
//!
//! The paper's Table 2 averages 100 literature cases per benchmark; the
//! canonical-instance `table2` binary shows one instance each. This
//! binary sweeps seeded random cases per benchmark and reports
//! mean/min/max ARG for Rasengan and Choco-Q (the two sparse-backend
//! algorithms, so the sweep stays fast; pass `--full` to add more
//! cases).

use rasengan_baselines::{BaselineConfig, ChocoQ};
use rasengan_bench::report::fmt;
use rasengan_bench::{RunSettings, Table};
use rasengan_core::{Rasengan, RasenganConfig};
use rasengan_problems::registry::{all_ids, cases};

fn main() {
    let settings = RunSettings::from_args();
    let n_cases = if settings.full { 10 } else { 3 };
    let iters = if settings.full { 200 } else { 40 };

    let mut table = Table::new(
        format!("Suite: ARG over {n_cases} random cases per benchmark"),
        vec![
            "bench", "RAS_mean", "RAS_min", "RAS_max", "CQ_mean", "CQ_min", "CQ_max", "wins",
        ],
    );

    for id in all_ids() {
        let mut ras_args = Vec::new();
        let mut cq_args = Vec::new();
        let mut wins = 0usize;
        for (i, problem) in cases(id, n_cases, settings.seed).into_iter().enumerate() {
            let ras = Rasengan::new(
                RasenganConfig::default()
                    .with_seed(settings.seed + i as u64)
                    .with_max_iterations(iters),
            )
            .solve(&problem)
            .map(|o| o.arg)
            .unwrap_or(f64::INFINITY);
            let cq = ChocoQ::new(
                BaselineConfig::default()
                    .with_seed(settings.seed + i as u64)
                    .with_max_iterations(iters),
            )
            .solve(&problem)
            .map(|o| o.arg)
            .unwrap_or(f64::INFINITY);
            if ras <= cq + 1e-12 {
                wins += 1;
            }
            ras_args.push(ras);
            cq_args.push(cq);
            eprintln!(
                "[{id} case {i}] rasengan {} vs chocoq {}",
                fmt(ras),
                fmt(cq)
            );
        }
        let stats = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let min = v.iter().copied().fold(f64::INFINITY, f64::min);
            let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            (mean, min, max)
        };
        let (rm, rlo, rhi) = stats(&ras_args);
        let (cm, clo, chi) = stats(&cq_args);
        table.row(vec![
            id.to_string(),
            fmt(rm),
            fmt(rlo),
            fmt(rhi),
            fmt(cm),
            fmt(clo),
            fmt(chi),
            format!("{wins}/{n_cases}"),
        ]);
    }

    table.print();
    if let Ok(p) = table.save_csv("suite") {
        println!("saved: {}", p.display());
    }
}
