//! **Table 1** — VQA designs for constrained binary optimization.
//!
//! Compares HEA, P-QAOA (with FrozenQubits + Red-QAOA), Choco-Q, and
//! Rasengan on a 12-qubit set-covering instance in a noise-free
//! simulator: ARG, output-state character, and training latency under
//! the IBM Quebec timing model.
//!
//! Paper reference points: ARG ~1100 (HEA), ~1000 (P-QAOA), 7.27
//! (Choco-Q), 0.70 (Rasengan); latency 702/300/445/144 ms.

use rasengan_bench::report::fmt;
use rasengan_bench::{run_algorithm, Algorithm, RunSettings, Table};
use rasengan_problems::enumerate_feasible;
use rasengan_problems::scp::SetCover;

fn main() {
    let settings = RunSettings::from_args();

    // A 12-variable set-covering instance (Table 1 uses a 12-qubit SCP
    // whose feasible space is a small fraction of the 4096-state space).
    let scp = pick_12_qubit_scp(settings.seed);
    let problem = scp.into_problem();
    let feasible = enumerate_feasible(&problem).len();
    println!(
        "benchmark: {} ({} vars, {} constraints, {} / {} feasible)\n",
        problem.name(),
        problem.n_vars(),
        problem.n_constraints(),
        feasible,
        1u64 << problem.n_vars(),
    );

    let env = rasengan_bench::runners::RunEnv {
        seed: settings.seed,
        iterations: settings.baseline_iterations(problem.n_vars()),
        layers: 5,
        threads: settings.threads,
        ..Default::default()
    };

    let mut table = Table::new(
        "Table 1: VQA designs on 12-qubit set covering (noise-free)",
        vec!["method", "output state", "ARG", "latency_ms"],
    );
    for alg in Algorithm::all() {
        let mut e = env.clone();
        if alg == Algorithm::Rasengan {
            e.iterations = settings.rasengan_iterations();
        }
        let r = run_algorithm(alg, &problem, &e);
        let state = match alg {
            Algorithm::Rasengan => "basis state",
            _ => "superposition",
        };
        // Per-iteration latency (classical + quantum), as in the paper.
        let iters = e.iterations.max(1) as f64;
        let latency_ms = (r.quantum_s + r.classical_s) / iters * 1e3;
        table.row(vec![
            alg.name().to_string(),
            state.to_string(),
            fmt(r.arg),
            fmt(latency_ms),
        ]);
    }
    table.print();
    if let Ok(p) = table.save_csv("table1") {
        println!("saved: {}", p.display());
    }
}

/// Finds a seed whose SCP instance has exactly 12 variables.
fn pick_12_qubit_scp(seed: u64) -> SetCover {
    for offset in 0..200 {
        let cand = SetCover::generate(4, 6, seed + offset);
        if cand.n_vars() == 12 {
            return cand;
        }
    }
    // Deterministic fallback: force a known-12-variable layout.
    SetCover {
        elements: 4,
        sets: vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![0, 3],
            vec![0, 2],
            vec![1, 3],
        ],
        costs: vec![2.0, 3.0, 2.0, 4.0, 1.0, 3.0],
    }
}
