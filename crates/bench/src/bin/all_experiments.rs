//! Runs every table/figure binary in sequence — the equivalent of the
//! artifact's `reproduce/run_all_experiments.py`.
//!
//! Pass `--full` for the paper's budgets (hours); the default fast mode
//! finishes in minutes with scaled-down iteration counts, like the
//! artifact's reproduce mode.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let experiments = [
        "table1",
        "table2",
        "fig09_layers",
        "fig10_scalability",
        "fig11_devices",
        "fig12_latency",
        "fig13_segments",
        "fig14_noise",
        "fig15_ablation_depth",
        "fig16_ablation_quality",
        "fig17_pruning",
    ];

    let mut failures = Vec::new();
    for exp in experiments {
        println!("\n==================== {exp} ====================");
        let status = Command::new(exe_dir.join(exp)).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{exp} exited with {s}");
                failures.push(exp);
            }
            Err(e) => {
                eprintln!("{exp} failed to launch: {e}");
                failures.push(exp);
            }
        }
    }

    println!("\n==================== summary ====================");
    if failures.is_empty() {
        println!(
            "all {} experiments completed; CSVs in target/rasengan-reports/",
            experiments.len()
        );
    } else {
        println!("failed: {failures:?}");
        std::process::exit(1);
    }
}
