//! **Figure 11** — evaluation on real-world quantum platforms
//! (simulated here with each device's calibration-based noise model).
//!
//! (a) average ARG and (b) average in-constraints rate of the four
//! algorithms on F1, K1, J1 under IBM-Kyiv and IBM-Brisbane noise, with
//! the mean-feasible-solution ARG as the baseline Rasengan is the first
//! to beat. Expected shape: baselines' ARG exceeds the mean-feasible
//! line, Rasengan improves ≥ 379×, purification keeps its
//! in-constraints rate at 100% vs single-digit percent for Choco-Q on
//! the noisier device.

use rasengan_bench::report::fmt;
use rasengan_bench::runners::RunEnv;
use rasengan_bench::{run_algorithm, Algorithm, RunSettings, Table};
use rasengan_core::metrics::arg;
use rasengan_problems::registry::{benchmark, BenchmarkId};
use rasengan_problems::{mean_feasible_objective, optimum};
use rasengan_qsim::Device;

fn main() {
    let settings = RunSettings::from_args();
    let benches = ["F1", "K1", "J1"];
    let devices = [Device::ibm_kyiv(), Device::ibm_brisbane()];

    let mut table = Table::new(
        "Figure 11: ARG and in-constraints rate on IBM devices",
        vec!["device", "method", "avg_ARG", "avg_in_constraints"],
    );

    for device in &devices {
        // The "mean quality of feasible solutions" reference line.
        let mut mean_arg = 0.0;
        for b in benches {
            let p = benchmark(BenchmarkId::parse(b).unwrap());
            let (_, e_opt) = optimum(&p);
            mean_arg += arg(e_opt, mean_feasible_objective(&p)) / benches.len() as f64;
        }
        table.row(vec![
            device.name.to_string(),
            "mean-feasible".to_string(),
            fmt(mean_arg),
            "1.000".to_string(),
        ]);

        for alg in Algorithm::all() {
            let mut sum_arg = 0.0;
            let mut sum_rate = 0.0;
            for b in benches {
                let p = benchmark(BenchmarkId::parse(b).unwrap());
                let env = RunEnv {
                    seed: settings.seed,
                    // Paper: max 100 iterations on hardware.
                    iterations: if settings.full { 100 } else { 8 },
                    layers: 5,
                    shots: Some(settings.shots()),
                    noise: device.noise,
                    device: device.clone(),
                    threads: settings.threads,
                };
                let r = run_algorithm(alg, &p, &env);
                sum_arg += if r.arg.is_finite() { r.arg } else { 1e4 };
                sum_rate += r.in_constraints_rate;
                eprintln!(
                    "[{}] {} on {}: arg={} rate={}",
                    b,
                    alg.name(),
                    device.name,
                    fmt(r.arg),
                    fmt(r.in_constraints_rate)
                );
            }
            table.row(vec![
                device.name.to_string(),
                alg.name().to_string(),
                fmt(sum_arg / benches.len() as f64),
                fmt(sum_rate / benches.len() as f64),
            ]);
        }
    }

    table.print();
    if let Ok(p) = table.save_csv("fig11_devices") {
        println!("saved: {}", p.display());
    }
}
