//! **Figure 12** — training-latency breakdown (classical vs quantum)
//! per method on the hardware-scale benchmarks.
//!
//! Expected shape (paper): HEA/P-QAOA spend > 70% of their latency in
//! the classical part (penalty objective over mostly-infeasible
//! samples); Rasengan cuts total time ~1.73× vs Choco-Q, with slightly
//! higher classical time (segmented execution bookkeeping) but much
//! lower quantum time thanks to shallow segments.

use rasengan_bench::report::fmt;
use rasengan_bench::runners::RunEnv;
use rasengan_bench::{run_algorithm, Algorithm, RunSettings, Table};
use rasengan_problems::registry::{benchmark, BenchmarkId};
use rasengan_qsim::Device;

fn main() {
    let settings = RunSettings::from_args();
    let benches = ["F1", "K1", "J1"];
    let iterations = if settings.full { 100 } else { 8 };

    let mut table = Table::new(
        "Figure 12: per-iteration latency breakdown (ms)",
        vec!["method", "classical_ms", "quantum_ms", "total_ms"],
    );

    for alg in Algorithm::all() {
        let mut classical = 0.0;
        let mut quantum = 0.0;
        for b in benches {
            let p = benchmark(BenchmarkId::parse(b).unwrap());
            let env = RunEnv {
                seed: settings.seed,
                iterations,
                layers: 5,
                shots: Some(settings.shots()),
                noise: Device::ibm_kyiv().noise,
                device: Device::ibm_kyiv(),
                threads: settings.threads,
            };
            let r = run_algorithm(alg, &p, &env);
            classical += r.classical_s / iterations as f64 * 1e3 / benches.len() as f64;
            quantum += r.quantum_s / iterations as f64 * 1e3 / benches.len() as f64;
        }
        table.row(vec![
            alg.name().to_string(),
            fmt(classical),
            fmt(quantum),
            fmt(classical + quantum),
        ]);
        eprintln!(
            "{}: classical {:.2}ms quantum {:.2}ms",
            alg.name(),
            classical,
            quantum
        );
    }

    table.print();
    if let Ok(p) = table.save_csv("fig12_latency") {
        println!("saved: {}", p.display());
    }
}
